//! The typed end-to-end pipeline: the paper's whole method — measure a
//! host trace, sanitize it, fit the correlated ratio-law model,
//! validate against held-out populations, predict forward — as one
//! composable, serializable API.
//!
//! A [`Pipeline`] is built from a source (a BOINC measurement run, a
//! population-dynamics [`Scenario`], or an in-memory [`Trace`]) and a
//! chain of optional stages. The stage configuration is plain data: a
//! [`PipelineSpec`] serde-round-trips through JSON, so a full
//! reproduction is a shareable artifact. Running the pipeline yields a
//! typed, serializable [`PipelineReport`].
//!
//! ```no_run
//! use resmodel::pipeline::Pipeline;
//! use resmodel::popsim::Scenario;
//! use resmodel::trace::SimDate;
//!
//! let report = Pipeline::from_scenario(Scenario::steady_state(7))
//!     .max_hosts(20_000)
//!     .sanitize_default()
//!     .fit_default()
//!     .validate(vec![SimDate::from_year(2010.5)])
//!     .predict(vec![SimDate::from_year(2014.0)])
//!     .run()?;
//! println!("{}", report.to_json_pretty()?);
//! # Ok::<(), resmodel::ResmodelError>(())
//! ```

use resmodel_boinc::{simulate, WorldParams};
use resmodel_core::fit::{
    fit_host_model_columnar, fit_host_model_rows, lifetime_weibull, lifetime_weibull_columnar,
    FitConfig, FitReport,
};
use resmodel_core::predict::{
    memory_prediction, moment_prediction, multicore_prediction, MemoryPrediction, MomentPrediction,
    MulticorePrediction,
};
use resmodel_core::validate::{
    compare_populations, compare_populations_columnar, generated_correlation_matrix,
    ResourceComparison,
};
use resmodel_core::{GeneratedHost, HostGenerator};
use resmodel_error::ResmodelError;
use resmodel_obs::Collector;
use resmodel_popsim::{engine, fleet_to_columnar, fleet_to_trace, EngineReport, Scenario};
use resmodel_sched::{DispatchPolicy, DispatchReport, WorkloadSpec};
use resmodel_stats::Matrix;
use resmodel_trace::persist::{self, Precision};
use resmodel_trace::sanitize::{sanitize, SanitizeRules};
use resmodel_trace::{ColumnarTrace, MappedTrace, SimDate, Trace, TraceSource};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Where the measurement trace comes from.
// A handful of specs exist per process; the Scenario variant's size is
// irrelevant and boxing it would hurt the builder/serde ergonomics.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceSpec {
    /// The BOINC-style measurement loop ([`resmodel_boinc::simulate`])
    /// at a population scale and seed.
    Boinc {
        /// Population scale (1.0 ≈ the paper's 3M hosts).
        scale: f64,
        /// World seed; same seed → bitwise-identical trace.
        seed: u64,
    },
    /// The population-dynamics engine running a [`Scenario`], with the
    /// fleet exported as a measurement trace.
    Scenario {
        /// The scenario to run (carries its own seed).
        scenario: Scenario,
        /// Optional cap on total arrivals (`0` keeps the scenario's own
        /// cap).
        max_hosts: usize,
    },
    /// A trace supplied in memory via [`Pipeline::from_trace`] /
    /// [`Pipeline::with_trace`] (e.g. parsed from CSV). The trace
    /// itself is not part of the serialized spec.
    External,
}

/// Configuration of the validation stage: at each date, generate a
/// population the same size as the actual one and compare them
/// (Fig 12 / Table VIII).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidateSpec {
    /// Held-out comparison dates.
    pub dates: Vec<SimDate>,
    /// Base seed for the generated populations (the date index is
    /// XOR-ed in so every date draws a distinct population).
    pub seed: u64,
}

/// Configuration of the prediction stage (Figs 13/14 forward
/// forecasts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictSpec {
    /// Forecast dates.
    pub dates: Vec<SimDate>,
}

/// Configuration of the workload-dispatch stage: stream a job
/// workload through the simulated fleet under one placement policy
/// ([`resmodel_sched::dispatch()`]). Jobs are generated and consumed
/// segment by segment — peak memory tracks the segment size, not the
/// job budget, so a pipeline can dispatch 10M+ jobs without a
/// materialized workload. Requires a scenario source — the dispatcher
/// needs the fleet timeline and availability schedules, not just the
/// exported trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSpec {
    /// The workload to dispatch.
    pub workload: WorkloadSpec,
    /// The placement policy.
    pub policy: DispatchPolicy,
}

/// The full pipeline configuration — stages as data. Everything here
/// serde-round-trips, so a reproduction is a shareable JSON artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineSpec {
    /// Trace source.
    pub source: SourceSpec,
    /// Sanitization rules; `None` skips the stage.
    pub sanitize: Option<SanitizeRules>,
    /// Model-fitting configuration; `None` skips fitting (and the
    /// stages that need a fitted model).
    pub fit: Option<FitConfig>,
    /// Validation stage; requires `fit`.
    pub validate: Option<ValidateSpec>,
    /// Prediction stage; requires `fit`.
    pub predict: Option<PredictSpec>,
    /// Workload-dispatch stage; requires a scenario source.
    pub dispatch: Option<DispatchSpec>,
}

impl PipelineSpec {
    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("pipeline spec", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// spec.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("pipeline spec", e))
    }

    /// The canonical (compact, deterministically ordered) JSON form
    /// used for content addressing: specs that deserialize to the same
    /// value render the same bytes here regardless of how the incoming
    /// JSON was formatted. The query-service cache hashes this.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn canonical_json(&self) -> Result<String, ResmodelError> {
        serde_json::to_string(self).map_err(|e| ResmodelError::json("pipeline spec", e))
    }
}

/// Which storage layout the analysis stages extract their columns
/// from. Not part of the serialized [`PipelineSpec`] — both layouts
/// produce byte-identical reports (the CI identity check and the
/// golden tests enforce it), so the choice is an execution detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataPath {
    /// Row-oriented scans over the [`Trace`]: every `(date, resource)`
    /// extraction re-filters all host records. Kept as the reference
    /// implementation for identity verification.
    Row,
    /// Columnar extraction via [`ColumnarTrace`]: the active population
    /// of each date is resolved once and every per-resource extraction
    /// reuses it as a zero-copy column view. The default.
    #[default]
    Columnar,
}

/// Non-serialized instrumentation of one run, alongside the report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunMetrics {
    /// Time spent producing the columnar store, ms: the row→column
    /// conversion, or the direct fleet export when the source is a
    /// scenario with no sanitize stage. `0` on [`DataPath::Row`] and
    /// when the analysis ran straight off a mapped trace file.
    pub extract_ms: f64,
    /// Time spent persisting the trace to disk when
    /// [`Pipeline::save_trace`] was requested, ms (`0` otherwise).
    pub save_ms: f64,
}

/// Builder for an end-to-end run. Construct with one of the `from_*`
/// methods, chain stage configurators, then [`Pipeline::run`].
#[derive(Debug, Clone)]
pub struct Pipeline {
    spec: PipelineSpec,
    external: Option<Trace>,
    mapped: Option<Arc<MappedTrace>>,
    save: Option<(PathBuf, Precision)>,
    path: DataPath,
    collector: Collector,
}

impl Pipeline {
    fn from_source(source: SourceSpec) -> Self {
        Self {
            spec: PipelineSpec {
                source,
                sanitize: None,
                fit: None,
                validate: None,
                predict: None,
                dispatch: None,
            },
            external: None,
            mapped: None,
            save: None,
            path: DataPath::default(),
            collector: Collector::disabled(),
        }
    }

    /// Start from a population-dynamics scenario.
    pub fn from_scenario(scenario: Scenario) -> Self {
        Self::from_source(SourceSpec::Scenario {
            scenario,
            max_hosts: 0,
        })
    }

    /// Start from the BOINC measurement loop at `scale`/`seed`.
    pub fn from_boinc(scale: f64, seed: u64) -> Self {
        Self::from_source(SourceSpec::Boinc { scale, seed })
    }

    /// Start from an in-memory trace (e.g. parsed from CSV). The
    /// resulting spec records an [`SourceSpec::External`] source.
    pub fn from_trace(trace: Trace) -> Self {
        let mut p = Self::from_source(SourceSpec::External);
        p.external = Some(trace);
        p
    }

    /// Start from an on-disk `resmodel.trace/1` file (see
    /// `docs/FORMAT.md`). The file is mapped read-only and, on the
    /// default [`DataPath::Columnar`] with no sanitize stage, the
    /// analysis stages extract straight from the mapped columns —
    /// no rows and no heap copy of the trace are materialized. The
    /// resulting spec records an [`SourceSpec::External`] source.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Io`] when the file cannot be read and
    /// [`ResmodelError::Store`] when it is not a valid trace file.
    pub fn from_trace_file(path: impl AsRef<Path>) -> Result<Self, ResmodelError> {
        Ok(Self::from_mapped(Arc::new(MappedTrace::open(path)?)))
    }

    /// Start from an already-mapped trace, shared via [`Arc`] (e.g.
    /// held by a cache). Semantics are those of
    /// [`Pipeline::from_trace_file`].
    pub fn from_mapped(mapped: Arc<MappedTrace>) -> Self {
        let mut p = Self::from_source(SourceSpec::External);
        p.mapped = Some(mapped);
        p
    }

    /// Rebuild a pipeline from a (possibly deserialized) spec.
    pub fn from_spec(spec: PipelineSpec) -> Self {
        Self {
            spec,
            external: None,
            mapped: None,
            save: None,
            path: DataPath::default(),
            collector: Collector::disabled(),
        }
    }

    /// Attach an observability [`Collector`]: every stage then records
    /// a span (nested under `pipeline`), the engine/dispatch/columnar
    /// layers record their own counters and histograms, and the run's
    /// population totals land in `pipeline.*` counters. A disabled
    /// collector (the default) makes every probe a no-op; the report
    /// bytes are identical either way.
    pub fn observe(mut self, obs: &Collector) -> Self {
        self.collector = obs.clone();
        self
    }

    /// Select the storage layout the analysis stages run on
    /// ([`DataPath::Columnar`] by default). Reports are byte-identical
    /// either way; [`DataPath::Row`] exists for verification and
    /// benchmarking.
    pub fn data_path(mut self, path: DataPath) -> Self {
        self.path = path;
        self
    }

    /// Attach the trace an [`SourceSpec::External`] spec refers to.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.external = Some(trace);
        self
    }

    /// Attach the mapped trace an [`SourceSpec::External`] spec refers
    /// to — the rebuilt-from-spec counterpart of
    /// [`Pipeline::from_mapped`]. An in-memory trace attached via
    /// [`Pipeline::with_trace`] takes precedence.
    pub fn with_mapped(mut self, mapped: Arc<MappedTrace>) -> Self {
        self.mapped = Some(mapped);
        self
    }

    /// Persist the analyzed (post-sanitize) trace to `path` in the
    /// lossless `resmodel.trace/1` format during the run, so a later
    /// run can [`Pipeline::from_trace_file`] it instead of rebuilding
    /// the source. The write is timed into [`RunMetrics::save_ms`].
    pub fn save_trace(self, path: impl Into<PathBuf>) -> Self {
        self.save_trace_with(path, Precision::Lossless)
    }

    /// [`Pipeline::save_trace`] with an explicit [`Precision`]
    /// (`Compact` stores the five resource columns as `f32`).
    pub fn save_trace_with(mut self, path: impl Into<PathBuf>, precision: Precision) -> Self {
        self.save = Some((path.into(), precision));
        self
    }

    /// Cap the scenario's total arrivals (scenario sources only; `0`
    /// keeps the scenario's own cap).
    pub fn max_hosts(mut self, n: usize) -> Self {
        if let SourceSpec::Scenario { max_hosts, .. } = &mut self.spec.source {
            *max_hosts = n;
        }
        self
    }

    /// Enable sanitization with explicit rules.
    pub fn sanitize(mut self, rules: SanitizeRules) -> Self {
        self.spec.sanitize = Some(rules);
        self
    }

    /// Enable sanitization with the paper's thresholds.
    pub fn sanitize_default(self) -> Self {
        self.sanitize(SanitizeRules::default())
    }

    /// Enable model fitting with an explicit configuration.
    pub fn fit(mut self, config: FitConfig) -> Self {
        self.spec.fit = Some(config);
        self
    }

    /// Enable model fitting with the paper's sample dates.
    pub fn fit_default(self) -> Self {
        self.fit(FitConfig::default())
    }

    /// Enable validation at `dates` (seed 0; see
    /// [`Pipeline::validate_seeded`]).
    pub fn validate(self, dates: Vec<SimDate>) -> Self {
        self.validate_seeded(dates, 0)
    }

    /// Enable validation at `dates` with an explicit generation seed.
    pub fn validate_seeded(mut self, dates: Vec<SimDate>, seed: u64) -> Self {
        self.spec.validate = Some(ValidateSpec { dates, seed });
        self
    }

    /// Enable forward prediction at `dates`.
    pub fn predict(mut self, dates: Vec<SimDate>) -> Self {
        self.spec.predict = Some(PredictSpec { dates });
        self
    }

    /// Enable workload dispatch: push `workload`'s job stream through
    /// the simulated fleet under `policy` (scenario sources only).
    pub fn dispatch(mut self, workload: WorkloadSpec, policy: DispatchPolicy) -> Self {
        self.spec.dispatch = Some(DispatchSpec { workload, policy });
        self
    }

    /// The assembled spec (serializable).
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Run every configured stage and return the serializable report.
    ///
    /// # Errors
    ///
    /// Propagates stage failures ([`ResmodelError::Stats`] from
    /// degenerate fits, [`ResmodelError::Config`] from invalid
    /// scenarios or unsatisfied stage preconditions).
    pub fn run(self) -> Result<PipelineReport, ResmodelError> {
        self.run_inner(false).map(|(report, _, _)| report)
    }

    /// Like [`Pipeline::run`], but also hands back the run's
    /// [`RunMetrics`] (columnar extraction timing) — what the sweep
    /// layer records per job.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pipeline::run`].
    pub fn run_metered(self) -> Result<(PipelineReport, RunMetrics), ResmodelError> {
        self.run_inner(false)
            .map(|(report, _, metrics)| (report, metrics))
    }

    /// Like [`Pipeline::run`], but also hands back the (possibly
    /// sanitized) trace and the full [`FitReport`] for callers that
    /// render figures or tables from them.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Pipeline::run`].
    pub fn run_detailed(self) -> Result<PipelineOutput, ResmodelError> {
        self.run_inner(true).map(|(report, trace, _)| {
            let trace = trace.unwrap_or_default();
            PipelineOutput { report, trace }
        })
    }

    fn run_inner(
        self,
        want_trace: bool,
    ) -> Result<(PipelineReport, Option<Trace>, RunMetrics), ResmodelError> {
        // The dispatch/source incompatibility is knowable from the spec
        // alone — reject it before any (potentially expensive) earlier
        // stage runs.
        if self.spec.dispatch.is_some() && !matches!(self.spec.source, SourceSpec::Scenario { .. })
        {
            return Err(ResmodelError::config(
                "pipeline",
                "the dispatch stage requires a scenario source",
            ));
        }
        let _span = self.collector.span("pipeline");
        match self.path {
            DataPath::Row => self.run_rows(),
            DataPath::Columnar => self.run_columnar(want_trace),
        }
    }

    /// Build the raw row trace from the configured source (all sources
    /// except the scenario fast path below). When `want_engine` is set
    /// and the source is a scenario, the engine report (fleet timeline
    /// and availability) is kept for the dispatch stage instead of
    /// being dropped after trace export.
    fn build_row_source(
        source: &SourceSpec,
        external: Option<Trace>,
        want_engine: bool,
        obs: &Collector,
    ) -> Result<(Trace, Option<EngineReport>), ResmodelError> {
        Ok(match source {
            SourceSpec::Boinc { scale, seed } => {
                let params = WorldParams::with_scale(*scale, *seed);
                params.validate()?;
                (simulate(&params), None)
            }
            SourceSpec::Scenario {
                scenario,
                max_hosts,
            } => {
                let mut scenario = scenario.clone();
                if *max_hosts > 0 {
                    scenario.max_hosts = *max_hosts;
                }
                let report = engine::run_observed(&scenario, obs)?;
                let trace = fleet_to_trace(&report.fleet, report.scenario.end);
                (trace, want_engine.then_some(report))
            }
            SourceSpec::External => (
                external.ok_or_else(|| {
                    ResmodelError::config(
                        "pipeline",
                        "source is External but no trace was attached (use with_trace)",
                    )
                })?,
                None,
            ),
        })
    }

    /// Run the dispatch stage, when configured. The stage needs the
    /// engine report a scenario source produced; any other source is a
    /// configuration error.
    fn dispatch_stage(
        spec: &Option<DispatchSpec>,
        engine_report: Option<&EngineReport>,
        timing: &mut StageTimings,
        obs: &Collector,
    ) -> Result<Option<DispatchReport>, ResmodelError> {
        match spec {
            Some(d) => {
                let engine_report = engine_report.ok_or_else(|| {
                    ResmodelError::config(
                        "pipeline",
                        "the dispatch stage requires a scenario source",
                    )
                })?;
                let t0 = Instant::now();
                let report =
                    resmodel_sched::dispatch_observed(engine_report, &d.workload, d.policy, obs)?;
                timing.dispatch_ms = ms_since(t0);
                Ok(Some(report))
            }
            None => Ok(None),
        }
    }

    /// The reference row-oriented implementation: every stage scans the
    /// [`Trace`] directly. Byte-identical to [`Pipeline::run_columnar`]
    /// — kept for verification and benchmarking.
    fn run_rows(self) -> Result<(PipelineReport, Option<Trace>, RunMetrics), ResmodelError> {
        let spec = self.spec;
        let obs = self.collector;
        let mut timing = StageTimings::default();
        let mut metrics = RunMetrics::default();

        // --- Source ---
        let span = obs.span("build");
        let t0 = Instant::now();
        let external = resolve_external(self.external, self.mapped.as_deref());
        let (raw, engine_report) =
            Self::build_row_source(&spec.source, external, spec.dispatch.is_some(), &obs)?;
        timing.build_ms = ms_since(t0);
        drop(span);
        let raw_hosts = raw.len();

        // --- Sanitize ---
        let span = spec.sanitize.is_some().then(|| obs.span("sanitize"));
        let t0 = Instant::now();
        let (trace, discarded) = match spec.sanitize {
            Some(rules) => {
                let report = sanitize(&raw, rules);
                (report.trace, report.discarded)
            }
            None => (raw, 0),
        };
        if spec.sanitize.is_some() {
            timing.sanitize_ms = ms_since(t0);
        }
        drop(span);

        // --- Save ---
        if self.save.is_some() {
            save_stage(&self.save, &ColumnarTrace::from(&trace), &mut metrics, &obs)?;
        }

        let world = world_summary(
            trace.len(),
            raw_hosts,
            discarded,
            trace.start(),
            trace.end(),
        );

        // --- Fit ---
        let t0 = Instant::now();
        let fit = match &spec.fit {
            Some(config) => {
                let _span = obs.span("fit");
                let report = fit_host_model_rows(&trace, config)?;
                let lifetime = config
                    .sample_dates
                    .last()
                    .and_then(|&cutoff| lifetime_weibull(&trace, cutoff).ok())
                    .map(LifetimeFit::from);
                timing.fit_ms = ms_since(t0);
                Some(FitStage { report, lifetime })
            }
            None => None,
        };

        // --- Validate ---
        let t0 = Instant::now();
        let validation = match &spec.validate {
            Some(v) => {
                let _span = obs.span("validate");
                let model = &require_fit(&fit, "validate")?.report.model;
                let mut out = Vec::with_capacity(v.dates.len());
                for (i, &date) in v.dates.iter().enumerate() {
                    let actual: Vec<GeneratedHost> = trace
                        .population_at(date)
                        .iter()
                        .map(GeneratedHost::from)
                        .collect();
                    let generated =
                        model.generate_population(date, actual.len(), v.seed ^ i as u64);
                    let comparisons = compare_populations(&generated, &actual)?;
                    let generated_correlation = generated_correlation_matrix(&generated)?;
                    out.push(ValidationAt {
                        date,
                        hosts: actual.len(),
                        comparisons,
                        generated_correlation,
                    });
                }
                timing.validate_ms = ms_since(t0);
                Some(out)
            }
            None => None,
        };

        // --- Predict ---
        let span = spec.predict.as_ref().map(|_| obs.span("predict"));
        let t0 = Instant::now();
        let predictions = predict_stage(&spec.predict, &fit)?;
        if predictions.is_some() {
            timing.predict_ms = ms_since(t0);
        }
        drop(span);

        // --- Dispatch ---
        let dispatch =
            Self::dispatch_stage(&spec.dispatch, engine_report.as_ref(), &mut timing, &obs)?;

        record_pipeline_metrics(&obs, &world);
        let report = PipelineReport {
            spec,
            world,
            fit,
            validation,
            predictions,
            dispatch,
            timing,
        };
        Ok((report, Some(trace), metrics))
    }

    /// The columnar implementation: the trace is columnarised once
    /// (straight from the fleet shards when the source is a scenario
    /// with no sanitize stage) and every analysis stage extracts from
    /// shared zero-copy column views.
    fn run_columnar(
        self,
        want_trace: bool,
    ) -> Result<(PipelineReport, Option<Trace>, RunMetrics), ResmodelError> {
        let spec = self.spec;
        let obs = self.collector;
        let mut timing = StageTimings::default();
        let mut metrics = RunMetrics::default();

        // --- Mapped fast path ---
        // An External source backed by a mapped trace file, with no
        // sanitize stage and no in-memory trace overriding it, analyzes
        // the mapped columns in place: no row trace is rebuilt and no
        // heap copy of the columns is made. Byte-identical reports to
        // the heap path — the persistence identity tests enforce it.
        if matches!(spec.source, SourceSpec::External)
            && spec.sanitize.is_none()
            && self.external.is_none()
        {
            if let Some(store) = &self.mapped {
                let store: &MappedTrace = store;
                save_stage(&self.save, store, &mut metrics, &obs)?;
                let hosts = store.host_count();
                let report = analyze_source(store, spec, &obs, hosts, 0, None, timing)?;
                let trace = want_trace.then(|| store.to_trace());
                return Ok((report, trace, metrics));
            }
        }

        // --- Source + columnarization ---
        // A scenario source with no sanitize stage skips the row-trace
        // detour entirely: columns are emitted directly from the fleet.
        let direct = spec.sanitize.is_none() && matches!(spec.source, SourceSpec::Scenario { .. });
        let mut row_trace: Option<Trace> = None;
        let mut engine_report: Option<EngineReport> = None;
        let (columnar, raw_hosts, discarded) = if direct {
            let SourceSpec::Scenario {
                scenario,
                max_hosts,
            } = &spec.source
            else {
                unreachable!("`direct` implies a scenario source");
            };
            let span = obs.span("build");
            let t0 = Instant::now();
            let mut scenario = scenario.clone();
            if *max_hosts > 0 {
                scenario.max_hosts = *max_hosts;
            }
            let report = engine::run_observed(&scenario, &obs)?;
            timing.build_ms = ms_since(t0);
            drop(span);
            let span = obs.span("extract");
            let t0 = Instant::now();
            let columnar = fleet_to_columnar(&report.fleet, report.scenario.end);
            metrics.extract_ms = ms_since(t0);
            drop(span);
            let raw_hosts = columnar.len();
            if spec.dispatch.is_some() {
                engine_report = Some(report);
            }
            (columnar, raw_hosts, 0)
        } else {
            let span = obs.span("build");
            let t0 = Instant::now();
            let external = resolve_external(self.external, self.mapped.as_deref());
            let (raw, engine) =
                Self::build_row_source(&spec.source, external, spec.dispatch.is_some(), &obs)?;
            engine_report = engine;
            timing.build_ms = ms_since(t0);
            drop(span);
            let raw_hosts = raw.len();

            let span = spec.sanitize.is_some().then(|| obs.span("sanitize"));
            let t0 = Instant::now();
            let (trace, discarded) = match spec.sanitize {
                Some(rules) => {
                    let report = sanitize(&raw, rules);
                    (report.trace, report.discarded)
                }
                None => (raw, 0),
            };
            if spec.sanitize.is_some() {
                timing.sanitize_ms = ms_since(t0);
            }
            drop(span);

            let span = obs.span("extract");
            let t0 = Instant::now();
            let columnar = ColumnarTrace::from(&trace);
            metrics.extract_ms = ms_since(t0);
            drop(span);
            row_trace = Some(trace);
            (columnar, raw_hosts, discarded)
        };
        // --- Save ---
        save_stage(&self.save, &columnar, &mut metrics, &obs)?;

        let report = analyze_source(
            &columnar,
            spec,
            &obs,
            raw_hosts,
            discarded,
            engine_report.as_ref(),
            timing,
        )?;
        let trace = want_trace.then(|| row_trace.unwrap_or_else(|| columnar.to_trace()));
        Ok((report, trace, metrics))
    }
}

/// Resolve the trace an [`SourceSpec::External`] source refers to: an
/// explicitly attached in-memory trace wins, else the mapped trace
/// file is materialized as rows (the sanitize stage and the row data
/// path need owned records).
fn resolve_external(external: Option<Trace>, mapped: Option<&MappedTrace>) -> Option<Trace> {
    external.or_else(|| mapped.map(TraceSource::to_trace))
}

/// Persist `store` when a [`Pipeline::save_trace`] destination was
/// configured, timing the write into [`RunMetrics::save_ms`].
fn save_stage<S: TraceSource + ?Sized>(
    save: &Option<(PathBuf, Precision)>,
    store: &S,
    metrics: &mut RunMetrics,
    obs: &Collector,
) -> Result<(), ResmodelError> {
    if let Some((path, precision)) = save {
        let _span = obs.span("save");
        let t0 = Instant::now();
        persist::write_trace(path, store, *precision)?;
        metrics.save_ms = ms_since(t0);
    }
    Ok(())
}

/// The analysis stages — fit, validate, predict, dispatch — run over
/// any [`TraceSource`] backend (heap columns or a mapped file), plus
/// report assembly. Every columnar/mapped run funnels through here, so
/// the backends cannot drift apart.
fn analyze_source<S: TraceSource + ?Sized>(
    store: &S,
    spec: PipelineSpec,
    obs: &Collector,
    raw_hosts: usize,
    discarded: usize,
    engine_report: Option<&EngineReport>,
    mut timing: StageTimings,
) -> Result<PipelineReport, ResmodelError> {
    store.observe_extraction(obs);

    let world = world_summary(
        store.host_count(),
        raw_hosts,
        discarded,
        store.start(),
        store.end(),
    );

    // --- Fit ---
    let t0 = Instant::now();
    let fit = match &spec.fit {
        Some(config) => {
            let _span = obs.span("fit");
            let report = fit_host_model_columnar(store, config)?;
            let lifetime = config
                .sample_dates
                .last()
                .and_then(|&cutoff| lifetime_weibull_columnar(store, cutoff).ok())
                .map(LifetimeFit::from);
            timing.fit_ms = ms_since(t0);
            Some(FitStage { report, lifetime })
        }
        None => None,
    };

    // --- Validate ---
    let t0 = Instant::now();
    let validation = match &spec.validate {
        Some(v) => {
            let _span = obs.span("validate");
            let model = &require_fit(&fit, "validate")?.report.model;
            let mut out = Vec::with_capacity(v.dates.len());
            for (i, &date) in v.dates.iter().enumerate() {
                let actual = store.active_at(date);
                let generated = model.generate_population(date, actual.len(), v.seed ^ i as u64);
                let comparisons = compare_populations_columnar(&generated, store, &actual)?;
                let generated_correlation = generated_correlation_matrix(&generated)?;
                out.push(ValidationAt {
                    date,
                    hosts: actual.len(),
                    comparisons,
                    generated_correlation,
                });
            }
            timing.validate_ms = ms_since(t0);
            Some(out)
        }
        None => None,
    };

    // --- Predict ---
    let span = spec.predict.as_ref().map(|_| obs.span("predict"));
    let t0 = Instant::now();
    let predictions = predict_stage(&spec.predict, &fit)?;
    if predictions.is_some() {
        timing.predict_ms = ms_since(t0);
    }
    drop(span);

    // --- Dispatch ---
    let dispatch = Pipeline::dispatch_stage(&spec.dispatch, engine_report, &mut timing, obs)?;

    record_pipeline_metrics(obs, &world);
    Ok(PipelineReport {
        spec,
        world,
        fit,
        validation,
        predictions,
        dispatch,
        timing,
    })
}

/// Whole-run population counters, recorded once per pipeline run.
fn record_pipeline_metrics(obs: &Collector, world: &WorldSummary) {
    if !obs.is_enabled() {
        return;
    }
    obs.add("pipeline.runs", 1);
    obs.add("pipeline.hosts", world.hosts as u64);
    obs.add("pipeline.raw_hosts", world.raw_hosts as u64);
    obs.add("pipeline.discarded", world.discarded as u64);
}

fn world_summary(
    hosts: usize,
    raw_hosts: usize,
    discarded: usize,
    start: Option<SimDate>,
    end: Option<SimDate>,
) -> WorldSummary {
    WorldSummary {
        hosts,
        raw_hosts,
        discarded,
        discarded_fraction: if raw_hosts == 0 {
            0.0
        } else {
            discarded as f64 / raw_hosts as f64
        },
        start,
        end,
    }
}

fn predict_stage(
    predict: &Option<PredictSpec>,
    fit: &Option<FitStage>,
) -> Result<Option<PredictionStage>, ResmodelError> {
    match predict {
        Some(p) => {
            let model = &require_fit(fit, "predict")?.report.model;
            Ok(Some(PredictionStage {
                multicore: multicore_prediction(model, &p.dates)?,
                memory: memory_prediction(model, &p.dates)?,
                moments: p
                    .dates
                    .iter()
                    .map(|&d| moment_prediction(model, d))
                    .collect(),
            }))
        }
        None => Ok(None),
    }
}

fn ms_since(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn require_fit<'a>(fit: &'a Option<FitStage>, stage: &str) -> Result<&'a FitStage, ResmodelError> {
    fit.as_ref().ok_or_else(|| {
        ResmodelError::config(
            "pipeline",
            format!("the {stage} stage requires a fit stage before it"),
        )
    })
}

/// Population overview of the (possibly sanitized) trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldSummary {
    /// Hosts after sanitization.
    pub hosts: usize,
    /// Hosts before sanitization.
    pub raw_hosts: usize,
    /// Hosts discarded by the sanitize stage (0 when skipped).
    pub discarded: usize,
    /// `discarded / raw_hosts` (0 for an empty input).
    pub discarded_fraction: f64,
    /// Earliest contact in the trace.
    pub start: Option<SimDate>,
    /// Latest contact in the trace.
    pub end: Option<SimDate>,
}

/// The fitted Weibull host-lifetime law (Fig 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeFit {
    /// Weibull shape `k` (paper: 0.58).
    pub shape: f64,
    /// Weibull scale λ, days (paper: 135).
    pub scale_days: f64,
}

impl From<resmodel_stats::distributions::Weibull> for LifetimeFit {
    fn from(w: resmodel_stats::distributions::Weibull) -> Self {
        Self {
            shape: w.shape(),
            scale_days: w.scale(),
        }
    }
}

/// Output of the fit stage: the full [`FitReport`] (model + law
/// tables) plus the lifetime fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitStage {
    /// The fitted model and the paper's Tables III–VI.
    pub report: FitReport,
    /// The Weibull lifetime fit at the last sample date; `None` when
    /// the censored lifetime sample was too small or degenerate.
    pub lifetime: Option<LifetimeFit>,
}

/// Validation results at one held-out date (Fig 12 / Table VIII).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationAt {
    /// Comparison date.
    pub date: SimDate,
    /// Size of the actual (and generated) population.
    pub hosts: usize,
    /// Per-resource mean/σ/KS comparison (Fig 12).
    pub comparisons: Vec<ResourceComparison>,
    /// 6×6 correlation matrix of the generated population
    /// (Table VIII).
    pub generated_correlation: Matrix,
}

/// Output of the prediction stage (Figs 13/14 and the 2014 moments).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionStage {
    /// Multicore mix forecasts (Fig 13).
    pub multicore: Vec<MulticorePrediction>,
    /// Total-memory mix forecasts (Fig 14).
    pub memory: Vec<MemoryPrediction>,
    /// Benchmark/disk moment forecasts.
    pub moments: Vec<MomentPrediction>,
}

/// Wall-clock stage timings, milliseconds (0 for skipped stages).
/// Excluded from golden-file comparisons by zeroing via
/// [`StageTimings::default`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Trace construction (simulation or engine run + export).
    pub build_ms: f64,
    /// Sanitization.
    pub sanitize_ms: f64,
    /// Model fitting.
    pub fit_ms: f64,
    /// Validation.
    pub validate_ms: f64,
    /// Prediction.
    pub predict_ms: f64,
    /// Workload dispatch.
    pub dispatch_ms: f64,
}

// Hand-written (de)serialization: identical bytes to the derive, but a
// missing `dispatch_ms` defaults to 0 so pre-`/3` artifacts and
// reports (whose timing blocks predate the dispatch stage) keep
// parsing.
impl serde::Serialize for StageTimings {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("build_ms".to_owned(), self.build_ms.to_value()),
            ("sanitize_ms".to_owned(), self.sanitize_ms.to_value()),
            ("fit_ms".to_owned(), self.fit_ms.to_value()),
            ("validate_ms".to_owned(), self.validate_ms.to_value()),
            ("predict_ms".to_owned(), self.predict_ms.to_value()),
            ("dispatch_ms".to_owned(), self.dispatch_ms.to_value()),
        ])
    }
}

impl serde::Deserialize for StageTimings {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(Self {
            build_ms: serde::field(v, "build_ms")?,
            sanitize_ms: serde::field(v, "sanitize_ms")?,
            fit_ms: serde::field(v, "fit_ms")?,
            validate_ms: serde::field(v, "validate_ms")?,
            predict_ms: serde::field(v, "predict_ms")?,
            dispatch_ms: match v.get("dispatch_ms") {
                Some(_) => serde::field(v, "dispatch_ms")?,
                None => 0.0,
            },
        })
    }
}

/// Everything a pipeline run produced, serializable to JSON.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineReport {
    /// The spec that produced this report (round-trippable).
    pub spec: PipelineSpec,
    /// Population overview.
    pub world: WorldSummary,
    /// Fit stage output, when configured.
    pub fit: Option<FitStage>,
    /// Validation stage output, when configured.
    pub validation: Option<Vec<ValidationAt>>,
    /// Prediction stage output, when configured.
    pub predictions: Option<PredictionStage>,
    /// Dispatch stage output, when configured. Carries its own
    /// wall-clock fields — [`PipelineReport::zero_timings`] strips
    /// them alongside [`PipelineReport::timing`] for byte-stable
    /// comparisons.
    pub dispatch: Option<DispatchReport>,
    /// Wall-clock stage timings.
    pub timing: StageTimings,
}

impl PipelineReport {
    /// Zero every wall-clock field — the stage timings plus the
    /// dispatch report's own wall-clock block — leaving only the
    /// deterministic content, the form compared by byte-stability
    /// tests.
    ///
    /// Implemented via [`resmodel_obs::zero_wall_clock`]'s key-suffix
    /// walk over the serialized tree, so a future `*_ms` /
    /// `*_per_sec` field anywhere in the report is stripped without
    /// touching this method.
    pub fn zero_timings(&mut self) {
        let mut tree = serde_json::to_value(self);
        resmodel_obs::zero_wall_clock(&mut tree);
        *self = serde_json::from_value(&tree)
            .expect("zeroing preserves numeric kinds, so the report round-trips");
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("pipeline report", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// report.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("pipeline report", e))
    }
}

/// A report plus the artifacts figure/table renderers need.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// The serializable report.
    pub report: PipelineReport,
    /// The (possibly sanitized) measurement trace.
    pub trace: Trace,
}

impl PipelineOutput {
    /// The full fit report, when the fit stage ran.
    pub fn fit_report(&self) -> Option<&FitReport> {
        self.report.fit.as_ref().map(|f| &f.report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn small_scenario_pipeline() -> Pipeline {
        Pipeline::from_scenario(Scenario::steady_state(11))
            .max_hosts(12_000)
            .sanitize_default()
            .fit(FitConfig::yearly(2007, 2010))
            .validate(vec![SimDate::from_year(2010.5)])
            .predict(vec![SimDate::from_year(2014.0)])
    }

    #[test]
    fn spec_round_trips_through_json() {
        let p = small_scenario_pipeline();
        let json = p.spec().to_json_pretty().unwrap();
        let back = PipelineSpec::from_json(&json).unwrap();
        assert_eq!(*p.spec(), back);
    }

    #[test]
    fn full_run_produces_all_stages() {
        let out = small_scenario_pipeline().run_detailed().unwrap();
        let r = &out.report;
        assert_eq!(r.world.hosts, out.trace.len());
        assert_eq!(r.world.raw_hosts, 12_000);
        let fit = r.fit.as_ref().expect("fit ran");
        assert_eq!(fit.report.core_laws.len(), 3);
        assert_eq!(fit.report.moment_laws.len(), 6);
        let lifetime = fit.lifetime.expect("lifetime fitted");
        assert!(lifetime.shape > 0.3 && lifetime.shape < 1.0);
        let v = r.validation.as_ref().expect("validation ran");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].comparisons.len(), 5);
        let p = r.predictions.as_ref().expect("prediction ran");
        assert_eq!(p.multicore.len(), 1);
        assert!(p.multicore[0].mean_cores > 2.0);
        assert!(r.timing.build_ms > 0.0 && r.timing.fit_ms > 0.0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = small_scenario_pipeline().run().unwrap();
        let json = report.to_json_pretty().unwrap();
        let back = PipelineReport::from_json(&json).unwrap();
        // No PartialEq on HostModel: compare re-serializations.
        assert_eq!(json, back.to_json_pretty().unwrap());
    }

    #[test]
    fn external_source_without_trace_errors() {
        let spec = small_scenario_pipeline().spec().clone();
        let spec = PipelineSpec {
            source: SourceSpec::External,
            ..spec
        };
        let err = Pipeline::from_spec(spec).run().unwrap_err();
        assert!(matches!(err, ResmodelError::Config { .. }), "{err}");
    }

    #[test]
    fn validate_without_fit_errors() {
        let err = Pipeline::from_scenario(Scenario::steady_state(1))
            .max_hosts(500)
            .validate(vec![SimDate::from_year(2010.0)])
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("requires a fit stage"), "{err}");
    }

    #[test]
    fn invalid_scenario_propagates() {
        let mut s = Scenario::steady_state(1);
        s.shard_count = 0;
        let err = Pipeline::from_scenario(s).run().unwrap_err();
        assert!(matches!(err, ResmodelError::Config { .. }), "{err}");
    }

    #[test]
    fn dispatch_stage_runs_on_scenario_sources() {
        let workload = WorkloadSpec::preset("mixed")
            .expect("built-in preset")
            .with_job_budget(300);
        let report = Pipeline::from_scenario(Scenario::steady_state(9))
            .max_hosts(600)
            .dispatch(workload.clone(), DispatchPolicy::GreedyUtility)
            .run()
            .unwrap();
        let d = report.dispatch.as_ref().expect("dispatch ran");
        assert!(d.totals.completed > 0);
        assert_eq!(d.policy, DispatchPolicy::GreedyUtility);
        assert!(report.timing.dispatch_ms > 0.0);
        // The row path produces the identical deterministic content.
        let mut columnar = report;
        let mut row = Pipeline::from_scenario(Scenario::steady_state(9))
            .max_hosts(600)
            .dispatch(workload, DispatchPolicy::GreedyUtility)
            .data_path(DataPath::Row)
            .run()
            .unwrap();
        columnar.timing = StageTimings::default();
        row.timing = StageTimings::default();
        if let (Some(c), Some(r)) = (&mut columnar.dispatch, &mut row.dispatch) {
            c.zero_timings();
            r.zero_timings();
        }
        assert_eq!(
            columnar.to_json_pretty().unwrap(),
            row.to_json_pretty().unwrap()
        );
    }

    #[test]
    fn dispatch_without_scenario_source_errors() {
        let trace = small_scenario_pipeline().run_detailed().unwrap().trace;
        let workload = WorkloadSpec::preset("mixed").expect("built-in preset");
        let err = Pipeline::from_trace(trace)
            .dispatch(workload, DispatchPolicy::Random)
            .run()
            .unwrap_err();
        assert!(
            err.to_string().contains("requires a scenario source"),
            "{err}"
        );
    }

    #[test]
    fn observed_run_is_identical_and_records_stage_spans() {
        let plain = small_scenario_pipeline().run().unwrap();
        let obs = Collector::new();
        let observed = small_scenario_pipeline().observe(&obs).run().unwrap();

        // Observation never perturbs the report: zeroed forms are
        // byte-identical.
        let mut plain = plain;
        let mut observed_report = observed;
        plain.zero_timings();
        observed_report.zero_timings();
        assert_eq!(
            plain.to_json_pretty().unwrap(),
            observed_report.to_json_pretty().unwrap()
        );

        let m = obs.snapshot();
        assert_eq!(m.counter("pipeline.runs"), Some(1));
        assert_eq!(m.counter("pipeline.raw_hosts"), Some(12_000));
        assert_eq!(m.counter("popsim.runs"), Some(1));
        assert_eq!(m.counter("trace.columnar.extractions"), Some(1));
        let paths: Vec<&str> = m.spans.iter().map(|s| s.path.as_str()).collect();
        for want in [
            "pipeline",
            "pipeline/build",
            "pipeline/build/engine",
            "pipeline/sanitize",
            "pipeline/extract",
            "pipeline/fit",
            "pipeline/validate",
            "pipeline/predict",
        ] {
            assert!(paths.contains(&want), "missing span {want}: {paths:?}");
        }
    }

    #[test]
    fn zero_timings_strips_every_wall_clock_field() {
        let workload = WorkloadSpec::preset("mixed")
            .expect("built-in preset")
            .with_job_budget(200);
        let mut report = Pipeline::from_scenario(Scenario::steady_state(3))
            .max_hosts(500)
            .dispatch(workload, DispatchPolicy::Random)
            .run()
            .unwrap();
        assert!(report.timing.build_ms > 0.0);
        report.zero_timings();
        assert_eq!(report.timing, StageTimings::default());
        let tree = serde_json::to_value(&report);
        assert_eq!(resmodel_obs::find_nonzero_wall_clock(&tree), None);
        // Deterministic rates survive: only wall-clock keys are hit.
        let d = report.dispatch.as_ref().expect("dispatch ran");
        assert!(d.totals.jobs_per_sim_hour > 0.0);
    }

    #[test]
    fn from_trace_runs_without_source_simulation() {
        let trace = small_scenario_pipeline().run_detailed().unwrap().trace;
        let report = Pipeline::from_trace(trace)
            .fit(FitConfig::yearly(2007, 2010))
            .run()
            .unwrap();
        assert!(report.fit.is_some());
        assert_eq!(report.spec.source, SourceSpec::External);
    }
}
