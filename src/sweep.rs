//! The parallel scenario-sweep subsystem: run a *grid* of pipelines —
//! scenarios × fleet sizes × fit configurations × seeds — as one batch
//! job on a rayon worker pool, with deterministic per-job RNG
//! substreams and a typed, serializable cross-job report.
//!
//! A [`SweepSpec`] is plain data (it serde-round-trips through JSON, so
//! a whole batch experiment is a shareable artifact) and expands into a
//! deterministic job list; [`SweepSpec::run`] executes the jobs in
//! parallel and streams their [`crate::pipeline::PipelineReport`]s into a
//! [`SweepReport`]: per-job summaries, per-scenario comparison rows and
//! batch throughput totals. [`BenchArtifact`] projects a report onto
//! the machine-readable `BENCH_sweep.json` schema CI tracks.
//!
//! ```no_run
//! use resmodel::sweep::SweepSpec;
//!
//! let spec = SweepSpec::preset("families").expect("built-in preset");
//! let report = spec.run()?;
//! for row in &report.comparisons {
//!     println!("{:<14} {:>9.0} hosts/s", row.scenario, row.mean_hosts_per_sec);
//! }
//! # Ok::<(), resmodel::ResmodelError>(())
//! ```
//!
//! ## Determinism contract
//!
//! Each scenario × fleet × fit × replicate grid cell runs with seed
//! `substream(spec.seed ^ replicate, cell)`, a pure function of the
//! spec — never of the machine — so no two cells share an RNG stream
//! and the whole report (wall-clock fields aside, see
//! [`SweepReport::zero_timings`]) is byte-identical at any rayon
//! thread count. The optional dispatch axis deliberately *shares* its
//! cell's seed: every `(workload, policy)` pair dispatches the same
//! job stream onto the same fleet, so policy rows differ only in
//! placement.

use crate::pipeline::{
    DataPath, DispatchSpec, LifetimeFit, Pipeline, PipelineSpec, PredictSpec, SourceSpec,
    StageTimings, ValidateSpec, WorldSummary,
};
use rayon::prelude::*;
use resmodel_core::fit::FitConfig;
use resmodel_error::ResmodelError;
use resmodel_obs::{Collector, HistogramSummary, MetricsReport, SloReport, SloSpec};
use resmodel_popsim::{engine, ArrivalLaw, Scenario};
use resmodel_sched::{dispatch_observed, DispatchPolicy, WorkloadSpec};
use resmodel_stats::rng::substream;
use resmodel_trace::sanitize::SanitizeRules;
use resmodel_trace::{MappedTrace, SimDate, TraceSource};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::time::Instant;

/// Schema identifier written into every [`BenchArtifact`]: `/8` adds
/// the service-load block ([`SvcLoadSummary`]) — served-queries/sec,
/// per-endpoint latency quantiles, error counts and the SLO verdict of
/// a load-generator run against `resmodeld` — alongside the `/7`
/// dispatch-scaling, `/6` trace-store, `/5` query-service and `/4`
/// observability blocks. An `/8` artifact may be a *pure load
/// artifact*: empty `jobs` is allowed when (and only when) `svc_load`
/// is present.
pub const BENCH_SCHEMA: &str = "resmodel.bench_sweep/8";

/// The `/7` artifact schema (dispatch-scaling block —
/// [`DispatchScalingPoint`] rows with streaming dispatch throughput,
/// peak RSS and work-stealing figures — but no service-load block).
/// Still accepted by `swept --check` so stored artifacts keep
/// validating.
pub const BENCH_SCHEMA_V7: &str = "resmodel.bench_sweep/7";

/// The `/6` artifact schema (trace-store block — file size, write/load
/// timings and the mapped-reload-vs-regeneration comparison of an
/// out-of-core persistence probe — but no dispatch-scaling block).
/// Still accepted by `swept --check` so stored artifacts keep
/// validating.
pub const BENCH_SCHEMA_V6: &str = "resmodel.bench_sweep/6";

/// The `/5` artifact schema (query-service block — cache hit/miss
/// counters, hit rate, per-endpoint request-latency histograms — but
/// no trace-store block). Still accepted by `swept --check` so stored
/// artifacts keep validating.
pub const BENCH_SCHEMA_V5: &str = "resmodel.bench_sweep/5";

/// The `/4` artifact schema (observability block — `peak_rss_bytes`
/// plus the full [`MetricsReport`] — and per-job `jobs_per_sec`; no
/// query-service block). Still accepted by `swept --check` so stored
/// artifacts keep validating.
pub const BENCH_SCHEMA_V4: &str = "resmodel.bench_sweep/4";

/// The `/3` artifact schema (per-job dispatch timing and throughput,
/// no observability block). Still accepted by `swept --check` so
/// stored artifacts keep validating.
pub const BENCH_SCHEMA_V3: &str = "resmodel.bench_sweep/3";

/// The `/2` artifact schema (per-job `extract_ms`, no dispatch
/// fields). Still accepted by `swept --check` so stored artifacts keep
/// validating.
pub const BENCH_SCHEMA_V2: &str = "resmodel.bench_sweep/2";

/// The original artifact schema (no `extract_ms` row field). Still
/// accepted by `swept --check` so stored `/1` artifacts keep
/// validating.
pub const BENCH_SCHEMA_V1: &str = "resmodel.bench_sweep/1";

/// The full grid configuration of one sweep — stages as data, like
/// [`PipelineSpec`], so a batch experiment round-trips through JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Sweep name (reports, bench labels).
    pub name: String,
    /// Master seed; every job derives its own RNG substream from it.
    pub seed: u64,
    /// Scenario templates (one grid axis). Each template's own `seed`
    /// is overridden by the job's derived substream.
    pub scenarios: Vec<Scenario>,
    /// Fleet-size axis: each entry caps a scenario's total arrivals.
    pub fleet_sizes: Vec<usize>,
    /// Fit-configuration axis; an empty list means no fitting stage
    /// (and therefore no validation/prediction).
    pub fits: Vec<FitConfig>,
    /// Replicate-seed axis; each entry shifts every job's derived
    /// substream, giving independent repetitions of the whole grid.
    pub replicates: Vec<u64>,
    /// Sanitization rules applied in every job; `None` skips the stage.
    pub sanitize: Option<SanitizeRules>,
    /// Held-out validation dates (needs a non-empty fit axis).
    pub validate_dates: Vec<SimDate>,
    /// Forward-prediction dates (needs a non-empty fit axis).
    pub predict_dates: Vec<SimDate>,
    /// Optional workload-dispatch axis: each grid point additionally
    /// expands over `workloads × policies`, running the dispatch stage
    /// on every combination.
    pub dispatch: Option<DispatchSweep>,
}

/// The dispatch axis of a sweep: every `(workload, policy)` pair
/// multiplies the grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSweep {
    /// Workload templates. Each template's own `seed` is overridden by
    /// the job's derived substream, like scenario seeds.
    pub workloads: Vec<WorkloadSpec>,
    /// Placement policies to compare.
    pub policies: Vec<DispatchPolicy>,
}

impl SweepSpec {
    /// Names accepted by [`SweepSpec::preset`].
    pub const PRESETS: [&'static str; 5] =
        ["smoke", "families", "scaling", "replicates", "dispatch"];

    /// A named built-in sweep:
    ///
    /// * `"smoke"` — all four scenario families at 8k hosts with a
    ///   yearly fit, validation and prediction; small enough for CI.
    /// * `"families"` — the four families at 20k hosts; the paper-style
    ///   cross-scenario comparison.
    /// * `"scaling"` — steady-state at 5k/20k/80k hosts, engine only;
    ///   the throughput trajectory.
    /// * `"replicates"` — the four families × three replicate seeds,
    ///   engine only; cross-seed variance.
    /// * `"dispatch"` — steady-state at 8k hosts × two workload presets
    ///   × all four placement policies; the workload-dispatch
    ///   comparison grid.
    pub fn preset(name: &str) -> Option<Self> {
        let base = |name: &str, hosts: &[usize]| Self {
            name: name.to_owned(),
            seed: 20110620,
            scenarios: Scenario::all_builtin(0),
            fleet_sizes: hosts.to_vec(),
            fits: vec![FitConfig::yearly(2007, 2010)],
            replicates: vec![1],
            sanitize: Some(SanitizeRules::default()),
            validate_dates: vec![SimDate::from_year(2010.5)],
            predict_dates: vec![SimDate::from_year(2014.0)],
            dispatch: None,
        };
        match name {
            "smoke" => Some(base("smoke", &[8_000])),
            "families" => Some(base("families", &[20_000])),
            "scaling" => Some(Self {
                scenarios: vec![Scenario::steady_state(0)],
                fits: Vec::new(),
                validate_dates: Vec::new(),
                predict_dates: Vec::new(),
                ..base("scaling", &[5_000, 20_000, 80_000])
            }),
            "replicates" => Some(Self {
                fits: Vec::new(),
                validate_dates: Vec::new(),
                predict_dates: Vec::new(),
                replicates: vec![1, 2, 3],
                ..base("replicates", &[8_000])
            }),
            "dispatch" => Some(Self {
                scenarios: vec![Scenario::steady_state(0)],
                fits: Vec::new(),
                sanitize: None,
                validate_dates: Vec::new(),
                predict_dates: Vec::new(),
                dispatch: Some(DispatchSweep {
                    workloads: ["mixed", "deadline"]
                        .iter()
                        .filter_map(|w| WorkloadSpec::preset(w))
                        .collect(),
                    policies: DispatchPolicy::ALL.to_vec(),
                }),
                ..base("dispatch", &[8_000])
            }),
            _ => None,
        }
    }

    /// Number of jobs the grid expands into.
    pub fn job_count(&self) -> usize {
        let dispatch_axis = self
            .dispatch
            .as_ref()
            .map_or(1, |d| d.workloads.len() * d.policies.len());
        self.scenarios.len()
            * self.fleet_sizes.len()
            * self.fits.len().max(1)
            * self.replicates.len()
            * dispatch_axis
    }

    /// Validate grid sanity (non-empty axes, valid scenarios).
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ResmodelError> {
        let bad = |message: &str| Err(ResmodelError::config("sweep", message));
        if self.scenarios.is_empty() {
            return bad("at least one scenario is required");
        }
        if self.fleet_sizes.is_empty() {
            return bad("at least one fleet size is required");
        }
        if self.fleet_sizes.contains(&0) {
            return bad("fleet sizes must be positive (0 would mean uncapped)");
        }
        if self.replicates.is_empty() {
            return bad("at least one replicate seed is required");
        }
        if self.fits.is_empty()
            && !(self.validate_dates.is_empty() && self.predict_dates.is_empty())
        {
            return bad("validation/prediction dates need a non-empty fit axis");
        }
        // Duplicate axis entries would expand into jobs with identical
        // labels, making a Sweep error or a bench row ambiguous.
        if has_duplicates(self.fleet_sizes.iter()) {
            return bad("fleet sizes must be distinct");
        }
        if has_duplicates(self.replicates.iter()) {
            return bad("replicate seeds must be distinct");
        }
        if has_duplicates(self.scenarios.iter().map(|s| &s.name)) {
            return bad("scenario names must be distinct");
        }
        for s in &self.scenarios {
            s.validate()?;
        }
        if let Some(d) = &self.dispatch {
            if d.workloads.is_empty() {
                return bad("dispatch axis needs at least one workload");
            }
            if d.policies.is_empty() {
                return bad("dispatch axis needs at least one policy");
            }
            if has_duplicates(d.workloads.iter().map(|w| &w.name)) {
                return bad("workload names must be distinct");
            }
            if has_duplicates(d.policies.iter()) {
                return bad("dispatch policies must be distinct");
            }
            for w in &d.workloads {
                w.validate()?;
            }
        }
        Ok(())
    }

    /// Expand the grid into its deterministic job list (scenario-major,
    /// then fleet size, fit, replicate, workload, policy).
    pub fn expand(&self) -> Vec<SweepJob> {
        let fit_axis: Vec<Option<&FitConfig>> = if self.fits.is_empty() {
            vec![None]
        } else {
            self.fits.iter().map(Some).collect()
        };
        // The dispatch axis expands to `(workload, policy)` pairs, or a
        // single no-dispatch point when absent.
        let dispatch_axis: Vec<Option<(&WorkloadSpec, DispatchPolicy)>> = match &self.dispatch {
            Some(d) => d
                .workloads
                .iter()
                .flat_map(|w| d.policies.iter().map(move |&p| Some((w, p))))
                .collect(),
            None => vec![None],
        };
        let mut jobs = Vec::with_capacity(self.job_count());
        // Seeds derive from the dispatch-free grid cell, not the job
        // index: every (workload, policy) pair of one
        // scenario/fleet/fit/replicate cell shares a seed, so the
        // dispatch comparison holds the fleet and the job stream
        // constant and isolates the placement decision itself.
        let mut cell: u64 = 0;
        for scenario in &self.scenarios {
            for &fleet_size in &self.fleet_sizes {
                for (fit_index, fit) in fit_axis.iter().enumerate() {
                    for &replicate in &self.replicates {
                        let seed = substream(self.seed ^ replicate, cell);
                        cell += 1;
                        for dispatch in &dispatch_axis {
                            let index = jobs.len();
                            let mut scenario = scenario.clone();
                            scenario.seed = seed;
                            scenario.max_hosts = fleet_size;
                            let mut label = if fit_axis.len() > 1 {
                                format!(
                                    "{}/{fleet_size}/fit{fit_index}/r{replicate}",
                                    scenario.name
                                )
                            } else {
                                format!("{}/{fleet_size}/r{replicate}", scenario.name)
                            };
                            if let Some((workload, policy)) = dispatch {
                                label = format!("{label}/{}/{}", workload.name, policy.label());
                            }
                            let spec =
                                PipelineSpec {
                                    source: SourceSpec::Scenario {
                                        scenario: scenario.clone(),
                                        max_hosts: 0,
                                    },
                                    sanitize: self.sanitize,
                                    fit: fit.map(|f| (*f).clone()),
                                    validate: (fit.is_some() && !self.validate_dates.is_empty())
                                        .then(|| ValidateSpec {
                                            dates: self.validate_dates.clone(),
                                            seed,
                                        }),
                                    predict: (fit.is_some() && !self.predict_dates.is_empty())
                                        .then(|| PredictSpec {
                                            dates: self.predict_dates.clone(),
                                        }),
                                    dispatch: dispatch.map(|(workload, policy)| {
                                        let mut workload = workload.clone();
                                        // Like scenario seeds: the derived
                                        // substream overrides the template's.
                                        workload.seed = seed;
                                        DispatchSpec { workload, policy }
                                    }),
                                };
                            jobs.push(SweepJob {
                                index,
                                label,
                                scenario: scenario.name.clone(),
                                fleet_size,
                                replicate,
                                seed,
                                spec,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Execute every job of the grid on the rayon worker pool and
    /// assemble the typed report. Job order in the report equals grid
    /// order regardless of scheduling. Jobs run on the columnar data
    /// path; see [`SweepSpec::run_with_path`] to force the row path.
    ///
    /// # Errors
    ///
    /// Returns the spec's validation error, or the first failing job's
    /// error wrapped in [`ResmodelError::Sweep`] with the job's label.
    pub fn run(&self) -> Result<SweepReport, ResmodelError> {
        self.run_with_path(DataPath::Columnar)
    }

    /// [`SweepSpec::run`] on an explicit [`DataPath`]. After
    /// [`SweepReport::zero_timings`], the two paths' reports are
    /// byte-identical — the identity contract `swept
    /// --verify-columnar` and CI assert.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSpec::run`].
    pub fn run_with_path(&self, path: DataPath) -> Result<SweepReport, ResmodelError> {
        self.run_collected(path, &Collector::disabled())
    }

    /// [`SweepSpec::run`] with observability on: runs the batch against
    /// a fresh [`Collector`] and hands back its [`MetricsReport`]
    /// snapshot alongside the (unchanged) report. The metrics live
    /// *beside* the report, never inside it — the report bytes equal an
    /// unobserved run's.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSpec::run`].
    pub fn run_observed(&self) -> Result<(SweepReport, MetricsReport), ResmodelError> {
        let obs = Collector::new();
        let report = self.run_collected(DataPath::Columnar, &obs)?;
        Ok((report, obs.snapshot()))
    }

    /// The fully-general run: an explicit [`DataPath`] and an explicit
    /// [`Collector`] (pass [`Collector::disabled`] for a plain run, or
    /// a caller-owned collector to attach an events sink before the
    /// batch starts).
    ///
    /// # Errors
    ///
    /// Same conditions as [`SweepSpec::run`].
    pub fn run_collected(
        &self,
        path: DataPath,
        obs: &Collector,
    ) -> Result<SweepReport, ResmodelError> {
        self.validate()?;
        let _span = obs.span("sweep");
        let jobs = self.expand();
        let t0 = Instant::now();
        let outcomes: Vec<Result<JobReport, ResmodelError>> =
            jobs.par_iter().map(|job| run_job(job, path, obs)).collect();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        let mut reports = Vec::with_capacity(outcomes.len());
        for (job, outcome) in jobs.iter().zip(outcomes) {
            reports.push(outcome.map_err(|e| ResmodelError::sweep(job.label.clone(), e))?);
        }

        let comparisons = compare_scenarios(&reports);
        let totals = SweepTotals::from_jobs(&reports, wall_ms);
        if obs.is_enabled() {
            obs.add("sweep.runs", 1);
            obs.add("sweep.jobs", totals.jobs as u64);
            obs.add("sweep.hosts", totals.total_hosts as u64);
            obs.set_gauge("sweep.hosts_per_sec", totals.hosts_per_sec);
        }
        Ok(SweepReport {
            spec: self.clone(),
            jobs: reports,
            comparisons,
            totals,
        })
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("sweep spec", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// spec.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("sweep spec", e))
    }

    /// The canonical (compact, deterministically ordered) JSON form
    /// used for content addressing by the query-service cache.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn canonical_json(&self) -> Result<String, ResmodelError> {
        serde_json::to_string(self).map_err(|e| ResmodelError::json("sweep spec", e))
    }
}

/// O(n²) but axes are tiny; avoids ordering or hashing requirements.
fn has_duplicates<T: PartialEq>(items: impl Iterator<Item = T>) -> bool {
    let items: Vec<T> = items.collect();
    (1..items.len()).any(|i| items[..i].contains(&items[i]))
}

/// One expanded grid point: a fully-specified pipeline plus its grid
/// coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepJob {
    /// Position in the expanded grid (also the substream label).
    pub index: usize,
    /// Human-readable grid coordinates, e.g. `"flash-crowd/8000/r1"`.
    pub label: String,
    /// Scenario family name.
    pub scenario: String,
    /// Arrival cap for this job.
    pub fleet_size: usize,
    /// The replicate-axis seed this job belongs to.
    pub replicate: u64,
    /// The derived scenario seed (`substream(spec.seed ^ replicate,
    /// cell)`, shared by every dispatch-axis job of one grid cell).
    pub seed: u64,
    /// The complete pipeline configuration the job runs.
    pub spec: PipelineSpec,
}

/// Run one job, timing the whole pipeline.
fn run_job(job: &SweepJob, path: DataPath, obs: &Collector) -> Result<JobReport, ResmodelError> {
    let t0 = Instant::now();
    let (report, metrics) = Pipeline::from_spec(job.spec.clone())
        .data_path(path)
        .observe(obs)
        .run_metered()?;
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mean_ks = report.validation.as_ref().map(|dates| {
        let (mut sum, mut n) = (0.0, 0u32);
        for at in dates {
            for c in &at.comparisons {
                sum += c.ks_distance;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    });
    let mean_cores_forecast = report
        .predictions
        .as_ref()
        .and_then(|p| p.multicore.first())
        .map(|m| m.mean_cores);
    let dispatch = report.dispatch.as_ref().map(|d| DispatchSummary {
        workload: d.workload.name.clone(),
        policy: d.policy.label().to_owned(),
        jobs: d.totals.jobs,
        completed: d.totals.completed,
        deadline_miss_rate: d.totals.deadline_miss_rate,
        jobs_per_sim_hour: d.totals.jobs_per_sim_hour,
        host_utilization: d.totals.host_utilization,
        utility_ratio: d.totals.utility_ratio,
        dispatch_ms: report.timing.dispatch_ms,
        jobs_per_sec: d.jobs_per_sec,
    });

    Ok(JobReport {
        index: job.index,
        label: job.label.clone(),
        scenario: job.scenario.clone(),
        fleet_size: job.fleet_size,
        replicate: job.replicate,
        seed: job.seed,
        world: report.world.clone(),
        lifetime: report.fit.as_ref().and_then(|f| f.lifetime),
        mean_ks,
        mean_cores_forecast,
        timing: report.timing,
        extract_ms: metrics.extract_ms,
        jobs_per_sec: dispatch.as_ref().map(|d| d.jobs_per_sec),
        dispatch,
        wall_ms,
        hosts_per_sec: rate(report.world.raw_hosts, wall_ms),
    })
}

fn ms_between(t0: Instant) -> f64 {
    t0.elapsed().as_secs_f64() * 1e3
}

fn rate(hosts: usize, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        hosts as f64 / (wall_ms / 1e3)
    } else {
        0.0
    }
}

/// One job's summarised outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Grid position.
    pub index: usize,
    /// Grid coordinates, e.g. `"gpu-wave/8000/r1"`.
    pub label: String,
    /// Scenario family.
    pub scenario: String,
    /// Arrival cap.
    pub fleet_size: usize,
    /// Replicate-axis seed.
    pub replicate: u64,
    /// Derived scenario seed.
    pub seed: u64,
    /// Population overview (raw/sanitized counts, time span).
    pub world: WorldSummary,
    /// Fitted Weibull lifetime, when the job fitted a model.
    pub lifetime: Option<LifetimeFit>,
    /// Mean KS distance over every validation comparison, when the job
    /// validated (lower = generated populations closer to actual).
    pub mean_ks: Option<f64>,
    /// Forecast mean cores at the first prediction date, when the job
    /// predicted.
    pub mean_cores_forecast: Option<f64>,
    /// Per-stage wall-clock timings.
    pub timing: StageTimings,
    /// Time spent producing the columnar store (conversion or direct
    /// fleet export), ms; `0` on the row path.
    pub extract_ms: f64,
    /// Dispatched jobs per second of dispatch wall time, when the job
    /// ran a dispatch stage — the explicit job-level copy of
    /// [`DispatchSummary::jobs_per_sec`], so BENCH consumers read
    /// throughput directly instead of re-deriving it from counts and
    /// milliseconds.
    pub jobs_per_sec: Option<f64>,
    /// Dispatch-stage outcome, when the job ran one.
    pub dispatch: Option<DispatchSummary>,
    /// Whole-job wall time, ms.
    pub wall_ms: f64,
    /// Simulated hosts per second of job wall time.
    pub hosts_per_sec: f64,
}

/// The dispatch-stage slice of one sweep job, summarised for the
/// report and the BENCH artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchSummary {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Jobs generated over the dispatch window.
    pub jobs: usize,
    /// Jobs completed.
    pub completed: usize,
    /// Deadline-miss rate over deadline-bearing jobs.
    pub deadline_miss_rate: f64,
    /// Completed jobs per simulated hour (deterministic throughput).
    pub jobs_per_sim_hour: f64,
    /// Consumed / available ON-hours across the fleet.
    pub host_utilization: f64,
    /// Realized / predicted Cobb–Douglas utility.
    pub utility_ratio: f64,
    /// Dispatch-stage wall time, ms.
    pub dispatch_ms: f64,
    /// Generated jobs per second of dispatch wall time.
    pub jobs_per_sec: f64,
}

/// Cross-job comparison row: one scenario family aggregated over its
/// fleet sizes, fits and replicates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioComparison {
    /// Scenario family.
    pub scenario: String,
    /// Jobs aggregated.
    pub jobs: usize,
    /// Total raw hosts simulated across those jobs.
    pub total_hosts: usize,
    /// Mean per-job throughput, hosts/sec.
    pub mean_hosts_per_sec: f64,
    /// Slowest job, ms.
    pub peak_wall_ms: f64,
    /// Mean sanitization discard fraction.
    pub mean_discard_fraction: f64,
    /// Mean of the jobs' mean KS distances (validated jobs only).
    pub mean_ks: Option<f64>,
    /// Mean fitted Weibull lifetime shape (fitted jobs only).
    pub mean_lifetime_shape: Option<f64>,
}

/// Aggregate jobs per scenario family, in first-appearance order.
fn compare_scenarios(jobs: &[JobReport]) -> Vec<ScenarioComparison> {
    fn mean_of(values: impl Iterator<Item = f64>) -> Option<f64> {
        let (mut sum, mut n) = (0.0, 0usize);
        for v in values {
            sum += v;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    let mut families: Vec<&str> = Vec::new();
    for j in jobs {
        if !families.contains(&j.scenario.as_str()) {
            families.push(&j.scenario);
        }
    }
    families
        .into_iter()
        .map(|family| {
            let group: Vec<&JobReport> = jobs.iter().filter(|j| j.scenario == family).collect();
            ScenarioComparison {
                scenario: family.to_owned(),
                jobs: group.len(),
                total_hosts: group.iter().map(|j| j.world.raw_hosts).sum(),
                mean_hosts_per_sec: mean_of(group.iter().map(|j| j.hosts_per_sec)).unwrap_or(0.0),
                peak_wall_ms: group.iter().map(|j| j.wall_ms).fold(0.0, f64::max),
                mean_discard_fraction: mean_of(group.iter().map(|j| j.world.discarded_fraction))
                    .unwrap_or(0.0),
                mean_ks: mean_of(group.iter().filter_map(|j| j.mean_ks)),
                mean_lifetime_shape: mean_of(
                    group.iter().filter_map(|j| j.lifetime.map(|l| l.shape)),
                ),
            }
        })
        .collect()
}

/// Whole-batch wall-time and throughput statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepTotals {
    /// Jobs executed.
    pub jobs: usize,
    /// Total raw hosts simulated.
    pub total_hosts: usize,
    /// Whole-batch wall time, ms (jobs overlap, so this is less than
    /// the per-job sum on a multicore pool).
    pub wall_ms: f64,
    /// Batch throughput: `total_hosts / wall_ms` in hosts/sec.
    pub hosts_per_sec: f64,
    /// Peak (slowest) single-job latency, ms.
    pub peak_job_wall_ms: f64,
    /// Rayon worker threads available to the batch.
    pub threads: usize,
    /// Per-stage timings summed across jobs.
    pub stage_ms: StageTimings,
}

impl SweepTotals {
    fn from_jobs(jobs: &[JobReport], wall_ms: f64) -> Self {
        let total_hosts = jobs.iter().map(|j| j.world.raw_hosts).sum();
        let mut stage_ms = StageTimings::default();
        let mut peak: f64 = 0.0;
        for j in jobs {
            stage_ms.build_ms += j.timing.build_ms;
            stage_ms.sanitize_ms += j.timing.sanitize_ms;
            stage_ms.fit_ms += j.timing.fit_ms;
            stage_ms.validate_ms += j.timing.validate_ms;
            stage_ms.predict_ms += j.timing.predict_ms;
            stage_ms.dispatch_ms += j.timing.dispatch_ms;
            peak = peak.max(j.wall_ms);
        }
        Self {
            jobs: jobs.len(),
            total_hosts,
            wall_ms,
            hosts_per_sec: rate(total_hosts, wall_ms),
            peak_job_wall_ms: peak,
            threads: rayon::current_num_threads(),
            stage_ms,
        }
    }
}

/// Everything a sweep produced, serializable to JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// The spec that produced this report (round-trippable).
    pub spec: SweepSpec,
    /// Per-job summaries, in grid order.
    pub jobs: Vec<JobReport>,
    /// Per-scenario-family comparison rows.
    pub comparisons: Vec<ScenarioComparison>,
    /// Batch totals.
    pub totals: SweepTotals,
}

impl SweepReport {
    /// Zero every wall-clock field (job timings, throughputs, batch
    /// totals, thread count), leaving only the deterministic content —
    /// the form compared by the byte-stability tests, mirroring the
    /// golden pipeline report's zeroed [`StageTimings`].
    ///
    /// Implemented via [`resmodel_obs::zero_wall_clock`]'s key-suffix
    /// walk (`*_ms`, `*_per_sec`, `threads`) over the serialized tree,
    /// so a future wall-clock field anywhere in the report is stripped
    /// without touching this method.
    pub fn zero_timings(&mut self) {
        let mut tree = serde_json::to_value(self);
        resmodel_obs::zero_wall_clock(&mut tree);
        *self = serde_json::from_value(&tree)
            .expect("zeroing preserves numeric kinds, so the report round-trips");
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("sweep report", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// report.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("sweep report", e))
    }

    /// Project onto the CI-tracked `BENCH_sweep.json` schema. The
    /// observability block is empty; see
    /// [`SweepReport::bench_artifact_with_metrics`] to attach one.
    pub fn bench_artifact(&self) -> BenchArtifact {
        BenchArtifact {
            schema: BENCH_SCHEMA.to_owned(),
            sweep: self.spec.name.clone(),
            seed: self.spec.seed,
            threads: self.totals.threads,
            totals: self.totals.clone(),
            peak_rss_bytes: None,
            metrics: None,
            svc: None,
            store: None,
            dispatch_scaling: None,
            svc_load: None,
            jobs: self
                .jobs
                .iter()
                .map(|j| BenchJobRow {
                    label: j.label.clone(),
                    scenario: j.scenario.clone(),
                    fleet_size: j.fleet_size,
                    seed: j.seed,
                    hosts: j.world.raw_hosts,
                    wall_ms: j.wall_ms,
                    hosts_per_sec: j.hosts_per_sec,
                    extract_ms: Some(j.extract_ms),
                    dispatch_ms: j.dispatch.as_ref().map(|d| d.dispatch_ms),
                    jobs_per_sec: j.jobs_per_sec,
                    timing: j.timing,
                })
                .collect(),
        }
    }

    /// [`SweepReport::bench_artifact`] with the run's observability
    /// block attached: the [`MetricsReport`] (typically from
    /// [`SweepSpec::run_observed`]) rides in `metrics`, its peak-RSS
    /// probe is lifted to the artifact's `peak_rss_bytes`, and any
    /// query-service cache metrics it carries are condensed into the
    /// `/5` [`SvcSummary`] block.
    pub fn bench_artifact_with_metrics(&self, metrics: &MetricsReport) -> BenchArtifact {
        let mut artifact = self.bench_artifact();
        artifact.peak_rss_bytes = metrics.peak_rss_bytes;
        artifact.metrics = Some(metrics.clone());
        artifact.svc = SvcSummary::from_metrics(metrics);
        artifact
    }
}

/// The `/5` query-service block of a [`BenchArtifact`]: the cache
/// effectiveness figures of a serving probe (cache hit/miss counters,
/// hit rate, per-endpoint request-latency histograms), condensed from
/// the run's [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvcSummary {
    /// Cache lookups observed (`hits + misses`).
    pub requests: u64,
    /// Lookups answered from the content-addressed cache.
    pub hits: u64,
    /// Lookups that had to compute (exactly one per distinct spec,
    /// thanks to stampede protection).
    pub misses: u64,
    /// `hits / requests`; `0` when nothing was looked up.
    pub hit_rate: f64,
    /// Per-endpoint request-latency histograms
    /// (`svc.<endpoint>.request_ms`), wall-clock by nature — like the
    /// span totals in the `/4` metrics block, they never enter the
    /// deterministic fingerprint.
    pub latency: Vec<HistogramSummary>,
    /// The default service SLO ([`SloSpec::svc_default`]) evaluated
    /// against those latency histograms (schema `/8`; `None` when
    /// parsed from /5–/7 artifacts).
    pub slo: Option<SloReport>,
}

impl SvcSummary {
    /// Extract the query-service block from a metrics snapshot.
    /// `None` when the run had no serving probe (no `svc.cache.*`
    /// counters).
    #[must_use]
    pub fn from_metrics(metrics: &MetricsReport) -> Option<Self> {
        let hits = metrics.counter("svc.cache.hits");
        let misses = metrics.counter("svc.cache.misses");
        if hits.is_none() && misses.is_none() {
            return None;
        }
        let hits = hits.unwrap_or(0);
        let misses = misses.unwrap_or(0);
        let requests = hits + misses;
        #[allow(clippy::cast_precision_loss)]
        let hit_rate = if requests == 0 {
            0.0
        } else {
            hits as f64 / requests as f64
        };
        let latency: Vec<HistogramSummary> = metrics
            .histograms
            .iter()
            .filter(|h| h.name.starts_with("svc.") && h.name.ends_with("request_ms"))
            .cloned()
            .collect();
        let slo = Some(SloSpec::svc_default().evaluate_histograms(&latency));
        Some(SvcSummary {
            requests,
            hits,
            misses,
            hit_rate,
            latency,
            slo,
        })
    }
}

/// The `/8` service-load block of a [`BenchArtifact`]: what a
/// load-generator run observed while hammering a live `resmodeld` —
/// served throughput, per-endpoint latency quantiles, error counts and
/// the server-side SLO verdict. Every figure here is wall-clock by
/// nature (the field names carry the `_ms` / `_per_sec` quarantine
/// suffixes), so the block never enters the deterministic fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvcLoadSummary {
    /// How the generator paced itself: `"fixed"` (a pre-generated
    /// request schedule claimed by workers — the request multiset is
    /// connection-count-invariant), `"duration"` (run until a
    /// deadline) or `"rps"` (duration mode with open-loop pacing).
    pub mode: String,
    /// Concurrent client connections (workers).
    pub connections: usize,
    /// Requests completed across all endpoints.
    pub requests: u64,
    /// Requests that came back as error frames (or transport
    /// failures).
    pub errors: u64,
    /// Wall time of the whole load run, ms.
    pub wall_ms: f64,
    /// `requests / wall seconds` — served queries per second.
    pub served_per_sec: f64,
    /// Server-side cache hits during the run (from the daemon's
    /// `stats` endpoint; `0` when the daemon was unreachable).
    pub hits: u64,
    /// Server-side cache misses during the run.
    pub misses: u64,
    /// `hits / (hits + misses)`; `0` when nothing was looked up.
    pub hit_rate: f64,
    /// The default service SLO evaluated against the *server's*
    /// latency histograms (`None` when the final `stats` fetch
    /// failed).
    pub slo: Option<SloReport>,
    /// Per-endpoint client-side latency breakdown.
    pub endpoints: Vec<SvcLoadEndpoint>,
}

/// One endpoint's row in the [`SvcLoadSummary`]: client-observed
/// request latencies (connect + frame round-trip, so queueing at the
/// server's connection gate is included — unlike the server-side
/// `svc.<endpoint>.request_ms` histograms, which start at parse time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvcLoadEndpoint {
    /// Endpoint wire name (`run_pipeline`, `predict`, `stats`, …).
    pub endpoint: String,
    /// Requests this endpoint completed.
    pub requests: u64,
    /// Requests that failed.
    pub errors: u64,
    /// Median client-observed latency, ms (`0` when no request
    /// succeeded).
    pub p50_ms: f64,
    /// 90th-percentile latency, ms.
    pub p90_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile latency, ms.
    pub p999_ms: f64,
    /// The full client-side histogram summary
    /// (`loadgen.<endpoint>.request_ms`), for consumers that want more
    /// than the headline quantiles.
    pub latency: Option<HistogramSummary>,
}

/// The `/6` trace-store block of a [`BenchArtifact`]: one out-of-core
/// persistence probe — a pipeline run is persisted to the
/// `resmodel.trace/1` format, reloaded through the mapped backend, and
/// re-analyzed, timing both sides so the artifact records whether
/// reloading a saved trace beats regenerating it from the source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreSummary {
    /// Hosts in the persisted trace.
    pub hosts: usize,
    /// Flattened snapshots in the persisted trace.
    pub snapshots: usize,
    /// Size of the trace file, bytes.
    pub file_bytes: u64,
    /// Time to write the trace file, ms.
    pub write_ms: f64,
    /// Time to regenerate the trace from its source and run the
    /// analysis stages, ms (the write above excluded).
    pub regenerate_ms: f64,
    /// Time to open the trace file and run the same analysis stages
    /// from the mapped columns, ms.
    pub load_ms: f64,
    /// Byte source the reload was served from: `"mmap"`, or `"heap"`
    /// when mapping was unavailable and the reader fell back to an
    /// aligned read.
    pub backend: String,
}

impl StoreSummary {
    /// Run the persistence probe on one pipeline configuration: run
    /// `spec` from its source while saving the analyzed trace to
    /// `path`, then reload `path` through [`MappedTrace`] and rerun
    /// the same analysis stages. The two runs' fit, validation and
    /// prediction blocks must be byte-identical (timings zeroed) —
    /// divergence is an error, not a figure.
    ///
    /// The dispatch stage is stripped (it needs the live fleet
    /// timeline, which a trace file does not carry), as is
    /// sanitization on the reload side (the saved trace is already
    /// sanitized).
    ///
    /// # Errors
    ///
    /// Propagates pipeline and store failures, and reports divergence
    /// between the regenerated and reloaded analyses as
    /// [`ResmodelError::Config`].
    pub fn probe(spec: &PipelineSpec, path: &Path) -> Result<Self, ResmodelError> {
        let mut spec = spec.clone();
        spec.dispatch = None;

        // Side A: regenerate from the source, persisting on the way.
        let t0 = Instant::now();
        let (mut regenerated, metrics) = Pipeline::from_spec(spec.clone())
            .save_trace(path)
            .run_metered()?;
        let regenerate_ms = ms_between(t0) - metrics.save_ms;

        // Side B: reload the file mapped and rerun the analysis.
        let t0 = Instant::now();
        let mapped = std::sync::Arc::new(MappedTrace::open(path)?);
        let snapshots = mapped.snapshot_count();
        let file_bytes = mapped.file_len();
        let backend = mapped.backend().to_owned();
        let mut reload_spec = spec;
        reload_spec.source = SourceSpec::External;
        reload_spec.sanitize = None;
        let mut reloaded = Pipeline::from_spec(reload_spec).with_mapped(mapped).run()?;
        let load_ms = ms_between(t0);

        let summary = Self {
            hosts: reloaded.world.hosts,
            snapshots,
            file_bytes,
            write_ms: metrics.save_ms,
            regenerate_ms,
            load_ms,
            backend,
        };

        regenerated.zero_timings();
        reloaded.zero_timings();
        let stages = |r: &crate::pipeline::PipelineReport| -> Result<String, ResmodelError> {
            let fit = serde_json::to_string(&r.fit).map_err(|e| ResmodelError::json("fit", e))?;
            let val = serde_json::to_string(&r.validation)
                .map_err(|e| ResmodelError::json("validation", e))?;
            let pred = serde_json::to_string(&r.predictions)
                .map_err(|e| ResmodelError::json("predictions", e))?;
            Ok(format!("{fit}\n{val}\n{pred}"))
        };
        if stages(&regenerated)? != stages(&reloaded)? {
            return Err(ResmodelError::config(
                "store probe",
                "mapped reload produced a different analysis than regeneration",
            ));
        }
        Ok(summary)
    }
}

/// One point of the `/7` dispatch-scaling block of a
/// [`BenchArtifact`]: the streaming dispatch engine driven at a fixed
/// job budget over a proportionally sized fleet, recording throughput,
/// peak memory and the claim queue's work-stealing figures.
///
/// Field names follow the wall-clock key convention
/// ([`resmodel_obs::is_wall_clock_key`]): `*_ms`, `*_per_sec`,
/// `threads` and `steals` are machine facts, automatically quarantined
/// from any deterministic comparison of the artifact tree; `jobs`,
/// `generated_jobs`, `hosts` and `segments` are model facts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchScalingPoint {
    /// Requested job budget.
    pub jobs: usize,
    /// Jobs the Poisson family streams actually generated — the
    /// budget scales arrival rates so the *expected* total is `jobs`;
    /// the realization lands near it, not exactly on it.
    pub generated_jobs: usize,
    /// Hosts in the probe fleet (`jobs / 10`, clamped to 5k–100k).
    pub hosts: usize,
    /// Worker threads the streaming loop ran on (wall-clock key).
    pub threads: usize,
    /// Whole-run wall time, ms.
    pub wall_ms: f64,
    /// Accumulated segment-fill wall time, ms (fills overlap
    /// dispatch; see `DispatchReport::generate_ms`).
    pub generate_ms: f64,
    /// Streaming generate-and-process loop wall time, ms.
    pub dispatch_ms: f64,
    /// Generated jobs per second of run wall time — the headline
    /// scaling figure.
    pub jobs_per_sec: f64,
    /// Peak resident-set size after the run, bytes (Linux `VmHWM`,
    /// `None` elsewhere). Flat across job counts by design: the
    /// streaming engine holds one segment, not the whole workload.
    pub peak_rss_bytes: Option<u64>,
    /// Cross-shard segment claims by the work-stealing loop — a
    /// scheduling accident of the machine (wall-clock key).
    pub steals: u64,
    /// Streaming segments the job count split into (deterministic).
    pub segments: u64,
}

impl DispatchScalingPoint {
    /// Run the dispatch-scaling probe at one job budget: a
    /// steady-state fleet sized to `jobs / 10` hosts (clamped to
    /// 5k–100k), the `mixed` workload preset capped at `jobs`, and the
    /// earliest-finish policy — the same configuration as the
    /// full-scale thread-invariance test, so the throughput figure
    /// tracks a byte-stability-verified code path.
    ///
    /// # Errors
    ///
    /// Propagates fleet-simulation and dispatch failures.
    pub fn probe(jobs: usize) -> Result<Self, ResmodelError> {
        let hosts = (jobs / 10).clamp(5_000, 100_000);
        let mut scenario = Scenario::steady_state(7);
        scenario.max_hosts = hosts;
        scenario.arrivals = ArrivalLaw::Exponential {
            base_per_day: 120.0,
            growth_per_year: 0.18,
        };
        let fleet = engine::run(&scenario)?;
        let mut workload = WorkloadSpec::preset("mixed")
            .ok_or_else(|| ResmodelError::config("dispatch scaling", "missing `mixed` preset"))?
            .with_job_budget(jobs);
        workload.start = SimDate::from_year(2007.0);

        let obs = Collector::new();
        let report = dispatch_observed(&fleet, &workload, DispatchPolicy::EarliestFinish, &obs)?;
        let metrics = obs.snapshot();
        Ok(Self {
            jobs,
            generated_jobs: report.totals.jobs,
            hosts,
            threads: rayon::current_num_threads(),
            wall_ms: report.wall_ms,
            generate_ms: report.generate_ms,
            dispatch_ms: report.dispatch_ms,
            jobs_per_sec: report.jobs_per_sec,
            peak_rss_bytes: metrics.peak_rss_bytes,
            steals: metrics.counter("sched.steals").unwrap_or(0),
            segments: metrics.counter("sched.segments").unwrap_or(0),
        })
    }
}

/// The machine-readable benchmark artifact (`BENCH_sweep.json`): the
/// perf-trajectory record CI stores for every run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchArtifact {
    /// Schema identifier ([`BENCH_SCHEMA`]).
    pub schema: String,
    /// Sweep name.
    pub sweep: String,
    /// Master seed.
    pub seed: u64,
    /// Worker threads the batch ran on.
    pub threads: usize,
    /// Batch totals (throughput, peak job latency, per-stage sums).
    pub totals: SweepTotals,
    /// Peak resident-set size of the producing process, bytes (schema
    /// `/4`; Linux `VmHWM`, `None` on other platforms or when parsed
    /// from older artifacts).
    pub peak_rss_bytes: Option<u64>,
    /// The observability block: counters, gauges, histogram summaries
    /// (p50/p90/p99 + sparse bucket vector) and span totals of the
    /// producing run (schema `/4`+; `None` when parsed from /1–/3).
    pub metrics: Option<MetricsReport>,
    /// The query-service block: cache effectiveness of the serving
    /// probe (schema `/5`+; `None` when parsed from /1–/4 or when the
    /// run had no probe).
    pub svc: Option<SvcSummary>,
    /// The trace-store block: timings and file size of the out-of-core
    /// persistence probe (schema `/6`+; `None` when parsed from /1–/5
    /// or when the run had no probe).
    pub store: Option<StoreSummary>,
    /// The dispatch-scaling block: streaming dispatch throughput,
    /// peak RSS and work-stealing figures at one or more job counts
    /// (schema `/7`+; `None` when parsed from /1–/6).
    pub dispatch_scaling: Option<Vec<DispatchScalingPoint>>,
    /// The service-load block: throughput, per-endpoint latency
    /// quantiles and SLO verdict of a load-generator run against
    /// `resmodeld` (schema `/8`; `None` when parsed from /1–/7 or when
    /// the run had no load probe). An `/8` artifact with this block
    /// present may carry an empty `jobs` list (a pure load artifact).
    pub svc_load: Option<SvcLoadSummary>,
    /// Per-job throughput rows.
    pub jobs: Vec<BenchJobRow>,
}

/// One job's row in the benchmark artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchJobRow {
    /// Grid coordinates.
    pub label: String,
    /// Scenario family.
    pub scenario: String,
    /// Arrival cap.
    pub fleet_size: usize,
    /// Derived scenario seed.
    pub seed: u64,
    /// Raw hosts simulated.
    pub hosts: usize,
    /// Job wall time, ms.
    pub wall_ms: f64,
    /// Hosts per second of job wall time.
    pub hosts_per_sec: f64,
    /// Per-job columnar extraction time, ms (schema `/2`+; `None` when
    /// parsed from a `/1` artifact).
    pub extract_ms: Option<f64>,
    /// Dispatch-stage wall time, ms (schema `/3`; `None` on jobs
    /// without a dispatch stage or parsed from older artifacts).
    pub dispatch_ms: Option<f64>,
    /// Dispatched jobs per second of dispatch wall time (schema `/3`;
    /// `None` like `dispatch_ms`).
    pub jobs_per_sec: Option<f64>,
    /// Per-stage timings.
    pub timing: StageTimings,
}

impl BenchArtifact {
    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when serialization fails.
    pub fn to_json_pretty(&self) -> Result<String, ResmodelError> {
        serde_json::to_string_pretty(self).map_err(|e| ResmodelError::json("bench artifact", e))
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ResmodelError::Json`] when the text is not a valid
    /// artifact.
    pub fn from_json(text: &str) -> Result<Self, ResmodelError> {
        serde_json::from_str(text).map_err(|e| ResmodelError::json("bench artifact", e))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// A grid small enough for unit tests: two families, no fitting.
    fn tiny_spec() -> SweepSpec {
        let mut spec = SweepSpec::preset("replicates").unwrap();
        spec.scenarios.truncate(2);
        spec.fleet_sizes = vec![400];
        spec.replicates = vec![1, 2];
        spec
    }

    #[test]
    fn presets_resolve_and_validate() {
        for name in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(name).expect(name);
            assert_eq!(spec.name, name);
            spec.validate().unwrap();
            assert!(spec.job_count() >= 3, "{name} has a trivial grid");
        }
        assert!(SweepSpec::preset("no-such").is_none());
        // The smoke and families presets cover all four scenario
        // families — the acceptance bar for the CI artifact.
        for name in ["smoke", "families"] {
            let spec = SweepSpec::preset(name).unwrap();
            let families: Vec<&str> = spec.scenarios.iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                families,
                ["steady-state", "flash-crowd", "gpu-wave", "market-shift"]
            );
        }
    }

    #[test]
    fn expansion_is_deterministic_and_substreamed() {
        let spec = tiny_spec();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.job_count());
        // Every job gets a distinct derived seed and a distinct label.
        let mut seeds: Vec<u64> = a.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), a.len());
        let mut labels: Vec<&str> = a.iter().map(|j| j.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), a.len());
    }

    #[test]
    fn spec_round_trips_through_json() {
        for name in SweepSpec::PRESETS {
            let spec = SweepSpec::preset(name).unwrap();
            let back = SweepSpec::from_json(&spec.to_json_pretty().unwrap()).unwrap();
            assert_eq!(spec, back);
        }
    }

    #[test]
    fn invalid_grids_are_rejected() {
        let mut spec = tiny_spec();
        spec.scenarios.clear();
        assert!(spec.validate().is_err());
        let mut spec = tiny_spec();
        spec.fleet_sizes = vec![0];
        assert!(spec.validate().is_err());
        let mut spec = tiny_spec();
        spec.replicates.clear();
        assert!(spec.validate().is_err());
        let mut spec = tiny_spec();
        spec.validate_dates = vec![SimDate::from_year(2010.0)];
        assert!(spec.validate().is_err(), "validate without fit axis");
        let mut spec = tiny_spec();
        spec.scenarios[0].shard_count = 0;
        assert!(spec.validate().is_err());
        // Duplicate axis entries would produce ambiguous job labels.
        let mut spec = tiny_spec();
        spec.replicates = vec![1, 1];
        assert!(spec.validate().is_err(), "duplicate replicates");
        let mut spec = tiny_spec();
        spec.fleet_sizes = vec![400, 400];
        assert!(spec.validate().is_err(), "duplicate fleet sizes");
        let mut spec = tiny_spec();
        let first_name = spec.scenarios[0].name.clone();
        spec.scenarios[1].name = first_name;
        assert!(spec.validate().is_err(), "duplicate scenario names");
    }

    #[test]
    fn tiny_sweep_runs_and_reports() {
        let spec = tiny_spec();
        let report = spec.run().unwrap();
        assert_eq!(report.jobs.len(), spec.job_count());
        assert_eq!(report.totals.jobs, report.jobs.len());
        assert_eq!(report.totals.total_hosts, 4 * 400);
        assert!(report.totals.wall_ms > 0.0);
        assert!(report.totals.hosts_per_sec > 0.0);
        assert!(report.totals.peak_job_wall_ms > 0.0);
        for j in &report.jobs {
            assert_eq!(j.world.raw_hosts, 400);
            assert!(j.hosts_per_sec > 0.0);
            assert!(j.lifetime.is_none(), "no fit axis, no lifetime");
        }
        // Comparison rows: one per family, aggregating both replicates.
        assert_eq!(report.comparisons.len(), 2);
        for c in &report.comparisons {
            assert_eq!(c.jobs, 2);
            assert_eq!(c.total_hosts, 800);
        }
    }

    #[test]
    fn failing_job_is_named() {
        let mut spec = tiny_spec();
        spec.scenarios[1].snapshot_interval_days = -1.0;
        // Invalid scenario caught by validate()...
        assert!(spec.validate().is_err());
        // ...and a job-level failure (degenerate fit input) is wrapped
        // with the job label: force it via an impossible fit window.
        let mut spec = tiny_spec();
        spec.fits = vec![FitConfig::yearly(1990, 1994)];
        let err = spec.run().unwrap_err();
        match err {
            ResmodelError::Sweep { job, .. } => {
                assert!(job.contains("steady-state"), "first failing job: {job}")
            }
            other => panic!("expected a sweep error, got {other}"),
        }
    }

    #[test]
    fn report_round_trips_and_zeroes_timing() {
        let report = tiny_spec().run().unwrap();
        let mut a = report.clone();
        let mut b = report;
        a.zero_timings();
        b.zero_timings();
        let json = a.to_json_pretty().unwrap();
        assert_eq!(json, b.to_json_pretty().unwrap());
        assert_eq!(a.totals.threads, 0, "zeroed reports hide the machine");
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn bench_artifact_round_trips() {
        let report = tiny_spec().run().unwrap();
        let artifact = report.bench_artifact();
        assert_eq!(artifact.schema, BENCH_SCHEMA);
        assert_eq!(artifact.jobs.len(), report.jobs.len());
        assert!(artifact.jobs.iter().all(|j| j.hosts_per_sec > 0.0));
        // Plain projection: no observability block.
        assert!(artifact.peak_rss_bytes.is_none());
        assert!(artifact.metrics.is_none());
        let back = BenchArtifact::from_json(&artifact.to_json_pretty().unwrap()).unwrap();
        assert_eq!(artifact, back);
    }

    #[test]
    fn observed_sweep_is_identical_and_snapshots_metrics() {
        let spec = tiny_spec();
        let mut plain = spec.run().unwrap();
        let (mut observed, metrics) = spec.run_observed().unwrap();
        plain.zero_timings();
        observed.zero_timings();
        assert_eq!(
            plain.to_json_pretty().unwrap(),
            observed.to_json_pretty().unwrap(),
            "observation never perturbs the report"
        );
        assert_eq!(metrics.counter("sweep.runs"), Some(1));
        assert_eq!(metrics.counter("sweep.jobs"), Some(4));
        assert_eq!(metrics.counter("pipeline.runs"), Some(4));
        assert!(metrics.counter("popsim.events").unwrap_or(0) > 0);
        assert!(metrics.gauge("sweep.hosts_per_sec").unwrap_or(0.0) > 0.0);
        // The /4 artifact carries the observability block.
        let artifact = observed.bench_artifact_with_metrics(&metrics);
        assert_eq!(artifact.schema, BENCH_SCHEMA);
        let m = artifact.metrics.as_ref().expect("metrics attached");
        assert!(m.histogram("popsim.queue_depth_peak").is_some());
        assert_eq!(artifact.peak_rss_bytes, metrics.peak_rss_bytes);
        if cfg!(target_os = "linux") {
            assert!(artifact.peak_rss_bytes.expect("RSS probe on Linux") > 0);
        }
        let back = BenchArtifact::from_json(&artifact.to_json_pretty().unwrap()).unwrap();
        assert_eq!(artifact, back);
        // No serving probe ran, so the /5 svc block stays empty.
        assert!(artifact.svc.is_none());
    }

    #[test]
    fn svc_summary_condenses_cache_metrics() {
        let obs = Collector::new();
        obs.add("svc.cache.misses", 1);
        obs.add("svc.cache.hits", 3);
        obs.record("svc.run_pipeline.request_ms", 12.0);
        obs.record("svc.run_pipeline.request_ms", 0.5);
        obs.record("sched.queue_depth", 4.0);
        let metrics = obs.snapshot();
        let svc = SvcSummary::from_metrics(&metrics).expect("probe counters present");
        assert_eq!(svc.requests, 4);
        assert_eq!(svc.hits, 3);
        assert_eq!(svc.misses, 1);
        assert!((svc.hit_rate - 0.75).abs() < 1e-12);
        // Only the per-endpoint latency series, not domain histograms.
        assert_eq!(svc.latency.len(), 1);
        assert_eq!(svc.latency[0].name, "svc.run_pipeline.request_ms");
        assert_eq!(svc.latency[0].count, 2);
        // A run with no probe yields no block.
        assert!(SvcSummary::from_metrics(&Collector::new().snapshot()).is_none());
    }

    /// A dispatch grid small enough for unit tests: one scenario, one
    /// workload, two policies.
    fn tiny_dispatch_spec() -> SweepSpec {
        let mut spec = SweepSpec::preset("dispatch").unwrap();
        spec.fleet_sizes = vec![500];
        let d = spec.dispatch.as_mut().unwrap();
        d.workloads.truncate(1);
        d.workloads[0] = d.workloads[0].clone().with_job_budget(400);
        d.workloads[0].shard_count = 8;
        d.policies = vec![DispatchPolicy::Random, DispatchPolicy::EarliestFinish];
        spec
    }

    #[test]
    fn dispatch_axis_multiplies_the_grid_and_labels_points() {
        let spec = tiny_dispatch_spec();
        spec.validate().unwrap();
        assert_eq!(spec.job_count(), 2);
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 2);
        assert!(
            jobs[0].label.ends_with("/mixed/random"),
            "{}",
            jobs[0].label
        );
        assert!(
            jobs[1].label.ends_with("/mixed/earliest-finish"),
            "{}",
            jobs[1].label
        );
        // The workload seed is the job's derived substream, like the
        // scenario seed.
        for j in &jobs {
            let d = j.spec.dispatch.as_ref().unwrap();
            assert_eq!(d.workload.seed, j.seed);
        }
        // Policy rows of one grid cell share fleet and job stream —
        // the comparison isolates the placement decision.
        assert_eq!(jobs[0].seed, jobs[1].seed);
        assert_eq!(jobs[0].spec.source, jobs[1].spec.source);
        assert_eq!(
            jobs[0].spec.dispatch.as_ref().unwrap().workload,
            jobs[1].spec.dispatch.as_ref().unwrap().workload
        );
    }

    #[test]
    fn dispatch_cells_share_seeds_but_cells_differ() {
        // Two replicates × two policies: seeds repeat within a cell,
        // differ across cells.
        let mut spec = tiny_dispatch_spec();
        spec.replicates = vec![1, 2];
        let jobs = spec.expand();
        assert_eq!(jobs.len(), 4);
        assert_eq!(jobs[0].seed, jobs[1].seed, "cell 1 shares its seed");
        assert_eq!(jobs[2].seed, jobs[3].seed, "cell 2 shares its seed");
        assert_ne!(jobs[0].seed, jobs[2].seed, "cells differ");
    }

    #[test]
    fn dispatch_sweep_runs_and_reports_summaries() {
        let report = tiny_dispatch_spec().run().unwrap();
        assert_eq!(report.jobs.len(), 2);
        for j in &report.jobs {
            let d = j.dispatch.as_ref().expect("dispatch summary");
            assert!(d.jobs > 0);
            assert!(d.completed > 0);
            assert!(d.jobs_per_sec > 0.0);
            assert_eq!(d.workload, "mixed");
            // The explicit job-level copy matches the summary's.
            assert_eq!(j.jobs_per_sec, Some(d.jobs_per_sec));
        }
        // The artifact carries the /3 dispatch fields on those rows.
        let artifact = report.bench_artifact();
        assert!(artifact
            .jobs
            .iter()
            .all(|j| j.dispatch_ms.is_some() && j.jobs_per_sec.is_some()));
        // And zeroing hides the wall-clock dispatch figures.
        let mut zeroed = report;
        zeroed.zero_timings();
        for j in &zeroed.jobs {
            let d = j.dispatch.as_ref().unwrap();
            assert_eq!(d.dispatch_ms, 0.0);
            assert_eq!(d.jobs_per_sec, 0.0);
            assert!(d.jobs_per_sim_hour > 0.0, "deterministic rate survives");
        }
    }

    #[test]
    fn invalid_dispatch_axes_are_rejected() {
        let mut spec = tiny_dispatch_spec();
        spec.dispatch.as_mut().unwrap().policies.clear();
        assert!(spec.validate().is_err());
        let mut spec = tiny_dispatch_spec();
        spec.dispatch.as_mut().unwrap().workloads.clear();
        assert!(spec.validate().is_err());
        let mut spec = tiny_dispatch_spec();
        spec.dispatch.as_mut().unwrap().policies = vec![DispatchPolicy::Random; 2];
        assert!(spec.validate().is_err(), "duplicate policies");
        let mut spec = tiny_dispatch_spec();
        spec.dispatch.as_mut().unwrap().workloads[0]
            .families
            .clear();
        assert!(spec.validate().is_err(), "invalid workload");
        // Specs without the axis still parse (missing field → None).
        let json = SweepSpec::preset("smoke")
            .unwrap()
            .to_json_pretty()
            .unwrap();
        let back = SweepSpec::from_json(&json).unwrap();
        assert!(back.dispatch.is_none());
    }
}
