//! # resmodel
//!
//! A complete Rust reproduction of *"Correlated Resource Models of
//! Internet End Hosts"* (Eric M. Heien, Derrick Kondo, David P.
//! Anderson — ICDCS 2011, arXiv:1011.5568).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`stats`] | distributions, MLE fitting, KS tests, correlation, Cholesky, regression |
//! | [`trace`] | host records, trace store, activity queries, sanitization, market tables |
//! | [`boinc`] | synthetic volunteer-computing world + BOINC measurement loop |
//! | [`core`] | the paper's correlated generative host model, fitting, prediction, validation |
//! | [`baselines`] | uncorrelated-normal and Kee Grid comparator models |
//! | [`allocsim`] | Cobb–Douglas utility allocation simulation (Fig 15) |
//!
//! ## Quick start
//!
//! ```
//! use resmodel::prelude::*;
//!
//! // Generate 1000 realistic Internet end hosts for September 2010.
//! let model = HostModel::paper();
//! let hosts = model.generate_population(SimDate::from_year(2010.67), 1000, 42);
//! let mean_cores =
//!     hosts.iter().map(|h| h.cores as f64).sum::<f64>() / hosts.len() as f64;
//! assert!(mean_cores > 2.0 && mean_cores < 3.0);
//! ```

pub use resmodel_allocsim as allocsim;
pub use resmodel_avail as avail;
pub use resmodel_baselines as baselines;
pub use resmodel_boinc as boinc;
pub use resmodel_core as core;
pub use resmodel_stats as stats;
pub use resmodel_trace as trace;

/// The most commonly used items, for `use resmodel::prelude::*`.
pub mod prelude {
    pub use resmodel_allocsim::{
        allocate_round_robin, run_utility_experiment, AppProfile, UtilityExperimentConfig,
    };
    pub use resmodel_avail::{AvailabilityModel, HostClass, Schedule};
    pub use resmodel_baselines::{GridModel, NormalModel};
    pub use resmodel_boinc::{simulate, WorldParams};
    pub use resmodel_core::fit::{fit_host_model, FitConfig};
    pub use resmodel_core::{GeneratedHost, HostGenerator, HostModel};
    pub use resmodel_stats::{Distribution, DistributionFamily, Matrix, StatsError};
    pub use resmodel_trace::{HostRecord, HostView, ResourceSnapshot, SimDate, Trace};
}
