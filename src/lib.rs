//! # resmodel
//!
//! A complete Rust reproduction of *"Correlated Resource Models of
//! Internet End Hosts"* (Eric M. Heien, Derrick Kondo, David P.
//! Anderson — ICDCS 2011, arXiv:1011.5568).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`stats`] | distributions, MLE fitting, KS tests, correlation, Cholesky, regression |
//! | [`trace`] | host records, row + columnar trace stores (lossless conversion, zero-copy column views), activity queries, sanitization, market tables |
//! | [`boinc`] | synthetic volunteer-computing world + BOINC measurement loop (arrivals driven by the popsim timeline, host lives simulated in parallel) |
//! | [`core`] | the paper's correlated generative host model, fitting, prediction, validation |
//! | [`baselines`] | uncorrelated-normal and Kee Grid comparator models |
//! | [`avail`] | ON/OFF availability schedules and availability-discounted utility |
//! | [`allocsim`] | Cobb–Douglas utility allocation simulation (Fig 15) |
//! | [`popsim`] | deterministic, data-parallel population dynamics engine: scenario-driven arrivals, lifetimes, hardware refreshes and streaming fleet statistics |
//! | [`sched`] | event-driven workload dispatch over the modeled fleet: job families with arrival processes, deadlines and replication, placed by pluggable policies with progress only while hosts are ON |
//! | [`obs`] | zero-dependency observability: hierarchical spans, counters, gauges, order-invariant log-scale histograms, peak-RSS, JSONL event logs |
//! | [`pipeline`] | the typed end-to-end API: source → sanitize → fit → validate → predict → dispatch as one serializable [`Pipeline`](pipeline::Pipeline) |
//! | [`sweep`] | the batch layer: a [`SweepSpec`](sweep::SweepSpec) grid of pipelines (scenarios × fleet sizes × fits × seeds) run in parallel into a typed [`SweepReport`](sweep::SweepReport) and the CI-tracked `BENCH_sweep.json` artifact |
//!
//! One workspace crate sits *above* this facade and is therefore not
//! re-exported: `resmodel-svc` (the `resmodeld` query service) serves
//! pipelines and sweeps from a content-addressed cache over a
//! length-prefixed JSON protocol; depend on it directly to embed the
//! server or its typed client.
//!
//! Every fallible API returns [`ResmodelError`], so stages compose
//! with `?` across crate boundaries.
//!
//! ## Quick start: the end-to-end pipeline
//!
//! The paper's whole method — measure, sanitize, fit, validate,
//! predict — is one builder chain producing a serializable report:
//!
//! ```
//! use resmodel::prelude::*;
//!
//! let report = Pipeline::from_scenario(Scenario::steady_state(42))
//!     .max_hosts(12_000)          // keep the doc test fast
//!     .sanitize_default()         // the paper's Section V-B thresholds
//!     .fit(FitConfig::yearly(2007, 2010)) // the scenario ramps up from 2006
//!     .validate(vec![SimDate::from_year(2010.5)])
//!     .predict(vec![SimDate::from_year(2014.0)])
//!     .run()?;
//!
//! // Fitted ratio laws (Table IV), validation tables (Fig 12),
//! // forecasts (Figs 13/14) — all typed, all serializable.
//! let fit = report.fit.as_ref().unwrap();
//! assert_eq!(fit.report.core_laws.len(), 3);
//! assert!(report.to_json_pretty()?.contains("core_laws"));
//!
//! // The spec alone is also an artifact: it round-trips through JSON.
//! let spec_json = report.spec.to_json_pretty()?;
//! let respec = resmodel::pipeline::PipelineSpec::from_json(&spec_json)?;
//! assert_eq!(report.spec, respec);
//! # Ok::<(), resmodel::ResmodelError>(())
//! ```
//!
//! ## Generating hosts directly
//!
//! ```
//! use resmodel::prelude::*;
//!
//! // Generate 1000 realistic Internet end hosts for September 2010.
//! let model = HostModel::paper();
//! let hosts = model.generate_population(SimDate::from_year(2010.67), 1000, 42);
//! let mean_cores =
//!     hosts.iter().map(|h| h.cores as f64).sum::<f64>() / hosts.len() as f64;
//! assert!(mean_cores > 2.0 && mean_cores < 3.0);
//! ```
//!
//! ## Population dynamics
//!
//! ```
//! use resmodel::prelude::*;
//!
//! // Evolve a small fleet through 2006–2011 under a flash crowd.
//! let mut scenario = Scenario::flash_crowd(42);
//! scenario.max_hosts = 2_000;
//! let report = resmodel::popsim::engine::run(&scenario)?;
//! assert_eq!(report.fleet.len(), 2_000);
//! assert!(!report.series.is_empty());
//! # Ok::<(), resmodel::ResmodelError>(())
//! ```

#![warn(clippy::unwrap_used)]

pub use resmodel_allocsim as allocsim;
pub use resmodel_avail as avail;
pub use resmodel_baselines as baselines;
pub use resmodel_boinc as boinc;
pub use resmodel_core as core;
pub use resmodel_error as error;
pub use resmodel_obs as obs;
pub use resmodel_popsim as popsim;
pub use resmodel_sched as sched;
pub use resmodel_stats as stats;
pub use resmodel_trace as trace;

pub mod pipeline;
pub mod sweep;

pub use resmodel_error::{ArgError, ResmodelError};

/// The most commonly used items, for `use resmodel::prelude::*`.
pub mod prelude {
    pub use crate::pipeline::{Pipeline, PipelineReport, PipelineSpec};
    pub use crate::sweep::{BenchArtifact, SweepReport, SweepSpec};
    pub use resmodel_allocsim::{
        allocate_round_robin, run_utility_experiment, AppProfile, UtilityExperimentConfig,
    };
    pub use resmodel_avail::{AvailabilityModel, HostClass, Schedule};
    pub use resmodel_baselines::{GridModel, NormalModel};
    pub use resmodel_boinc::{simulate, WorldParams};
    pub use resmodel_core::fit::{fit_host_model, FitConfig};
    pub use resmodel_core::{GeneratedHost, HostGenerator, HostModel};
    pub use resmodel_error::ResmodelError;
    pub use resmodel_obs::{Collector, MetricsReport};
    pub use resmodel_popsim::{EngineReport, Fleet, Scenario, SimHost, SnapshotStats, TimeSeries};
    pub use resmodel_sched::{
        dispatch, AppKind, DispatchPolicy, DispatchReport, JobFamily, WorkloadSpec,
    };
    pub use resmodel_stats::{Distribution, DistributionFamily, Matrix, StatsError};
    pub use resmodel_trace::{
        ColumnarTrace, HostRecord, HostView, ResourceSnapshot, SimDate, Trace,
    };
}
