//! Property tests for `Histogram::quantile`: estimates are monotone
//! non-decreasing in `q`, invariant under shard merge order, bounded
//! by `[min, max]`, and agree with the sparse-bucket recomputation in
//! `HistogramSummary::quantile`. Together with the bucket-merge
//! property test this is what makes `p50`/`p90`/`p99`/`p999` safe to
//! publish in deterministic artifacts.

#![allow(clippy::unwrap_used)]

use proptest::collection::vec;
use proptest::prelude::*;
use resmodel_obs::Histogram;

/// Deterministic in-place Fisher–Yates driven by a splitmix-style
/// step (same helper as the merge-order suite).
fn shuffle(order: &mut [usize], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

const QS: [f64; 9] = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_are_monotone_in_q_and_bounded(
        values in vec(-10.0f64..1e9, 1..200),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        let mut prev = f64::NEG_INFINITY;
        for q in QS {
            let est = h.quantile(q).unwrap();
            prop_assert!(est >= prev, "q={} fell from {} to {}", q, prev, est);
            prop_assert!((min..=max).contains(&est), "q={} -> {} outside [{}, {}]", q, est, min, max);
            prev = est;
        }
    }

    #[test]
    fn quantiles_are_merge_order_invariant(
        shards in vec(vec(1e-4f64..1e7, 0..50), 2..8),
        seed in 0u64..u64::MAX,
    ) {
        let parts: Vec<Histogram> = shards
            .iter()
            .map(|values| {
                let mut h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h
            })
            .collect();

        let forward: Vec<usize> = (0..parts.len()).collect();
        let mut shuffled = forward.clone();
        shuffle(&mut shuffled, seed);

        let merge = |order: &[usize]| {
            let mut acc = Histogram::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let a = merge(&forward);
        let b = merge(&shuffled);
        for q in QS {
            let qa = a.quantile(q).map(f64::to_bits);
            let qb = b.quantile(q).map(f64::to_bits);
            prop_assert_eq!(qa, qb, "q = {}", q);
        }
    }

    #[test]
    fn summary_quantiles_match_the_full_histogram(
        values in vec(1e-3f64..1e8, 1..150),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let s = h.summary("prop").unwrap();
        for q in QS {
            prop_assert_eq!(
                s.quantile(q).map(f64::to_bits),
                h.quantile(q).map(f64::to_bits),
                "q = {}", q
            );
        }
        prop_assert_eq!(s.p999, h.quantile(0.999));
    }
}
