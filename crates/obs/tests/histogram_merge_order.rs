//! The histogram merge contract, property-tested: folding any
//! partition of observations together **in any order** yields
//! bitwise-identical bucket vectors, min/max, and quantiles. This is
//! what lets per-thread and per-shard partials aggregate out-of-band
//! without leaking rayon scheduling into the `MetricsReport`.

#![allow(clippy::unwrap_used)]

use proptest::collection::vec;
use proptest::prelude::*;
use resmodel_obs::Histogram;

/// Deterministic in-place Fisher–Yates driven by a splitmix-style
/// step, so the shuffled merge order is a pure function of `seed`.
fn shuffle(order: &mut [usize], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..order.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
}

fn merge_in_order(parts: &[Histogram], order: &[usize]) -> Histogram {
    let mut acc = Histogram::new();
    for &i in order {
        acc.merge(&parts[i]);
    }
    acc
}

/// Bitwise fingerprint of everything a histogram reports.
fn fingerprint(h: &Histogram) -> (u64, Vec<u64>, [u64; 5]) {
    let quantile_bits = |q: f64| h.quantile(q).unwrap_or(f64::NAN).to_bits();
    (
        h.count(),
        h.buckets().to_vec(),
        [
            h.min().unwrap_or(f64::NAN).to_bits(),
            h.max().unwrap_or(f64::NAN).to_bits(),
            quantile_bits(0.50),
            quantile_bits(0.90),
            quantile_bits(0.99),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn shard_merge_is_bitwise_order_invariant(
        shards in vec(vec(-1e-3f64..1e7, 0..40), 1..9),
        seed in 0u64..u64::MAX,
    ) {
        let parts: Vec<Histogram> = shards
            .iter()
            .map(|values| {
                let mut h = Histogram::new();
                for &v in values {
                    h.record(v);
                }
                h
            })
            .collect();

        let forward: Vec<usize> = (0..parts.len()).collect();
        let mut shuffled = forward.clone();
        shuffle(&mut shuffled, seed);
        let mut reversed = forward.clone();
        reversed.reverse();

        let a = merge_in_order(&parts, &forward);
        let b = merge_in_order(&parts, &shuffled);
        let c = merge_in_order(&parts, &reversed);
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(fingerprint(&a), fingerprint(&c));

        // And merging partials equals recording the flattened stream
        // one value at a time.
        let mut flat = Histogram::new();
        for values in &shards {
            for &v in values {
                flat.record(v);
            }
        }
        prop_assert_eq!(fingerprint(&a), fingerprint(&flat));
    }
}
