//! Log-scale histogram with *fixed* bucket boundaries.
//!
//! Buckets are derived directly from the IEEE-754 bit pattern of the
//! recorded value — four logarithmically spaced sub-buckets per octave
//! (a resolution of 2^(1/4) ≈ 19%) spanning 2⁻³² up to 2³², plus an
//! underflow and an overflow bucket at the ends. Because the bucket of
//! a value is a pure integer function of its bits, and the state is
//! nothing but `u64` bucket counts plus an order-invariant
//! `count`/`min`/`max` triple, merging histograms is associative *and*
//! commutative down to the last bit: per-thread or per-shard partials
//! combined in any order produce the identical result. There is
//! deliberately no running `f64` sum — float addition is
//! non-associative and would leak merge order into the report.

use serde::{Deserialize, Serialize};

/// Total number of buckets, including the underflow bucket 0 and the
/// overflow bucket `BUCKET_COUNT - 1`.
pub const BUCKET_COUNT: usize = 256;

/// Bucket index holding the value `1.0` (the first sub-bucket of the
/// `[1, 2)` octave); 128 octave-quarters of range on either side.
const CENTER: i64 = 128;

/// `bits >> RAW_SHIFT` keeps the biased exponent plus the top two
/// mantissa bits: exactly four log-spaced sub-buckets per octave.
const RAW_SHIFT: u32 = 50;

/// The shifted bit pattern of `1.0` (biased exponent 1023, mantissa 0).
const ONE_RAW: i64 = 1023 << 2;

/// Map a value to its bucket. Non-finite values have no bucket;
/// zeros, negatives, and anything below 2⁻³² land in the underflow
/// bucket 0, anything at or above ~2³² in the overflow bucket.
#[must_use]
pub fn bucket_index(v: f64) -> Option<usize> {
    if !v.is_finite() {
        return None;
    }
    if v <= 0.0 {
        return Some(0);
    }
    let raw = (v.to_bits() >> RAW_SHIFT) as i64;
    let idx = raw - ONE_RAW + CENTER;
    Some(idx.clamp(0, BUCKET_COUNT as i64 - 1) as usize)
}

/// Inclusive lower bound of a bucket: 0.0 for the underflow bucket,
/// otherwise the smallest positive value that maps to it.
#[must_use]
pub fn bucket_lower_bound(index: usize) -> f64 {
    if index == 0 {
        return 0.0;
    }
    let raw = (index as i64 - CENTER + ONE_RAW) as u64;
    f64::from_bits(raw << RAW_SHIFT)
}

/// A mergeable log-scale histogram (see the module docs for the
/// bit-exact merge contract).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    count: u64,
    min: f64,
    max: f64,
    buckets: [u64; BUCKET_COUNT],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; BUCKET_COUNT],
        }
    }

    /// Record one observation. Non-finite values are ignored — the
    /// histogram only ever holds finite statistics.
    pub fn record(&mut self, v: f64) {
        let Some(idx) = bucket_index(v) else { return };
        self.buckets[idx] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Record an integer observation (queue depths, candidate counts).
    pub fn record_u64(&mut self, v: u64) {
        // u64 → f64 rounds above 2^53, far past the overflow bucket;
        // the bucket, min, and max remain exact for realistic counts.
        #[allow(clippy::cast_precision_loss)]
        self.record(v as f64);
    }

    /// Fold another histogram into this one. Bitwise order-invariant:
    /// `a.merge(b)` and `b.merge(a)` yield equal state.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; BUCKET_COUNT] {
        &self.buckets
    }

    /// Quantile estimate: the lower bound of the bucket containing the
    /// `q`-th observation, clamped into `[min, max]`. `None` when
    /// empty. Resolution is one sub-bucket (≈19%), which is the point:
    /// the answer depends only on bucket counts, never on insertion or
    /// merge order.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(bucket_lower_bound(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Condense into the serializable summary carried by
    /// [`MetricsReport`](crate::MetricsReport). `None` when empty —
    /// empty histograms have no finite min/max and are skipped.
    #[must_use]
    pub fn summary(&self, name: &str) -> Option<HistogramSummary> {
        if self.count == 0 {
            return None;
        }
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i as u32, n))
            .collect();
        Some(HistogramSummary {
            name: name.to_owned(),
            count: self.count,
            min: self.min,
            max: self.max,
            p50: self.quantile(0.50).unwrap_or(self.min),
            p90: self.quantile(0.90).unwrap_or(self.max),
            p99: self.quantile(0.99).unwrap_or(self.max),
            p999: self.quantile(0.999),
            buckets,
        })
    }
}

/// Serialized form of one named histogram: quantiles plus the sparse
/// bucket vector (`[bucket index, count]` pairs for non-empty buckets;
/// boundaries are fixed, see [`bucket_lower_bound`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Metric name, e.g. `sched.placement_latency_hours.earliest-finish`.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Median estimate (bucket lower bound).
    pub p50: f64,
    /// 90th-percentile estimate.
    pub p90: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
    /// 99.9th-percentile estimate. `None` in artifacts written before
    /// schema `/8` — the field is optional so legacy fixtures keep
    /// deserializing.
    pub p999: Option<f64>,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSummary {
    /// Quantile estimate recomputed from the sparse bucket vector —
    /// the same walk as [`Histogram::quantile`], so a summary parsed
    /// back from an artifact answers arbitrary quantiles (e.g. an SLO
    /// target the producing binary did not precompute). `None` when
    /// the summary carries no observations.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(bucket_lower_bound(idx as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn bucket_of_one_is_center() {
        assert_eq!(bucket_index(1.0), Some(CENTER as usize));
        assert_eq!(bucket_lower_bound(CENTER as usize), 1.0);
    }

    #[test]
    fn buckets_are_monotone_and_consistent() {
        // Every bucket's lower bound maps back into that bucket, and
        // boundaries are strictly increasing.
        for i in 1..BUCKET_COUNT - 1 {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), Some(i), "bucket {i} lower bound {lo}");
            assert!(bucket_lower_bound(i + 1) > lo);
        }
        // Values just below a boundary fall in the previous bucket.
        let b = bucket_lower_bound(130);
        assert_eq!(bucket_index(b * (1.0 - 1e-12)), Some(129));
    }

    #[test]
    fn underflow_and_overflow_are_clamped() {
        assert_eq!(bucket_index(0.0), Some(0));
        assert_eq!(bucket_index(-3.5), Some(0));
        assert_eq!(bucket_index(1e-300), Some(0));
        assert_eq!(bucket_index(1e300), Some(BUCKET_COUNT - 1));
        assert_eq!(bucket_index(f64::NAN), None);
        assert_eq!(bucket_index(f64::INFINITY), None);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record_u64(i);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        // Sub-bucket resolution is 2^(1/4): estimates sit within one
        // bucket of the true quantile.
        assert!((420.0..=500.0).contains(&p50), "p50 = {p50}");
        assert!((840.0..=990.0).contains(&p99), "p99 = {p99}");
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(1000.0));
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn merge_matches_single_pass() {
        let mut all = Histogram::new();
        let mut parts = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..300u64 {
            let v = (i as f64).mul_add(0.37, 0.001);
            all.record(v);
            parts[(i % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), None);
        }
        assert!(h.summary("empty").is_none());
    }

    #[test]
    fn quantile_with_single_bucket_returns_that_bucket() {
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.record(3.0); // all observations share one bucket
        }
        // min == max == 3.0, so the clamp pins every estimate exactly.
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), Some(3.0), "q = {q}");
        }
        let s = h.summary("single").unwrap();
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p999, Some(3.0));
    }

    #[test]
    fn quantile_with_all_mass_in_overflow_bucket() {
        let mut h = Histogram::new();
        h.record(1e300);
        h.record(5e300);
        assert_eq!(bucket_index(1e300), Some(BUCKET_COUNT - 1));
        // Every quantile clamps into [min, max] even though the
        // overflow bucket's lower bound is far below both.
        let p50 = h.quantile(0.5).unwrap();
        let p999 = h.quantile(0.999).unwrap();
        assert!((1e300..=5e300).contains(&p50), "p50 = {p50}");
        assert!((1e300..=5e300).contains(&p999), "p999 = {p999}");
        // Underflow mirror: everything at or below zero.
        let mut u = Histogram::new();
        u.record(0.0);
        u.record(-2.0);
        assert_eq!(u.quantile(0.99), Some(0.0));
    }

    #[test]
    fn summary_quantile_matches_histogram_quantile() {
        let mut h = Histogram::new();
        for i in 1..=500u64 {
            h.record_u64(i * 3);
        }
        let s = h.summary("x").unwrap();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), h.quantile(q), "q = {q}");
        }
        assert_eq!(s.p999, h.quantile(0.999));
        let empty = HistogramSummary {
            name: "none".to_owned(),
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            p999: None,
            buckets: Vec::new(),
        };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn non_finite_records_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert!(h.is_empty());
        assert!(h.summary("x").is_none());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let mut h = Histogram::new();
        for v in [0.0, 0.5, 2.0, 65.0, 4096.0] {
            h.record(v);
        }
        let s = h.summary("demo").unwrap();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: HistogramSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
