//! The serializable metrics snapshot, and the uniform wall-clock
//! zeroing helper the deterministic report types share.

use crate::histogram::HistogramSummary;
use serde::{Deserialize, Serialize, Value};

/// Aggregated span statistics for one path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanReport {
    /// Slash-joined span path, e.g. `pipeline/build/engine`.
    pub path: String,
    /// Number of completed spans at this path.
    pub calls: u64,
    /// Total wall-clock time across calls.
    pub total_ms: f64,
    /// Longest single call.
    pub max_ms: f64,
}

/// A point-in-time snapshot of everything a
/// [`Collector`](crate::Collector) has accumulated.
///
/// Deliberately a *sibling* of the deterministic reports
/// (`PipelineReport`, `SweepReport`, `DispatchReport`), never embedded
/// in them: counters and histograms here are thread-count invariant,
/// but spans and gauges carry wall-clock time, and mixing the two
/// would break the byte-identical golden-report contract.
///
/// All sections are sorted by name, so two snapshots of collectors
/// that accumulated the same deterministic metrics serialize
/// identically (after [`zero_wall_clock`] strips the wall-clock
/// fields).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MetricsReport {
    /// Monotonic event counts (deterministic), sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-written point values (wall-clock rates live here), sorted
    /// by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries (deterministic domain quantities only),
    /// sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Wall-clock span timings, sorted by path.
    pub spans: Vec<SpanReport>,
    /// Peak resident set size via `/proc/self/status` `VmHWM`;
    /// `None` off Linux.
    pub peak_rss_bytes: Option<u64>,
}

impl MetricsReport {
    /// Look up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a histogram summary by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The deterministic subset — counters plus domain-quantity
    /// histograms — used by thread-invariance tests. Spans, gauges,
    /// and RSS are wall-clock/machine facts and excluded by
    /// construction, as is any counter or histogram whose *name* is a
    /// wall-clock key (e.g. the per-endpoint `svc.*.request_ms`
    /// latency series, or the dispatch claim queue's `sched.steals`
    /// race counter).
    #[must_use]
    pub fn deterministic_fingerprint(&self) -> (Vec<(String, u64)>, Vec<HistogramSummary>) {
        (
            self.counters
                .iter()
                .filter(|(n, _)| !is_wall_clock_key(n))
                .cloned()
                .collect(),
            self.histograms
                .iter()
                .filter(|h| !is_wall_clock_key(&h.name))
                .cloned()
                .collect(),
        )
    }

    /// Serialize as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns the serializer's error when the snapshot cannot be
    /// rendered (never for values produced by a collector).
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse from JSON.
    ///
    /// # Errors
    ///
    /// Returns the deserializer's error when the text is not a valid
    /// snapshot.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// True for map keys that carry wall-clock (or machine-dependent)
/// measurements: `*_ms`, `*_per_sec`, the thread-pool width
/// `threads`, and work-stealing `steals` counts (how a claim queue
/// was raced is a scheduling accident of the machine, not a model
/// fact). Deterministic rates use other units on purpose (e.g.
/// `jobs_per_sim_hour`).
#[must_use]
pub fn is_wall_clock_key(key: &str) -> bool {
    key.ends_with("_ms")
        || key.ends_with("_per_sec")
        || key == "threads"
        || key == "steals"
        || key.ends_with("_steals")
        || key.ends_with(".steals")
}

/// Recursively zero every wall-clock field in a serialized report
/// tree. This is the *single* definition of "strip the
/// nondeterminism" used by `zero_timings()` on every report type:
/// adding a new `*_ms` / `*_per_sec` field to any report is
/// automatically covered, with no per-struct list to maintain.
///
/// Numeric kinds are preserved (`Float` → `0.0`, integers → `0`) so
/// zeroed reports still deserialize into their original types; `null`
/// (an absent `Option`) stays `null`.
pub fn zero_wall_clock(value: &mut Value) {
    match value {
        Value::Seq(items) => items.iter_mut().for_each(zero_wall_clock),
        Value::Map(entries) => {
            for (key, inner) in entries.iter_mut() {
                if is_wall_clock_key(key) {
                    zero_leaf(inner);
                } else {
                    zero_wall_clock(inner);
                }
            }
        }
        _ => {}
    }
}

/// Zero a wall-clock leaf; containers under a wall-clock key (e.g.
/// the `stage_ms` timing block) are recursed so their members zero.
fn zero_leaf(value: &mut Value) {
    match value {
        Value::Float(f) => *f = 0.0,
        Value::Int(i) => *i = 0,
        Value::UInt(u) => *u = 0,
        Value::Seq(_) | Value::Map(_) => zero_wall_clock(value),
        Value::Null | Value::Bool(_) | Value::Str(_) => {}
    }
}

/// Walk a serialized tree and return the path of the first wall-clock
/// key holding a non-zero value, if any — the enforcement half of the
/// [`zero_wall_clock`] contract, used by tests to prove a zeroed
/// report really has no live timing fields left.
#[must_use]
pub fn find_nonzero_wall_clock(value: &Value) -> Option<String> {
    find_nonzero(value, "", false)
}

fn find_nonzero(value: &Value, path: &str, under_wall_key: bool) -> Option<String> {
    match value {
        Value::Seq(items) => items
            .iter()
            .enumerate()
            .find_map(|(i, v)| find_nonzero(v, &format!("{path}[{i}]"), under_wall_key)),
        Value::Map(entries) => entries.iter().find_map(|(k, v)| {
            let child = if path.is_empty() {
                k.clone()
            } else {
                format!("{path}.{k}")
            };
            find_nonzero(v, &child, under_wall_key || is_wall_clock_key(k))
        }),
        Value::Float(f) if under_wall_key && *f != 0.0 => Some(path.to_owned()),
        Value::Int(i) if under_wall_key && *i != 0 => Some(path.to_owned()),
        Value::UInt(u) if under_wall_key && *u != 0 => Some(path.to_owned()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use serde_json::json;

    #[test]
    fn wall_clock_keys_match_suffixes_only() {
        assert!(is_wall_clock_key("wall_ms"));
        assert!(is_wall_clock_key("hosts_per_sec"));
        assert!(is_wall_clock_key("threads"));
        assert!(!is_wall_clock_key("jobs_per_sim_hour"));
        assert!(!is_wall_clock_key("milliseconds"));
        assert!(!is_wall_clock_key("thread_count"));
    }

    #[test]
    fn zeroing_is_recursive_and_kind_preserving() {
        // The vendored json! macro takes one literal level at a time,
        // so nested objects are built with nested invocations.
        let job = json!({"hosts_per_sec": 99.0, "seed": 7u64});
        let mut v = json!({
            "wall_ms": 12.5,
            "threads": 8u32,
            "nested": json!({"stage_ms": json!({"fit_ms": 3.0}), "hosts": 10u32}),
            "jobs": json!([job]),
            "extract_ms": Value::Null,
        });
        zero_wall_clock(&mut v);
        assert_eq!(v["wall_ms"], Value::Float(0.0));
        assert_eq!(v["threads"], Value::UInt(0));
        assert_eq!(v["nested"]["stage_ms"]["fit_ms"], Value::Float(0.0));
        assert_eq!(v["nested"]["hosts"], Value::UInt(10));
        let jobs = v["jobs"].as_seq().unwrap();
        assert_eq!(jobs[0]["hosts_per_sec"], Value::Float(0.0));
        assert_eq!(jobs[0]["seed"], Value::UInt(7));
        assert_eq!(v["extract_ms"], Value::Null);
        assert_eq!(find_nonzero_wall_clock(&v), None);
    }

    #[test]
    fn finder_reports_the_leaking_path() {
        let clean = json!({"wall_ms": 0.0});
        let dirty = json!({"wall_ms": 4.0});
        let v = json!({ "a": json!({ "jobs": json!([clean, dirty]) }) });
        assert_eq!(
            find_nonzero_wall_clock(&v).as_deref(),
            Some("a.jobs[1].wall_ms")
        );
    }

    #[test]
    fn fingerprint_drops_wall_clock_histograms() {
        let mk = |name: &str| HistogramSummary {
            name: name.to_owned(),
            count: 1,
            min: 1.0,
            max: 1.0,
            p50: 1.0,
            p90: 1.0,
            p99: 1.0,
            p999: Some(1.0),
            buckets: vec![(128, 1)],
        };
        let report = MetricsReport {
            counters: vec![("svc.cache.hits".into(), 3)],
            gauges: vec![],
            histograms: vec![mk("sched.queue_depth"), mk("svc.run_pipeline.request_ms")],
            spans: vec![],
            peak_rss_bytes: None,
        };
        let (counters, histograms) = report.deterministic_fingerprint();
        assert_eq!(counters, report.counters);
        assert_eq!(histograms.len(), 1);
        assert_eq!(histograms[0].name, "sched.queue_depth");
    }

    #[test]
    fn report_round_trips() {
        let report = MetricsReport {
            counters: vec![("popsim.events".into(), 42)],
            gauges: vec![("popsim.events_per_sec".into(), 1.5e6)],
            histograms: vec![],
            spans: vec![SpanReport {
                path: "pipeline/build".into(),
                calls: 2,
                total_ms: 8.25,
                max_ms: 5.0,
            }],
            peak_rss_bytes: Some(123 << 20),
        };
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
