//! Peak resident-set-size probe.

/// Peak RSS of the current process in bytes.
///
/// Reads the `VmHWM` (high-water mark) line of `/proc/self/status` on
/// Linux. On other platforms — or if the file is missing or malformed
/// — returns `None` rather than guessing; BENCH consumers treat the
/// field as optional.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        parse_vm_hwm(&status)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Extract `VmHWM` from `/proc/self/status` text. The kernel always
/// reports the value in kB.
#[cfg_attr(not(target_os = "linux"), allow(dead_code))]
fn parse_vm_hwm(status: &str) -> Option<u64> {
    let line = status.lines().find_map(|l| l.strip_prefix("VmHWM:"))?;
    let kb: u64 = line.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_kernel_format() {
        let status = "Name:\tswept\nVmPeak:\t  123 kB\nVmHWM:\t  204856 kB\nThreads:\t8\n";
        assert_eq!(parse_vm_hwm(status), Some(204_856 * 1024));
    }

    #[test]
    fn missing_or_malformed_yields_none() {
        assert_eq!(parse_vm_hwm("Name:\tswept\n"), None);
        assert_eq!(parse_vm_hwm("VmHWM:\tnot-a-number kB\n"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_probe_reports_nonzero() {
        let rss = peak_rss_bytes().expect("VmHWM present on Linux");
        assert!(rss > 0);
    }
}
