//! Latency service-level objectives evaluated against histogram
//! quantiles.
//!
//! An [`SloSpec`] is a list of targets — "`svc.predict.request_ms`
//! p99 ≤ 50 ms" — checked against the summaries in a
//! [`MetricsReport`]. Evaluation is pure: the
//! observed quantile comes from [`HistogramSummary::quantile`], so the
//! same report always yields the same verdict, and an artifact's SLO
//! block can be re-derived offline from its `metrics` section.
//!
//! The report's numbers are wall-clock facts (`*_ms` suffixes), so an
//! [`SloReport`] inherits the quarantine convention: it never feeds
//! `deterministic_fingerprint()`.

use crate::histogram::HistogramSummary;
use crate::report::MetricsReport;
use serde::{Deserialize, Serialize};

/// One latency target: a named histogram, a quantile, and the bound
/// the quantile must stay under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloTarget {
    /// Histogram name, e.g. `svc.run_pipeline.request_ms`.
    pub metric: String,
    /// Quantile to check, in `[0, 1]` (0.99 = p99).
    pub quantile: f64,
    /// Upper bound for the observed quantile, in the histogram's own
    /// unit (milliseconds for `*_ms` metrics).
    pub max_ms: f64,
}

/// A set of latency targets, evaluated together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// The targets; evaluation order is preserved in the report.
    pub targets: Vec<SloTarget>,
}

/// Verdict for one [`SloTarget`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloResult {
    /// Histogram name the target addressed.
    pub metric: String,
    /// Quantile checked.
    pub quantile: f64,
    /// The bound.
    pub max_ms: f64,
    /// Observed quantile; `None` when the report carries no samples
    /// for the metric (the target is then vacuously met).
    pub observed_ms: Option<f64>,
    /// Samples behind the observation.
    pub count: u64,
    /// `observed_ms <= max_ms` (or no samples).
    pub met: bool,
}

/// Evaluation of a full [`SloSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Whether every target was met.
    pub met: bool,
    /// Per-target verdicts, in spec order.
    pub results: Vec<SloResult>,
}

impl SloSpec {
    /// The default service objectives `resmodeld` ships with: model
    /// endpoints may compute (cold fits take seconds at fleet scale),
    /// `stats` must answer fast.
    #[must_use]
    pub fn svc_default() -> Self {
        let model_endpoints = [
            "run_pipeline",
            "run_sweep",
            "dispatch",
            "predict",
            "validate",
        ];
        let mut targets: Vec<SloTarget> = model_endpoints
            .iter()
            .map(|ep| SloTarget {
                metric: format!("svc.{ep}.request_ms"),
                quantile: 0.99,
                max_ms: 30_000.0,
            })
            .collect();
        targets.push(SloTarget {
            metric: "svc.stats.request_ms".to_owned(),
            quantile: 0.99,
            max_ms: 1_000.0,
        });
        Self { targets }
    }

    /// Evaluate against the histogram section of a snapshot.
    #[must_use]
    pub fn evaluate(&self, metrics: &MetricsReport) -> SloReport {
        self.evaluate_histograms(&metrics.histograms)
    }

    /// Evaluate against a bare list of histogram summaries (an
    /// artifact's `svc.latency` block, a loadgen's client-side
    /// measurements).
    #[must_use]
    pub fn evaluate_histograms(&self, histograms: &[HistogramSummary]) -> SloReport {
        let results: Vec<SloResult> = self
            .targets
            .iter()
            .map(|t| {
                let summary = histograms.iter().find(|h| h.name == t.metric);
                let observed_ms = summary.and_then(|h| h.quantile(t.quantile));
                let count = summary.map_or(0, |h| h.count);
                let met = observed_ms.is_none_or(|v| v <= t.max_ms);
                SloResult {
                    metric: t.metric.clone(),
                    quantile: t.quantile,
                    max_ms: t.max_ms,
                    observed_ms,
                    count,
                    met,
                }
            })
            .collect();
        SloReport {
            met: results.iter().all(|r| r.met),
            results,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;
    use crate::histogram::Histogram;

    fn summary_of(name: &str, values: &[f64]) -> HistogramSummary {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.summary(name).unwrap()
    }

    #[test]
    fn targets_check_the_requested_quantile() {
        let hist = summary_of("svc.stats.request_ms", &[1.0, 2.0, 3.0, 400.0]);
        let spec = SloSpec {
            targets: vec![
                SloTarget {
                    metric: "svc.stats.request_ms".to_owned(),
                    quantile: 0.5,
                    max_ms: 10.0,
                },
                SloTarget {
                    metric: "svc.stats.request_ms".to_owned(),
                    quantile: 0.99,
                    max_ms: 10.0,
                },
            ],
        };
        let report = spec.evaluate_histograms(std::slice::from_ref(&hist));
        assert!(report.results[0].met, "median is small");
        assert!(!report.results[1].met, "p99 sees the 400ms tail");
        assert!(!report.met);
        assert_eq!(report.results[1].count, 4);
        assert!(report.results[1].observed_ms.unwrap() > 10.0);
    }

    #[test]
    fn absent_metrics_are_vacuously_met() {
        let spec = SloSpec::svc_default();
        let report = spec.evaluate(&MetricsReport::default());
        assert!(report.met);
        assert!(report
            .results
            .iter()
            .all(|r| r.observed_ms.is_none() && r.count == 0 && r.met));
        assert_eq!(report.results.len(), spec.targets.len());
    }

    #[test]
    fn default_spec_round_trips_through_json() {
        let spec = SloSpec::svc_default();
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: SloSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        let report =
            spec.evaluate_histograms(&[summary_of("svc.stats.request_ms", &[0.2, 0.4, 0.9])]);
        let back: SloReport =
            serde_json::from_str(&serde_json::to_string_pretty(&report).unwrap()).unwrap();
        assert_eq!(back, report);
        assert!(report.met);
    }
}
