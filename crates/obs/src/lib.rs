//! Zero-dependency observability for the resmodel workspace: spans,
//! counters, gauges, log-scale histograms, and a peak-RSS probe.
//!
//! # Design: determinism first
//!
//! The workspace's core contract is byte-identical reports at any
//! rayon thread count. Metrics therefore aggregate *out-of-band* — a
//! [`Collector`] is passed alongside the data flow, never embedded in
//! report types — and the deterministic sections obey strict rules:
//!
//! - **Counters** count domain events (events simulated, hosts
//!   generated, jobs placed). They are exact sums and thread-count
//!   invariant.
//! - **Histograms** record *simulated* quantities only — placement
//!   latency in sim-hours, event-queue depths — never wall-clock
//!   durations. Bucket boundaries are fixed (see [`histogram`]), so
//!   per-shard partials merge bitwise order-invariantly.
//! - **Spans** and **gauges** are where wall-clock time lives
//!   (`total_ms`, `events_per_sec`). They are honest about being
//!   machine facts and are excluded from determinism comparisons,
//!   exactly like the `*_ms` fields that `zero_timings()` strips from
//!   reports.
//!
//! Accumulation is sharded per thread: each thread owns a slot chosen
//! on first use, so hot-path increments contend only rarely (two
//! threads share a slot only when more than [`SHARD_COUNT`] threads
//! record concurrently).
//!
//! # Usage
//!
//! ```
//! use resmodel_obs::Collector;
//!
//! let obs = Collector::new();
//! {
//!     let _outer = obs.span("pipeline");
//!     let _inner = obs.span("fit"); // nests: "pipeline/fit"
//!     obs.add("pipeline.hosts", 120);
//!     obs.record("sched.placement_latency_hours", 0.5);
//! }
//! let report = obs.snapshot();
//! assert_eq!(report.counter("pipeline.hosts"), Some(120));
//! assert_eq!(report.spans[1].path, "pipeline/fit");
//! ```
//!
//! A disabled collector ([`Collector::disabled`]) makes every call a
//! cheap no-op, so instrumented code paths need no `if` guards.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod histogram;
mod report;
mod rss;
pub mod slo;

pub use histogram::{bucket_index, bucket_lower_bound, Histogram, HistogramSummary, BUCKET_COUNT};
pub use report::{
    find_nonzero_wall_clock, is_wall_clock_key, zero_wall_clock, MetricsReport, SpanReport,
};
pub use rss::peak_rss_bytes;
pub use slo::{SloReport, SloResult, SloSpec, SloTarget};

use serde::{Deserialize, Serialize, Value};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Number of accumulation shards. Threads map onto slots round-robin;
/// contention appears only beyond this many concurrent recorders.
pub const SHARD_COUNT: usize = 16;

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot; `usize::MAX` until first use.
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    /// The slash-joined path of currently open spans on this thread.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
    /// The request id tagging events emitted from this thread, set by
    /// [`Collector::request_scope`]. Tags *events* only — span
    /// aggregation stays keyed by path alone, so per-request ids never
    /// grow the snapshot.
    static REQUEST_ID: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn thread_shard() -> usize {
    SHARD_SLOT.with(|slot| {
        let cur = slot.get();
        if cur != usize::MAX {
            return cur;
        }
        let assigned = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT;
        slot.set(assigned);
        assigned
    })
}

/// Lock a mutex, recovering the data on poison: metrics must never
/// propagate a panic from an unrelated thread.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStats>,
}

#[derive(Default, Clone, Copy)]
struct SpanStats {
    calls: u64,
    total_ms: f64,
    max_ms: f64,
}

struct Inner {
    epoch: Instant,
    shards: Vec<Mutex<Shard>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    sink: Mutex<Option<Box<dyn Write + Send>>>,
    /// Cheap flag mirroring `sink.is_some()`, so the span hot path
    /// skips the sink mutex entirely when no sink is attached.
    sink_on: AtomicBool,
    /// Per-shard flight-recorder ring capacity; 0 = recorder off.
    flight_cap: AtomicUsize,
    /// Lock-sharded rings of recent events (same slot assignment as
    /// the metric shards, so hot-path recording contends only rarely).
    flight: Vec<Mutex<VecDeque<FlightEvent>>>,
    /// Global event sequence — total order across shards for replay.
    event_seq: AtomicU64,
}

/// One span/mark event captured by the flight recorder: what the
/// collector was doing shortly before a failure, without always-on
/// event logging.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global sequence number — sort key for cross-shard replay.
    pub seq: u64,
    /// Microseconds since the collector was created.
    pub t_us: u64,
    /// Request id in scope on the emitting thread, if any.
    pub req: Option<String>,
    /// Event kind: `open`, `close`, or `mark`.
    pub ev: String,
    /// Slash-joined span path at the time of the event.
    pub path: String,
    /// Span duration, `close` events only.
    pub dur_us: Option<u64>,
}

/// Handle to a shared metrics accumulator. Cloning is cheap (an `Arc`
/// bump); all clones feed the same snapshot.
///
/// The default handle is **disabled**: every method is a no-op and
/// [`Collector::snapshot`] returns an empty [`MetricsReport`], so
/// plumbing a collector through a subsystem costs nothing until a
/// caller opts in with [`Collector::new`].
#[derive(Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Collector {
    /// An enabled collector with empty state.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                shards: (0..SHARD_COUNT)
                    .map(|_| Mutex::new(Shard::default()))
                    .collect(),
                gauges: Mutex::new(BTreeMap::new()),
                sink: Mutex::new(None),
                sink_on: AtomicBool::new(false),
                flight_cap: AtomicUsize::new(0),
                flight: (0..SHARD_COUNT)
                    .map(|_| Mutex::new(VecDeque::new()))
                    .collect(),
                event_seq: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op collector.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this handle records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increment a monotonic counter.
    pub fn add(&self, name: &str, n: u64) {
        let Some(inner) = &self.inner else { return };
        let mut shard = lock(&inner.shards[thread_shard()]);
        *shard.counters.entry(name.to_owned()).or_insert(0) += n;
    }

    /// Record one observation into a named histogram.
    ///
    /// By convention the value is a *simulated* quantity (sim-hours,
    /// queue depth) — wall-clock durations belong in spans so the
    /// histogram section stays thread-count invariant.
    pub fn record(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        let mut shard = lock(&inner.shards[thread_shard()]);
        shard
            .histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Record an integer observation (queue depths, shard sizes) into
    /// a named histogram.
    pub fn record_u64(&self, name: &str, v: u64) {
        // Exact for any count below 2^53 — far past the histogram's
        // overflow bucket anyway.
        #[allow(clippy::cast_precision_loss)]
        self.record(name, v as f64);
    }

    /// Fold a locally accumulated histogram into the named one.
    /// Hot loops build a [`Histogram`] on the stack and merge once at
    /// the end, paying for one lock instead of one per observation.
    pub fn merge_histogram(&self, name: &str, partial: &Histogram) {
        if partial.is_empty() {
            return;
        }
        let Some(inner) = &self.inner else { return };
        let mut shard = lock(&inner.shards[thread_shard()]);
        shard
            .histograms
            .entry(name.to_owned())
            .or_default()
            .merge(partial);
    }

    /// Set a point-in-time gauge (last write wins). Gauges are the
    /// home for wall-clock rates like `popsim.events_per_sec`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        let Some(inner) = &self.inner else { return };
        if v.is_finite() {
            lock(&inner.gauges).insert(name.to_owned(), v);
        }
    }

    /// Open a hierarchical RAII span. The span's path is the
    /// slash-join of the spans currently open *on this thread*, so
    /// nested guards produce `pipeline/build/engine`-style paths;
    /// timing is accumulated (and the close event emitted) when the
    /// guard drops.
    pub fn span(&self, name: &str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard { active: None };
        };
        let (path, prev_len) = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let prev_len = p.len();
            if !p.is_empty() {
                p.push('/');
            }
            p.push_str(name);
            (p.clone(), prev_len)
        });
        emit_event(inner, "open", &path, None);
        SpanGuard {
            active: Some(SpanActive {
                inner: Arc::clone(inner),
                path,
                prev_len,
                start: Instant::now(),
            }),
        }
    }

    /// Emit a point event (`"ev": "mark"`) at the current span path
    /// without touching any aggregate: marks flow to the events sink
    /// and the flight recorder only, so timing-dependent facts (cache
    /// stampede waits, rejected connections) can be traced without
    /// perturbing the deterministic counter section.
    pub fn mark(&self, name: &str) {
        let Some(inner) = &self.inner else { return };
        let path = SPAN_PATH.with(|p| {
            let p = p.borrow();
            if p.is_empty() {
                name.to_owned()
            } else {
                format!("{p}/{name}")
            }
        });
        emit_event(inner, "mark", &path, None);
    }

    /// Tag every event emitted from this thread with `id` until the
    /// returned guard drops (the previous id, if any, is restored —
    /// scopes nest). Service code opens one scope per request so the
    /// events sink and flight recorder can reassemble a single
    /// request's trace; aggregation is unaffected.
    pub fn request_scope(&self, id: &str) -> RequestIdGuard {
        let prev = REQUEST_ID.with(|r| r.borrow_mut().replace(id.to_owned()));
        RequestIdGuard { prev }
    }

    /// Turn on the flight recorder with room for roughly `capacity`
    /// recent events (split across [`SHARD_COUNT`] rings; each ring
    /// evicts its oldest entry when full). Zero disables recording.
    pub fn enable_flight_recorder(&self, capacity: usize) {
        let Some(inner) = &self.inner else { return };
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(SHARD_COUNT).max(1)
        };
        inner.flight_cap.store(per_shard, Ordering::Release);
    }

    /// Drain a copy of the flight recorder: recent events across all
    /// shards, sorted into global emission order. With
    /// `request_id = Some(id)` only events tagged with that id are
    /// returned — the post-mortem view of one failed request.
    #[must_use]
    pub fn flight_events(&self, request_id: Option<&str>) -> Vec<FlightEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut events: Vec<FlightEvent> = Vec::new();
        for ring in &inner.flight {
            let ring = lock(ring);
            events.extend(
                ring.iter()
                    .filter(|e| match request_id {
                        Some(id) => e.req.as_deref() == Some(id),
                        None => true,
                    })
                    .cloned(),
            );
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Attach a JSONL sink receiving one record per span open/close
    /// and per [`Collector::mark`]:
    ///
    /// ```json
    /// {"ev":"open","path":"svc/run_pipeline","t_us":1234,"req":"r1"}
    /// {"ev":"close","path":"svc/run_pipeline","t_us":1301,"req":"r1","dur_us":67}
    /// ```
    ///
    /// `t_us` is microseconds since the collector was created; `req`
    /// appears only inside a [`Collector::request_scope`]. Write
    /// errors are swallowed — telemetry must never fail the run.
    pub fn set_events_sink(&self, sink: Box<dyn Write + Send>) {
        let Some(inner) = &self.inner else { return };
        *lock(&inner.sink) = Some(sink);
        inner.sink_on.store(true, Ordering::Release);
    }

    /// Detach and return the events sink, if one is attached. Callers
    /// that buffer (e.g. a `BufWriter` over a file) use this to flush
    /// explicitly and surface write errors a `Drop` would swallow.
    pub fn take_events_sink(&self) -> Option<Box<dyn Write + Send>> {
        let inner = self.inner.as_ref()?;
        let taken = lock(&inner.sink).take();
        inner.sink_on.store(false, Ordering::Release);
        taken
    }

    /// Merge every shard (in slot order) into a sorted, serializable
    /// [`MetricsReport`], attaching the current peak-RSS probe.
    /// Counters and histograms merge order-invariantly, so the
    /// deterministic sections are identical at any thread count.
    #[must_use]
    pub fn snapshot(&self) -> MetricsReport {
        let Some(inner) = &self.inner else {
            return MetricsReport::default();
        };
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut spans: BTreeMap<String, SpanStats> = BTreeMap::new();
        for shard in &inner.shards {
            let shard = lock(shard);
            for (name, n) in &shard.counters {
                *counters.entry(name.clone()).or_insert(0) += n;
            }
            for (name, h) in &shard.histograms {
                histograms.entry(name.clone()).or_default().merge(h);
            }
            for (path, s) in &shard.spans {
                let agg = spans.entry(path.clone()).or_default();
                agg.calls += s.calls;
                agg.total_ms += s.total_ms;
                agg.max_ms = agg.max_ms.max(s.max_ms);
            }
        }
        MetricsReport {
            counters: counters.into_iter().collect(),
            gauges: lock(&inner.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: histograms
                .iter()
                .filter_map(|(name, h)| h.summary(name))
                .collect(),
            spans: spans
                .into_iter()
                .map(|(path, s)| SpanReport {
                    path,
                    calls: s.calls,
                    total_ms: s.total_ms,
                    max_ms: s.max_ms,
                })
                .collect(),
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// Route one span/mark event to the JSONL sink (if attached) and the
/// flight recorder (if enabled). Returns fast when neither is on —
/// this sits on the span hot path.
fn emit_event(inner: &Inner, ev: &str, path: &str, dur_us: Option<u128>) {
    let flight_cap = inner.flight_cap.load(Ordering::Acquire);
    let sink_on = inner.sink_on.load(Ordering::Acquire);
    if flight_cap == 0 && !sink_on {
        return;
    }
    let t_us = u64::try_from(inner.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let req = REQUEST_ID.with(|r| r.borrow().clone());
    let dur = dur_us.map(|d| u64::try_from(d).unwrap_or(u64::MAX));
    if sink_on {
        let mut fields = vec![
            ("ev".to_owned(), Value::Str(ev.to_owned())),
            ("path".to_owned(), Value::Str(path.to_owned())),
            ("t_us".to_owned(), Value::UInt(t_us)),
        ];
        if let Some(id) = &req {
            fields.push(("req".to_owned(), Value::Str(id.clone())));
        }
        if let Some(d) = dur {
            fields.push(("dur_us".to_owned(), Value::UInt(d)));
        }
        if let Ok(line) = serde_json::to_string(&Value::Map(fields)) {
            let mut sink = lock(&inner.sink);
            if let Some(out) = sink.as_mut() {
                let _ = writeln!(out, "{line}");
            }
        }
    }
    if flight_cap > 0 {
        let seq = inner.event_seq.fetch_add(1, Ordering::Relaxed);
        let mut ring = lock(&inner.flight[thread_shard()]);
        if ring.len() >= flight_cap {
            ring.pop_front();
        }
        ring.push_back(FlightEvent {
            seq,
            t_us,
            req,
            ev: ev.to_owned(),
            path: path.to_owned(),
            dur_us: dur,
        });
    }
}

/// RAII guard returned by [`Collector::request_scope`]; restores the
/// thread's previous request id (usually none) on drop.
#[must_use = "the request id is cleared the moment the guard drops"]
pub struct RequestIdGuard {
    prev: Option<String>,
}

impl Drop for RequestIdGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        REQUEST_ID.with(|r| *r.borrow_mut() = prev);
    }
}

struct SpanActive {
    inner: Arc<Inner>,
    path: String,
    prev_len: usize,
    start: Instant,
}

/// RAII guard returned by [`Collector::span`]; records elapsed time
/// on drop. Guards must drop in reverse creation order (the natural
/// lexical-scope order) for nested paths to unwind correctly.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing"]
pub struct SpanGuard {
    active: Option<SpanActive>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed = active.start.elapsed();
        let elapsed_ms = elapsed.as_secs_f64() * 1e3;
        SPAN_PATH.with(|p| p.borrow_mut().truncate(active.prev_len));
        {
            let mut shard = lock(&active.inner.shards[thread_shard()]);
            let stats = shard.spans.entry(active.path.clone()).or_default();
            stats.calls += 1;
            stats.total_ms += elapsed_ms;
            stats.max_ms = stats.max_ms.max(elapsed_ms);
        }
        emit_event(
            &active.inner,
            "close",
            &active.path,
            Some(elapsed.as_micros()),
        );
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn disabled_collector_is_inert() {
        let obs = Collector::disabled();
        obs.add("x", 1);
        obs.record("h", 2.0);
        obs.set_gauge("g", 3.0);
        let _span = obs.span("s");
        let report = obs.snapshot();
        assert_eq!(report, MetricsReport::default());
        assert!(!obs.is_enabled());
        assert!(Collector::default().snapshot().counters.is_empty());
    }

    #[test]
    fn counters_sum_across_clones_and_threads() {
        let obs = Collector::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let obs = obs.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        obs.add("events", 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(obs.snapshot().counter("events"), Some(800));
    }

    #[test]
    fn spans_nest_on_one_thread() {
        let obs = Collector::new();
        {
            let _a = obs.span("outer");
            {
                let _b = obs.span("inner");
            }
            {
                let _c = obs.span("inner");
            }
        }
        let report = obs.snapshot();
        let paths: Vec<_> = report.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/inner"]);
        assert_eq!(report.spans[1].calls, 2);
        assert!(report.spans[0].total_ms >= report.spans[0].max_ms);
        // The thread-local path fully unwound.
        SPAN_PATH.with(|p| assert!(p.borrow().is_empty()));
    }

    #[test]
    fn histograms_and_gauges_appear_in_snapshot() {
        let obs = Collector::new();
        obs.record("lat", 1.0);
        obs.record("lat", 4.0);
        let mut partial = Histogram::new();
        partial.record(16.0);
        obs.merge_histogram("lat", &partial);
        obs.merge_histogram("empty", &Histogram::new());
        obs.set_gauge("rate", 5.5);
        obs.set_gauge("bad", f64::NAN);
        let report = obs.snapshot();
        let h = report.histogram("lat").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 16.0);
        assert!(report.histogram("empty").is_none());
        assert_eq!(report.gauge("rate"), Some(5.5));
        assert_eq!(report.gauge("bad"), None);
    }

    #[test]
    fn events_sink_receives_open_close_jsonl() {
        // A Write impl backed by shared memory so the test can read
        // back what the collector wrote.
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                lock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf::default();
        let obs = Collector::new();
        obs.set_events_sink(Box::new(buf.clone()));
        {
            let _s = obs.span("work");
        }
        let text = String::from_utf8(lock(&buf.0).clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2, "open + close: {text}");
        let open = serde_json::parse_value(lines[0]).unwrap();
        let close = serde_json::parse_value(lines[1]).unwrap();
        assert_eq!(open["ev"].as_str(), Some("open"));
        assert_eq!(open["path"].as_str(), Some("work"));
        assert_eq!(close["ev"].as_str(), Some("close"));
        assert!(close["dur_us"].as_u64().is_some());
    }

    #[test]
    fn flight_recorder_captures_tagged_events_in_order() {
        let obs = Collector::new();
        obs.enable_flight_recorder(128);
        {
            let _scope = obs.request_scope("r1");
            let _a = obs.span("svc");
            let _b = obs.span("run_pipeline");
            obs.mark("cache.miss");
        }
        {
            let _scope = obs.request_scope("r2");
            let _a = obs.span("svc");
        }
        obs.mark("untagged");

        let all = obs.flight_events(None);
        assert!(all.len() >= 7, "opens, closes, marks: {}", all.len());
        assert!(all.windows(2).all(|w| w[0].seq < w[1].seq));

        let r1 = obs.flight_events(Some("r1"));
        let kinds: Vec<_> = r1
            .iter()
            .map(|e| (e.ev.as_str(), e.path.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec![
                ("open", "svc"),
                ("open", "svc/run_pipeline"),
                ("mark", "svc/run_pipeline/cache.miss"),
                ("close", "svc/run_pipeline"),
                ("close", "svc"),
            ]
        );
        assert!(r1.iter().all(|e| e.req.as_deref() == Some("r1")));
        assert!(r1.last().unwrap().dur_us.is_some());

        assert_eq!(obs.flight_events(Some("r2")).len(), 2);
        let untagged = obs.flight_events(None);
        assert!(untagged
            .iter()
            .any(|e| e.req.is_none() && e.path == "untagged"));
        assert!(obs.flight_events(Some("nope")).is_empty());
    }

    #[test]
    fn flight_recorder_rings_are_bounded() {
        let obs = Collector::new();
        obs.enable_flight_recorder(SHARD_COUNT * 4);
        for _ in 0..1000 {
            obs.mark("tick");
        }
        // Single thread -> single shard ring, capped at 4 entries
        // holding the newest sequence numbers.
        let events = obs.flight_events(None);
        assert_eq!(events.len(), 4);
        assert_eq!(events.last().unwrap().seq, 999);
        // Disabling stops recording but leaves captured events alone.
        obs.enable_flight_recorder(0);
        obs.mark("after");
        assert!(obs.flight_events(None).iter().all(|e| e.path != "after"));
    }

    #[test]
    fn request_scopes_nest_and_tag_sink_lines() {
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                lock(&self.0).extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let obs = Collector::new();
        obs.set_events_sink(Box::new(buf.clone()));
        {
            let _outer = obs.request_scope("outer");
            obs.mark("a");
            {
                let _inner = obs.request_scope("inner");
                obs.mark("b");
            }
            obs.mark("c"); // outer id restored
        }
        obs.mark("d"); // no id
        let text = String::from_utf8(lock(&buf.0).clone()).unwrap();
        let reqs: Vec<_> = text
            .lines()
            .map(|l| {
                let v = serde_json::parse_value(l).unwrap();
                v["req"].as_str().map(str::to_owned)
            })
            .collect();
        assert_eq!(
            reqs,
            vec![
                Some("outer".to_owned()),
                Some("inner".to_owned()),
                Some("outer".to_owned()),
                None
            ]
        );
        // Marks never touch the deterministic aggregate sections.
        let report = obs.snapshot();
        assert!(report.counters.is_empty());
        assert!(report.spans.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let obs = Collector::new();
        obs.add("zeta", 1);
        obs.add("alpha", 1);
        obs.record("mid", 1.0);
        obs.record("aaa", 1.0);
        let report = obs.snapshot();
        assert_eq!(report.counters[0].0, "alpha");
        assert_eq!(report.counters[1].0, "zeta");
        assert_eq!(report.histograms[0].name, "aaa");
        assert_eq!(report.histograms[1].name, "mid");
    }
}
