//! # resmodel-error
//!
//! The workspace-wide error type. Every fallible library API in the
//! `resmodel` crates returns [`ResmodelError`] (or a type that converts
//! into it via `?`), so errors compose across crate boundaries without
//! stringly-typed plumbing:
//!
//! * statistical failures ([`resmodel_stats::StatsError`]) convert via
//!   `From`,
//! * configuration problems (invalid scenarios, world parameters,
//!   model construction) carry a context plus a message,
//! * I/O and JSON (de)serialization failures wrap the underlying error,
//! * command-line problems are a typed [`ArgError`] so binaries can map
//!   them to a distinct exit code.
//!
//! ```
//! use resmodel_error::ResmodelError;
//! use resmodel_stats::StatsError;
//!
//! fn fit() -> Result<(), StatsError> {
//!     Err(StatsError::EmptyData { what: "fit", needed: 1, got: 0 })
//! }
//!
//! fn pipeline() -> Result<(), ResmodelError> {
//!     fit()?; // StatsError converts automatically
//!     Ok(())
//! }
//!
//! assert!(matches!(pipeline(), Err(ResmodelError::Stats(_))));
//! ```

#![warn(clippy::unwrap_used)]

use resmodel_stats::StatsError;
use std::fmt;

/// A command-line argument problem, kept separate from [`ResmodelError`]
/// so binaries can report usage errors with a dedicated exit code (2,
/// the Unix convention for bad invocations).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A flag that requires a value was given none.
    MissingValue {
        /// The flag, e.g. `"--scale"`.
        flag: String,
    },
    /// A flag value failed to parse.
    InvalidValue {
        /// The flag, e.g. `"--seed"`.
        flag: String,
        /// The rejected raw value.
        value: String,
        /// What was expected, e.g. `"an integer"`.
        expected: &'static str,
    },
    /// An unrecognised flag.
    UnknownFlag {
        /// The offending token.
        flag: String,
    },
    /// Flags were combined in an unsupported way (or a required one is
    /// missing).
    Usage {
        /// Human-readable description of the conflict.
        message: String,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue { flag } => write!(f, "{flag} needs a value"),
            ArgError::InvalidValue {
                flag,
                value,
                expected,
            } => write!(f, "{flag} expects {expected}, got `{value}`"),
            ArgError::UnknownFlag { flag } => write!(f, "unknown flag `{flag}`"),
            ArgError::Usage { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for ArgError {}

/// The workspace-wide error enum.
#[derive(Debug)]
pub enum ResmodelError {
    /// A statistical routine failed (empty data, invalid parameters,
    /// non-convergence, degenerate matrices, …).
    Stats(StatsError),
    /// An I/O operation failed.
    Io {
        /// What was being accessed, e.g. a file path.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A configuration was rejected: an invalid scenario, world
    /// parameters, model construction input or stage precondition.
    Config {
        /// What was being validated, e.g. `"scenario"`.
        context: &'static str,
        /// The first violated constraint.
        message: String,
    },
    /// JSON (de)serialization failed.
    Json {
        /// What was being (de)serialized.
        context: &'static str,
        /// The underlying error message.
        message: String,
    },
    /// A command-line invocation problem.
    Arg(ArgError),
    /// One job of a scenario sweep failed; wraps the underlying error
    /// with the job's label so a batch failure names its grid point.
    Sweep {
        /// The failing job's label, e.g. `"flash-crowd/8000/r1"`.
        job: String,
        /// The job's underlying error.
        source: Box<ResmodelError>,
    },
    /// A workload-dispatch run failed; wraps the underlying error with
    /// the `policy/workload` (or `policy/job-family`) grid point so a
    /// batch failure names where it happened — the dispatch analogue of
    /// [`ResmodelError::Sweep`].
    Dispatch {
        /// The failing grid point, e.g. `"earliest-finish/mixed"`.
        point: String,
        /// The underlying error.
        source: Box<ResmodelError>,
    },
    /// A persisted trace file was rejected: truncated, wrong magic or
    /// version, checksum mismatch, misaligned section, or inconsistent
    /// contents. Carries the file path and what was wrong — corruption
    /// is always a typed error, never a panic.
    Store {
        /// The offending file's path.
        path: String,
        /// What was wrong with it.
        message: String,
    },
    /// A query-service request failed — a protocol violation, a bind
    /// failure, or a cache compute error — wrapping the underlying
    /// error with the endpoint it happened on (and, when the request
    /// reached hashing, the content address of the offending spec).
    Svc {
        /// The endpoint handling the request, e.g. `"run_pipeline"`,
        /// or a server-side phase like `"bind"` / `"accept"`.
        endpoint: String,
        /// The canonical spec hash, when the request got that far.
        spec_hash: Option<String>,
        /// The underlying error.
        source: Box<ResmodelError>,
    },
}

impl ResmodelError {
    /// Shorthand for a [`ResmodelError::Config`].
    pub fn config(context: &'static str, message: impl Into<String>) -> Self {
        ResmodelError::Config {
            context,
            message: message.into(),
        }
    }

    /// Shorthand for a [`ResmodelError::Io`] with context.
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        ResmodelError::Io {
            context: context.into(),
            source,
        }
    }

    /// Shorthand for a [`ResmodelError::Json`].
    pub fn json(context: &'static str, message: impl fmt::Display) -> Self {
        ResmodelError::Json {
            context,
            message: message.to_string(),
        }
    }

    /// Shorthand for a [`ResmodelError::Sweep`] wrapping `source` with
    /// the failing job's label.
    pub fn sweep(job: impl Into<String>, source: ResmodelError) -> Self {
        ResmodelError::Sweep {
            job: job.into(),
            source: Box::new(source),
        }
    }

    /// Shorthand for a [`ResmodelError::Dispatch`] wrapping `source`
    /// with the failing `policy/workload` grid point.
    pub fn dispatch(point: impl Into<String>, source: ResmodelError) -> Self {
        ResmodelError::Dispatch {
            point: point.into(),
            source: Box::new(source),
        }
    }

    /// Shorthand for a [`ResmodelError::Store`].
    pub fn store(path: impl Into<String>, message: impl Into<String>) -> Self {
        ResmodelError::Store {
            path: path.into(),
            message: message.into(),
        }
    }

    /// Shorthand for a [`ResmodelError::Svc`] wrapping `source` with
    /// the endpoint (and optional spec hash) it failed on.
    pub fn svc(
        endpoint: impl Into<String>,
        spec_hash: Option<String>,
        source: ResmodelError,
    ) -> Self {
        ResmodelError::Svc {
            endpoint: endpoint.into(),
            spec_hash,
            source: Box::new(source),
        }
    }

    /// The conventional process exit code for this error: `2` for
    /// command-line usage problems, `3` for query-service failures
    /// (so scripts can tell a dead/misbehaving daemon from a bad
    /// invocation), `1` for everything else. A sweep or dispatch
    /// failure reports its underlying error's code.
    pub fn exit_code(&self) -> i32 {
        match self {
            ResmodelError::Arg(_) => 2,
            ResmodelError::Svc { .. } => 3,
            ResmodelError::Sweep { source, .. } | ResmodelError::Dispatch { source, .. } => {
                source.exit_code()
            }
            _ => 1,
        }
    }
}

impl fmt::Display for ResmodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResmodelError::Stats(e) => write!(f, "statistics: {e}"),
            ResmodelError::Io { context, source } => write!(f, "i/o ({context}): {source}"),
            ResmodelError::Config { context, message } => {
                write!(f, "invalid {context}: {message}")
            }
            ResmodelError::Json { context, message } => write!(f, "json ({context}): {message}"),
            ResmodelError::Arg(e) => write!(f, "{e}"),
            ResmodelError::Sweep { job, source } => write!(f, "sweep job `{job}`: {source}"),
            ResmodelError::Store { path, message } => {
                write!(f, "trace store {path}: {message}")
            }
            ResmodelError::Dispatch { point, source } => {
                write!(f, "dispatch `{point}`: {source}")
            }
            ResmodelError::Svc {
                endpoint,
                spec_hash,
                source,
            } => match spec_hash {
                Some(hash) => write!(f, "svc `{endpoint}` [{hash}]: {source}"),
                None => write!(f, "svc `{endpoint}`: {source}"),
            },
        }
    }
}

impl std::error::Error for ResmodelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResmodelError::Stats(e) => Some(e),
            ResmodelError::Io { source, .. } => Some(source),
            ResmodelError::Arg(e) => Some(e),
            ResmodelError::Sweep { source, .. }
            | ResmodelError::Dispatch { source, .. }
            | ResmodelError::Svc { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<StatsError> for ResmodelError {
    fn from(e: StatsError) -> Self {
        ResmodelError::Stats(e)
    }
}

impl From<ArgError> for ResmodelError {
    fn from(e: ArgError) -> Self {
        ResmodelError::Arg(e)
    }
}

impl From<std::io::Error> for ResmodelError {
    fn from(e: std::io::Error) -> Self {
        ResmodelError::Io {
            context: "i/o".into(),
            source: e,
        }
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, ResmodelError>;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = ResmodelError::config("scenario", "end must be after start");
        assert_eq!(e.to_string(), "invalid scenario: end must be after start");
        let e = ResmodelError::Stats(StatsError::NotPositiveDefinite);
        assert!(e.to_string().starts_with("statistics:"));
        let e: ResmodelError = ArgError::UnknownFlag {
            flag: "--bogus".into(),
        }
        .into();
        assert_eq!(e.to_string(), "unknown flag `--bogus`");
    }

    #[test]
    fn exit_codes() {
        assert_eq!(
            ResmodelError::from(ArgError::MissingValue {
                flag: "--seed".into()
            })
            .exit_code(),
            2
        );
        assert_eq!(ResmodelError::config("scenario", "bad").exit_code(), 1);
        assert_eq!(
            ResmodelError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"))
                .exit_code(),
            1
        );
    }

    #[test]
    fn stats_error_converts_via_question_mark() {
        fn inner() -> std::result::Result<(), StatsError> {
            Err(StatsError::NotPositiveDefinite)
        }
        fn outer() -> crate::Result<()> {
            inner()?;
            Ok(())
        }
        assert!(matches!(
            outer(),
            Err(ResmodelError::Stats(StatsError::NotPositiveDefinite))
        ));
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = ResmodelError::io(
            "hosts.csv",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(e.source().is_some());
        assert!(e.to_string().contains("hosts.csv"));
        assert!(ResmodelError::config("x", "y").source().is_none());
    }

    #[test]
    fn arg_error_displays() {
        let e = ArgError::InvalidValue {
            flag: "--scale".into(),
            value: "abc".into(),
            expected: "a number",
        };
        assert_eq!(e.to_string(), "--scale expects a number, got `abc`");
        let e = ArgError::MissingValue {
            flag: "--out".into(),
        };
        assert_eq!(e.to_string(), "--out needs a value");
    }

    #[test]
    fn sweep_errors_name_the_job_and_chain() {
        use std::error::Error;
        let e = ResmodelError::sweep(
            "flash-crowd/8000/r1",
            ResmodelError::config("scenario", "end must be after start"),
        );
        assert_eq!(
            e.to_string(),
            "sweep job `flash-crowd/8000/r1`: invalid scenario: end must be after start"
        );
        assert!(e.source().is_some());
        assert_eq!(e.exit_code(), 1);
        // Usage errors keep their distinct exit code through the wrap.
        let e = ResmodelError::sweep("j", ArgError::UnknownFlag { flag: "--x".into() }.into());
        assert_eq!(e.exit_code(), 2);
    }

    #[test]
    fn dispatch_errors_name_the_grid_point_and_chain() {
        use std::error::Error;
        let e = ResmodelError::dispatch(
            "earliest-finish/mixed",
            ResmodelError::config("workload", "at least one job family is required"),
        );
        assert_eq!(
            e.to_string(),
            "dispatch `earliest-finish/mixed`: invalid workload: at least one job family is required"
        );
        assert!(e.source().is_some());
        assert_eq!(e.exit_code(), 1);
        // A dispatch failure inside a sweep job chains both labels.
        let e = ResmodelError::sweep("steady-state/8000/r1", e);
        assert!(e.to_string().contains("sweep job"));
        assert!(e.to_string().contains("dispatch `earliest-finish/mixed`"));
        assert_eq!(e.exit_code(), 1);
    }

    #[test]
    fn svc_errors_name_the_endpoint_and_chain() {
        use std::error::Error;
        let e = ResmodelError::svc(
            "run_pipeline",
            Some("9c41".into()),
            ResmodelError::config("pipeline spec", "source is required"),
        );
        assert_eq!(
            e.to_string(),
            "svc `run_pipeline` [9c41]: invalid pipeline spec: source is required"
        );
        assert!(e.source().is_some());
        assert_eq!(e.exit_code(), 3);
        // Before the request is hashed (bind/accept/frame errors) there
        // is no content address to report.
        let e = ResmodelError::svc(
            "bind",
            None,
            ResmodelError::io(
                "/tmp/resmodel.sock",
                std::io::Error::new(std::io::ErrorKind::AddrInUse, "in use"),
            ),
        );
        assert_eq!(
            e.to_string(),
            "svc `bind`: i/o (/tmp/resmodel.sock): in use"
        );
        assert_eq!(e.exit_code(), 3);
    }

    #[test]
    fn store_errors_carry_path_and_message() {
        use std::error::Error;
        let e = ResmodelError::store("/tmp/fleet.rmt", "bad magic");
        assert_eq!(e.to_string(), "trace store /tmp/fleet.rmt: bad magic");
        assert_eq!(e.exit_code(), 1);
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ResmodelError>();
        assert_send_sync::<ArgError>();
    }
}
