//! Property-based guarantees of the population engine:
//!
//! 1. **Thread invariance** — a scenario run on 1 rayon thread is
//!    bitwise identical to the same scenario on many threads.
//! 2. **Scale prefix** — a capped fleet is an exact prefix of a larger
//!    fleet under the same seed.
//! 3. **Serde round-trip** — every scenario configuration survives
//!    JSON serialization unchanged (and the recovered scenario drives
//!    an identical simulation).

use proptest::prelude::*;
use resmodel_popsim::scenario::{ArrivalLaw, GpuScenario, RefreshPolicy};
use resmodel_popsim::{engine, Scenario};
use resmodel_trace::SimDate;

/// A small random scenario: bounded host counts so each case stays
/// fast, but every subsystem (gpu, market, availability, refresh)
/// stays enabled through the built-in bases.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        0u64..1_000_000, // seed
        0usize..4,       // which builtin
        1usize..24,      // shard count
        2.0..8.0f64,     // base arrivals/day
        120.0..720.0f64, // refresh interval
    )
        .prop_map(|(seed, which, shards, rate, refresh_days)| {
            let base = match which {
                0 => Scenario::steady_state(seed),
                1 => Scenario::flash_crowd(seed),
                2 => Scenario::gpu_wave(seed),
                _ => Scenario::market_shift(seed),
            };
            Scenario {
                max_hosts: 300,
                shard_count: shards,
                arrivals: match base.arrivals {
                    ArrivalLaw::FlashCrowd {
                        burst_center,
                        burst_width_days,
                        burst_amplitude,
                        ..
                    } => ArrivalLaw::FlashCrowd {
                        base_per_day: rate,
                        growth_per_year: 0.18,
                        burst_center,
                        burst_width_days,
                        burst_amplitude,
                    },
                    _ => ArrivalLaw::Exponential {
                        base_per_day: rate,
                        growth_per_year: 0.18,
                    },
                },
                refresh: RefreshPolicy::Periodic {
                    interval_days: refresh_days,
                    jitter_days: refresh_days / 4.0,
                },
                ..base
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn one_thread_equals_many_threads(scenario in scenario_strategy()) {
        let single = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| engine::run(&scenario).unwrap());
        let many = rayon::ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| engine::run(&scenario).unwrap());
        prop_assert_eq!(&single.fleet, &many.fleet);
        prop_assert_eq!(&single.series, &many.series);
    }

    #[test]
    fn small_fleet_is_prefix_of_large(scenario in scenario_strategy()) {
        let mut small_scenario = scenario.clone();
        small_scenario.max_hosts = 100;
        let mut large_scenario = scenario;
        large_scenario.max_hosts = 300;

        let small = engine::run(&small_scenario).unwrap();
        let large = engine::run(&large_scenario).unwrap();
        prop_assert_eq!(small.fleet.len(), 100);
        prop_assert_eq!(large.fleet.len(), 300);

        let small_hosts = small.fleet.hosts_in_id_order();
        let large_hosts = large.fleet.hosts_in_id_order();
        for (a, b) in small_hosts.iter().zip(&large_hosts) {
            prop_assert_eq!(*a, *b);
        }
    }

    #[test]
    fn scenario_round_trips_through_serde(scenario in scenario_strategy()) {
        let json = serde_json::to_string_pretty(&scenario).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&back, &scenario);
    }
}

#[test]
fn builtin_scenarios_round_trip_and_rerun_identically() {
    for scenario in Scenario::all_builtin(2024) {
        let mut capped = scenario.clone();
        capped.max_hosts = 200;
        let json = serde_json::to_string_pretty(&capped).unwrap();
        let recovered: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(recovered, capped, "{} config drifted", scenario.name);

        // The recovered config drives an identical simulation.
        let a = engine::run(&capped).unwrap();
        let b = engine::run(&recovered).unwrap();
        assert_eq!(a.fleet, b.fleet, "{} fleet drifted", scenario.name);
        assert_eq!(a.series, b.series, "{} series drifted", scenario.name);
    }
}

#[test]
fn population_is_shard_count_invariant() {
    // Different shard counts redistribute hosts but must preserve the
    // id-ordered population exactly: per-host state depends only on
    // (seed, id, arrival time). Statistics are only *approximately*
    // shard-invariant — float partials sum in shard order — which is
    // why `shard_count` is part of the scenario, not a tuning knob.
    let mut a_scenario = Scenario::steady_state(77);
    a_scenario.max_hosts = 200;
    a_scenario.shard_count = 4;
    let mut b_scenario = a_scenario.clone();
    b_scenario.shard_count = 13;

    let a = engine::run(&a_scenario).unwrap();
    let b = engine::run(&b_scenario).unwrap();
    assert_eq!(a.fleet.hosts_in_id_order(), b.fleet.hosts_in_id_order());
    for (x, y) in a.series.snapshots.iter().zip(&b.series.snapshots) {
        assert_eq!(x.active, y.active);
        assert_eq!(x.arrived, y.arrived);
        assert_eq!(x.departed, y.departed);
        assert_eq!(x.gpu_count, y.gpu_count);
        let (mx, my) = (x.memory_mb.mean(), y.memory_mb.mean());
        assert!((mx - my).abs() <= 1e-9 * mx.abs().max(1.0), "{mx} vs {my}");
    }
}

#[test]
fn exported_trace_preserves_activity_counts() {
    let mut scenario = Scenario::flash_crowd(3);
    scenario.max_hosts = 250;
    let report = engine::run(&scenario).unwrap();
    let trace = resmodel_popsim::fleet_to_trace(&report.fleet, scenario.end);
    for probe in [2007.0, 2008.5, 2009.5] {
        let t = SimDate::from_year(probe);
        assert_eq!(trace.active_count(t), report.fleet.active_at(t));
    }
}

#[test]
fn deserialized_empty_fleet_lookups_return_none() {
    // A shardless fleet is only constructible by deserializing one;
    // lookups must not panic on the modulus.
    let fleet: resmodel_popsim::Fleet = serde_json::from_str(r#"{"shards":[],"len":0}"#).unwrap();
    assert!(fleet.is_empty());
    assert!(fleet.host(0).is_none());
    assert!(fleet.host(u64::MAX).is_none());
}

#[test]
fn gpu_disabled_scenario_has_no_gpus() {
    let mut scenario = Scenario::steady_state(5);
    scenario.max_hosts = 150;
    scenario.gpu = GpuScenario::disabled();
    let report = engine::run(&scenario).unwrap();
    assert!(report.fleet.iter().all(|h| h.gpu.is_none()));
    assert!(report
        .series
        .snapshots
        .iter()
        .all(|s| s.gpu_fraction() == 0.0));
}
