//! Export a simulated fleet as a measurement [`Trace`], bridging the
//! population engine to the existing fitting/validation pipeline.

use crate::fleet::{Fleet, SimHost};
use resmodel_core::GeneratedHost;
use resmodel_trace::{
    ColumnarTrace, GpuClass, GpuInfo, HostRecord, ResourceSnapshot, SimDate, Trace,
};

/// Deterministic total-disk convention for exported snapshots: the
/// engine models *available* disk (what the paper models); exports
/// assume it is ~60% of the drive.
const AVAIL_DISK_FRACTION: f64 = 0.6;

fn snapshot(at: SimDate, r: &GeneratedHost) -> ResourceSnapshot {
    ResourceSnapshot {
        t: at,
        cores: r.cores,
        memory_mb: r.memory_mb,
        whetstone_mips: r.whetstone_mips,
        dhrystone_mips: r.dhrystone_mips,
        avail_disk_gb: r.avail_disk_gb,
        total_disk_gb: r.avail_disk_gb / AVAIL_DISK_FRACTION,
    }
}

/// The exported GPU attributes of a host — visible only when both the
/// GPU and its recording date are present. Shared by the row and
/// columnar exports so the convention cannot diverge.
fn gpu_info_of(host: &SimHost) -> Option<GpuInfo> {
    match (host.gpu, host.gpu_since) {
        (Some(gpu), Some(since)) => Some(GpuInfo {
            class: gpu.class,
            memory_mb: gpu.memory_mb,
            since,
        }),
        _ => None,
    }
}

/// The final contact at death (or the export horizon `end`), so the
/// activity rule sees the host's whole life; `None` when the last
/// hardware draw already reaches it. Shared by both exports.
fn final_contact_of(host: &SimHost, end: SimDate) -> Option<ResourceSnapshot> {
    let last = host.death.min(end);
    host.history
        .last()
        .map(|d| d.at < last)
        .unwrap_or(true)
        .then(|| snapshot(last, &host.resources))
}

fn record_of(host: &SimHost, end: SimDate) -> HostRecord {
    let mut record = HostRecord::new(host.id.into(), host.created);
    record.os = host.os;
    record.cpu = host.cpu;
    record.gpu = gpu_info_of(host);
    for draw in &host.history {
        record.record(snapshot(draw.at, &draw.resources));
    }
    if let Some(final_contact) = final_contact_of(host, end) {
        record.record(final_contact);
    }
    record
}

/// Convert the whole fleet into a [`Trace`] with one record per host:
/// a measurement at every hardware draw plus a final contact at death
/// (clamped to `end`).
pub fn fleet_to_trace(fleet: &Fleet, end: SimDate) -> Trace {
    fleet
        .hosts_in_id_order()
        .into_iter()
        .map(|h| record_of(h, end))
        .collect()
}

/// Convert the whole fleet straight into a [`ColumnarTrace`], emitting
/// columns directly from the shards — no per-host [`HostRecord`] (and
/// no row-trace detour) is materialised.
///
/// Hosts appear in id order and snapshots follow exactly the
/// [`fleet_to_trace`] convention (every hardware draw plus a final
/// contact at death clamped to `end`), so the result equals
/// `ColumnarTrace::from(&fleet_to_trace(fleet, end))` — a property the
/// columnar identity tests enforce.
pub fn fleet_to_columnar(fleet: &Fleet, end: SimDate) -> ColumnarTrace {
    let hosts = fleet.hosts_in_id_order();
    let snapshots: usize = hosts.iter().map(|h| h.history.len() + 1).sum();
    let mut store = ColumnarTrace::with_capacity(hosts.len(), 0);
    store.reserve_snapshots(snapshots);
    for host in hosts {
        store.push_host(
            host.id.into(),
            host.created,
            host.os,
            host.cpu,
            gpu_info_of(host),
            host.history
                .iter()
                .map(|draw| snapshot(draw.at, &draw.resources))
                .chain(final_contact_of(host, end)),
        );
    }
    store
}

/// Convert only the hosts alive at `t` (a population snapshot).
pub fn snapshot_to_trace(fleet: &Fleet, t: SimDate) -> Trace {
    fleet
        .hosts_in_id_order()
        .into_iter()
        .filter(|h| h.alive_at(t))
        .map(|h| record_of(h, t))
        .collect()
}

/// The fleet's GPU classes by host id (the engine and the trace layer
/// share the `GpuClass` type), for validation against Table VII.
pub fn gpu_classes(fleet: &Fleet) -> Vec<(u64, GpuClass)> {
    fleet
        .iter()
        .filter_map(|h| h.gpu.map(|g| (h.id, g.class)))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::engine::run;
    use crate::scenario::{ArrivalLaw, Scenario};

    fn tiny() -> crate::engine::EngineReport {
        let scenario = Scenario {
            max_hosts: 300,
            shard_count: 8,
            arrivals: ArrivalLaw::Exponential {
                base_per_day: 5.0,
                growth_per_year: 0.18,
            },
            ..Scenario::steady_state(21)
        };
        run(&scenario).unwrap()
    }

    #[test]
    fn trace_matches_fleet_population() {
        let report = tiny();
        let trace = fleet_to_trace(&report.fleet, report.scenario.end);
        assert_eq!(trace.len(), report.fleet.len());
        // The trace's activity rule (contact-based) agrees with the
        // fleet's (span-based) away from the window edges.
        let t = SimDate::from_year(2008.0);
        assert_eq!(trace.active_count(t), report.fleet.active_at(t));
    }

    #[test]
    fn trace_lookup_is_by_engine_id() {
        let report = tiny();
        let trace = fleet_to_trace(&report.fleet, report.scenario.end);
        let host = trace.host(5.into()).expect("host 5 exists");
        let sim = report.fleet.host(5).unwrap();
        assert_eq!(host.created, sim.created);
        assert_eq!(host.os, sim.os);
        assert_eq!(host.snapshots().len(), sim.history.len() + 1);
    }

    #[test]
    fn snapshot_export_filters_to_alive() {
        let report = tiny();
        let t = SimDate::from_year(2008.0);
        let snap = snapshot_to_trace(&report.fleet, t);
        assert_eq!(snap.len(), report.fleet.active_at(t));
        for h in snap.hosts() {
            assert!(h.is_active_at(t));
        }
    }

    #[test]
    fn columnar_export_matches_row_detour() {
        let report = tiny();
        let end = report.scenario.end;
        let direct = fleet_to_columnar(&report.fleet, end);
        let via_rows = ColumnarTrace::from(&fleet_to_trace(&report.fleet, end));
        assert_eq!(direct, via_rows);
        // And it round-trips back to the exact row trace.
        assert_eq!(
            direct.to_trace().hosts(),
            fleet_to_trace(&report.fleet, end).hosts()
        );
    }

    #[test]
    fn exported_resources_round_trip() {
        let report = tiny();
        let trace = fleet_to_trace(&report.fleet, report.scenario.end);
        for sim in report.fleet.iter().take(50) {
            let rec = trace.host(sim.id.into()).unwrap();
            let first = &rec.snapshots()[0];
            let draw = &sim.history[0];
            assert_eq!(first.cores, draw.resources.cores);
            assert_eq!(first.memory_mb, draw.resources.memory_mb);
            assert_eq!(first.avail_disk_gb, draw.resources.avail_disk_gb);
            assert!(first.total_disk_gb > first.avail_disk_gb);
        }
    }
}
