//! The population-dynamics engine: drives every shard's event queue
//! through simulated time, in parallel, with bitwise-deterministic
//! results at any thread count.
//!
//! ## Determinism contract
//!
//! * The arrival schedule is a serial function of `(seed)` drawn from a
//!   dedicated substream ([`crate::timeline::ARRIVALS_STREAM`]).
//! * Host `id` draws every random quantity from its own substream
//!   `substream(seed, id)`, in a fixed order, so a host's life depends
//!   only on `(seed, id, arrival time)`.
//! * Hosts are assigned to shard `id % shard_count`; shards simulate
//!   independently and their partial statistics merge in shard order.
//!
//! Consequences: the same scenario gives the same fleet and series on
//! 1 thread or 64; and two scenarios differing only in `max_hosts`
//! produce fleets where the smaller is an exact prefix of the larger.

use crate::fleet::{Fleet, ResourceDraw, Shard, SimHost};
use crate::scenario::{MarketShift, RefreshPolicy, Scenario};
use crate::stats::{SnapshotStats, TimeSeries};
use crate::timeline::{arrival_schedule, EventKind, EventQueue};
use rand::rngs::StdRng;
use rand::RngExt;
use rayon::prelude::*;
use resmodel_avail::Schedule;
use resmodel_core::{HostGenerator, HostModel};
use resmodel_error::ResmodelError;
use resmodel_obs::Collector;
use resmodel_stats::rng::{seeded_substream, substream};
use resmodel_stats::Distribution;
use resmodel_trace::{CpuFamily, OsFamily, SimDate};

/// Substream salt for on-demand availability schedules, distinct from
/// the host's main life stream.
const AVAIL_SCHEDULE_SALT: u64 = 0x5EED_AB1E_0000_0001;

/// Everything one engine run produces.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// Every host simulated, sharded.
    pub fleet: Fleet,
    /// Streaming statistics, one entry per snapshot date.
    pub series: TimeSeries,
}

impl EngineReport {
    /// Deterministic on-demand ON/OFF availability schedule for one
    /// host over `horizon_hours`, when the scenario models
    /// availability. Derived from a dedicated substream, so it is
    /// stable across calls and independent of the engine run itself.
    pub fn availability_schedule(&self, host_id: u64, horizon_hours: f64) -> Option<Schedule> {
        let model = self.scenario.availability.as_ref()?;
        let host = self.fleet.host(host_id)?;
        let params = model.class(host.class?)?;
        let mut rng = seeded_substream(substream(self.scenario.seed, host_id), AVAIL_SCHEDULE_SALT);
        Some(model.schedule_for(params, horizon_hours, &mut rng))
    }
}

/// Run a scenario to completion.
///
/// # Errors
///
/// Returns the scenario's validation error, if any; the simulation
/// itself cannot fail.
pub fn run(scenario: &Scenario) -> Result<EngineReport, ResmodelError> {
    run_observed(scenario, &Collector::disabled())
}

/// [`run`] with metrics: event counts, per-shard queue depths, and an
/// events/sec gauge flow into `obs` out-of-band. The returned report
/// is byte-identical to [`run`]'s — instrumentation never touches the
/// simulation state.
///
/// # Errors
///
/// Returns the scenario's validation error, if any.
pub fn run_observed(scenario: &Scenario, obs: &Collector) -> Result<EngineReport, ResmodelError> {
    scenario.validate()?;
    let model = HostModel::paper();
    run_with_model_observed(scenario, &model, obs)
}

/// Run a scenario against an explicit generative host model (e.g. a
/// refitted one) instead of the paper constants.
///
/// # Errors
///
/// Returns the scenario's validation error, if any.
pub fn run_with_model(
    scenario: &Scenario,
    model: &HostModel,
) -> Result<EngineReport, ResmodelError> {
    run_with_model_observed(scenario, model, &Collector::disabled())
}

/// [`run_with_model`] with metrics (see [`run_observed`]).
///
/// # Errors
///
/// Returns the scenario's validation error, if any.
pub fn run_with_model_observed(
    scenario: &Scenario,
    model: &HostModel,
    obs: &Collector,
) -> Result<EngineReport, ResmodelError> {
    scenario.validate()?;
    let _span = obs.span("engine");
    let t0 = std::time::Instant::now();
    let arrivals = arrival_schedule(
        scenario.seed,
        scenario.start,
        scenario.end,
        scenario.max_hosts,
        |t| scenario.arrivals.rate(t),
    );

    let shard_count = scenario.shard_count;
    let mut shard_inputs: Vec<Vec<(u64, SimDate)>> = vec![Vec::new(); shard_count];
    for (id, &created) in arrivals.iter().enumerate() {
        shard_inputs[id % shard_count].push((id as u64, created));
    }
    let dates = scenario.snapshot_dates();

    // Shards are independent: simulate them on however many threads
    // rayon offers; outputs are collected in shard order either way.
    let outcomes: Vec<ShardOutcome> = shard_inputs
        .par_iter()
        .map(|input| run_shard(scenario, model, &dates, input))
        .collect();

    // Deterministic merge: shard order, then snapshot order.
    let mut series = TimeSeries::default();
    for (k, &t) in dates.iter().enumerate() {
        let mut merged = SnapshotStats::empty(t);
        for outcome in &outcomes {
            merged.merge(&outcome.partials[k]);
        }
        series.snapshots.push(merged);
    }
    if obs.is_enabled() {
        record_engine_metrics(obs, &outcomes, t0.elapsed());
    }
    let fleet = Fleet::from_shards(outcomes.into_iter().map(|o| o.shard).collect());

    Ok(EngineReport {
        scenario: scenario.clone(),
        fleet,
        series,
    })
}

/// Fold per-shard tallies into the collector, in shard order. Every
/// quantity except the events/sec gauge is a pure function of the
/// scenario, so the deterministic metric sections stay identical at
/// any thread count.
fn record_engine_metrics(obs: &Collector, outcomes: &[ShardOutcome], wall: std::time::Duration) {
    let mut events: u64 = 0;
    for outcome in outcomes {
        let tally = &outcome.tally;
        events += tally.events;
        obs.record_u64("popsim.queue_depth_peak", tally.peak_queue_depth);
        obs.record_u64("popsim.shard_hosts", outcome.shard.hosts.len() as u64);
    }
    obs.add("popsim.runs", 1);
    obs.add("popsim.events", events);
    obs.add(
        "popsim.hosts_arrived",
        outcomes.iter().map(|o| o.tally.arrivals).sum(),
    );
    obs.add(
        "popsim.hosts_departed",
        outcomes.iter().map(|o| o.tally.deaths).sum(),
    );
    obs.add(
        "popsim.refreshes",
        outcomes.iter().map(|o| o.tally.refreshes).sum(),
    );
    obs.add(
        "popsim.snapshot_observations",
        outcomes.iter().map(|o| o.tally.snapshot_observations).sum(),
    );
    let secs = wall.as_secs_f64();
    if secs > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        obs.set_gauge("popsim.events_per_sec", events as f64 / secs);
    }
}

/// Deterministic per-shard event tallies, accumulated inline in the
/// hot loop (a handful of integer increments per event) and merged
/// into the [`Collector`] afterwards.
#[derive(Default)]
struct ShardTally {
    events: u64,
    arrivals: u64,
    refreshes: u64,
    deaths: u64,
    snapshot_observations: u64,
    peak_queue_depth: u64,
}

struct ShardOutcome {
    shard: Shard,
    partials: Vec<SnapshotStats>,
    tally: ShardTally,
}

/// Drain one shard's event queue from scenario start to end.
fn run_shard(
    scenario: &Scenario,
    model: &HostModel,
    dates: &[SimDate],
    input: &[(u64, SimDate)],
) -> ShardOutcome {
    // Every host contributes at most an Arrive, a Death and one
    // pending Refresh; sizing for all three up front keeps the heap
    // from reallocating mid-run.
    let mut queue = EventQueue::with_capacity(3 * input.len() + dates.len());
    for (local, (_, created)) in input.iter().enumerate() {
        queue.push(*created, EventKind::Arrive(local as u32));
    }
    for (k, &t) in dates.iter().enumerate() {
        queue.push(t, EventKind::Snapshot(k as u32));
    }

    let mut hosts: Vec<SimHost> = Vec::with_capacity(input.len());
    let mut rngs: Vec<StdRng> = Vec::with_capacity(input.len());
    let mut partials: Vec<SnapshotStats> = dates.iter().map(|&t| SnapshotStats::empty(t)).collect();
    let mut arrived: u64 = 0;
    let mut departed: u64 = 0;

    // Live-host partition: `alive` holds local indices of hosts whose
    // Death event has not fired, `alive_pos[i]` their position in it
    // (`u32::MAX` once dead). Snapshots scan only the live set, so a
    // run costs O(snapshots × alive) rather than O(snapshots × ever
    // arrived). Swap-removal makes the observation order a (fully
    // deterministic) function of the event sequence, not of insertion.
    const DEAD: u32 = u32::MAX;
    let mut alive: Vec<u32> = Vec::with_capacity(input.len());
    let mut alive_pos: Vec<u32> = Vec::with_capacity(input.len());

    // Lifetime draws share one validated law: only the scale varies
    // with the creation date, so hoist the shape (and its validation)
    // out of the per-arrival path. Weibull sampling multiplies the
    // scale into a unit-scale variate, so scaling the unit draw is
    // bitwise identical to constructing the scaled distribution.
    let unit_lifetime = resmodel_stats::distributions::Weibull::new(scenario.lifetime.shape, 1.0)
        .expect("validated lifetime law");

    let mut tally = ShardTally {
        peak_queue_depth: queue.len() as u64,
        ..ShardTally::default()
    };

    while let Some(event) = queue.pop() {
        tally.events += 1;
        tally.peak_queue_depth = tally.peak_queue_depth.max(queue.len() as u64 + 1);
        let now = SimDate::from_days(event.at_days);
        match event.kind {
            EventKind::Arrive(i) => {
                let (id, created) = input[i as usize];
                debug_assert_eq!(hosts.len(), i as usize);
                let mut rng = seeded_substream(scenario.seed, id);
                let host = spawn_host(scenario, model, &unit_lifetime, id, created, &mut rng);
                arrived += 1;
                tally.arrivals += 1;
                if host.death <= scenario.end {
                    queue.push(host.death, EventKind::Death(i));
                }
                if let Some(at) = next_refresh(scenario, created, &host, &mut rng) {
                    queue.push(at, EventKind::Refresh(i));
                }
                alive_pos.push(alive.len() as u32);
                alive.push(i);
                hosts.push(host);
                rngs.push(rng);
            }
            EventKind::Refresh(i) => {
                tally.refreshes += 1;
                let host = &mut hosts[i as usize];
                let rng = &mut rngs[i as usize];
                refresh_host(scenario, model, host, now, rng);
                if let Some(at) = next_refresh(scenario, now, host, rng) {
                    queue.push(at, EventKind::Refresh(i));
                }
            }
            EventKind::Snapshot(k) => {
                let partial = &mut partials[k as usize];
                partial.arrived = arrived;
                partial.departed = departed;
                tally.snapshot_observations += alive.len() as u64;
                for &i in &alive {
                    let host = &hosts[i as usize];
                    debug_assert!(host.alive_at(now));
                    partial.observe(host);
                }
            }
            EventKind::Death(i) => {
                departed += 1;
                tally.deaths += 1;
                let pos = alive_pos[i as usize] as usize;
                alive.swap_remove(pos);
                if let Some(&moved) = alive.get(pos) {
                    alive_pos[moved as usize] = pos as u32;
                }
                alive_pos[i as usize] = DEAD;
            }
        }
    }

    ShardOutcome {
        shard: Shard { hosts },
        partials,
        tally,
    }
}

/// Materialise a host at its arrival instant. Draw order is fixed and
/// documented; changing it is a determinism-breaking change.
fn spawn_host(
    scenario: &Scenario,
    model: &HostModel,
    unit_lifetime: &resmodel_stats::distributions::Weibull,
    id: u64,
    created: SimDate,
    rng: &mut StdRng,
) -> SimHost {
    // 1. Resources from the correlated generative model at the
    //    arrival date.
    let resources = model.generate_host(created, rng);

    // 2. Market composition (optionally shifted).
    let os = sample_os(scenario.market.as_ref(), created, rng.random::<f64>());
    let cpu = sample_cpu(scenario.market.as_ref(), created, rng.random::<f64>());

    // 3. GPU, when recording has started and the model says so.
    let (gpu, gpu_since) = sample_gpu(scenario, created, rng);

    // 4. Availability behaviour class.
    let (class, availability) = match &scenario.availability {
        Some(avail) => {
            let class = avail.sample_class(rng);
            let a = avail
                .class(class)
                .map(|p| p.steady_state_availability())
                .unwrap_or(1.0);
            (Some(class), a)
        }
        None => (None, 1.0),
    };

    // 5. Weibull lifetime with the creation-date trend. The unit-scale
    //    draw times the date-dependent scale equals the scaled
    //    distribution's draw bit for bit (`scale · x^{1/k}` either way).
    let lifetime_days = scenario.lifetime.scale_at(created) * unit_lifetime.sample(rng);
    let death = created + lifetime_days;

    SimHost {
        id,
        created,
        death,
        resources,
        os,
        cpu,
        gpu,
        gpu_since,
        class,
        availability,
        history: vec![ResourceDraw {
            at: created,
            resources,
        }],
    }
}

/// Re-draw a live host's hardware at a refresh instant.
fn refresh_host(
    scenario: &Scenario,
    model: &HostModel,
    host: &mut SimHost,
    now: SimDate,
    rng: &mut StdRng,
) {
    host.resources = model.generate_host(now, rng);
    host.history.push(ResourceDraw {
        at: now,
        resources: host.resources,
    });
    // A refresh after recording began may surface a GPU on a host that
    // had none (new machines increasingly ship with one).
    if host.gpu.is_none() {
        let (gpu, since) = sample_gpu(scenario, now, rng);
        if gpu.is_some() {
            host.gpu = gpu;
            host.gpu_since = since;
        }
    }
}

/// The next refresh date after `after`, or `None` when the host dies
/// or the scenario ends first.
fn next_refresh(
    scenario: &Scenario,
    after: SimDate,
    host: &SimHost,
    rng: &mut StdRng,
) -> Option<SimDate> {
    let RefreshPolicy::Periodic {
        interval_days,
        jitter_days,
    } = scenario.refresh
    else {
        return None;
    };
    let jitter = if jitter_days > 0.0 {
        rng.random_range(-jitter_days..jitter_days)
    } else {
        0.0
    };
    let at = after + (interval_days + jitter).max(1.0);
    (at < host.death && at <= scenario.end).then_some(at)
}

/// Sample a GPU per the scenario's adoption model and recording rule.
fn sample_gpu(
    scenario: &Scenario,
    at: SimDate,
    rng: &mut StdRng,
) -> (
    Option<resmodel_core::gpu_model::GeneratedGpu>,
    Option<SimDate>,
) {
    let Some(model) = &scenario.gpu.model else {
        return (None, None);
    };
    if at.year() < scenario.gpu.recording_start_year {
        return (None, None);
    }
    match model.sample(at, rng) {
        Some(gpu) => (Some(gpu), Some(at)),
        None => (None, None),
    }
}

/// Pick from a normalised `(item, weight)` table with uniform draw
/// `u`, with the trace crate's categorical-walk semantics (accumulate
/// clamped weights, fall back to the last entry) but no weight-vector
/// allocation — this runs once per host draw. Callers pass
/// [`blend_shares`] output, which always sums to 1.
fn pick_share<T: Copy>(shares: &[(T, f64)], u: f64) -> T {
    assert!(!shares.is_empty(), "cannot pick from empty shares");
    let mut acc = 0.0;
    for &(item, w) in shares {
        acc += w.max(0.0);
        if u < acc {
            return item;
        }
    }
    shares[shares.len() - 1].0
}

/// Blend the paper's historical share table with a shift target.
fn blend_shares<T: Copy + PartialEq>(
    table: Vec<(T, f64)>,
    target: &[(T, f64)],
    blend: f64,
) -> Vec<(T, f64)> {
    if target.is_empty() || blend <= 0.0 {
        return table;
    }
    let table_total: f64 = table.iter().map(|(_, w)| w).sum();
    let target_total: f64 = target.iter().map(|(_, w)| w).sum();
    table
        .into_iter()
        .map(|(item, w)| {
            let tw = target
                .iter()
                .find(|(t, _)| *t == item)
                .map(|(_, w)| *w)
                .unwrap_or(0.0);
            let blended =
                (1.0 - blend) * w / table_total.max(1e-12) + blend * tw / target_total.max(1e-12);
            (item, blended)
        })
        .collect()
}

fn sample_os(shift: Option<&MarketShift>, at: SimDate, u: f64) -> OsFamily {
    match shift {
        Some(s) if !s.target_os.is_empty() => {
            let table = OsFamily::shares_at(at.year());
            pick_share(&blend_shares(table, &s.target_os, s.blend_at(at)), u)
        }
        _ => OsFamily::sample_at(at.year(), u),
    }
}

fn sample_cpu(shift: Option<&MarketShift>, at: SimDate, u: f64) -> CpuFamily {
    match shift {
        Some(s) if !s.target_cpu.is_empty() => {
            let table = CpuFamily::shares_at(at.year());
            pick_share(&blend_shares(table, &s.target_cpu, s.blend_at(at)), u)
        }
        _ => CpuFamily::sample_at(at.year(), u),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::scenario::ArrivalLaw;

    fn tiny(seed: u64) -> Scenario {
        Scenario {
            max_hosts: 400,
            shard_count: 8,
            arrivals: ArrivalLaw::Exponential {
                base_per_day: 5.0,
                growth_per_year: 0.18,
            },
            ..Scenario::steady_state(seed)
        }
    }

    #[test]
    fn run_is_deterministic() {
        let s = tiny(11);
        let a = run(&s).unwrap();
        let b = run(&s).unwrap();
        assert_eq!(a.fleet, b.fleet);
        assert_eq!(a.series, b.series);
        let c = run(&tiny(12)).unwrap();
        assert_ne!(a.fleet, c.fleet);
    }

    #[test]
    fn observed_run_is_identical_and_counts_events() {
        let s = tiny(11);
        let plain = run(&s).unwrap();
        let obs = Collector::new();
        let observed = run_observed(&s, &obs).unwrap();
        // Instrumentation must not perturb the simulation.
        assert_eq!(plain.fleet, observed.fleet);
        assert_eq!(plain.series, observed.series);
        let m = obs.snapshot();
        assert_eq!(m.counter("popsim.runs"), Some(1));
        assert_eq!(m.counter("popsim.hosts_arrived"), Some(400));
        assert!(m.counter("popsim.events").unwrap() >= 400 + 8);
        assert!(m.counter("popsim.snapshot_observations").unwrap() > 0);
        // One queue-depth sample and one size sample per shard.
        assert_eq!(m.histogram("popsim.queue_depth_peak").unwrap().count, 8);
        assert_eq!(m.histogram("popsim.shard_hosts").unwrap().count, 8);
        assert_eq!(m.spans[0].path, "engine");
    }

    #[test]
    fn fleet_respects_cap_and_ids() {
        let report = run(&tiny(1)).unwrap();
        assert_eq!(report.fleet.len(), 400);
        let hosts = report.fleet.hosts_in_id_order();
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(h.id, i as u64);
            assert!(h.death > h.created);
            assert!(h.resources.cores >= 1);
            assert!(!h.history.is_empty());
            assert_eq!(h.history[0].at, h.created);
        }
        // Arrival order == id order.
        for w in hosts.windows(2) {
            assert!(w[1].created >= w[0].created);
        }
    }

    #[test]
    fn snapshots_track_population() {
        let report = run(&tiny(2)).unwrap();
        assert!(!report.series.is_empty());
        for s in &report.series.snapshots {
            // Cross-check the streaming count against a direct scan.
            assert_eq!(s.active, report.fleet.active_at(s.t) as u64);
            assert_eq!(s.active as usize, s.cores_count(), "moment count mismatch");
            assert!(s.arrived >= s.active + s.departed_before_active_overlap());
        }
        let last = report.series.snapshots.last().unwrap();
        assert_eq!(last.arrived, 400);
    }

    #[test]
    fn refreshes_redraw_hardware() {
        let report = run(&tiny(3)).unwrap();
        let refreshed: usize = report.fleet.iter().map(|h| h.refresh_count()).sum();
        assert!(refreshed > 0, "some long-lived host should refresh");
        for h in report.fleet.iter() {
            for w in h.history.windows(2) {
                assert!(w[1].at > w[0].at);
                assert!(w[1].at < h.death && w[1].at <= report.scenario.end);
            }
            assert_eq!(h.resources, h.history.last().unwrap().resources);
        }
    }

    #[test]
    fn availability_classes_assigned() {
        let report = run(&tiny(4)).unwrap();
        assert!(report.fleet.iter().all(|h| h.class.is_some()));
        assert!(report
            .fleet
            .iter()
            .all(|h| h.availability > 0.0 && h.availability <= 1.0));
        let schedule = report.availability_schedule(0, 24.0 * 30.0).unwrap();
        assert!(schedule.availability_fraction() > 0.0);
        // Deterministic across calls.
        let again = report.availability_schedule(0, 24.0 * 30.0).unwrap();
        assert_eq!(schedule.intervals(), again.intervals());
    }

    #[test]
    fn market_shift_changes_mix() {
        let mut shifted = tiny(5);
        shifted.market = Scenario::market_shift(5).market;
        shifted.end = SimDate::from_year(2011.0);
        // Uncap and slow arrivals so hosts keep arriving through the
        // whole ramp window.
        shifted.max_hosts = 0;
        shifted.arrivals = ArrivalLaw::Exponential {
            base_per_day: 0.6,
            growth_per_year: 0.18,
        };
        let report = run(&shifted).unwrap();
        let late_hosts: Vec<_> = report
            .fleet
            .iter()
            .filter(|h| h.created.year() > 2010.6)
            .collect();
        assert!(!late_hosts.is_empty());
        let win7 = late_hosts
            .iter()
            .filter(|h| h.os == OsFamily::Windows7)
            .count() as f64
            / late_hosts.len() as f64;
        // Historical table: ~9% in 2010; the shifted target is 55%.
        assert!(win7 > 0.25, "Windows 7 share after shift: {win7}");
    }

    #[test]
    fn gpu_wave_raises_adoption() {
        let base = run(&tiny(6)).unwrap();
        let mut wave_scenario = tiny(6);
        wave_scenario.gpu = crate::scenario::GpuScenario::wave(3.0);
        let wave = run(&wave_scenario).unwrap();
        let last_base = base.series.snapshots.last().unwrap().gpu_fraction();
        let last_wave = wave.series.snapshots.last().unwrap().gpu_fraction();
        assert!(
            last_wave >= last_base,
            "wave {last_wave} vs base {last_base}"
        );
    }

    #[test]
    fn share_picker_is_proportional() {
        let shares = vec![("a", 0.75), ("b", 0.25)];
        assert_eq!(pick_share(&shares, 0.0), "a");
        assert_eq!(pick_share(&shares, 0.74), "a");
        assert_eq!(pick_share(&shares, 0.76), "b");
        assert_eq!(pick_share(&shares, 0.999), "b");
    }

    impl SnapshotStats {
        fn cores_count(&self) -> usize {
            self.cores.count() as usize
        }

        fn departed_before_active_overlap(&self) -> u64 {
            // arrived ≥ active always holds; departed hosts may die
            // after the snapshot, so only this weak bound is universal.
            0
        }
    }
}
