//! Scenario configuration: every knob of a population-dynamics run,
//! fully serde-(de)serializable so scenarios can live in files and
//! round-trip through JSON.

use resmodel_avail::AvailabilityModel;
use resmodel_core::gpu_model::GpuModel;
use resmodel_core::RatioLaw;
use resmodel_error::ResmodelError;
use resmodel_trace::gpu::{gpu_memory_weights, gpu_presence_fraction};
use resmodel_trace::{CpuFamily, GpuClass, OsFamily, SimDate};
use serde::{Deserialize, Serialize};

/// Time-varying host arrival process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalLaw {
    /// Constant rate.
    Constant {
        /// Arrivals per day.
        per_day: f64,
    },
    /// The paper's exponential growth `rate(t) = base·e^{g·(year−2006)}`.
    Exponential {
        /// Arrivals per day at the start of 2006.
        base_per_day: f64,
        /// Exponential growth per year.
        growth_per_year: f64,
    },
    /// Exponential background plus a Gaussian burst — a flash crowd
    /// (press coverage, a viral screensaver).
    FlashCrowd {
        /// Background arrivals per day at the start of 2006.
        base_per_day: f64,
        /// Background exponential growth per year.
        growth_per_year: f64,
        /// Burst peak date.
        burst_center: SimDate,
        /// Burst standard deviation, days.
        burst_width_days: f64,
        /// Peak multiplier on the background rate (0 = no burst).
        burst_amplitude: f64,
    },
}

impl ArrivalLaw {
    /// Arrival rate (hosts/day) at `t`.
    pub fn rate(&self, t: SimDate) -> f64 {
        match self {
            ArrivalLaw::Constant { per_day } => *per_day,
            ArrivalLaw::Exponential {
                base_per_day,
                growth_per_year,
            } => base_per_day * (growth_per_year * t.years_since_2006()).exp(),
            ArrivalLaw::FlashCrowd {
                base_per_day,
                growth_per_year,
                burst_center,
                burst_width_days,
                burst_amplitude,
            } => {
                let background = base_per_day * (growth_per_year * t.years_since_2006()).exp();
                let z = (t.days() - burst_center.days()) / burst_width_days.max(1e-9);
                background * (1.0 + burst_amplitude * (-0.5 * z * z).exp())
            }
        }
    }
}

/// Weibull host-lifetime law with the paper's creation-date trend
/// (Fig 1 / Fig 3: newer hosts stay for less time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeLaw {
    /// Weibull shape (paper: 0.58).
    pub shape: f64,
    /// Weibull scale in days for hosts created at the start of 2006.
    pub scale_2006_days: f64,
    /// Exponential trend of the scale per year (negative shrinks).
    pub trend_per_year: f64,
}

impl LifetimeLaw {
    /// The paper's published fit.
    pub fn paper() -> Self {
        Self {
            shape: 0.58,
            scale_2006_days: 185.0,
            trend_per_year: -0.23,
        }
    }

    /// Weibull scale for a host created at `created`.
    pub fn scale_at(&self, created: SimDate) -> f64 {
        (self.scale_2006_days * (self.trend_per_year * created.years_since_2006()).exp()).max(1e-3)
    }
}

/// When a live host's hardware is replaced wholesale (the owner buys a
/// new machine but keeps volunteering), re-drawing its resources from
/// the ratio-law model at the refresh date.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RefreshPolicy {
    /// Hardware is fixed for the host's whole life.
    Never,
    /// Refresh every `interval_days` on average, with a per-host
    /// uniform jitter of ±`jitter_days`.
    Periodic {
        /// Mean days between refreshes.
        interval_days: f64,
        /// Uniform jitter half-width, days.
        jitter_days: f64,
    },
}

/// GPU adoption configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuScenario {
    /// The generative GPU model; `None` disables GPUs entirely.
    pub model: Option<GpuModel>,
    /// GPUs are only sampled for hosts arriving (or refreshing) after
    /// this year (the paper's recording began September 2009).
    pub recording_start_year: f64,
}

impl GpuScenario {
    /// No GPUs.
    pub fn disabled() -> Self {
        Self {
            model: None,
            recording_start_year: 2009.67,
        }
    }

    /// The paper's adoption trajectory (Table VII / Fig 10).
    pub fn paper() -> Self {
        Self {
            model: Some(paper_gpu_model(1.0)),
            recording_start_year: 2009.67,
        }
    }

    /// An accelerated adoption wave: the presence law's growth rate is
    /// multiplied by `boost` (e.g. 2.5 ⇒ most hosts GPU-equipped within
    /// a couple of simulated years).
    pub fn wave(boost: f64) -> Self {
        Self {
            model: Some(paper_gpu_model(boost)),
            recording_start_year: 2009.67,
        }
    }
}

/// Build a [`GpuModel`] from the paper's published GPU tables (the
/// trace crate's presence/share/memory curves), optionally steepening
/// the presence growth by `presence_boost`.
pub fn paper_gpu_model(presence_boost: f64) -> GpuModel {
    let (y0, y1) = (2009.67, 2010.67);
    let two_point = |v0: f64, v1: f64| -> RatioLaw {
        let v0 = v0.max(1e-9);
        let v1 = v1.max(1e-9);
        let b = (v1 / v0).ln() / (y1 - y0);
        let a = v0 * (-b * (y0 - 2006.0)).exp();
        RatioLaw::new(a, b)
    };

    let p0 = gpu_presence_fraction(y0);
    let p1 = gpu_presence_fraction(y1);
    let mut presence = two_point(p0, p1);
    presence.b *= presence_boost;
    // Re-anchor so presence at y0 is unchanged by the boost.
    presence.a = p0 * (-presence.b * (y0 - 2006.0)).exp();

    let shares0 = GpuClass::shares_at(y0);
    let shares1 = GpuClass::shares_at(y1);
    let class_shares = shares0
        .iter()
        .zip(&shares1)
        .map(|((c, s0), (_, s1))| (*c, two_point(*s0, *s1)))
        .collect();

    let mem0 = gpu_memory_weights(y0);
    let mem1 = gpu_memory_weights(y1);
    let memory_ratios = (0..mem0.len().saturating_sub(1))
        .map(|i| {
            let r0 = mem0[i].1.max(1e-9) / mem0[i + 1].1.max(1e-9);
            let r1 = mem1[i].1.max(1e-9) / mem1[i + 1].1.max(1e-9);
            two_point(r0, r1)
        })
        .collect();

    GpuModel {
        presence,
        class_shares,
        memory_ratios,
        presence_r: -1.0,
    }
}

/// A market-composition shift: OS/CPU mixes ramp linearly from the
/// paper's historical tables towards explicit target shares.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketShift {
    /// Target OS shares (relative weights) reached at `ramp_end`.
    pub target_os: Vec<(OsFamily, f64)>,
    /// Target CPU shares (relative weights) reached at `ramp_end`.
    pub target_cpu: Vec<(CpuFamily, f64)>,
    /// When the shift begins.
    pub ramp_start: SimDate,
    /// When the target mix is fully reached.
    pub ramp_end: SimDate,
}

impl MarketShift {
    /// Blend weight of the target mix at `t` (0 before the ramp,
    /// 1 after it).
    pub fn blend_at(&self, t: SimDate) -> f64 {
        let span = self.ramp_end.days() - self.ramp_start.days();
        if span <= 0.0 {
            return if t >= self.ramp_end { 1.0 } else { 0.0 };
        }
        ((t.days() - self.ramp_start.days()) / span).clamp(0.0, 1.0)
    }
}

/// Complete configuration of one population-dynamics run.
///
/// Everything here serializes, so a scenario is a shareable artifact;
/// the engine output is fully determined by `(Scenario)` including its
/// `seed`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (reports, bench labels).
    pub name: String,
    /// Master RNG seed; every host derives its own substream.
    pub seed: u64,
    /// First day hosts may arrive.
    pub start: SimDate,
    /// End of simulated time.
    pub end: SimDate,
    /// Hard cap on total arrivals (`0` = unlimited). Two runs differing
    /// only in this cap share a common host prefix.
    pub max_hosts: usize,
    /// Number of fleet shards. Part of the deterministic result
    /// identity: shards simulate independently, so any thread count
    /// produces bitwise-identical output for a fixed shard count.
    pub shard_count: usize,
    /// Arrival process.
    pub arrivals: ArrivalLaw,
    /// Host lifetime law.
    pub lifetime: LifetimeLaw,
    /// Hardware refresh policy.
    pub refresh: RefreshPolicy,
    /// GPU adoption.
    pub gpu: GpuScenario,
    /// Optional OS/CPU market-share shift.
    pub market: Option<MarketShift>,
    /// Optional availability model; hosts get a behaviour class and a
    /// steady-state availability used by the statistics layer.
    pub availability: Option<AvailabilityModel>,
    /// Days between streaming statistics snapshots.
    pub snapshot_interval_days: f64,
}

impl Scenario {
    /// Baseline knobs shared by the built-in scenarios.
    fn base(name: &str, seed: u64) -> Self {
        Self {
            name: name.to_owned(),
            seed,
            start: SimDate::from_year(2006.0),
            end: SimDate::from_year(2011.0),
            max_hosts: 0,
            shard_count: 64,
            arrivals: ArrivalLaw::Exponential {
                base_per_day: 40.0,
                growth_per_year: 0.18,
            },
            lifetime: LifetimeLaw::paper(),
            refresh: RefreshPolicy::Periodic {
                interval_days: 540.0,
                jitter_days: 120.0,
            },
            gpu: GpuScenario::paper(),
            market: None,
            availability: Some(AvailabilityModel::default_volunteer_mix()),
            snapshot_interval_days: 91.3125, // quarterly
        }
    }

    /// Built-in: steady exponential growth, the closest analogue of the
    /// paper's measured SETI@home population.
    pub fn steady_state(seed: u64) -> Self {
        Self::base("steady-state", seed)
    }

    /// Built-in: a flash crowd — an 8× Gaussian arrival burst around
    /// mid-2008 on top of the steady background.
    pub fn flash_crowd(seed: u64) -> Self {
        Self {
            arrivals: ArrivalLaw::FlashCrowd {
                base_per_day: 40.0,
                growth_per_year: 0.18,
                burst_center: SimDate::from_year(2008.5),
                burst_width_days: 30.0,
                burst_amplitude: 8.0,
            },
            ..Self::base("flash-crowd", seed)
        }
    }

    /// Built-in: a GPU-adoption wave — the presence law's growth rate
    /// is boosted 2.5× so the fleet's GPU fraction climbs steeply.
    pub fn gpu_wave(seed: u64) -> Self {
        Self {
            gpu: GpuScenario::wave(2.5),
            ..Self::base("gpu-wave", seed)
        }
    }

    /// Built-in: a market-share shift — from 2008 the OS mix ramps
    /// towards a Windows 7 + Linux dominated fleet and the CPU mix
    /// towards Intel Core 2, regardless of the historical tables.
    pub fn market_shift(seed: u64) -> Self {
        Self {
            market: Some(MarketShift {
                target_os: vec![
                    (OsFamily::Windows7, 55.0),
                    (OsFamily::Linux, 25.0),
                    (OsFamily::MacOsX, 15.0),
                    (OsFamily::WindowsXp, 5.0),
                ],
                target_cpu: vec![
                    (CpuFamily::IntelCore2, 70.0),
                    (CpuFamily::OtherAmd, 20.0),
                    (CpuFamily::Pentium4, 10.0),
                ],
                ramp_start: SimDate::from_year(2008.0),
                ramp_end: SimDate::from_year(2010.5),
            }),
            ..Self::base("market-shift", seed)
        }
    }

    /// All built-in scenarios, with the given seed.
    pub fn all_builtin(seed: u64) -> Vec<Scenario> {
        vec![
            Self::steady_state(seed),
            Self::flash_crowd(seed),
            Self::gpu_wave(seed),
            Self::market_shift(seed),
        ]
    }

    /// Look up a built-in scenario by name.
    pub fn builtin(name: &str, seed: u64) -> Option<Scenario> {
        match name {
            "steady-state" => Some(Self::steady_state(seed)),
            "flash-crowd" => Some(Self::flash_crowd(seed)),
            "gpu-wave" => Some(Self::gpu_wave(seed)),
            "market-shift" => Some(Self::market_shift(seed)),
            _ => None,
        }
    }

    /// Statistics snapshot dates: `start + k·interval` for `k ≥ 1`, up
    /// to and including `end`.
    pub fn snapshot_dates(&self) -> Vec<SimDate> {
        let mut dates = Vec::new();
        let mut t = self.start.days() + self.snapshot_interval_days;
        while t <= self.end.days() + 1e-9 {
            dates.push(SimDate::from_days(t));
            t += self.snapshot_interval_days;
        }
        dates
    }

    /// Validate parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a [`ResmodelError::Config`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ResmodelError> {
        let bad = |message: &str| Err(ResmodelError::config("scenario", message));
        if self.end <= self.start {
            return bad("end must be after start");
        }
        if self.shard_count == 0 {
            return bad("shard_count must be at least 1");
        }
        if !(self.snapshot_interval_days > 0.0) {
            return bad("snapshot_interval_days must be > 0");
        }
        if !(self.lifetime.shape > 0.0) || !(self.lifetime.scale_2006_days > 0.0) {
            return bad("lifetime shape and scale must be > 0");
        }
        match &self.arrivals {
            ArrivalLaw::Constant { per_day } if !(*per_day > 0.0) => {
                return bad("arrival rate must be > 0");
            }
            ArrivalLaw::Exponential { base_per_day, .. }
            | ArrivalLaw::FlashCrowd { base_per_day, .. }
                if !(*base_per_day > 0.0) =>
            {
                return bad("base arrival rate must be > 0");
            }
            _ => {}
        }
        if let RefreshPolicy::Periodic {
            interval_days,
            jitter_days,
        } = self.refresh
        {
            if !(interval_days > 0.0) {
                return bad("refresh interval must be > 0");
            }
            if jitter_days < 0.0 || jitter_days >= interval_days {
                return bad("refresh jitter must be in [0, interval)");
            }
        }
        if let Some(shift) = &self.market {
            if shift.target_os.is_empty() && shift.target_cpu.is_empty() {
                return bad("market shift needs at least one target mix");
            }
            let os_ok = shift.target_os.iter().all(|(_, w)| *w >= 0.0);
            let cpu_ok = shift.target_cpu.iter().all(|(_, w)| *w >= 0.0);
            if !os_ok || !cpu_ok {
                return bad("market shares must be non-negative");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn builtins_validate() {
        for s in Scenario::all_builtin(7) {
            assert!(s.validate().is_ok(), "{} invalid", s.name);
        }
    }

    #[test]
    fn builtin_lookup_matches_names() {
        for s in Scenario::all_builtin(1) {
            let found = Scenario::builtin(&s.name, 1).expect("builtin resolves");
            assert_eq!(found, s);
        }
        assert!(Scenario::builtin("no-such", 1).is_none());
    }

    #[test]
    fn flash_crowd_peaks_at_center() {
        let law = ArrivalLaw::FlashCrowd {
            base_per_day: 10.0,
            growth_per_year: 0.0,
            burst_center: SimDate::from_year(2008.5),
            burst_width_days: 30.0,
            burst_amplitude: 8.0,
        };
        let peak = law.rate(SimDate::from_year(2008.5));
        let off = law.rate(SimDate::from_year(2009.5));
        assert!((peak - 90.0).abs() < 1e-9, "peak {peak}");
        assert!(off < 11.0, "off-peak {off}");
    }

    #[test]
    fn lifetime_scale_shrinks() {
        let law = LifetimeLaw::paper();
        assert!(
            law.scale_at(SimDate::from_year(2006.0))
                > law.scale_at(SimDate::from_year(2009.0)) * 1.5
        );
    }

    #[test]
    fn gpu_model_tracks_paper_points() {
        let gpu = paper_gpu_model(1.0);
        let p2009 = gpu.presence_at(SimDate::from_year(2009.67));
        let p2010 = gpu.presence_at(SimDate::from_year(2010.67));
        assert!((p2009 - 0.127).abs() < 0.01, "2009 presence {p2009}");
        assert!((p2010 - 0.238).abs() < 0.01, "2010 presence {p2010}");
    }

    #[test]
    fn gpu_wave_accelerates_presence() {
        let base = paper_gpu_model(1.0);
        let wave = paper_gpu_model(2.5);
        let d = SimDate::from_year(2011.5);
        assert!(wave.presence_at(d) > base.presence_at(d));
        // Boost is anchored: identical at the recording start.
        let d0 = SimDate::from_year(2009.67);
        assert!((wave.presence_at(d0) - base.presence_at(d0)).abs() < 1e-9);
    }

    #[test]
    fn market_blend_ramps() {
        let shift = Scenario::market_shift(1).market.unwrap();
        assert_eq!(shift.blend_at(SimDate::from_year(2007.0)), 0.0);
        assert_eq!(shift.blend_at(SimDate::from_year(2011.0)), 1.0);
        let mid = shift.blend_at(SimDate::from_year(2009.25));
        assert!(mid > 0.3 && mid < 0.7, "mid {mid}");
    }

    #[test]
    fn snapshot_dates_cover_window() {
        let s = Scenario::steady_state(1);
        let dates = s.snapshot_dates();
        assert!(!dates.is_empty());
        assert!(dates[0] > s.start);
        assert!(*dates.last().unwrap() <= s.end);
        assert_eq!(dates.len(), 20); // five years, quarterly
    }

    #[test]
    fn invalid_scenarios_rejected() {
        let mut s = Scenario::steady_state(1);
        s.end = s.start;
        assert!(s.validate().is_err());
        let mut s = Scenario::steady_state(1);
        s.shard_count = 0;
        assert!(s.validate().is_err());
        let mut s = Scenario::steady_state(1);
        s.refresh = RefreshPolicy::Periodic {
            interval_days: 100.0,
            jitter_days: 100.0,
        };
        assert!(s.validate().is_err());
    }
}
