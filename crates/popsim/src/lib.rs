//! # resmodel-popsim
//!
//! A deterministic, data-parallel **population dynamics engine** for
//! the `resmodel` workspace: it evolves a fleet of correlated Internet
//! end hosts through simulated time — arrivals from a time-varying
//! Poisson process, Weibull lifetimes with the paper's creation-date
//! trend, periodic hardware refreshes that re-draw resources from the
//! ratio-law model at the refresh date — and streams typed per-snapshot
//! statistics (population counts, resource moments, GPU adoption,
//! availability, Cobb–Douglas utility) as it goes.
//!
//! ## Architecture
//!
//! * [`scenario`] — fully serde-serializable configuration with four
//!   built-ins: `steady-state`, `flash-crowd`, `gpu-wave` and
//!   `market-shift` ([`Scenario::all_builtin`]).
//! * [`timeline`] — the nonhomogeneous-Poisson arrival sampler and the
//!   per-shard event queue (arrive / refresh / snapshot / death).
//! * [`fleet`] — the sharded host store; host `id` lives in shard
//!   `id % shard_count`, a pure function of the scenario.
//! * [`engine`] — drains every shard's queue on rayon threads; results
//!   are **bitwise identical at any thread count**, and fleets capped
//!   at different sizes share a common host prefix.
//! * [`stats`] — streaming snapshot statistics with deterministic
//!   shard-order merges.
//! * [`export`] — fleet → [`resmodel_trace::Trace`] bridges back into
//!   the fitting/validation pipeline.
//!
//! ## Quick start
//!
//! ```
//! use resmodel_popsim::{engine, Scenario};
//!
//! let mut scenario = Scenario::flash_crowd(42);
//! scenario.max_hosts = 2_000; // keep the doc test fast
//! let report = engine::run(&scenario).unwrap();
//! assert_eq!(report.fleet.len(), 2_000);
//! let peak = report
//!     .series
//!     .snapshots
//!     .iter()
//!     .max_by_key(|s| s.active)
//!     .unwrap();
//! assert!(peak.active > 0);
//! ```

#![warn(clippy::unwrap_used)]

pub mod engine;
pub mod export;
pub mod fleet;
pub mod scenario;
pub mod stats;
pub mod timeline;

pub use engine::{run, EngineReport};
pub use export::{fleet_to_columnar, fleet_to_trace, snapshot_to_trace};
pub use fleet::{Fleet, Shard, SimHost};
pub use scenario::{ArrivalLaw, LifetimeLaw, RefreshPolicy, Scenario};
pub use stats::{Moments, SnapshotStats, TimeSeries};
pub use timeline::PoissonArrivals;
