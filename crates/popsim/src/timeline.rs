//! The event-driven timeline: a nonhomogeneous-Poisson arrival sampler
//! and the per-shard event queue the engine drains in time order.

use rand::rngs::StdRng;
use rand::RngExt;
use resmodel_stats::rng::seeded_substream;
use resmodel_trace::SimDate;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Substream label reserved for the arrival process (hosts use their
/// own id as label, so `u64::MAX` can never collide — the arrival
/// count is bounded far below it).
pub const ARRIVALS_STREAM: u64 = u64::MAX;

/// Sequential sampler of a nonhomogeneous Poisson arrival process.
///
/// Gaps are exponential with the rate evaluated at the current time (a
/// first-order thinning approximation, exact for piecewise-constant
/// rates) — the same scheme the BOINC world simulation has always
/// used, so a fixed `(seed, rate)` pair reproduces its historical
/// arrival stream bit for bit.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rng: StdRng,
    t: SimDate,
}

impl PoissonArrivals {
    /// Sampler starting at `start`, drawing from the dedicated arrival
    /// substream of `seed`.
    pub fn new(seed: u64, start: SimDate) -> Self {
        Self {
            rng: seeded_substream(seed, ARRIVALS_STREAM),
            t: start,
        }
    }

    /// Advance to and return the next arrival time. `rate_at` is the
    /// instantaneous rate in hosts/day (floored at `1e-9`).
    pub fn next_arrival(&mut self, rate_at: impl Fn(SimDate) -> f64) -> SimDate {
        let rate = rate_at(self.t).max(1e-9);
        let u: f64 = self.rng.random::<f64>();
        self.t = self.t + (-(1.0 - u).ln() / rate);
        self.t
    }

    /// Current position of the sampler.
    pub fn now(&self) -> SimDate {
        self.t
    }
}

/// Sample the full arrival schedule: every arrival in `(start, end]`,
/// capped at `max_hosts` arrivals when non-zero.
///
/// The schedule is a *prefix-stable* function of the seed: extending
/// `end` or raising `max_hosts` appends arrivals without changing the
/// existing ones.
pub fn arrival_schedule(
    seed: u64,
    start: SimDate,
    end: SimDate,
    max_hosts: usize,
    rate_at: impl Fn(SimDate) -> f64,
) -> Vec<SimDate> {
    let mut sampler = PoissonArrivals::new(seed, start);
    let mut arrivals = Vec::new();
    loop {
        let t = sampler.next_arrival(&rate_at);
        if t > end {
            break;
        }
        arrivals.push(t);
        if max_hosts > 0 && arrivals.len() >= max_hosts {
            break;
        }
    }
    arrivals
}

/// What happens at a point on a shard's timeline.
///
/// The `u32` payloads are *shard-local* host indices; `Snapshot`
/// carries the snapshot's index in the scenario's date grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A host arrives and is materialised.
    Arrive(u32),
    /// A live host's hardware is refreshed (resources re-drawn at the
    /// refresh date).
    Refresh(u32),
    /// Streaming statistics snapshot `k`.
    Snapshot(u32),
    /// A host departs.
    Death(u32),
}

impl EventKind {
    /// Tie-break rank at equal timestamps: arrivals and refreshes are
    /// visible to a same-instant snapshot; deaths are not (the activity
    /// rule is inclusive: a host is active at its last instant).
    fn rank(&self) -> u8 {
        match self {
            EventKind::Arrive(_) => 0,
            EventKind::Refresh(_) => 1,
            EventKind::Snapshot(_) => 2,
            EventKind::Death(_) => 3,
        }
    }

    fn index(&self) -> u32 {
        match self {
            EventKind::Arrive(i)
            | EventKind::Refresh(i)
            | EventKind::Snapshot(i)
            | EventKind::Death(i) => *i,
        }
    }
}

/// A timestamped event with a total, deterministic order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event time, days since the epoch.
    pub at_days: f64,
    /// What happens.
    pub kind: EventKind,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at_days
            .total_cmp(&other.at_days)
            .then_with(|| self.kind.rank().cmp(&other.kind.rank()))
            .then_with(|| self.kind.index().cmp(&other.kind.index()))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-heap event queue with a total, deterministic pop order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<std::cmp::Reverse<Event>>,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty queue with room for `capacity` events, so a shard's
    /// initial arrival + snapshot schedule pushes without reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Schedule an event.
    pub fn push(&mut self, at: SimDate, kind: EventKind) {
        self.heap.push(std::cmp::Reverse(Event {
            at_days: at.days(),
            kind,
        }));
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|r| r.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_increasing_and_deterministic() {
        let rate = |_: SimDate| 5.0;
        let a = arrival_schedule(
            9,
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            0,
            rate,
        );
        let b = arrival_schedule(
            9,
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            0,
            rate,
        );
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[1] >= w[0]));
        // ~5/day over a year.
        assert!(a.len() > 1400 && a.len() < 2300, "{}", a.len());
    }

    #[test]
    fn schedule_is_prefix_stable() {
        let rate = |_: SimDate| 10.0;
        let start = SimDate::from_year(2006.0);
        let small = arrival_schedule(3, start, SimDate::from_year(2008.0), 50, rate);
        let large = arrival_schedule(3, start, SimDate::from_year(2008.0), 500, rate);
        assert_eq!(small.len(), 50);
        assert_eq!(&large[..50], &small[..]);
        let longer = arrival_schedule(3, start, SimDate::from_year(2009.0), 500, rate);
        assert_eq!(longer, large);
    }

    #[test]
    fn cap_of_zero_means_unlimited() {
        let rate = |_: SimDate| 1.0;
        let all = arrival_schedule(
            4,
            SimDate::from_year(2006.0),
            SimDate::from_year(2006.2),
            0,
            rate,
        );
        assert!(all.iter().all(|t| t.year() <= 2006.2 + 1e-9));
    }

    #[test]
    fn event_order_breaks_ties_by_rank() {
        let mut q = EventQueue::new();
        let t = SimDate::from_year(2007.0);
        q.push(t, EventKind::Death(0));
        q.push(t, EventKind::Snapshot(1));
        q.push(t, EventKind::Arrive(2));
        q.push(t, EventKind::Refresh(3));
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|e| e.kind.rank())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn event_order_is_time_first() {
        let mut q = EventQueue::new();
        q.push(SimDate::from_year(2008.0), EventKind::Arrive(0));
        q.push(SimDate::from_year(2006.0), EventKind::Death(1));
        assert_eq!(q.len(), 2);
        assert!(matches!(q.pop().unwrap().kind, EventKind::Death(1)));
        assert!(matches!(q.pop().unwrap().kind, EventKind::Arrive(0)));
    }
}
