//! The sharded fleet store: simulated hosts partitioned into
//! independent shards so simulation parallelises without any
//! cross-thread coordination.

use resmodel_avail::HostClass;
use resmodel_core::gpu_model::GeneratedGpu;
use resmodel_core::GeneratedHost;
use resmodel_trace::{CpuFamily, OsFamily, SimDate};
use serde::{Deserialize, Serialize};

/// One (re-)draw of a host's hardware: the resources in force from
/// `at` until the next draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceDraw {
    /// When the hardware was (re-)drawn.
    pub at: SimDate,
    /// The drawn resources.
    pub resources: GeneratedHost,
}

/// A simulated host: identity, life span, hardware history and
/// behavioural attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimHost {
    /// Fleet-wide id; equals the host's arrival index.
    pub id: u64,
    /// Arrival date.
    pub created: SimDate,
    /// Departure date (may exceed the scenario end).
    pub death: SimDate,
    /// Current (latest-drawn) resources.
    pub resources: GeneratedHost,
    /// OS family at arrival.
    pub os: OsFamily,
    /// CPU family at arrival.
    pub cpu: CpuFamily,
    /// GPU, when the host reported one.
    pub gpu: Option<GeneratedGpu>,
    /// When the GPU became visible (recording-start rule).
    pub gpu_since: Option<SimDate>,
    /// Availability behaviour class, when the scenario models one.
    pub class: Option<HostClass>,
    /// Long-run availability in `[0, 1]` (1 when not modelled).
    pub availability: f64,
    /// Hardware draws, time-ordered: the arrival draw plus one per
    /// refresh that happened before death/end.
    pub history: Vec<ResourceDraw>,
}

impl SimHost {
    /// The paper's activity rule: alive at `t` iff
    /// `created ≤ t ≤ death`.
    pub fn alive_at(&self, t: SimDate) -> bool {
        self.created <= t && t <= self.death
    }

    /// Resources in force at `t`: the latest draw at or before `t`;
    /// `None` before arrival.
    pub fn resources_at(&self, t: SimDate) -> Option<&GeneratedHost> {
        self.history
            .iter()
            .rev()
            .find(|d| d.at <= t)
            .map(|d| &d.resources)
    }

    /// Number of hardware refreshes the host went through.
    pub fn refresh_count(&self) -> usize {
        self.history.len().saturating_sub(1)
    }
}

/// One shard: the subset of hosts with `id % shard_count == index`,
/// stored in ascending id (= arrival) order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Shard {
    /// Hosts, ascending by id.
    pub hosts: Vec<SimHost>,
}

/// The whole simulated fleet, sharded for parallelism.
///
/// Host `id` lives in shard `id % shard_count` — a pure function of the
/// scenario, never of the machine, so results are bitwise identical at
/// any thread count and fleets at different `max_hosts` share a prefix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fleet {
    shards: Vec<Shard>,
    len: usize,
}

impl Fleet {
    /// Assemble from shards (engine-internal).
    pub(crate) fn from_shards(shards: Vec<Shard>) -> Self {
        let len = shards.iter().map(|s| s.hosts.len()).sum();
        Self { shards, len }
    }

    /// Total number of hosts ever simulated.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// O(log n) host lookup by id.
    pub fn host(&self, id: u64) -> Option<&SimHost> {
        // A shardless fleet holds no hosts; guard the modulus (such a
        // value is only constructible by deserializing one).
        if self.shards.is_empty() {
            return None;
        }
        let shard = &self.shards[(id % self.shards.len() as u64) as usize];
        shard
            .hosts
            .binary_search_by_key(&id, |h| h.id)
            .ok()
            .map(|i| &shard.hosts[i])
    }

    /// Iterate hosts in arbitrary (shard-major) order.
    pub fn iter(&self) -> impl Iterator<Item = &SimHost> {
        self.shards.iter().flat_map(|s| s.hosts.iter())
    }

    /// All hosts, sorted by id (= arrival order) — the canonical order
    /// for prefix comparisons and trace export.
    pub fn hosts_in_id_order(&self) -> Vec<&SimHost> {
        let mut all: Vec<&SimHost> = self.iter().collect();
        all.sort_by_key(|h| h.id);
        all
    }

    /// Number of hosts alive at `t`.
    pub fn active_at(&self, t: SimDate) -> usize {
        self.iter().filter(|h| h.alive_at(t)).count()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn host(id: u64, from: f64, to: f64) -> SimHost {
        let resources = GeneratedHost {
            cores: 2,
            memory_mb: 2048.0,
            whetstone_mips: 1000.0,
            dhrystone_mips: 2000.0,
            avail_disk_gb: 50.0,
        };
        SimHost {
            id,
            created: SimDate::from_year(from),
            death: SimDate::from_year(to),
            resources,
            os: OsFamily::default(),
            cpu: CpuFamily::default(),
            gpu: None,
            gpu_since: None,
            class: None,
            availability: 1.0,
            history: vec![ResourceDraw {
                at: SimDate::from_year(from),
                resources,
            }],
        }
    }

    fn fleet_of(ids: &[u64], shard_count: usize) -> Fleet {
        let mut shards = vec![Shard::default(); shard_count];
        for &id in ids {
            shards[(id % shard_count as u64) as usize]
                .hosts
                .push(host(id, 2006.0, 2008.0));
        }
        Fleet::from_shards(shards)
    }

    #[test]
    fn lookup_finds_by_id() {
        let fleet = fleet_of(&[0, 1, 2, 3, 4, 5, 6, 7, 8], 4);
        assert_eq!(fleet.len(), 9);
        for id in 0..9 {
            assert_eq!(fleet.host(id).unwrap().id, id);
        }
        assert!(fleet.host(100).is_none());
    }

    #[test]
    fn id_order_is_global() {
        let fleet = fleet_of(&[0, 1, 2, 3, 4, 5, 6], 3);
        let ids: Vec<u64> = fleet.hosts_in_id_order().iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn activity_rule_is_inclusive() {
        let h = host(1, 2006.0, 2008.0);
        assert!(h.alive_at(SimDate::from_year(2006.0)));
        assert!(h.alive_at(SimDate::from_year(2008.0)));
        assert!(!h.alive_at(SimDate::from_year(2008.01)));
    }

    #[test]
    fn resources_at_follows_history() {
        let mut h = host(1, 2006.0, 2010.0);
        let upgraded = GeneratedHost {
            cores: 8,
            ..h.resources
        };
        h.history.push(ResourceDraw {
            at: SimDate::from_year(2008.0),
            resources: upgraded,
        });
        assert_eq!(h.resources_at(SimDate::from_year(2007.0)).unwrap().cores, 2);
        assert_eq!(h.resources_at(SimDate::from_year(2009.0)).unwrap().cores, 8);
        assert!(h.resources_at(SimDate::from_year(2005.0)).is_none());
        assert_eq!(h.refresh_count(), 1);
    }
}
