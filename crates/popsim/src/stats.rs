//! Streaming per-snapshot statistics: each shard accumulates partial
//! sums while it drains its event queue; partials merge in shard order
//! so the result is independent of the thread count.

use crate::fleet::SimHost;
use resmodel_allocsim::{utility, AppProfile};
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// Running `(count, Σx, Σx²)` moments of one resource column.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    sum: f64,
    sum_sq: f64,
}

impl Moments {
    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.sum_sq += x * x;
    }

    /// Merge another accumulator (associative; the engine merges in
    /// fixed shard order for bitwise determinism).
    pub fn merge(&mut self, other: &Moments) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let n = self.count as f64;
        (self.sum_sq / n - (self.sum / n).powi(2)).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// The statistics of one snapshot instant, streamed out of the engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Snapshot time.
    pub t: SimDate,
    /// Hosts alive at `t`.
    pub active: u64,
    /// Cumulative arrivals up to `t`.
    pub arrived: u64,
    /// Cumulative departures up to `t`.
    pub departed: u64,
    /// Core-count moments over active hosts.
    pub cores: Moments,
    /// Memory (MB) moments.
    pub memory_mb: Moments,
    /// Whetstone (floating-point MIPS) moments.
    pub whetstone_mips: Moments,
    /// Dhrystone (integer MIPS) moments.
    pub dhrystone_mips: Moments,
    /// Available-disk (GB) moments.
    pub disk_gb: Moments,
    /// Active hosts reporting a GPU.
    pub gpu_count: u64,
    /// Σ availability over active hosts.
    pub availability_sum: f64,
    /// Σ Cobb–Douglas utility per application of
    /// [`AppProfile::ALL`], availability-discounted.
    pub utility_sum: [f64; 4],
}

impl SnapshotStats {
    /// Empty accumulator for a snapshot at `t`.
    pub fn empty(t: SimDate) -> Self {
        Self {
            t,
            active: 0,
            arrived: 0,
            departed: 0,
            cores: Moments::default(),
            memory_mb: Moments::default(),
            whetstone_mips: Moments::default(),
            dhrystone_mips: Moments::default(),
            disk_gb: Moments::default(),
            gpu_count: 0,
            availability_sum: 0.0,
            utility_sum: [0.0; 4],
        }
    }

    /// Account one active host (engine-internal).
    pub(crate) fn observe(&mut self, host: &SimHost) {
        self.active += 1;
        let r = &host.resources;
        self.cores.push(r.cores as f64);
        self.memory_mb.push(r.memory_mb);
        self.whetstone_mips.push(r.whetstone_mips);
        self.dhrystone_mips.push(r.dhrystone_mips);
        self.disk_gb.push(r.avail_disk_gb);
        if host.gpu.is_some() {
            self.gpu_count += 1;
        }
        self.availability_sum += host.availability;
        for (i, app) in AppProfile::ALL.iter().enumerate() {
            self.utility_sum[i] += host.availability * utility(app, r);
        }
    }

    /// Merge a shard partial (engine-internal; call in shard order).
    pub(crate) fn merge(&mut self, other: &SnapshotStats) {
        debug_assert_eq!(self.t, other.t);
        self.active += other.active;
        self.arrived += other.arrived;
        self.departed += other.departed;
        self.cores.merge(&other.cores);
        self.memory_mb.merge(&other.memory_mb);
        self.whetstone_mips.merge(&other.whetstone_mips);
        self.dhrystone_mips.merge(&other.dhrystone_mips);
        self.disk_gb.merge(&other.disk_gb);
        self.gpu_count += other.gpu_count;
        self.availability_sum += other.availability_sum;
        for i in 0..4 {
            self.utility_sum[i] += other.utility_sum[i];
        }
    }

    /// Fraction of active hosts with a GPU.
    pub fn gpu_fraction(&self) -> f64 {
        if self.active == 0 {
            0.0
        } else {
            self.gpu_count as f64 / self.active as f64
        }
    }

    /// Mean availability over active hosts.
    pub fn mean_availability(&self) -> f64 {
        if self.active == 0 {
            0.0
        } else {
            self.availability_sum / self.active as f64
        }
    }

    /// Mean per-host availability-discounted utility for application
    /// `app_index` of [`AppProfile::ALL`].
    pub fn mean_utility(&self, app_index: usize) -> f64 {
        if self.active == 0 {
            0.0
        } else {
            self.utility_sum[app_index] / self.active as f64
        }
    }

    /// Estimated aggregate FLOPS of the active fleet, in
    /// availability-discounted core-MIPS (cores × Whetstone × avail is
    /// summed per host via the mean decomposition).
    pub fn aggregate_whetstone_mips(&self) -> f64 {
        // Means are over the same active set, so n·E[c]·E[w] is only an
        // approximation of Σ c·w; good enough for a headline series.
        self.active as f64
            * self.cores.mean()
            * self.whetstone_mips.mean()
            * self.mean_availability()
    }
}

/// The engine's typed output series, one entry per snapshot date.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    /// Snapshots in time order.
    pub snapshots: Vec<SnapshotStats>,
}

impl TimeSeries {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// `(t, active)` pairs.
    pub fn active_series(&self) -> Vec<(f64, u64)> {
        self.snapshots
            .iter()
            .map(|s| (s.t.year(), s.active))
            .collect()
    }

    /// The snapshot closest to `t`.
    pub fn at(&self, t: SimDate) -> Option<&SnapshotStats> {
        self.snapshots.iter().min_by(|a, b| {
            (a.t.days() - t.days())
                .abs()
                .total_cmp(&(b.t.days() - t.days()).abs())
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_closed_form() {
        let mut m = Moments::default();
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Moments::default();
        let mut b = Moments::default();
        let mut whole = Moments::default();
        for x in [1.0, 5.0, 9.0] {
            a.push(x);
            whole.push(x);
        }
        for x in [2.0, 4.0] {
            b.push(x);
            whole.push(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = SnapshotStats::empty(SimDate::from_year(2008.0));
        assert_eq!(s.active, 0);
        assert_eq!(s.gpu_fraction(), 0.0);
        assert_eq!(s.mean_availability(), 0.0);
        assert_eq!(s.mean_utility(0), 0.0);
    }
}
