//! Population churn analytics: arrivals, departures, retention — the
//! dynamics behind the paper's Fig 1/Fig 3 observations, packaged as
//! reusable queries.

use crate::store::Trace;
use crate::time::SimDate;
use serde::{Deserialize, Serialize};

/// Churn statistics over one window `[from, to)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnWindow {
    /// Window start.
    pub from: SimDate,
    /// Window end.
    pub to: SimDate,
    /// Hosts whose first contact falls in the window.
    pub arrivals: usize,
    /// Hosts whose last contact falls in the window (they were seen
    /// before `to` and never again).
    pub departures: usize,
    /// Active hosts at the window start.
    pub active_at_start: usize,
    /// Monthly turnover rate: departures / active at start, scaled to
    /// a 30-day month.
    pub monthly_turnover: f64,
}

/// Compute churn for consecutive windows of `window_days` between
/// `from` and `to`.
pub fn churn_series(
    trace: &Trace,
    from: SimDate,
    to: SimDate,
    window_days: f64,
) -> Vec<ChurnWindow> {
    assert!(window_days > 0.0, "window must be positive");
    let mut out = Vec::new();
    let mut start = from;
    while start < to {
        let end = (start + window_days).min(to);
        let arrivals = trace
            .hosts()
            .iter()
            .filter(|h| matches!(h.first_contact(), Some(f) if f >= start && f < end))
            .count();
        let departures = trace
            .hosts()
            .iter()
            .filter(|h| matches!(h.last_contact(), Some(l) if l >= start && l < end))
            .count();
        let active_at_start = trace.active_count(start);
        let days = end - start;
        let monthly_turnover = if active_at_start > 0 && days > 0.0 {
            departures as f64 / active_at_start as f64 * (30.0 / days)
        } else {
            0.0
        };
        out.push(ChurnWindow {
            from: start,
            to: end,
            arrivals,
            departures,
            active_at_start,
            monthly_turnover,
        });
        start = end;
    }
    out
}

/// Retention curve: of the hosts whose first contact falls in
/// `[cohort_from, cohort_to)`, the fraction still active `offsets`
/// days after their first contact.
pub fn retention_curve(
    trace: &Trace,
    cohort_from: SimDate,
    cohort_to: SimDate,
    offsets_days: &[f64],
) -> Vec<(f64, f64)> {
    let cohort: Vec<_> = trace
        .hosts()
        .iter()
        .filter(|h| matches!(h.first_contact(), Some(f) if f >= cohort_from && f < cohort_to))
        .collect();
    offsets_days
        .iter()
        .map(|&off| {
            if cohort.is_empty() {
                return (off, 0.0);
            }
            let alive = cohort
                .iter()
                .filter(|h| {
                    let first = h.first_contact().expect("cohort members have contacts");
                    matches!(h.last_contact(), Some(l) if l - first >= off)
                })
                .count();
            (off, alive as f64 / cohort.len() as f64)
        })
        .collect()
}

/// Population half-life of a cohort: the lifetime offset by which half
/// the cohort has departed (linear interpolation between probe points).
pub fn cohort_half_life_days(
    trace: &Trace,
    cohort_from: SimDate,
    cohort_to: SimDate,
    max_days: f64,
) -> Option<f64> {
    let probes: Vec<f64> = (0..=200).map(|i| i as f64 * max_days / 200.0).collect();
    let curve = retention_curve(trace, cohort_from, cohort_to, &probes);
    // An empty cohort reports 0 retention everywhere; a real cohort is
    // fully retained at offset 0.
    if curve.first().map(|&(_, f)| f) != Some(1.0) {
        return None;
    }
    let mut prev = (0.0, 1.0);
    for &(off, frac) in &curve {
        if frac <= 0.5 {
            let (o0, f0) = prev;
            if (f0 - frac).abs() < 1e-12 {
                return Some(off);
            }
            let t = (f0 - 0.5) / (f0 - frac);
            return Some(o0 + t * (off - o0));
        }
        prev = (off, frac);
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::host::{HostRecord, ResourceSnapshot};

    fn host(id: u64, from_year: f64, to_year: f64) -> HostRecord {
        let mut h = HostRecord::new(id.into(), SimDate::from_year(from_year));
        for &y in &[from_year, to_year] {
            h.record(ResourceSnapshot {
                t: SimDate::from_year(y),
                cores: 1,
                memory_mb: 512.0,
                whetstone_mips: 1000.0,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 30.0,
                total_disk_gb: 60.0,
            });
        }
        h
    }

    fn toy() -> Trace {
        vec![
            host(1, 2006.0, 2006.4), // arrives and departs in H1 2006
            host(2, 2006.1, 2008.0),
            host(3, 2006.6, 2007.2),
            host(4, 2007.0, 2009.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn churn_windows_count_arrivals_and_departures() {
        let trace = toy();
        let series = churn_series(
            &trace,
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            365.25 / 2.0,
        );
        assert_eq!(series.len(), 2);
        // H1 2006: hosts 1 and 2 arrive; host 1 departs.
        assert_eq!(series[0].arrivals, 2);
        assert_eq!(series[0].departures, 1);
        // H2 2006: host 3 arrives, nobody departs.
        assert_eq!(series[1].arrivals, 1);
        assert_eq!(series[1].departures, 0);
    }

    #[test]
    fn retention_curve_declines() {
        let trace = toy();
        let curve = retention_curve(
            &trace,
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            &[0.0, 100.0, 300.0, 1000.0],
        );
        assert_eq!(curve[0].1, 1.0);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1, "retention must be non-increasing");
        }
        // Host 2 lives ~694 days; hosts 1 and 3 under 220 days.
        assert!(
            (curve[2].1 - 1.0 / 3.0).abs() < 1e-9,
            "at 300d: {}",
            curve[2].1
        );
    }

    #[test]
    fn half_life_between_short_and_long_livers() {
        let trace = toy();
        let hl = cohort_half_life_days(
            &trace,
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            1500.0,
        )
        .expect("cohort departs within probe range");
        // Lifetimes ≈ 146, 219 and 694 days → half-life between the
        // first and last departure.
        assert!(hl > 100.0 && hl < 700.0, "half-life {hl}");
    }

    #[test]
    fn empty_cohort_is_handled() {
        let trace = toy();
        let curve = retention_curve(
            &trace,
            SimDate::from_year(2015.0),
            SimDate::from_year(2016.0),
            &[0.0, 10.0],
        );
        assert!(curve.iter().all(|&(_, f)| f == 0.0));
        assert!(cohort_half_life_days(
            &trace,
            SimDate::from_year(2015.0),
            SimDate::from_year(2016.0),
            100.0
        )
        .is_none());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn churn_rejects_bad_window() {
        churn_series(
            &toy(),
            SimDate::from_year(2006.0),
            SimDate::from_year(2007.0),
            0.0,
        );
    }
}
