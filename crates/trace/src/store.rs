//! The [`Trace`] store: a collection of host records with the paper's
//! time-indexed analysis queries.

use crate::host::{HostId, HostRecord, HostView};
use crate::time::SimDate;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// A measurement trace: every host the server has ever seen, with its
/// full measurement history.
///
/// This is the in-memory equivalent of the "publicly available files"
/// the SETI@home server periodically wrote (paper Section IV).
///
/// Id lookups go through a maintained `HashMap` index, so
/// [`Trace::host`] is O(1) even at fleet scale. The index maps each id
/// to its *first* record, matching the historical linear-scan
/// behaviour when ids repeat.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    hosts: Vec<HostRecord>,
    index: HashMap<HostId, usize>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a host record.
    ///
    /// Duplicate ids are accepted (real measurement dumps contain
    /// them); the id index keeps pointing at the *first* record for
    /// that id, so [`Trace::host`] resolves the first and later
    /// records remain reachable via [`Trace::records_for`] and
    /// [`Trace::hosts`].
    pub fn push(&mut self, host: HostRecord) {
        self.index.entry(host.id).or_insert(self.hosts.len());
        self.hosts.push(host);
    }

    /// All host records.
    pub fn hosts(&self) -> &[HostRecord] {
        &self.hosts
    }

    /// Number of host records (active or not).
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the trace holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Look up a host by id — O(1) via the maintained index.
    ///
    /// When a trace holds several records with the same id (legal:
    /// [`Trace::push`] never rejects duplicates), this returns the
    /// *first* record pushed — the same answer the historical linear
    /// scan gave. Use [`Trace::records_for`] to see every record.
    pub fn host(&self, id: HostId) -> Option<&HostRecord> {
        self.index.get(&id).map(|&i| &self.hosts[i])
    }

    /// All records carrying `id`, in push order.
    ///
    /// [`Trace::host`] resolves only the first record of a duplicated
    /// id (the `HashMap` index keeps the first insertion); this
    /// iterator surfaces the shadowed later records too. It scans the
    /// whole store — O(n) — so it is meant for id-collision forensics,
    /// not hot-path lookups.
    pub fn records_for(&self, id: HostId) -> impl Iterator<Item = &HostRecord> {
        self.hosts.iter().filter(move |h| h.id == id)
    }

    /// Hosts active at `t` under the paper's rule (first contact ≤ t ≤
    /// last contact).
    pub fn active_at(&self, t: SimDate) -> impl Iterator<Item = &HostRecord> {
        self.hosts.iter().filter(move |h| h.is_active_at(t))
    }

    /// Number of active hosts at `t`.
    pub fn active_count(&self, t: SimDate) -> usize {
        self.active_at(t).count()
    }

    /// Resource views of every active host at `t` — the paper's
    /// population snapshot used for all per-date statistics.
    pub fn population_at(&self, t: SimDate) -> Vec<HostView> {
        self.active_at(t)
            .filter_map(|h| HostView::of(h, t))
            .collect()
    }

    /// Host lifetimes in days (last − first contact), excluding hosts
    /// whose *first contact* is after `created_cutoff` — the paper's
    /// censoring rule ("this does not include hosts which connected
    /// after July 1, 2010") that avoids biasing towards short lifetimes.
    pub fn lifetimes(&self, created_cutoff: SimDate) -> Vec<f64> {
        self.hosts
            .iter()
            .filter(|h| matches!(h.first_contact(), Some(f) if f <= created_cutoff))
            .filter_map(|h| h.lifetime_days())
            .collect()
    }

    /// `(creation year, lifetime days)` pairs for the paper's Fig 3
    /// (creation date vs. average lifetime).
    pub fn creation_vs_lifetime(&self, created_cutoff: SimDate) -> Vec<(f64, f64)> {
        self.hosts
            .iter()
            .filter(|h| matches!(h.first_contact(), Some(f) if f <= created_cutoff))
            .filter_map(|h| h.lifetime_days().map(|l| (h.created.year(), l)))
            .collect()
    }

    /// Earliest first contact across all hosts.
    pub fn start(&self) -> Option<SimDate> {
        self.hosts
            .iter()
            .filter_map(|h| h.first_contact())
            .reduce(SimDate::min)
    }

    /// Latest last contact across all hosts.
    pub fn end(&self) -> Option<SimDate> {
        self.hosts
            .iter()
            .filter_map(|h| h.last_contact())
            .reduce(SimDate::max)
    }

    /// Extract one resource column from a population snapshot at `t`.
    ///
    /// Convenience for the fitting pipeline; see [`ResourceColumn`].
    pub fn column_at(&self, t: SimDate, column: ResourceColumn) -> Vec<f64> {
        self.population_at(t)
            .iter()
            .map(|v| column.extract(v))
            .collect()
    }
}

impl FromIterator<HostRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = HostRecord>>(iter: I) -> Self {
        let mut trace = Self::new();
        trace.extend(iter);
        trace
    }
}

impl Extend<HostRecord> for Trace {
    fn extend<I: IntoIterator<Item = HostRecord>>(&mut self, iter: I) {
        for host in iter {
            self.push(host);
        }
    }
}

impl Serialize for Trace {
    /// Only the records are serialized; the id index is derived state
    /// and is rebuilt on deserialization.
    fn to_value(&self) -> Value {
        Value::Map(vec![(String::from("hosts"), self.hosts.to_value())])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let hosts: Vec<HostRecord> = serde::field(v, "hosts")?;
        Ok(hosts.into_iter().collect())
    }
}

/// The six resource columns of the paper's Table III correlation
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceColumn {
    /// Number of cores.
    Cores,
    /// Total memory (MB).
    Memory,
    /// Memory per core (MB).
    MemPerCore,
    /// Whetstone MIPS.
    Whetstone,
    /// Dhrystone MIPS.
    Dhrystone,
    /// Available disk (GB).
    Disk,
}

impl ResourceColumn {
    /// The paper's Table III column order.
    pub const ALL: [ResourceColumn; 6] = [
        ResourceColumn::Cores,
        ResourceColumn::Memory,
        ResourceColumn::MemPerCore,
        ResourceColumn::Whetstone,
        ResourceColumn::Dhrystone,
        ResourceColumn::Disk,
    ];

    /// Short header used when printing correlation tables.
    pub fn name(&self) -> &'static str {
        match self {
            ResourceColumn::Cores => "Cores",
            ResourceColumn::Memory => "Memory",
            ResourceColumn::MemPerCore => "Mem/Core",
            ResourceColumn::Whetstone => "Whet",
            ResourceColumn::Dhrystone => "Dhry",
            ResourceColumn::Disk => "Disk",
        }
    }

    /// Extract this column's value from a host view.
    pub fn extract(&self, v: &HostView) -> f64 {
        match self {
            ResourceColumn::Cores => v.cores as f64,
            ResourceColumn::Memory => v.memory_mb,
            ResourceColumn::MemPerCore => v.memory_per_core_mb(),
            ResourceColumn::Whetstone => v.whetstone_mips,
            ResourceColumn::Dhrystone => v.dhrystone_mips,
            ResourceColumn::Disk => v.avail_disk_gb,
        }
    }
}

impl std::fmt::Display for ResourceColumn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::host::ResourceSnapshot;

    fn host_with_span(id: u64, from: f64, to: f64, cores: u32) -> HostRecord {
        let mut h = HostRecord::new(id.into(), SimDate::from_year(from));
        for (i, &year) in [from, to].iter().enumerate() {
            h.record(ResourceSnapshot {
                t: SimDate::from_year(year),
                cores,
                memory_mb: 1024.0 * cores as f64,
                whetstone_mips: 1000.0 + i as f64,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 50.0,
                total_disk_gb: 100.0,
            });
        }
        h
    }

    #[test]
    fn active_counts() {
        let trace: Trace = vec![
            host_with_span(1, 2006.0, 2008.0, 1),
            host_with_span(2, 2007.0, 2009.0, 2),
            host_with_span(3, 2008.5, 2010.0, 4),
        ]
        .into_iter()
        .collect();
        assert_eq!(trace.active_count(SimDate::from_year(2006.5)), 1);
        assert_eq!(trace.active_count(SimDate::from_year(2007.5)), 2);
        assert_eq!(trace.active_count(SimDate::from_year(2008.7)), 2);
        assert_eq!(trace.active_count(SimDate::from_year(2011.0)), 0);
        assert_eq!(trace.len(), 3);
        assert!(!trace.is_empty());
    }

    #[test]
    fn population_uses_latest_snapshot() {
        let trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 2)]
            .into_iter()
            .collect();
        let pop = trace.population_at(SimDate::from_year(2007.0));
        assert_eq!(pop.len(), 1);
        // First snapshot (whetstone 1000.0) is the latest at 2007.
        assert_eq!(pop[0].whetstone_mips, 1000.0);
        let pop2 = trace.population_at(SimDate::from_year(2008.0));
        assert_eq!(pop2[0].whetstone_mips, 1001.0);
    }

    #[test]
    fn lifetimes_respect_cutoff() {
        let trace: Trace = vec![
            host_with_span(1, 2006.0, 2008.0, 1),
            host_with_span(2, 2009.9, 2010.0, 1),
        ]
        .into_iter()
        .collect();
        let all = trace.lifetimes(SimDate::from_year(2010.5));
        assert_eq!(all.len(), 2);
        let censored = trace.lifetimes(SimDate::from_year(2009.0));
        assert_eq!(censored.len(), 1);
        assert!((censored[0] - 2.0 * 365.25).abs() < 0.5);
    }

    #[test]
    fn creation_vs_lifetime_pairs() {
        let trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 1)]
            .into_iter()
            .collect();
        let pairs = trace.creation_vs_lifetime(SimDate::from_year(2010.0));
        assert_eq!(pairs.len(), 1);
        assert!((pairs[0].0 - 2006.0).abs() < 1e-9);
    }

    #[test]
    fn start_end_span() {
        let trace: Trace = vec![
            host_with_span(1, 2006.0, 2008.0, 1),
            host_with_span(2, 2005.5, 2009.5, 1),
        ]
        .into_iter()
        .collect();
        assert!((trace.start().unwrap().year() - 2005.5).abs() < 1e-9);
        assert!((trace.end().unwrap().year() - 2009.5).abs() < 1e-9);
        assert!(Trace::new().start().is_none());
    }

    #[test]
    fn column_extraction() {
        let trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 4)]
            .into_iter()
            .collect();
        let t = SimDate::from_year(2007.0);
        assert_eq!(trace.column_at(t, ResourceColumn::Cores), vec![4.0]);
        assert_eq!(trace.column_at(t, ResourceColumn::Memory), vec![4096.0]);
        assert_eq!(trace.column_at(t, ResourceColumn::MemPerCore), vec![1024.0]);
        assert_eq!(trace.column_at(t, ResourceColumn::Disk), vec![50.0]);
    }

    #[test]
    fn host_lookup() {
        let trace: Trace = vec![host_with_span(7, 2006.0, 2008.0, 1)]
            .into_iter()
            .collect();
        assert!(trace.host(7.into()).is_some());
        assert!(trace.host(8.into()).is_none());
    }

    #[test]
    fn host_index_matches_linear_scan() {
        let trace: Trace = (0..500)
            .map(|i| host_with_span(i, 2006.0, 2008.0, 1))
            .collect();
        for i in (0..500).step_by(37) {
            let via_index = trace.host(i.into()).unwrap();
            let via_scan = trace.hosts().iter().find(|h| h.id == i.into()).unwrap();
            assert!(std::ptr::eq(via_index, via_scan));
        }
        assert!(trace.host(500.into()).is_none());
    }

    #[test]
    fn duplicate_ids_resolve_to_first_record() {
        let mut trace = Trace::new();
        trace.push(host_with_span(7, 2006.0, 2007.0, 1));
        trace.push(host_with_span(7, 2008.0, 2009.0, 2));
        // Same answer the historical linear scan gave.
        assert_eq!(trace.host(7.into()).unwrap().snapshots()[0].cores, 1);
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn records_for_surfaces_shadowed_duplicates() {
        let mut trace = Trace::new();
        trace.push(host_with_span(7, 2006.0, 2007.0, 1));
        trace.push(host_with_span(8, 2006.0, 2007.0, 8));
        trace.push(host_with_span(7, 2008.0, 2009.0, 2));
        trace.push(host_with_span(7, 2009.0, 2010.0, 4));

        // `host` keeps resolving the first record...
        let first = trace.host(7.into()).unwrap();
        assert_eq!(first.snapshots()[0].cores, 1);
        // ...while `records_for` yields all three, in push order.
        let cores: Vec<u32> = trace
            .records_for(7.into())
            .map(|h| h.snapshots()[0].cores)
            .collect();
        assert_eq!(cores, vec![1, 2, 4]);
        // The first yielded record is the one `host` resolves.
        assert!(std::ptr::eq(
            trace.records_for(7.into()).next().unwrap(),
            first
        ));
        // Non-duplicated and absent ids behave as expected.
        assert_eq!(trace.records_for(8.into()).count(), 1);
        assert_eq!(trace.records_for(9.into()).count(), 0);
    }

    #[test]
    fn index_survives_extend_and_from_iter() {
        let mut trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 1)]
            .into_iter()
            .collect();
        trace.extend(vec![host_with_span(2, 2006.0, 2008.0, 2)]);
        assert_eq!(trace.host(1.into()).unwrap().snapshots()[0].cores, 1);
        assert_eq!(trace.host(2.into()).unwrap().snapshots()[0].cores, 2);
    }

    #[test]
    fn column_names_match_paper_order() {
        let names: Vec<_> = ResourceColumn::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec!["Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"]
        );
    }
}
