//! Operating-system families and their market-share evolution
//! (paper Table II).

use crate::market::{interp_series, normalize, pick_index};
use serde::{Deserialize, Serialize};

/// Operating-system family, at the granularity of the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OsFamily {
    /// Windows XP — dominant through the whole measurement period.
    #[default]
    WindowsXp,
    /// Windows Vista (appears 2007/2008).
    WindowsVista,
    /// Windows 7 (appears 2009/2010).
    Windows7,
    /// Windows 2000 (declining).
    Windows2000,
    /// Any other Windows release.
    OtherWindows,
    /// Mac OS X.
    MacOsX,
    /// Linux.
    Linux,
    /// Anything else.
    Other,
}

/// Sample years of the share table below (January 1 snapshots).
const TABLE_YEARS: [f64; 5] = [2006.0, 2007.0, 2008.0, 2009.0, 2010.0];

/// The paper's Table II, % of active hosts by year.
const OS_SHARES: [(OsFamily, [f64; 5]); 8] = [
    (OsFamily::WindowsXp, [69.8, 71.5, 68.6, 62.5, 52.9]),
    (OsFamily::WindowsVista, [0.0, 0.0, 6.7, 14.0, 15.9]),
    (OsFamily::Windows7, [0.0, 0.0, 0.0, 0.0, 9.2]),
    (OsFamily::Windows2000, [12.9, 8.5, 5.5, 3.4, 2.0]),
    (OsFamily::OtherWindows, [6.3, 6.1, 4.8, 4.8, 3.4]),
    (OsFamily::MacOsX, [5.4, 7.8, 7.9, 8.5, 9.0]),
    (OsFamily::Linux, [5.1, 5.7, 6.0, 6.4, 7.3]),
    (OsFamily::Other, [0.4, 0.4, 0.4, 0.3, 0.3]),
];

impl OsFamily {
    /// All families, in Table II order.
    pub const ALL: [OsFamily; 8] = [
        OsFamily::WindowsXp,
        OsFamily::WindowsVista,
        OsFamily::Windows7,
        OsFamily::Windows2000,
        OsFamily::OtherWindows,
        OsFamily::MacOsX,
        OsFamily::Linux,
        OsFamily::Other,
    ];

    /// Human-readable name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            OsFamily::WindowsXp => "Windows XP",
            OsFamily::WindowsVista => "Windows Vista",
            OsFamily::Windows7 => "Windows 7",
            OsFamily::Windows2000 => "Windows 2000",
            OsFamily::OtherWindows => "Other Windows",
            OsFamily::MacOsX => "Mac OS X",
            OsFamily::Linux => "Linux",
            OsFamily::Other => "Other",
        }
    }

    /// Whether this is any Windows variant.
    pub fn is_windows(&self) -> bool {
        matches!(
            self,
            OsFamily::WindowsXp
                | OsFamily::WindowsVista
                | OsFamily::Windows7
                | OsFamily::Windows2000
                | OsFamily::OtherWindows
        )
    }

    /// Normalised market shares at a fractional `year`, interpolating
    /// the paper's yearly columns and clamping outside 2006–2010.
    pub fn shares_at(year: f64) -> Vec<(OsFamily, f64)> {
        let mut weights: Vec<f64> = OS_SHARES
            .iter()
            .map(|(_, s)| interp_series(&TABLE_YEARS, s, year))
            .collect();
        normalize(&mut weights);
        OS_SHARES
            .iter()
            .zip(weights)
            .map(|((fam, _), w)| (*fam, w))
            .collect()
    }

    /// Sample a family from the shares at `year` using a uniform draw
    /// `u ∈ [0, 1)`. Allocation-free (the share table is interpolated
    /// into a stack buffer): this runs once per simulated host.
    pub fn sample_at(year: f64, u: f64) -> OsFamily {
        let mut weights = [0.0; OS_SHARES.len()];
        for (w, (_, s)) in weights.iter_mut().zip(&OS_SHARES) {
            *w = interp_series(&TABLE_YEARS, s, year);
        }
        normalize(&mut weights);
        OS_SHARES[pick_index(&weights, u)].0
    }
}

impl std::fmt::Display for OsFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn shares_normalised() {
        for &y in &[2005.0, 2006.0, 2008.5, 2010.0, 2012.0] {
            let total: f64 = OsFamily::shares_at(y).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "year {y}: total {total}");
        }
    }

    #[test]
    fn xp_declines_windows7_rises() {
        let get = |y: f64, fam: OsFamily| {
            OsFamily::shares_at(y)
                .into_iter()
                .find(|(f, _)| *f == fam)
                .unwrap()
                .1
        };
        assert!(get(2006.0, OsFamily::WindowsXp) > get(2010.0, OsFamily::WindowsXp));
        assert_eq!(get(2008.0, OsFamily::Windows7), 0.0);
        assert!(get(2010.0, OsFamily::Windows7) > 0.08);
    }

    #[test]
    fn table_matches_paper_at_2006() {
        let shares = OsFamily::shares_at(2006.0);
        let xp = shares
            .iter()
            .find(|(f, _)| *f == OsFamily::WindowsXp)
            .unwrap()
            .1;
        // Column sums to 99.9 → normalised XP share ≈ 0.6987.
        assert!((xp - 0.698).abs() < 0.005, "xp {xp}");
    }

    #[test]
    fn sampling_respects_dominant_family() {
        // With u below the XP share, XP must be picked (XP is listed first).
        assert_eq!(OsFamily::sample_at(2006.0, 0.1), OsFamily::WindowsXp);
        assert_eq!(OsFamily::sample_at(2006.0, 0.69), OsFamily::WindowsXp);
    }

    #[test]
    fn names_unique_and_display() {
        let names: std::collections::HashSet<_> = OsFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), OsFamily::ALL.len());
        assert_eq!(OsFamily::MacOsX.to_string(), "Mac OS X");
    }

    #[test]
    fn windows_classification() {
        assert!(OsFamily::WindowsXp.is_windows());
        assert!(OsFamily::Windows7.is_windows());
        assert!(!OsFamily::Linux.is_windows());
        assert!(!OsFamily::MacOsX.is_windows());
    }
}
