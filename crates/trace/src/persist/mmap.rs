//! Minimal read-only file mapping, std-only.
//!
//! On Linux x86_64/aarch64 this issues the `mmap`/`munmap` syscalls
//! directly (no libc dependency — the workspace vendors everything).
//! Everywhere else, or when the syscall fails, or when
//! `RESMODEL_NO_MMAP` is set, it falls back to reading the file into a
//! 64-byte-aligned heap buffer through plain `std::fs` — functionally
//! identical, just not zero-copy.
//!
//! Only whole-file, `PROT_READ`, `MAP_PRIVATE` mappings are supported:
//! exactly what the trace reader needs, nothing more.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

/// Alignment of the fallback heap buffer — matches the format's
/// section alignment so section slices stay castable either way.
const BUFFER_ALIGN: usize = 64;

/// A read-only view of an entire file: either a real memory mapping or
/// an aligned heap copy. Dereferences to `&[u8]` either way.
pub struct Mapping {
    inner: Inner,
}

enum Inner {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(AlignedBuf),
}

// The mapping is immutable (PROT_READ, MAP_PRIVATE) for its whole
// lifetime, so sharing raw pointers across threads is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Map (or read) the whole of `file`, whose size is `len` bytes.
    /// `force_heap` skips the mmap attempt entirely, as does the
    /// `RESMODEL_NO_MMAP` environment variable.
    ///
    /// `file` must stay unmodified for the mapping's lifetime; the
    /// on-disk trace format is immutable-once-written, which the
    /// checksum verification at open time enforces in practice.
    pub fn of_file(file: &File, len: u64, force_heap: bool) -> std::io::Result<Self> {
        let len_usize = usize::try_from(len).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to map")
        })?;
        if len_usize > 0 && !force_heap && std::env::var_os("RESMODEL_NO_MMAP").is_none() {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            if let Some(ptr) = sys::mmap_readonly(file, len_usize) {
                return Ok(Self {
                    inner: Inner::Mapped {
                        ptr,
                        len: len_usize,
                    },
                });
            }
        }
        Ok(Self {
            inner: Inner::Heap(AlignedBuf::read_from(file, len_usize)?),
        })
    }

    /// Which backend ended up serving the bytes: `"mmap"` or `"heap"`.
    pub fn backend(&self) -> &'static str {
        match self.inner {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Mapped { .. } => "mmap",
            Inner::Heap(_) => "heap",
        }
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the pointer came from a successful
                // whole-file mmap of exactly `len` bytes and stays
                // valid until Drop unmaps it.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Heap(buf) => buf.bytes(),
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Inner::Mapped { ptr, len } = self.inner {
            sys::munmap(ptr, len);
        }
    }
}

impl std::ops::Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("backend", &self.backend())
            .field("len", &self.bytes().len())
            .finish()
    }
}

/// A 64-byte-aligned heap buffer filled by plain positional reads —
/// the portable fallback when mapping is unavailable or refused.
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
    layout: std::alloc::Layout,
}

impl AlignedBuf {
    fn read_from(file: &File, len: usize) -> std::io::Result<Self> {
        let layout = std::alloc::Layout::from_size_align(len.max(1), BUFFER_ALIGN)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        // SAFETY: layout has non-zero size (len.max(1)).
        let ptr = unsafe { std::alloc::alloc(layout) };
        if ptr.is_null() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::OutOfMemory,
                "failed to allocate trace buffer",
            ));
        }
        let buf = Self { ptr, len, layout };
        if len > 0 {
            // SAFETY: `ptr` is valid for `len` writes; the slice is
            // dropped before `buf` escapes.
            let dst = unsafe { std::slice::from_raw_parts_mut(buf.ptr, len) };
            let mut f = file;
            f.seek(SeekFrom::Start(0))?;
            f.read_exact(dst)?;
        }
        Ok(buf)
    }

    fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` is valid for `len` reads until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        // SAFETY: allocated in `read_from` with this exact layout.
        unsafe { std::alloc::dealloc(self.ptr, self.layout) };
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::arch::asm;
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Raw six-argument syscall. Returns the kernel's raw result; on
    /// error that is `-errno` in `-4095..0`.
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            asm!(
                "svc #0",
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                in("x8") nr,
                options(nostack)
            );
        }
        ret
    }

    /// `mmap(NULL, len, PROT_READ, MAP_PRIVATE, fd, 0)`; `None` when
    /// the kernel refuses (caller falls back to heap reads).
    pub fn mmap_readonly(file: &File, len: usize) -> Option<*const u8> {
        let fd = file.as_raw_fd();
        // SAFETY: arguments follow the mmap(2) contract; a raw syscall
        // has no library-level invariants to uphold.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if (-4095..0).contains(&ret) {
            None
        } else {
            Some(ret as *const u8)
        }
    }

    /// `munmap(ptr, len)`. Failure is ignored: the mapping leaks, which
    /// is safe (just wasteful) and cannot occur for a mapping this
    /// module itself created.
    pub fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: `ptr`/`len` come from a successful mmap_readonly.
        unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("resmodel-mmap-test-{name}"));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic", b"hello mapping");
        let file = File::open(&path).unwrap();
        let len = file.metadata().unwrap().len();
        let map = Mapping::of_file(&file, len, false).unwrap();
        assert_eq!(&*map, b"hello mapping");
        assert!(matches!(map.backend(), "mmap" | "heap"));
        assert!(format!("{map:?}").contains("len"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty", b"");
        let file = File::open(&path).unwrap();
        let map = Mapping::of_file(&file, 0, false).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.backend(), "heap");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_is_aligned() {
        let path = temp_file("aligned", &[7u8; 200]);
        let file = File::open(&path).unwrap();
        let buf = AlignedBuf::read_from(&file, 200).unwrap();
        assert_eq!(buf.bytes(), &[7u8; 200][..]);
        assert_eq!(buf.bytes().as_ptr() as usize % BUFFER_ALIGN, 0);
        std::fs::remove_file(&path).ok();
    }
}
