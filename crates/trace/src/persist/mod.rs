//! On-disk persistence for columnar traces: the `resmodel.trace/1`
//! format and its zero-copy reader.
//!
//! The format is little-endian and mmap-friendly: a fixed 64-byte
//! header, a section directory (offset, length, dtype, CRC-32 per
//! column), then each column written verbatim from the
//! structure-of-arrays layout at a 64-byte-aligned offset. Mapping the
//! file back in therefore costs no decoding for the numeric columns —
//! [`MappedTrace`] serves `active_at`, fit and validate straight off
//! the mapped bytes via [`TraceSource`]. The full byte-level spec
//! lives in `docs/FORMAT.md`; a CI grep keeps the spec's version
//! constant and [`FORMAT_VERSION`] in lockstep.
//!
//! [`Precision::Compact`] stores the five measured resource columns
//! (memory, Whetstone, Dhrystone, available and total disk) as `f32`,
//! roughly halving the footprint. The paper reports those resources to
//! 3–4 significant figures (e.g. Table III's MIPS means), well inside
//! `f32`'s 7 decimal digits, so model fits are unaffected; timestamps
//! and ids always stay 8-byte so the activity rule is bit-exact. Only
//! [`Precision::Lossless`] guarantees bitwise round trips.
//!
//! ```
//! use resmodel_trace::columnar::ColumnarTrace;
//! use resmodel_trace::persist::{self, MappedTrace, Precision};
//! use resmodel_trace::source::TraceSource;
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! # fn main() -> Result<(), resmodel_error::ResmodelError> {
//! let mut h = HostRecord::new(7.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.2),
//!     cores: 4,
//!     memory_mb: 4096.0,
//!     whetstone_mips: 1500.0,
//!     dhrystone_mips: 2500.0,
//!     avail_disk_gb: 120.0,
//!     total_disk_gb: 250.0,
//! });
//! let trace: Trace = std::iter::once(h).collect();
//! let columnar = ColumnarTrace::from(&trace);
//!
//! let path = std::env::temp_dir().join("resmodel-doctest-persist.rmt");
//! persist::write_trace(&path, &columnar, Precision::Lossless)?;
//! let mapped = MappedTrace::open(&path)?;
//! assert_eq!(mapped.to_columnar(), columnar); // bitwise round trip
//! let active = mapped.active_at(SimDate::from_year(2006.2));
//! assert_eq!(active.len(), 1);
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```

pub mod mmap;

use crate::cpu::CpuFamily;
use crate::gpu::{GpuClass, GpuInfo};
use crate::host::HostId;
use crate::os::OsFamily;
use crate::source::{ColumnsRef, TraceSource};
use crate::time::SimDate;
use resmodel_error::ResmodelError;
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::ops::Range;
use std::path::Path;

#[cfg(target_endian = "big")]
compile_error!("the resmodel.trace format is little-endian; big-endian targets are unsupported");

/// Schema name of the format this module reads and writes.
pub const FORMAT_NAME: &str = "resmodel.trace/1";

/// On-disk format version, embedded in every file header. CI checks
/// that `docs/FORMAT.md` documents exactly this constant.
pub const FORMAT_VERSION: u32 = 1;

/// First eight bytes of every trace file.
pub const MAGIC: [u8; 8] = *b"RMTRACE\0";

/// Every section begins at a multiple of this (and the header/directory
/// block is padded up to it), so mapped sections are castable to their
/// element type regardless of the element's natural alignment.
pub const SECTION_ALIGN: usize = 64;

/// Fixed header length in bytes.
const HEADER_LEN: usize = 64;

/// Length of one directory entry in bytes.
const DIR_ENTRY_LEN: usize = 32;

/// Number of column sections in a version-1 file.
const SECTION_COUNT: usize = 17;

/// Offset of the first section: header + directory, padded to
/// [`SECTION_ALIGN`].
const FIRST_SECTION_OFFSET: usize =
    (HEADER_LEN + SECTION_COUNT * DIR_ENTRY_LEN).div_ceil(SECTION_ALIGN) * SECTION_ALIGN;

/// Element-type codes used in directory entries.
const DT_U8: u32 = 1;
const DT_U32: u32 = 2;
const DT_U64: u32 = 3;
const DT_F32: u32 = 4;
const DT_F64: u32 = 5;

/// Section names in id order — used in error messages and the spec.
const SECTION_NAMES: [&str; SECTION_COUNT] = [
    "ids",
    "created",
    "os",
    "cpu",
    "gpu_class",
    "gpu_memory_mb",
    "gpu_since",
    "first_contact",
    "last_contact",
    "snap_start",
    "snap_t",
    "snap_cores",
    "snap_memory_mb",
    "snap_whetstone",
    "snap_dhrystone",
    "snap_avail_disk",
    "snap_total_disk",
];

/// Sentinel in the `gpu_class` column for hosts without a GPU.
const GPU_NONE: u8 = 255;

/// Storage precision of the five measured resource columns.
///
/// See the module docs for the rationale; everything except those five
/// columns is unaffected by this choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// All columns `f64` — bitwise round trips, the default.
    #[default]
    Lossless,
    /// Resource columns stored as `f32` (values round-trip as
    /// `(x as f32) as f64`), roughly halving the snapshot payload.
    Compact,
}

impl Precision {
    /// The header code for this precision.
    fn code(self) -> u32 {
        match self {
            Precision::Lossless => 0,
            Precision::Compact => 1,
        }
    }

    fn from_code(code: u32) -> Option<Self> {
        match code {
            0 => Some(Precision::Lossless),
            1 => Some(Precision::Compact),
            _ => None,
        }
    }

    /// Human-readable name, as reported in BENCH artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Lossless => "lossless",
            Precision::Compact => "compact",
        }
    }
}

// --- CRC-32 (IEEE 802.3, polynomial 0xEDB88320) ---------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 as used in the directory entries and the header checksum.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- raw byte casts -------------------------------------------------

mod pod {
    /// Marker for element types whose in-memory layout *is* their
    /// little-endian on-disk layout on the (enforced little-endian)
    /// targets this crate compiles for: no padding, no niches, any bit
    /// pattern valid. `SimDate`/`HostId` qualify via
    /// `#[repr(transparent)]` over `f64`/`u64`.
    ///
    /// # Safety
    ///
    /// Implementors must be plain-old-data in the above sense.
    pub unsafe trait Pod: Copy {}
    unsafe impl Pod for u8 {}
    unsafe impl Pod for u32 {}
    unsafe impl Pod for u64 {}
    unsafe impl Pod for f32 {}
    unsafe impl Pod for f64 {}
    unsafe impl Pod for crate::time::SimDate {}
    unsafe impl Pod for crate::host::HostId {}
}
use pod::Pod;

/// View a slice of plain-old-data values as raw bytes.
fn as_bytes<T: Pod>(values: &[T]) -> &[u8] {
    // SAFETY: T is Pod (no padding), so every byte of the slice is
    // initialised; lifetime and provenance are inherited.
    unsafe {
        std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), std::mem::size_of_val(values))
    }
}

/// Cast validated section bytes back to typed values.
///
/// # Safety
///
/// `bytes` must be aligned to `align_of::<T>()` and its length a
/// multiple of `size_of::<T>()` — both guaranteed by the open-time
/// validation (64-byte section alignment, exact section lengths).
unsafe fn cast_slice<T: Pod>(bytes: &[u8]) -> &[T] {
    debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
    debug_assert_eq!(bytes.len() % std::mem::size_of::<T>(), 0);
    unsafe {
        std::slice::from_raw_parts(
            bytes.as_ptr().cast::<T>(),
            bytes.len() / std::mem::size_of::<T>(),
        )
    }
}

fn store_err(path: &Path, message: impl Into<String>) -> ResmodelError {
    ResmodelError::store(path.display().to_string(), message)
}

// --- enum <-> code mapping ------------------------------------------

fn os_code(os: OsFamily) -> u8 {
    OsFamily::ALL
        .iter()
        .position(|&x| x == os)
        .map(|i| i as u8)
        .expect("OsFamily::ALL covers every variant")
}

fn cpu_code(cpu: CpuFamily) -> u8 {
    CpuFamily::ALL
        .iter()
        .position(|&x| x == cpu)
        .map(|i| i as u8)
        .expect("CpuFamily::ALL covers every variant")
}

fn gpu_class_code(class: GpuClass) -> u8 {
    GpuClass::ALL
        .iter()
        .position(|&x| x == class)
        .map(|i| i as u8)
        .expect("GpuClass::ALL covers every variant")
}

// --- writer ---------------------------------------------------------

fn dtype_size(dtype: u32) -> usize {
    match dtype {
        DT_U8 => 1,
        DT_U32 => 4,
        DT_U64 => 8,
        DT_F32 => 4,
        _ => 8,
    }
}

fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Serialize any [`TraceSource`] to `path` in the `resmodel.trace/1`
/// format, returning the number of bytes written. The file is written
/// through a buffered writer and is complete (header checksum and all
/// section checksums valid) when this returns `Ok`.
pub fn write_trace<S: TraceSource + ?Sized>(
    path: impl AsRef<Path>,
    src: &S,
    precision: Precision,
) -> Result<u64, ResmodelError> {
    let path = path.as_ref();
    let cols = src.columns();
    let hosts = cols.host_count();
    let snaps = cols.snapshot_count();

    // Owned encodings for the columns that are not stored verbatim.
    let os_codes: Vec<u8> = cols.os.iter().map(|&o| os_code(o)).collect();
    let cpu_codes: Vec<u8> = cols.cpu.iter().map(|&c| cpu_code(c)).collect();
    let gpu_class: Vec<u8> = cols
        .gpu
        .iter()
        .map(|g| g.map_or(GPU_NONE, |g| gpu_class_code(g.class)))
        .collect();
    let gpu_memory: Vec<f64> = cols
        .gpu
        .iter()
        .map(|g| g.map_or(0.0, |g| g.memory_mb))
        .collect();
    let gpu_since: Vec<f64> = cols
        .gpu
        .iter()
        .map(|g| g.map_or(0.0, |g| g.since.days()))
        .collect();
    let snap_start: Vec<u64> = cols.snap_start.iter().map(|&s| s as u64).collect();
    let compact = |xs: &[f64]| -> Vec<f32> { xs.iter().map(|&x| x as f32).collect() };

    let mut sections: Vec<(u32, Cow<'_, [u8]>)> = Vec::with_capacity(SECTION_COUNT);
    sections.push((DT_U64, Cow::Borrowed(as_bytes(cols.ids))));
    sections.push((DT_F64, Cow::Borrowed(as_bytes(cols.created))));
    sections.push((DT_U8, Cow::Owned(os_codes)));
    sections.push((DT_U8, Cow::Owned(cpu_codes)));
    sections.push((DT_U8, Cow::Owned(gpu_class)));
    sections.push((DT_F64, Cow::Owned(as_bytes(&gpu_memory).to_vec())));
    sections.push((DT_F64, Cow::Owned(as_bytes(&gpu_since).to_vec())));
    sections.push((DT_F64, Cow::Borrowed(as_bytes(cols.first_contact))));
    sections.push((DT_F64, Cow::Borrowed(as_bytes(cols.last_contact))));
    sections.push((DT_U64, Cow::Owned(as_bytes(&snap_start).to_vec())));
    sections.push((DT_F64, Cow::Borrowed(as_bytes(cols.snap_t))));
    sections.push((DT_U32, Cow::Borrowed(as_bytes(cols.snap_cores))));
    for column in [
        cols.snap_memory_mb,
        cols.snap_whetstone,
        cols.snap_dhrystone,
        cols.snap_avail_disk,
        cols.snap_total_disk,
    ] {
        match precision {
            Precision::Lossless => sections.push((DT_F64, Cow::Borrowed(as_bytes(column)))),
            Precision::Compact => {
                sections.push((DT_F32, Cow::Owned(as_bytes(&compact(column)).to_vec())))
            }
        }
    }
    debug_assert_eq!(sections.len(), SECTION_COUNT);

    // Layout: assign each section its aligned offset.
    let mut directory = Vec::with_capacity(SECTION_COUNT);
    let mut offset = FIRST_SECTION_OFFSET;
    for (id, (dtype, bytes)) in sections.iter().enumerate() {
        directory.push((
            id as u32,
            *dtype,
            offset as u64,
            bytes.len() as u64,
            crc32(bytes),
        ));
        offset = align_up(offset + bytes.len());
    }
    let file_len = offset as u64;

    // Header.
    let mut header = [0u8; HEADER_LEN];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(SECTION_COUNT as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(hosts as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(snaps as u64).to_le_bytes());
    header[32..36].copy_from_slice(&precision.code().to_le_bytes());
    // bytes 36..40 reserved (zero)
    header[40..48].copy_from_slice(&file_len.to_le_bytes());
    let header_crc = crc32(&header[..48]);
    header[48..52].copy_from_slice(&header_crc.to_le_bytes());
    // bytes 52..64 reserved (zero)

    let io = |e: std::io::Error| ResmodelError::io(path.display().to_string(), e);
    let mut out = BufWriter::new(File::create(path).map_err(io)?);
    out.write_all(&header).map_err(io)?;
    for (id, dtype, off, len, crc) in &directory {
        let mut entry = [0u8; DIR_ENTRY_LEN];
        entry[0..4].copy_from_slice(&id.to_le_bytes());
        entry[4..8].copy_from_slice(&dtype.to_le_bytes());
        entry[8..16].copy_from_slice(&off.to_le_bytes());
        entry[16..24].copy_from_slice(&len.to_le_bytes());
        entry[24..28].copy_from_slice(&crc.to_le_bytes());
        // bytes 28..32 reserved (zero)
        out.write_all(&entry).map_err(io)?;
    }
    let mut written = HEADER_LEN + SECTION_COUNT * DIR_ENTRY_LEN;
    const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
    for (_, bytes) in &sections {
        let pad = align_up(written) - written;
        out.write_all(&ZEROS[..pad]).map_err(io)?;
        out.write_all(bytes).map_err(io)?;
        written = align_up(written) + bytes.len();
    }
    let pad = align_up(written) - written;
    out.write_all(&ZEROS[..pad]).map_err(io)?;
    out.flush().map_err(io)?;
    debug_assert_eq!(align_up(written) as u64, file_len);
    Ok(file_len)
}

// --- reader ---------------------------------------------------------

/// `f32`-stored resource columns widened back to `f64` at open time so
/// [`ColumnsRef`] can serve `&[f64]` slices uniformly.
#[derive(Debug)]
struct Widened {
    memory: Vec<f64>,
    whetstone: Vec<f64>,
    dhrystone: Vec<f64>,
    avail_disk: Vec<f64>,
    total_disk: Vec<f64>,
}

/// A trace backed by a persisted `resmodel.trace/1` file.
///
/// The numeric columns (ids, dates, contacts, snapshot times, cores,
/// and — under [`Precision::Lossless`] — the five resource columns)
/// are served zero-copy from the mapping; only the small categorical
/// columns (OS/CPU/GPU codes) and the offset table are decoded into
/// heap vectors at open time. Every structural problem with the file
/// is reported as a typed [`ResmodelError::Store`] — opening never
/// panics on corrupt input.
#[derive(Debug)]
pub struct MappedTrace {
    map: mmap::Mapping,
    path: String,
    precision: Precision,
    ranges: [Range<usize>; SECTION_COUNT],
    os: Vec<OsFamily>,
    cpu: Vec<CpuFamily>,
    gpu: Vec<Option<GpuInfo>>,
    snap_start: Vec<usize>,
    widened: Option<Widened>,
}

impl MappedTrace {
    /// Open and fully validate a trace file, mapping it read-only
    /// (with a transparent aligned-heap-read fallback when mapping is
    /// unavailable or `RESMODEL_NO_MMAP` is set).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, ResmodelError> {
        Self::open_with(path.as_ref(), false)
    }

    /// Open via the heap-read fallback unconditionally — same
    /// validation, same results, no `mmap` syscall.
    pub fn open_in_heap(path: impl AsRef<Path>) -> Result<Self, ResmodelError> {
        Self::open_with(path.as_ref(), true)
    }

    fn open_with(path: &Path, force_heap: bool) -> Result<Self, ResmodelError> {
        let io = |e: std::io::Error| ResmodelError::io(path.display().to_string(), e);
        let file = File::open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        if (len as usize) < HEADER_LEN {
            return Err(store_err(
                path,
                format!("truncated header: {len} bytes, need {HEADER_LEN}"),
            ));
        }
        let map = mmap::Mapping::of_file(&file, len, force_heap).map_err(io)?;
        drop(file);
        let b = map.bytes();

        if b[0..8] != MAGIC {
            return Err(store_err(path, "bad magic (not a resmodel.trace file)"));
        }
        let version = u32_at(b, 8);
        if version != FORMAT_VERSION {
            return Err(store_err(
                path,
                format!("unsupported version {version} (reader supports {FORMAT_VERSION})"),
            ));
        }
        let header_crc = u32_at(b, 48);
        if crc32(&b[..48]) != header_crc {
            return Err(store_err(path, "header checksum mismatch"));
        }
        let section_count = u32_at(b, 12) as usize;
        if section_count != SECTION_COUNT {
            return Err(store_err(
                path,
                format!("section count {section_count}, expected {SECTION_COUNT}"),
            ));
        }
        let hosts = usize::try_from(u64_at(b, 16))
            .map_err(|_| store_err(path, "host count overflows this platform"))?;
        let snaps = usize::try_from(u64_at(b, 24))
            .map_err(|_| store_err(path, "snapshot count overflows this platform"))?;
        let precision = Precision::from_code(u32_at(b, 32))
            .ok_or_else(|| store_err(path, format!("unknown precision code {}", u32_at(b, 32))))?;
        let file_len = u64_at(b, 40);
        if file_len != len {
            return Err(store_err(
                path,
                format!("file length mismatch: header says {file_len}, file is {len} bytes"),
            ));
        }
        if (len as usize) < FIRST_SECTION_OFFSET {
            return Err(store_err(path, "truncated directory"));
        }

        let mut ranges: [Range<usize>; SECTION_COUNT] = std::array::from_fn(|_| 0..0);
        for id in 0..SECTION_COUNT {
            let name = SECTION_NAMES[id];
            let base = HEADER_LEN + id * DIR_ENTRY_LEN;
            let entry_id = u32_at(b, base) as usize;
            if entry_id != id {
                return Err(store_err(
                    path,
                    format!("directory entry {id} has id {entry_id} (entries must be in order)"),
                ));
            }
            let dtype = u32_at(b, base + 4);
            let expected = expected_dtype(id, precision);
            if dtype != expected {
                return Err(store_err(
                    path,
                    format!("section {name}: dtype {dtype}, expected {expected}"),
                ));
            }
            let offset = u64_at(b, base + 8);
            let nbytes = u64_at(b, base + 16);
            let crc = u32_at(b, base + 24);
            if !offset.is_multiple_of(SECTION_ALIGN as u64) {
                return Err(store_err(
                    path,
                    format!("section {name}: misaligned offset {offset}"),
                ));
            }
            let end = offset
                .checked_add(nbytes)
                .filter(|&e| e <= file_len)
                .ok_or_else(|| store_err(path, format!("section {name}: out of bounds")))?;
            let count = if id == 9 {
                hosts + 1
            } else if id < 9 {
                hosts
            } else {
                snaps
            };
            let want = (count * dtype_size(dtype)) as u64;
            if nbytes != want {
                return Err(store_err(
                    path,
                    format!("section {name}: {nbytes} bytes, expected {want}"),
                ));
            }
            let range = offset as usize..end as usize;
            if crc32(&b[range.clone()]) != crc {
                return Err(store_err(
                    path,
                    format!("section {name}: checksum mismatch"),
                ));
            }
            ranges[id] = range;
        }

        // Decode the categorical/offset columns, validating codes.
        // SAFETY: ranges are 64-aligned and exactly sized (checked above).
        let snap_start_raw: &[u64] = unsafe { cast_slice(&b[ranges[9].clone()]) };
        let mut snap_start = Vec::with_capacity(hosts + 1);
        let mut prev = 0u64;
        for (i, &s) in snap_start_raw.iter().enumerate() {
            if i == 0 && s != 0 {
                return Err(store_err(path, "snap_start must begin at 0"));
            }
            if s < prev {
                return Err(store_err(path, "snap_start must be non-decreasing"));
            }
            prev = s;
            snap_start.push(
                usize::try_from(s)
                    .map_err(|_| store_err(path, "snap_start overflows this platform"))?,
            );
        }
        if prev != snaps as u64 {
            return Err(store_err(
                path,
                format!("snap_start ends at {prev}, expected snapshot count {snaps}"),
            ));
        }

        let decode =
            |codes: &[u8], what: &str, lookup: &dyn Fn(u8) -> bool| -> Result<(), ResmodelError> {
                match codes.iter().find(|&&c| !lookup(c)) {
                    Some(&c) => Err(store_err(path, format!("invalid {what} code {c}"))),
                    None => Ok(()),
                }
            };
        let os_codes = &b[ranges[2].clone()];
        decode(os_codes, "os", &|c| (c as usize) < OsFamily::ALL.len())?;
        let os: Vec<OsFamily> = os_codes
            .iter()
            .map(|&c| OsFamily::ALL[c as usize])
            .collect();
        let cpu_codes = &b[ranges[3].clone()];
        decode(cpu_codes, "cpu", &|c| (c as usize) < CpuFamily::ALL.len())?;
        let cpu: Vec<CpuFamily> = cpu_codes
            .iter()
            .map(|&c| CpuFamily::ALL[c as usize])
            .collect();
        let gpu_codes = &b[ranges[4].clone()];
        decode(gpu_codes, "gpu_class", &|c| {
            c == GPU_NONE || (c as usize) < GpuClass::ALL.len()
        })?;
        // SAFETY: as above.
        let gpu_memory: &[f64] = unsafe { cast_slice(&b[ranges[5].clone()]) };
        let gpu_since: &[f64] = unsafe { cast_slice(&b[ranges[6].clone()]) };
        let gpu: Vec<Option<GpuInfo>> = gpu_codes
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                (c != GPU_NONE).then(|| GpuInfo {
                    class: GpuClass::ALL[c as usize],
                    memory_mb: gpu_memory[i],
                    since: SimDate::from_days(gpu_since[i]),
                })
            })
            .collect();

        // Snapshot times must be non-decreasing within each host — the
        // invariant `active_at`'s reverse scan relies on.
        // SAFETY: as above.
        let snap_t: &[SimDate] = unsafe { cast_slice(&b[ranges[10].clone()]) };
        for i in 0..hosts {
            let range = snap_start[i]..snap_start[i + 1];
            if snap_t[range.clone()].windows(2).any(|w| w[1] < w[0]) {
                return Err(store_err(
                    path,
                    format!("snapshots of host row {i} are not in time order"),
                ));
            }
        }

        let widened = match precision {
            Precision::Lossless => None,
            Precision::Compact => {
                // SAFETY: as above; dtype f32 was enforced per entry.
                let widen = |id: usize| -> Vec<f64> {
                    let xs: &[f32] = unsafe { cast_slice(&b[ranges[id].clone()]) };
                    xs.iter().map(|&x| x as f64).collect()
                };
                Some(Widened {
                    memory: widen(12),
                    whetstone: widen(13),
                    dhrystone: widen(14),
                    avail_disk: widen(15),
                    total_disk: widen(16),
                })
            }
        };

        Ok(Self {
            path: path.display().to_string(),
            precision,
            ranges,
            os,
            cpu,
            gpu,
            snap_start,
            widened,
            map,
        })
    }

    /// The file this trace is backed by.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Which byte backend serves the columns: `"mmap"` or `"heap"`.
    pub fn backend(&self) -> &'static str {
        self.map.backend()
    }

    /// The precision the file was written with.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> u64 {
        self.map.bytes().len() as u64
    }

    /// Materialise an owned heap copy — equal (bitwise, under
    /// [`Precision::Lossless`]) to the store the file was written from.
    pub fn to_columnar(&self) -> crate::columnar::ColumnarTrace {
        crate::columnar::ColumnarTrace::from(self.columns())
    }

    fn section<T: Pod>(&self, id: usize) -> &[T] {
        // SAFETY: open_with validated 64-byte alignment and exact
        // length of every section, and the mapping is immutable.
        unsafe { cast_slice(&self.map.bytes()[self.ranges[id].clone()]) }
    }
}

impl TraceSource for MappedTrace {
    fn columns(&self) -> ColumnsRef<'_> {
        let (memory, whetstone, dhrystone, avail_disk, total_disk) = match &self.widened {
            Some(w) => (
                &w.memory[..],
                &w.whetstone[..],
                &w.dhrystone[..],
                &w.avail_disk[..],
                &w.total_disk[..],
            ),
            None => (
                self.section::<f64>(12),
                self.section::<f64>(13),
                self.section::<f64>(14),
                self.section::<f64>(15),
                self.section::<f64>(16),
            ),
        };
        ColumnsRef {
            ids: self.section::<HostId>(0),
            created: self.section::<SimDate>(1),
            os: &self.os,
            cpu: &self.cpu,
            gpu: &self.gpu,
            first_contact: self.section::<SimDate>(7),
            last_contact: self.section::<SimDate>(8),
            snap_start: &self.snap_start,
            snap_t: self.section::<SimDate>(10),
            snap_cores: self.section::<u32>(11),
            snap_memory_mb: memory,
            snap_whetstone: whetstone,
            snap_dhrystone: dhrystone,
            snap_avail_disk: avail_disk,
            snap_total_disk: total_disk,
        }
    }
}

fn expected_dtype(id: usize, precision: Precision) -> u32 {
    match id {
        0 | 9 => DT_U64,
        2..=4 => DT_U8,
        11 => DT_U32,
        12..=16 => match precision {
            Precision::Lossless => DT_F64,
            Precision::Compact => DT_F32,
        },
        _ => DT_F64,
    }
}

fn u32_at(b: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(buf)
}

fn u64_at(b: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(buf)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarTrace;
    use crate::host::{HostRecord, ResourceSnapshot};
    use crate::store::{ResourceColumn, Trace};

    fn snap(year: f64, cores: u32) -> ResourceSnapshot {
        ResourceSnapshot {
            t: SimDate::from_year(year),
            cores,
            memory_mb: 1024.0 * cores as f64 + 0.125,
            whetstone_mips: 1234.567,
            dhrystone_mips: 2345.678,
            avail_disk_gb: 55.25,
            total_disk_gb: 111.5,
        }
    }

    fn sample_columnar() -> ColumnarTrace {
        let mut trace = Trace::new();
        let mut a = HostRecord::new(1.into(), SimDate::from_year(2006.0));
        a.record(snap(2006.2, 1));
        a.record(snap(2008.0, 2));
        trace.push(a);
        let mut b = HostRecord::new(2.into(), SimDate::from_year(2009.0));
        b.os = OsFamily::ALL[5];
        b.cpu = CpuFamily::ALL[8];
        b.gpu = Some(GpuInfo {
            class: GpuClass::Radeon,
            memory_mb: 512.0,
            since: SimDate::from_year(2009.7),
        });
        b.record(snap(2009.5, 4));
        trace.push(b);
        // Snapshotless host: exercises the EPOCH placeholder columns.
        trace.push(HostRecord::new(3.into(), SimDate::from_year(2010.0)));
        ColumnarTrace::from(&trace)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("resmodel-persist-test-{name}.rmt"))
    }

    /// `docs/FORMAT.md` is normative — its constants must match the
    /// code's. CI greps the same invariants; this test catches drift
    /// locally before a push.
    #[test]
    fn spec_document_matches_the_code_constants() {
        let spec = include_str!("../../../../docs/FORMAT.md");
        assert!(
            spec.contains(FORMAT_NAME),
            "docs/FORMAT.md must name the schema {FORMAT_NAME}"
        );
        assert!(
            spec.contains(&format!("`FORMAT_VERSION` = **{FORMAT_VERSION}**")),
            "docs/FORMAT.md must document FORMAT_VERSION = {FORMAT_VERSION}"
        );
        assert!(
            spec.contains(&format!("`SECTION_ALIGN` = **{SECTION_ALIGN}**")),
            "docs/FORMAT.md must document SECTION_ALIGN = {SECTION_ALIGN}"
        );
        assert!(
            spec.contains(&format!("section_count  | `{SECTION_COUNT}`")),
            "docs/FORMAT.md must document the section count {SECTION_COUNT}"
        );
        for name in SECTION_NAMES {
            assert!(
                spec.contains(&format!("`{name}`")),
                "docs/FORMAT.md must document section `{name}`"
            );
        }
    }

    #[test]
    fn lossless_round_trip_is_bitwise() {
        let columnar = sample_columnar();
        let path = temp_path("lossless");
        let written = write_trace(&path, &columnar, Precision::Lossless).unwrap();
        assert_eq!(written % SECTION_ALIGN as u64, 0);
        assert_eq!(
            written,
            std::fs::metadata(&path).unwrap().len(),
            "write_trace returns the file length"
        );
        let mapped = MappedTrace::open(&path).unwrap();
        assert_eq!(mapped.precision(), Precision::Lossless);
        assert_eq!(mapped.file_len(), written);
        assert!(mapped.path().contains("lossless"));
        assert_eq!(mapped.to_columnar(), columnar);
        assert_eq!(mapped.to_trace().hosts(), columnar.to_trace().hosts());
        // Queries off the mapped columns match the heap store exactly.
        let t = SimDate::from_year(2008.0);
        assert_eq!(mapped.active_at(t), columnar.active_at(t));
        let set = mapped.active_at(t);
        for column in ResourceColumn::ALL {
            assert_eq!(
                mapped.column_values(&set, column),
                columnar.column_values(&set, column),
                "{column}"
            );
        }
        assert_eq!(mapped.start(), columnar.start());
        assert_eq!(mapped.end(), columnar.end());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_is_identical() {
        let columnar = sample_columnar();
        let path = temp_path("heapback");
        write_trace(&path, &columnar, Precision::Lossless).unwrap();
        let heap = MappedTrace::open_in_heap(&path).unwrap();
        assert_eq!(heap.backend(), "heap");
        assert_eq!(heap.to_columnar(), columnar);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_round_trip_narrows_resources_only() {
        let columnar = sample_columnar();
        let path = temp_path("compact");
        write_trace(&path, &columnar, Precision::Compact).unwrap();
        // Padding swallows the savings on a 3-snapshot sample, so size
        // the comparison on a store large enough to dominate alignment.
        {
            let mut big = ColumnarTrace::new();
            for id in 0..512u64 {
                big.push_host(
                    id.into(),
                    SimDate::from_year(2006.0),
                    OsFamily::default(),
                    CpuFamily::default(),
                    None,
                    (0..4).map(|k| snap(2006.5 + k as f64 * 0.5, 2)),
                );
            }
            let pc = temp_path("compact-big");
            let pl = temp_path("lossless-big");
            let compact_len = write_trace(&pc, &big, Precision::Compact).unwrap();
            let lossless_len = write_trace(&pl, &big, Precision::Lossless).unwrap();
            assert!(
                compact_len < lossless_len,
                "compact {compact_len} vs lossless {lossless_len}"
            );
            assert_eq!(
                MappedTrace::open(&pc).unwrap().to_columnar().snap_times(),
                big.snap_times()
            );
            std::fs::remove_file(&pc).ok();
            std::fs::remove_file(&pl).ok();
        }
        let mapped = MappedTrace::open(&path).unwrap();
        assert_eq!(mapped.precision(), Precision::Compact);
        let copy = mapped.to_columnar();
        // Identity columns are untouched…
        assert_eq!(copy.ids(), columnar.ids());
        assert_eq!(copy.snap_times(), columnar.snap_times());
        assert_eq!(copy.snap_cores(), columnar.snap_cores());
        assert_eq!(copy.gpu(), columnar.gpu());
        // …resource columns round f32-ward.
        for (got, want) in copy.snap_memory_mb().iter().zip(columnar.snap_memory_mb()) {
            assert_eq!(*got, (*want as f32) as f64);
        }
        for (got, want) in copy
            .snap_whetstone_mips()
            .iter()
            .zip(columnar.snap_whetstone_mips())
        {
            assert_eq!(*got, (*want as f32) as f64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_trace_round_trips() {
        let columnar = ColumnarTrace::new();
        let path = temp_path("empty");
        write_trace(&path, &columnar, Precision::Lossless).unwrap();
        let mapped = MappedTrace::open(&path).unwrap();
        assert_eq!(mapped.host_count(), 0);
        assert_eq!(mapped.snapshot_count(), 0);
        assert_eq!(mapped.to_columnar(), columnar);
        assert_eq!(mapped.start(), None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn precision_names() {
        assert_eq!(Precision::Lossless.name(), "lossless");
        assert_eq!(Precision::Compact.name(), "compact");
        assert_eq!(Precision::default(), Precision::Lossless);
        assert_eq!(Precision::from_code(2), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    // --- corrupted-file matrix: every failure is a typed Store error ---

    fn write_sample(name: &str) -> (std::path::PathBuf, Vec<u8>) {
        let path = temp_path(name);
        write_trace(&path, &sample_columnar(), Precision::Lossless).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    fn expect_store_err(path: &std::path::Path, needle: &str) {
        match MappedTrace::open(path) {
            Err(ResmodelError::Store { message, .. }) => {
                assert!(
                    message.contains(needle),
                    "message `{message}` should contain `{needle}`"
                );
            }
            other => panic!("expected Store error containing `{needle}`, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_header() {
        let (path, bytes) = write_sample("trunc-header");
        std::fs::write(&path, &bytes[..10]).unwrap();
        expect_store_err(&path, "truncated header");
    }

    #[test]
    fn rejects_bad_magic() {
        let (path, mut bytes) = write_sample("bad-magic");
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "bad magic");
    }

    #[test]
    fn rejects_wrong_version() {
        let (path, mut bytes) = write_sample("bad-version");
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bytes[..48]);
        bytes[48..52].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "unsupported version 99");
    }

    #[test]
    fn rejects_header_corruption() {
        let (path, mut bytes) = write_sample("bad-header");
        bytes[20] ^= 0xFF; // host count, covered by the header CRC
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "header checksum mismatch");
    }

    #[test]
    fn rejects_section_corruption() {
        let (path, mut bytes) = write_sample("bad-section");
        let last = bytes.len() - 1;
        // The final resource column's payload ends at or before EOF;
        // flip a byte inside the first section instead (ids, offset 640).
        bytes[FIRST_SECTION_OFFSET] ^= 0xFF;
        let _ = last;
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "checksum mismatch");
    }

    #[test]
    fn rejects_misaligned_section() {
        let (path, mut bytes) = write_sample("misaligned");
        // Patch section 0's offset to something unaligned.
        let base = HEADER_LEN + 8;
        let off = u64_at(&bytes, base) + 8;
        bytes[base..base + 8].copy_from_slice(&off.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "misaligned");
    }

    #[test]
    fn rejects_wrong_dtype() {
        let (path, mut bytes) = write_sample("bad-dtype");
        let base = HEADER_LEN + 4; // section 0's dtype field
        bytes[base..base + 4].copy_from_slice(&DT_F32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "dtype");
    }

    #[test]
    fn rejects_length_mismatch() {
        let (path, mut bytes) = write_sample("too-long");
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "length mismatch");
    }

    #[test]
    fn rejects_truncated_body() {
        let (path, bytes) = write_sample("trunc-body");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        expect_store_err(&path, "length mismatch");
    }

    #[test]
    fn rejects_out_of_bounds_section() {
        let (path, mut bytes) = write_sample("oob-section");
        let base = HEADER_LEN + 8;
        let huge = (bytes.len() as u64 + 64).div_ceil(64) * 64;
        bytes[base..base + 8].copy_from_slice(&huge.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "out of bounds");
    }

    #[test]
    fn rejects_invalid_enum_code() {
        let (path, mut bytes) = write_sample("bad-os-code");
        // Corrupt the os section's first byte AND fix up its CRC so the
        // failure is the semantic code check, not the checksum.
        let base = HEADER_LEN + 2 * DIR_ENTRY_LEN;
        let off = u64_at(&bytes, base + 8) as usize;
        let nbytes = u64_at(&bytes, base + 16) as usize;
        bytes[off] = 200;
        let crc = crc32(&bytes[off..off + nbytes]);
        bytes[base + 24..base + 28].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        expect_store_err(&path, "invalid os code 200");
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("does-not-exist");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            MappedTrace::open(&path),
            Err(ResmodelError::Io { .. })
        ));
    }
}
