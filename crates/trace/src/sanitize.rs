//! The paper's data-sanitization rules (Section V-B).
//!
//! "We discard hosts which report more than 128 cores, 10⁵ Whetstone
//! MIPs, 10⁵ Dhrystone MIPs, 10² GB memory or 10⁴ GB available disk
//! space. Based on these criteria we discard 3361 hosts (0.12% of
//! total)."

use crate::host::HostRecord;
use crate::store::Trace;
use serde::{Deserialize, Serialize};

/// Upper bounds beyond which a host report is considered corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeRules {
    /// Maximum believable core count.
    pub max_cores: u32,
    /// Maximum believable Whetstone MIPS.
    pub max_whetstone_mips: f64,
    /// Maximum believable Dhrystone MIPS.
    pub max_dhrystone_mips: f64,
    /// Maximum believable memory, MB.
    pub max_memory_mb: f64,
    /// Maximum believable available disk, GB.
    pub max_avail_disk_gb: f64,
}

impl Default for SanitizeRules {
    /// The paper's thresholds.
    fn default() -> Self {
        Self {
            max_cores: 128,
            max_whetstone_mips: 1e5,
            max_dhrystone_mips: 1e5,
            max_memory_mb: 100.0 * 1024.0, // 10² GB
            max_avail_disk_gb: 1e4,
        }
    }
}

impl SanitizeRules {
    /// Whether a single host ever breached any threshold (or reported a
    /// non-finite/negative value).
    pub fn is_corrupt(&self, host: &HostRecord) -> bool {
        host.snapshots().iter().any(|s| {
            s.cores > self.max_cores
                || s.whetstone_mips > self.max_whetstone_mips
                || s.dhrystone_mips > self.max_dhrystone_mips
                || s.memory_mb > self.max_memory_mb
                || s.avail_disk_gb > self.max_avail_disk_gb
                || !s.whetstone_mips.is_finite()
                || !s.dhrystone_mips.is_finite()
                || !s.memory_mb.is_finite()
                || !s.avail_disk_gb.is_finite()
                || s.whetstone_mips < 0.0
                || s.dhrystone_mips < 0.0
                || s.memory_mb < 0.0
                || s.avail_disk_gb < 0.0
        })
    }
}

/// Outcome of sanitizing a trace.
#[derive(Debug, Clone)]
pub struct SanitizeReport {
    /// The cleaned trace.
    pub trace: Trace,
    /// Number of hosts discarded.
    pub discarded: usize,
    /// Fraction of hosts discarded (0 for an empty input).
    pub discarded_fraction: f64,
}

/// Remove corrupt hosts from `trace` under `rules`, whole-host discard
/// exactly as the paper does.
pub fn sanitize(trace: &Trace, rules: SanitizeRules) -> SanitizeReport {
    let total = trace.len();
    let kept: Trace = trace
        .hosts()
        .iter()
        .filter(|h| !rules.is_corrupt(h))
        .cloned()
        .collect();
    let discarded = total - kept.len();
    SanitizeReport {
        trace: kept,
        discarded,
        discarded_fraction: if total == 0 {
            0.0
        } else {
            discarded as f64 / total as f64
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::host::ResourceSnapshot;
    use crate::time::SimDate;

    fn host(id: u64, cores: u32, whet: f64, dhry: f64, mem: f64, disk: f64) -> HostRecord {
        let mut h = HostRecord::new(id.into(), SimDate::from_year(2006.0));
        h.record(ResourceSnapshot {
            t: SimDate::from_year(2006.5),
            cores,
            memory_mb: mem,
            whetstone_mips: whet,
            dhrystone_mips: dhry,
            avail_disk_gb: disk,
            total_disk_gb: disk * 2.0,
        });
        h
    }

    #[test]
    fn default_rules_match_paper() {
        let r = SanitizeRules::default();
        assert_eq!(r.max_cores, 128);
        assert_eq!(r.max_whetstone_mips, 1e5);
        assert_eq!(r.max_dhrystone_mips, 1e5);
        assert_eq!(r.max_memory_mb, 102400.0);
        assert_eq!(r.max_avail_disk_gb, 1e4);
    }

    #[test]
    fn normal_host_passes() {
        let h = host(1, 4, 2000.0, 4000.0, 4096.0, 100.0);
        assert!(!SanitizeRules::default().is_corrupt(&h));
    }

    #[test]
    fn each_threshold_triggers() {
        let rules = SanitizeRules::default();
        assert!(rules.is_corrupt(&host(1, 256, 2e3, 4e3, 4096.0, 100.0)));
        assert!(rules.is_corrupt(&host(2, 4, 2e6, 4e3, 4096.0, 100.0)));
        assert!(rules.is_corrupt(&host(3, 4, 2e3, 2e6, 4096.0, 100.0)));
        assert!(rules.is_corrupt(&host(4, 4, 2e3, 4e3, 2e6, 100.0)));
        assert!(rules.is_corrupt(&host(5, 4, 2e3, 4e3, 4096.0, 2e4)));
    }

    #[test]
    fn boundary_values_pass() {
        let rules = SanitizeRules::default();
        assert!(!rules.is_corrupt(&host(1, 128, 1e5, 1e5, 102400.0, 1e4)));
    }

    #[test]
    fn nonfinite_and_negative_rejected() {
        let rules = SanitizeRules::default();
        assert!(rules.is_corrupt(&host(1, 4, f64::NAN, 4e3, 4096.0, 100.0)));
        assert!(rules.is_corrupt(&host(2, 4, 2e3, 4e3, -5.0, 100.0)));
    }

    #[test]
    fn sanitize_discards_only_corrupt() {
        let trace: Trace = vec![
            host(1, 4, 2e3, 4e3, 4096.0, 100.0),
            host(2, 999, 2e3, 4e3, 4096.0, 100.0),
            host(3, 2, 1e3, 2e3, 2048.0, 50.0),
        ]
        .into_iter()
        .collect();
        let report = sanitize(&trace, SanitizeRules::default());
        assert_eq!(report.discarded, 1);
        assert_eq!(report.trace.len(), 2);
        assert!((report.discarded_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert!(report.trace.host(2.into()).is_none());
    }

    #[test]
    fn sanitize_empty_trace() {
        let report = sanitize(&Trace::new(), SanitizeRules::default());
        assert_eq!(report.discarded, 0);
        assert_eq!(report.discarded_fraction, 0.0);
    }
}
