//! Layout-independent trace access: one borrowed column view shared by
//! every storage backend.
//!
//! The analysis layers (fit, validate, the pipeline's world summary)
//! only ever *read* columns; they never care whether those columns live
//! in heap `Vec`s ([`crate::columnar::ColumnarTrace`]) or in a read-only file mapping
//! ([`crate::persist::MappedTrace`]). [`ColumnsRef`] is that read-only
//! view — a `Copy` bundle of borrowed slices — and [`TraceSource`] is
//! the trait both backends implement by producing one.
//!
//! All query semantics (the paper's activity rule, snapshot
//! resolution, lifetime censoring) live here, on [`ColumnsRef`], so the
//! two backends cannot drift apart: they share a single implementation
//! and therefore produce bitwise-identical results.
//!
//! ```
//! use resmodel_trace::columnar::ColumnarTrace;
//! use resmodel_trace::source::TraceSource;
//! use resmodel_trace::store::ResourceColumn;
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.1),
//!     cores: 2,
//!     memory_mb: 1024.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 40.0,
//!     total_disk_gb: 80.0,
//! });
//! let trace: Trace = std::iter::once(h).collect();
//! let columnar = ColumnarTrace::from(&trace);
//!
//! // Generic code sees any backend through the same view.
//! fn hosts_at(src: &impl TraceSource, t: SimDate) -> usize {
//!     src.active_at(t).len()
//! }
//! assert_eq!(hosts_at(&columnar, SimDate::from_year(2006.1)), 1);
//! let cols = columnar.columns();
//! assert_eq!(cols.host_count(), 1);
//! assert_eq!(cols.snapshot_count(), 1);
//! ```

use crate::cpu::CpuFamily;
use crate::gpu::GpuInfo;
use crate::host::{HostId, HostRecord, ResourceSnapshot};
use crate::os::OsFamily;
use crate::store::{ResourceColumn, Trace};
use crate::time::SimDate;
use std::ops::Range;

/// A borrowed, read-only view of a trace's columns — the
/// structure-of-arrays layout every backend exposes.
///
/// # Shape contract
///
/// Producers (the [`TraceSource`] implementations in this crate)
/// guarantee:
///
/// * all per-host slices (`ids`, `created`, `os`, `cpu`, `gpu`,
///   `first_contact`, `last_contact`) have the same length `H`,
/// * `snap_start` has length `H + 1`, starts at 0, is non-decreasing
///   and ends at the snapshot count `S`,
/// * all per-snapshot slices (`snap_t` and the six measured columns)
///   have length `S`, and `snap_t` is non-decreasing within each
///   host's `snap_start[i]..snap_start[i + 1]` range.
///
/// `first_contact[i]` / `last_contact[i]` hold the placeholder
/// [`SimDate::EPOCH`] when host `i` has no snapshots; use the
/// presence-aware accessors ([`ColumnsRef::first_contact`]) instead of
/// indexing the raw slices when that distinction matters.
#[derive(Debug, Clone, Copy)]
pub struct ColumnsRef<'a> {
    /// Host ids, in insertion order.
    pub ids: &'a [HostId],
    /// Host creation dates.
    pub created: &'a [SimDate],
    /// Host OS families.
    pub os: &'a [OsFamily],
    /// Host CPU families.
    pub cpu: &'a [CpuFamily],
    /// Host GPU attributes (presence column).
    pub gpu: &'a [Option<GpuInfo>],
    /// Cached first contact per host (placeholder when snapshotless).
    pub first_contact: &'a [SimDate],
    /// Cached last contact per host (placeholder when snapshotless).
    pub last_contact: &'a [SimDate],
    /// Snapshot offsets: host `i`'s snapshots occupy the flattened
    /// range `snap_start[i]..snap_start[i + 1]`.
    pub snap_start: &'a [usize],
    /// Snapshot timestamps (flattened column).
    pub snap_t: &'a [SimDate],
    /// Core counts (flattened column).
    pub snap_cores: &'a [u32],
    /// Memory in MB (flattened column).
    pub snap_memory_mb: &'a [f64],
    /// Whetstone MIPS (flattened column).
    pub snap_whetstone: &'a [f64],
    /// Dhrystone MIPS (flattened column).
    pub snap_dhrystone: &'a [f64],
    /// Available disk in GB (flattened column).
    pub snap_avail_disk: &'a [f64],
    /// Total disk in GB (flattened column).
    pub snap_total_disk: &'a [f64],
}

impl<'a> ColumnsRef<'a> {
    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.ids.len()
    }

    /// Whether the view holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of snapshots across all hosts.
    pub fn snapshot_count(&self) -> usize {
        self.snap_t.len()
    }

    /// Reassemble the `k`-th flattened snapshot.
    pub fn snapshot(&self, k: usize) -> ResourceSnapshot {
        ResourceSnapshot {
            t: self.snap_t[k],
            cores: self.snap_cores[k],
            memory_mb: self.snap_memory_mb[k],
            whetstone_mips: self.snap_whetstone[k],
            dhrystone_mips: self.snap_dhrystone[k],
            avail_disk_gb: self.snap_avail_disk[k],
            total_disk_gb: self.snap_total_disk[k],
        }
    }

    /// The flattened snapshot range of host `row`.
    pub fn snapshot_range(&self, row: usize) -> Range<usize> {
        self.snap_start[row]..self.snap_start[row + 1]
    }

    /// First server contact of host `row`, if it has any snapshot.
    pub fn first_contact(&self, row: usize) -> Option<SimDate> {
        (!self.snapshot_range(row).is_empty()).then(|| self.first_contact[row])
    }

    /// Last server contact of host `row`, if it has any snapshot.
    pub fn last_contact(&self, row: usize) -> Option<SimDate> {
        (!self.snapshot_range(row).is_empty()).then(|| self.last_contact[row])
    }

    /// The paper's activity rule for host `row`: first contact ≤ `t` ≤
    /// last contact. Identical to [`HostRecord::is_active_at`].
    pub fn is_active_at(&self, row: usize, t: SimDate) -> bool {
        !self.snapshot_range(row).is_empty()
            && self.first_contact[row] <= t
            && t <= self.last_contact[row]
    }

    /// Resolve the active population at `t` **once**: the row index of
    /// every active host (in insertion order — the row store's
    /// iteration order) paired with the snapshot index in force at `t`.
    /// Every per-resource extraction at this date then reuses the set
    /// instead of re-filtering rows.
    pub fn active_at(&self, t: SimDate) -> ActiveSet {
        let mut rows = Vec::new();
        let mut snaps = Vec::new();
        for i in 0..self.host_count() {
            if !self.is_active_at(i, t) {
                continue;
            }
            // Latest snapshot at or before `t` — the same reverse scan
            // as `HostRecord::snapshot_at` (activity guarantees a hit).
            if let Some(k) = self.snapshot_range(i).rev().find(|&k| self.snap_t[k] <= t) {
                rows.push(i);
                snaps.push(k);
            }
        }
        ActiveSet {
            date: t,
            rows,
            snaps,
        }
    }

    /// Number of active hosts at `t`, without materialising the set.
    pub fn active_count(&self, t: SimDate) -> usize {
        (0..self.host_count())
            .filter(|&i| self.is_active_at(i, t))
            .count()
    }

    /// A zero-copy view of one resource column restricted to an active
    /// set: no values are materialised until iterated or collected.
    pub fn column(self, set: &'a ActiveSet, column: ResourceColumn) -> ColumnSlice<'a> {
        ColumnSlice {
            snap_cores: self.snap_cores,
            snap_memory_mb: self.snap_memory_mb,
            snap_whetstone: self.snap_whetstone,
            snap_dhrystone: self.snap_dhrystone,
            snap_avail_disk: self.snap_avail_disk,
            set,
            column,
        }
    }

    /// Gather one resource column into a `Vec` — same values, same
    /// order as [`Trace::column_at`].
    pub fn column_values(&self, set: &ActiveSet, column: ResourceColumn) -> Vec<f64> {
        self.column(set, column).iter().collect()
    }

    /// Host lifetimes in days under the paper's censoring rule —
    /// identical semantics and order to [`Trace::lifetimes`].
    pub fn lifetimes(&self, created_cutoff: SimDate) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..self.host_count() {
            if self.snapshot_range(i).is_empty() || self.first_contact[i] > created_cutoff {
                continue;
            }
            out.push(self.last_contact[i] - self.first_contact[i]);
        }
        out
    }

    /// `(creation year, lifetime days)` pairs — identical to
    /// [`Trace::creation_vs_lifetime`].
    pub fn creation_vs_lifetime(&self, created_cutoff: SimDate) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for i in 0..self.host_count() {
            if self.snapshot_range(i).is_empty() || self.first_contact[i] > created_cutoff {
                continue;
            }
            out.push((
                self.created[i].year(),
                self.last_contact[i] - self.first_contact[i],
            ));
        }
        out
    }

    /// Earliest first contact across all hosts.
    pub fn start(&self) -> Option<SimDate> {
        (0..self.host_count())
            .filter_map(|i| self.first_contact(i))
            .reduce(SimDate::min)
    }

    /// Latest last contact across all hosts.
    pub fn end(&self) -> Option<SimDate> {
        (0..self.host_count())
            .filter_map(|i| self.last_contact(i))
            .reduce(SimDate::max)
    }

    /// Rebuild the equivalent row-oriented [`Trace`] — same hosts, same
    /// order, same snapshots as the view.
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for i in 0..self.host_count() {
            let mut record = HostRecord::new(self.ids[i], self.created[i]);
            record.os = self.os[i];
            record.cpu = self.cpu[i];
            record.gpu = self.gpu[i];
            for k in self.snapshot_range(i) {
                record.record(self.snapshot(k));
            }
            trace.push(record);
        }
        trace
    }

    /// Report this view's shape to a metrics collector: extraction and
    /// host/snapshot counters plus a snapshots-per-host histogram.
    /// Everything recorded is a pure function of the columns, so the
    /// metrics stay thread-count invariant.
    pub fn observe_extraction(&self, obs: &resmodel_obs::Collector) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("trace.columnar.extractions", 1);
        obs.add("trace.columnar.hosts", self.host_count() as u64);
        obs.add("trace.columnar.snapshots", self.snapshot_count() as u64);
        let mut per_host = resmodel_obs::Histogram::new();
        for row in 0..self.host_count() {
            let range = self.snapshot_range(row);
            per_host.record_u64(range.len() as u64);
        }
        obs.merge_histogram("trace.columnar.snapshots_per_host", &per_host);
    }
}

/// A readable trace store: anything that can expose its contents as a
/// [`ColumnsRef`].
///
/// Two backends implement this: the heap-owned
/// [`crate::columnar::ColumnarTrace`] and the file-mapped
/// [`crate::persist::MappedTrace`]. The provided methods all delegate
/// to the shared [`ColumnsRef`] query implementations, so every
/// backend answers every query with bitwise-identical results — the
/// property the golden pipeline reports and round-trip proptests
/// enforce.
pub trait TraceSource {
    /// Borrow the columns.
    fn columns(&self) -> ColumnsRef<'_>;

    /// Number of hosts.
    fn host_count(&self) -> usize {
        self.columns().host_count()
    }

    /// Total number of snapshots across all hosts.
    fn snapshot_count(&self) -> usize {
        self.columns().snapshot_count()
    }

    /// The paper's activity rule ([`ColumnsRef::is_active_at`]).
    fn is_active_at(&self, row: usize, t: SimDate) -> bool {
        self.columns().is_active_at(row, t)
    }

    /// Resolve the active population at `t` ([`ColumnsRef::active_at`]).
    fn active_at(&self, t: SimDate) -> ActiveSet {
        self.columns().active_at(t)
    }

    /// Number of active hosts at `t`.
    fn active_count(&self, t: SimDate) -> usize {
        self.columns().active_count(t)
    }

    /// A zero-copy view of one resource column over an active set.
    fn column<'a>(&'a self, set: &'a ActiveSet, column: ResourceColumn) -> ColumnSlice<'a> {
        self.columns().column(set, column)
    }

    /// Gather one resource column into a `Vec`.
    fn column_values(&self, set: &ActiveSet, column: ResourceColumn) -> Vec<f64> {
        self.columns().column_values(set, column)
    }

    /// Host lifetimes under the paper's censoring rule.
    fn lifetimes(&self, created_cutoff: SimDate) -> Vec<f64> {
        self.columns().lifetimes(created_cutoff)
    }

    /// `(creation year, lifetime days)` pairs.
    fn creation_vs_lifetime(&self, created_cutoff: SimDate) -> Vec<(f64, f64)> {
        self.columns().creation_vs_lifetime(created_cutoff)
    }

    /// Earliest first contact across all hosts.
    fn start(&self) -> Option<SimDate> {
        self.columns().start()
    }

    /// Latest last contact across all hosts.
    fn end(&self) -> Option<SimDate> {
        self.columns().end()
    }

    /// Rebuild the equivalent row-oriented [`Trace`].
    fn to_trace(&self) -> Trace {
        self.columns().to_trace()
    }

    /// Report the store's shape to a metrics collector.
    fn observe_extraction(&self, obs: &resmodel_obs::Collector) {
        self.columns().observe_extraction(obs);
    }
}

/// The active population at one date, resolved once: parallel arrays of
/// host row indices and the snapshot index in force for each.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSet {
    pub(crate) date: SimDate,
    pub(crate) rows: Vec<usize>,
    pub(crate) snaps: Vec<usize>,
}

impl ActiveSet {
    /// The date this set was resolved at.
    pub fn date(&self) -> SimDate {
        self.date
    }

    /// Number of active hosts.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no host was active.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row (host) indices, in insertion order.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Flattened snapshot index in force at the date, parallel to
    /// [`ActiveSet::rows`].
    pub fn snaps(&self) -> &[usize] {
        &self.snaps
    }
}

/// A zero-copy view of one resource column over an active set: borrows
/// the backing store's snapshot columns and the set's index arrays,
/// materialising nothing.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSlice<'a> {
    snap_cores: &'a [u32],
    snap_memory_mb: &'a [f64],
    snap_whetstone: &'a [f64],
    snap_dhrystone: &'a [f64],
    snap_avail_disk: &'a [f64],
    set: &'a ActiveSet,
    column: ResourceColumn,
}

impl<'a> ColumnSlice<'a> {
    /// Number of values in the view.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Which resource this view extracts.
    pub fn column(&self) -> ResourceColumn {
        self.column
    }

    /// The `i`-th value (position within the active set).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> f64 {
        self.value_at(self.set.snaps[i])
    }

    /// Iterate the values — bitwise the same sequence as
    /// [`Trace::column_at`] produces for this date and resource.
    pub fn iter(&self) -> ColumnSliceIter<'a> {
        ColumnSliceIter {
            slice: *self,
            snaps: self.set.snaps.iter(),
        }
    }

    /// Collect into a `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Extract the value at flattened snapshot index `k`, with exactly
    /// the row path's arithmetic ([`ResourceColumn::extract`] over a
    /// [`crate::host::HostView`]).
    fn value_at(&self, k: usize) -> f64 {
        match self.column {
            ResourceColumn::Cores => self.snap_cores[k] as f64,
            ResourceColumn::Memory => self.snap_memory_mb[k],
            ResourceColumn::MemPerCore => self.snap_memory_mb[k] / self.snap_cores[k].max(1) as f64,
            ResourceColumn::Whetstone => self.snap_whetstone[k],
            ResourceColumn::Dhrystone => self.snap_dhrystone[k],
            ResourceColumn::Disk => self.snap_avail_disk[k],
        }
    }
}

impl<'a> IntoIterator for &ColumnSlice<'a> {
    type Item = f64;
    type IntoIter = ColumnSliceIter<'a>;

    fn into_iter(self) -> ColumnSliceIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`ColumnSlice`]'s values.
#[derive(Debug, Clone)]
pub struct ColumnSliceIter<'a> {
    slice: ColumnSlice<'a>,
    snaps: std::slice::Iter<'a, usize>,
}

impl Iterator for ColumnSliceIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.snaps.next().map(|&k| self.slice.value_at(k))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.snaps.size_hint()
    }
}

impl ExactSizeIterator for ColumnSliceIter<'_> {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::columnar::ColumnarTrace;

    fn sample_columnar() -> ColumnarTrace {
        let mut store = ColumnarTrace::new();
        for (id, from, to, cores) in [(1u64, 2006.0, 2008.0, 1u32), (2, 2007.0, 2009.0, 2)] {
            let snap = |year: f64| ResourceSnapshot {
                t: SimDate::from_year(year),
                cores,
                memory_mb: 1024.0 * cores as f64,
                whetstone_mips: 1000.0,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 50.0,
                total_disk_gb: 100.0,
            };
            store.push_host(
                id.into(),
                SimDate::from_year(from),
                OsFamily::default(),
                CpuFamily::default(),
                None,
                [snap(from), snap(to)],
            );
        }
        store
    }

    #[test]
    fn view_matches_store_queries() {
        let store = sample_columnar();
        let cols = store.columns();
        assert_eq!(cols.host_count(), store.len());
        assert_eq!(cols.snapshot_count(), store.snapshot_count());
        assert!(!cols.is_empty());
        let t = SimDate::from_year(2007.5);
        assert_eq!(cols.active_at(t), store.active_at(t));
        assert_eq!(cols.active_count(t), store.active_count(t));
        assert_eq!(cols.start(), store.start());
        assert_eq!(cols.end(), store.end());
        let cutoff = SimDate::from_year(2008.0);
        assert_eq!(cols.lifetimes(cutoff), store.lifetimes(cutoff));
        assert_eq!(
            cols.creation_vs_lifetime(cutoff),
            store.creation_vs_lifetime(cutoff)
        );
        assert_eq!(cols.to_trace().hosts(), store.to_trace().hosts());
    }

    #[test]
    fn trait_object_queries_work() {
        let store = sample_columnar();
        let src: &dyn TraceSource = &store;
        assert_eq!(src.host_count(), 2);
        assert_eq!(src.snapshot_count(), 4);
        let t = SimDate::from_year(2007.5);
        let set = src.active_at(t);
        assert_eq!(set.len(), 2);
        assert!(src.is_active_at(0, t));
        assert_eq!(src.active_count(t), 2);
        let vals = src.column_values(&set, ResourceColumn::Memory);
        assert_eq!(vals, vec![1024.0, 2048.0]);
        assert_eq!(src.column(&set, ResourceColumn::Cores).to_vec(), [1.0, 2.0]);
        assert_eq!(src.start(), store.start());
        assert_eq!(src.end(), store.end());
        assert_eq!(src.lifetimes(t), store.lifetimes(t));
        assert_eq!(src.creation_vs_lifetime(t), store.creation_vs_lifetime(t));
        assert_eq!(src.to_trace().len(), 2);
        let obs = resmodel_obs::Collector::new();
        src.observe_extraction(&obs);
        assert_eq!(obs.snapshot().counter("trace.columnar.hosts"), Some(2));
    }

    #[test]
    fn roundtrip_through_owned_copy() {
        let store = sample_columnar();
        let copy = ColumnarTrace::from(store.columns());
        assert_eq!(copy, store);
    }
}
