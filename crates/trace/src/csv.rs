//! Hand-rolled CSV import/export of traces.
//!
//! The format mirrors the paper's published trace files: one `H` row of
//! static host attributes followed by `S` rows of time-stamped resource
//! measurements.
//!
//! ```text
//! H,<id>,<created_days>,<os>,<cpu>,<gpu_class|->,<gpu_mem|0>
//! S,<id>,<t_days>,<cores>,<memory_mb>,<whet>,<dhry>,<avail_gb>,<total_gb>
//! ```

use crate::cpu::CpuFamily;
use crate::gpu::{GpuClass, GpuInfo};
use crate::host::{HostRecord, ResourceSnapshot};
use crate::os::OsFamily;
use crate::store::Trace;
use crate::time::SimDate;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors produced when parsing a trace CSV.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row, with its 1-based line number.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// A snapshot row referenced an unknown host id.
    UnknownHost {
        /// 1-based line number.
        line: usize,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Malformed { line, reason } => {
                write!(f, "malformed row at line {line}: {reason}")
            }
            CsvError::UnknownHost { line } => {
                write!(f, "snapshot references unknown host at line {line}")
            }
        }
    }
}

impl std::error::Error for CsvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

impl From<CsvError> for resmodel_error::ResmodelError {
    fn from(e: CsvError) -> Self {
        match e {
            CsvError::Io(source) => resmodel_error::ResmodelError::io("trace csv", source),
            other => resmodel_error::ResmodelError::config("trace csv", other.to_string()),
        }
    }
}

fn os_tag(os: OsFamily) -> &'static str {
    match os {
        OsFamily::WindowsXp => "winxp",
        OsFamily::WindowsVista => "vista",
        OsFamily::Windows7 => "win7",
        OsFamily::Windows2000 => "win2000",
        OsFamily::OtherWindows => "otherwin",
        OsFamily::MacOsX => "macosx",
        OsFamily::Linux => "linux",
        OsFamily::Other => "other",
    }
}

fn parse_os(tag: &str) -> Option<OsFamily> {
    OsFamily::ALL.into_iter().find(|&o| os_tag(o) == tag)
}

fn cpu_tag(cpu: CpuFamily) -> &'static str {
    match cpu {
        CpuFamily::PowerPc => "ppc",
        CpuFamily::AthlonXp => "athlonxp",
        CpuFamily::Athlon64 => "athlon64",
        CpuFamily::OtherAmd => "otheramd",
        CpuFamily::Pentium4 => "p4",
        CpuFamily::PentiumM => "pm",
        CpuFamily::PentiumD => "pd",
        CpuFamily::OtherPentium => "otherpentium",
        CpuFamily::IntelCore2 => "core2",
        CpuFamily::IntelCeleron => "celeron",
        CpuFamily::IntelXeon => "xeon",
        CpuFamily::OtherX86 => "otherx86",
        CpuFamily::Other => "other",
    }
}

fn parse_cpu(tag: &str) -> Option<CpuFamily> {
    CpuFamily::ALL.into_iter().find(|&c| cpu_tag(c) == tag)
}

fn gpu_tag(class: GpuClass) -> &'static str {
    match class {
        GpuClass::GeForce => "geforce",
        GpuClass::Radeon => "radeon",
        GpuClass::Quadro => "quadro",
        GpuClass::Other => "other",
    }
}

fn parse_gpu(tag: &str) -> Option<GpuClass> {
    GpuClass::ALL.into_iter().find(|&g| gpu_tag(g) == tag)
}

/// Write `trace` in the CSV format described at module level.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> Result<(), CsvError> {
    for h in trace.hosts() {
        let (gc, gm, gs) = match h.gpu {
            Some(g) => (gpu_tag(g.class), g.memory_mb, g.since.days()),
            None => ("-", 0.0, 0.0),
        };
        writeln!(
            w,
            "H,{},{},{},{},{},{},{}",
            h.id.value(),
            h.created.days(),
            os_tag(h.os),
            cpu_tag(h.cpu),
            gc,
            gm,
            gs
        )?;
        for s in h.snapshots() {
            writeln!(
                w,
                "S,{},{},{},{},{},{},{},{}",
                h.id.value(),
                s.t.days(),
                s.cores,
                s.memory_mb,
                s.whetstone_mips,
                s.dhrystone_mips,
                s.avail_disk_gb,
                s.total_disk_gb
            )?;
        }
    }
    Ok(())
}

/// Read a trace from the CSV format produced by [`write_trace`].
///
/// # Errors
///
/// Returns [`CsvError::Malformed`] on syntax errors and
/// [`CsvError::UnknownHost`] when a snapshot precedes its host row.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, CsvError> {
    let mut trace = Trace::new();
    // Map from raw id to index in insertion order; snapshots must follow
    // their host row, so we only ever append to the most recent hosts.
    let mut hosts: Vec<HostRecord> = Vec::new();
    let mut index: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();

    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = lineno + 1;
        let fields: Vec<&str> = line.split(',').collect();
        let malformed = |reason: &str| CsvError::Malformed {
            line: lineno,
            reason: reason.to_string(),
        };
        match fields[0] {
            "H" => {
                if fields.len() != 8 {
                    return Err(malformed("H row needs 8 fields"));
                }
                let id: u64 = fields[1].parse().map_err(|_| malformed("bad id"))?;
                let days: f64 = fields[2].parse().map_err(|_| malformed("bad created"))?;
                let mut h = HostRecord::new(id.into(), SimDate::from_days(days));
                h.os = parse_os(fields[3]).ok_or_else(|| malformed("bad os"))?;
                h.cpu = parse_cpu(fields[4]).ok_or_else(|| malformed("bad cpu"))?;
                if fields[5] != "-" {
                    let class = parse_gpu(fields[5]).ok_or_else(|| malformed("bad gpu"))?;
                    let memory_mb: f64 = fields[6].parse().map_err(|_| malformed("bad gpu mem"))?;
                    let since: f64 = fields[7].parse().map_err(|_| malformed("bad gpu since"))?;
                    h.gpu = Some(GpuInfo {
                        class,
                        memory_mb,
                        since: SimDate::from_days(since),
                    });
                }
                index.insert(id, hosts.len());
                hosts.push(h);
            }
            "S" => {
                if fields.len() != 9 {
                    return Err(malformed("S row needs 9 fields"));
                }
                let id: u64 = fields[1].parse().map_err(|_| malformed("bad id"))?;
                let &i = index
                    .get(&id)
                    .ok_or(CsvError::UnknownHost { line: lineno })?;
                let num = |k: usize, what: &str| -> Result<f64, CsvError> {
                    fields[k].parse().map_err(|_| CsvError::Malformed {
                        line: lineno,
                        reason: format!("bad {what}"),
                    })
                };
                hosts[i].record(ResourceSnapshot {
                    t: SimDate::from_days(num(2, "t")?),
                    cores: num(3, "cores")? as u32,
                    memory_mb: num(4, "memory")?,
                    whetstone_mips: num(5, "whet")?,
                    dhrystone_mips: num(6, "dhry")?,
                    avail_disk_gb: num(7, "avail")?,
                    total_disk_gb: num(8, "total")?,
                });
            }
            other => {
                return Err(malformed(&format!("unknown row tag `{other}`")));
            }
        }
    }
    trace.extend(hosts);
    Ok(trace)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let mut h = HostRecord::new(3.into(), SimDate::from_year(2006.2));
        h.os = OsFamily::Linux;
        h.cpu = CpuFamily::IntelCore2;
        h.gpu = Some(GpuInfo {
            class: GpuClass::Radeon,
            memory_mb: 512.0,
            since: SimDate::from_year(2009.7),
        });
        h.record(ResourceSnapshot {
            t: SimDate::from_year(2006.3),
            cores: 2,
            memory_mb: 2048.0,
            whetstone_mips: 1500.5,
            dhrystone_mips: 2500.25,
            avail_disk_gb: 40.125,
            total_disk_gb: 80.0,
        });
        let mut h2 = HostRecord::new(4.into(), SimDate::from_year(2007.0));
        h2.os = OsFamily::WindowsXp;
        h2.cpu = CpuFamily::Pentium4;
        h2.record(ResourceSnapshot {
            t: SimDate::from_year(2007.1),
            cores: 1,
            memory_mb: 512.0,
            whetstone_mips: 900.0,
            dhrystone_mips: 1800.0,
            avail_disk_gb: 10.0,
            total_disk_gb: 60.0,
        });
        vec![h, h2].into_iter().collect()
    }

    #[test]
    fn roundtrip_preserves_trace() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        let h = back.host(3.into()).unwrap();
        assert_eq!(h.os, OsFamily::Linux);
        assert_eq!(h.cpu, CpuFamily::IntelCore2);
        assert_eq!(h.gpu.unwrap().class, GpuClass::Radeon);
        assert_eq!(h.snapshots().len(), 1);
        assert_eq!(h.snapshots()[0].whetstone_mips, 1500.5);
        let h2 = back.host(4.into()).unwrap();
        assert!(h2.gpu.is_none());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# comment\n\nH,1,365.25,linux,core2,-,0,0\nS,1,400,2,2048,1000,2000,50,100\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.host(1.into()).unwrap().snapshots().len(), 1);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(matches!(
            read_trace("H,1,oops,linux,core2,-,0\n".as_bytes()),
            Err(CsvError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            read_trace("X,1\n".as_bytes()),
            Err(CsvError::Malformed { .. })
        ));
        assert!(matches!(
            read_trace("H,1,1.0,linux,core2,-\n".as_bytes()),
            Err(CsvError::Malformed { .. })
        ));
    }

    #[test]
    fn rejects_snapshot_before_host() {
        let text = "S,9,400,2,2048,1000,2000,50,100\n";
        assert!(matches!(
            read_trace(text.as_bytes()),
            Err(CsvError::UnknownHost { line: 1 })
        ));
    }

    #[test]
    fn all_enum_tags_roundtrip() {
        for os in OsFamily::ALL {
            assert_eq!(parse_os(os_tag(os)), Some(os));
        }
        for cpu in CpuFamily::ALL {
            assert_eq!(parse_cpu(cpu_tag(cpu)), Some(cpu));
        }
        for gpu in GpuClass::ALL {
            assert_eq!(parse_gpu(gpu_tag(gpu)), Some(gpu));
        }
    }

    #[test]
    fn error_display() {
        let e = CsvError::UnknownHost { line: 5 };
        assert!(e.to_string().contains("line 5"));
    }
}
