//! Simulation time: fractional days anchored at 2005-01-01.
//!
//! The paper's laws are all functions of `(year − 2006)`; [`SimDate`]
//! converts between day counts (the simulator's unit) and fractional
//! calendar years (the model's unit).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// Days per (average) year used for date conversions.
pub const DAYS_PER_YEAR: f64 = 365.25;

/// Calendar year of day 0.
pub const EPOCH_YEAR: f64 = 2005.0;

/// A point in simulated time, stored as fractional days since
/// 2005-01-01.
///
/// # Examples
///
/// ```
/// use resmodel_trace::SimDate;
///
/// let d = SimDate::from_year(2006.0);
/// assert!((d.year() - 2006.0).abs() < 1e-12);
/// assert!((d.days() - 365.25).abs() < 1e-9);
/// let later = d + 365.25;
/// assert!((later.year() - 2007.0).abs() < 1e-9);
/// ```
/// The layout is `#[repr(transparent)]` over the inner `f64`, so the
/// persistence layer can reinterpret an aligned little-endian `f64`
/// column as a `&[SimDate]` without copying.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct SimDate {
    days: f64,
}

impl SimDate {
    /// The epoch itself (2005-01-01).
    pub const EPOCH: SimDate = SimDate { days: 0.0 };

    /// Create from a day count since the epoch.
    pub fn from_days(days: f64) -> Self {
        Self { days }
    }

    /// Create from a fractional calendar year (e.g. `2006.5`).
    pub fn from_year(year: f64) -> Self {
        Self {
            days: (year - EPOCH_YEAR) * DAYS_PER_YEAR,
        }
    }

    /// Days since the epoch.
    pub fn days(&self) -> f64 {
        self.days
    }

    /// Fractional calendar year.
    pub fn year(&self) -> f64 {
        EPOCH_YEAR + self.days / DAYS_PER_YEAR
    }

    /// Years since 2006 — the `t` in every `a·e^{b·t}` law of the paper.
    pub fn years_since_2006(&self) -> f64 {
        self.year() - 2006.0
    }

    /// The earlier of two dates.
    pub fn min(self, other: SimDate) -> SimDate {
        if self.days <= other.days {
            self
        } else {
            other
        }
    }

    /// The later of two dates.
    pub fn max(self, other: SimDate) -> SimDate {
        if self.days >= other.days {
            self
        } else {
            other
        }
    }
}

impl Add<f64> for SimDate {
    type Output = SimDate;

    /// Advance by a number of days.
    fn add(self, days: f64) -> SimDate {
        SimDate {
            days: self.days + days,
        }
    }
}

impl Sub<SimDate> for SimDate {
    type Output = f64;

    /// Difference in days.
    fn sub(self, other: SimDate) -> f64 {
        self.days - other.days
    }
}

impl fmt::Display for SimDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let year = self.year();
        let whole = year.floor();
        let month = (1.0 + (year - whole) * 12.0).floor().clamp(1.0, 12.0);
        write!(f, "{:.0}/{:02.0}", whole, month)
    }
}

/// Generate evenly spaced sample dates from `start` to `end` inclusive,
/// stepping by `step_days`.
///
/// # Panics
///
/// Panics when `step_days <= 0`.
pub fn date_range(start: SimDate, end: SimDate, step_days: f64) -> Vec<SimDate> {
    assert!(step_days > 0.0, "step_days must be positive");
    let mut out = Vec::new();
    let mut t = start;
    while t.days() <= end.days() + 1e-9 {
        out.push(t);
        t = t + step_days;
    }
    out
}

/// Yearly sample dates at January 1 of each year in `[from_year, to_year]`.
pub fn yearly_dates(from_year: i32, to_year: i32) -> Vec<SimDate> {
    (from_year..=to_year)
        .map(|y| SimDate::from_year(y as f64))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn year_roundtrip() {
        for &y in &[2005.0, 2006.0, 2008.37, 2010.67, 2014.0] {
            let d = SimDate::from_year(y);
            assert!((d.year() - y).abs() < 1e-10);
        }
    }

    #[test]
    fn years_since_2006() {
        assert!((SimDate::from_year(2010.0).years_since_2006() - 4.0).abs() < 1e-10);
        assert!((SimDate::from_year(2005.5).years_since_2006() + 0.5).abs() < 1e-10);
    }

    #[test]
    fn arithmetic() {
        let a = SimDate::from_days(100.0);
        let b = a + 50.0;
        assert_eq!(b.days(), 150.0);
        assert_eq!(b - a, 50.0);
    }

    #[test]
    fn ordering_helpers() {
        let a = SimDate::from_days(1.0);
        let b = SimDate::from_days(2.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(a < b);
    }

    #[test]
    fn display_format() {
        let d = SimDate::from_year(2006.0);
        assert_eq!(d.to_string(), "2006/01");
        let mid = SimDate::from_year(2008.5);
        assert_eq!(mid.to_string(), "2008/07");
    }

    #[test]
    fn date_range_inclusive() {
        let r = date_range(SimDate::from_days(0.0), SimDate::from_days(10.0), 5.0);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].days(), 10.0);
    }

    #[test]
    #[should_panic(expected = "step_days")]
    fn date_range_rejects_bad_step() {
        date_range(SimDate::EPOCH, SimDate::from_days(1.0), 0.0);
    }

    #[test]
    fn yearly_dates_span() {
        let ys = yearly_dates(2006, 2010);
        assert_eq!(ys.len(), 5);
        assert!((ys[0].year() - 2006.0).abs() < 1e-10);
        assert!((ys[4].year() - 2010.0).abs() < 1e-10);
    }
}
