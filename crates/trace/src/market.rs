//! Shared machinery for yearly market-share tables (paper Tables I, II
//! and VII): interpolation between yearly columns and categorical
//! sampling.

/// Linearly interpolate a share series sampled at `years` to `year`,
/// clamping outside the covered range.
///
/// # Panics
///
/// Panics when `years` and `shares` have different lengths or are empty.
pub(crate) fn interp_series(years: &[f64], shares: &[f64], year: f64) -> f64 {
    assert_eq!(years.len(), shares.len(), "years/shares length mismatch");
    assert!(!years.is_empty(), "empty share series");
    if year <= years[0] {
        return shares[0];
    }
    if year >= years[years.len() - 1] {
        return shares[shares.len() - 1];
    }
    for w in 0..years.len() - 1 {
        if year >= years[w] && year <= years[w + 1] {
            let f = (year - years[w]) / (years[w + 1] - years[w]);
            return shares[w] * (1.0 - f) + shares[w + 1] * f;
        }
    }
    shares[shares.len() - 1]
}

/// Normalise a weight vector to sum to 1 (no-op for all-zero weights).
pub(crate) fn normalize(weights: &mut [f64]) {
    let total: f64 = weights.iter().sum();
    if total > 0.0 {
        for w in weights.iter_mut() {
            *w /= total;
        }
    }
}

/// Pick an index from normalised `weights` using a uniform draw
/// `u ∈ [0, 1)` — the workspace's one categorical-share sampler
/// (exported so downstream crates do not re-implement the walk).
///
/// # Panics
///
/// Panics when `weights` is empty.
pub fn pick_index(weights: &[f64], u: f64) -> usize {
    assert!(!weights.is_empty(), "cannot pick from empty weights");
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if u < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn interp_endpoints_and_midpoint() {
        let years = [2006.0, 2007.0, 2008.0];
        let shares = [10.0, 20.0, 40.0];
        assert_eq!(interp_series(&years, &shares, 2005.0), 10.0);
        assert_eq!(interp_series(&years, &shares, 2009.0), 40.0);
        assert!((interp_series(&years, &shares, 2006.5) - 15.0).abs() < 1e-12);
        assert!((interp_series(&years, &shares, 2007.5) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut w = [2.0, 3.0, 5.0];
        normalize(&mut w);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_weights_noop() {
        let mut w = [0.0, 0.0];
        normalize(&mut w);
        assert_eq!(w, [0.0, 0.0]);
    }

    #[test]
    fn pick_index_boundaries() {
        let w = [0.25, 0.25, 0.5];
        assert_eq!(pick_index(&w, 0.0), 0);
        assert_eq!(pick_index(&w, 0.26), 1);
        assert_eq!(pick_index(&w, 0.75), 2);
        assert_eq!(pick_index(&w, 0.999999), 2);
    }
}
