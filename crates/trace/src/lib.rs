//! # resmodel-trace
//!
//! Host records, trace storage and time-indexed queries for the
//! `resmodel` workspace — the data layer that plays the role of the
//! SETI@home/BOINC measurement files in *"Correlated Resource Models of
//! Internet End Hosts"* (Heien, Kondo & Anderson, ICDCS 2011).
//!
//! A [`Trace`] is a collection of [`HostRecord`]s, each carrying the
//! host's static attributes (creation date, OS, CPU family, optional
//! GPU) and a time series of [`ResourceSnapshot`]s recorded whenever the
//! host contacted the project server. The paper's analysis primitives
//! are provided as queries:
//!
//! * **Activity rule** — a host is *active* at time `T` iff its first
//!   server contact precedes `T` and its last contact follows `T`
//!   (Section IV).
//! * **Population snapshots** — the latest measurement of every active
//!   host at `T` ([`Trace::population_at`]).
//! * **Lifetimes** — last minus first contact, with the paper's
//!   censoring rule that ignores hosts created after a cutoff
//!   ([`Trace::lifetimes`]).
//! * **Sanitization** — the paper's outlier-discard rules
//!   ([`sanitize::SanitizeRules`]).
//!
//! Three storage backends share these semantics: the row-oriented
//! [`Trace`] (one [`HostRecord`] per host — the ingestion and
//! serialization format), the columnar [`ColumnarTrace`]
//! (structure-of-arrays column store — the analysis format the fitting
//! pipeline extracts from), and the file-mapped
//! [`persist::MappedTrace`] (zero-copy columns over the on-disk
//! `resmodel.trace/1` format — see `docs/FORMAT.md`). The latter two
//! implement [`source::TraceSource`], the layout-independent read
//! interface the analysis layers are generic over. Conversion is
//! lossless in every direction and every query yields
//! bitwise-identical results across the layouts.
//!
//! Persisting and mapping back a trace:
//!
//! ```
//! use resmodel_trace::columnar::ColumnarTrace;
//! use resmodel_trace::persist::{self, MappedTrace, Precision};
//! use resmodel_trace::source::TraceSource;
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! # fn main() -> Result<(), resmodel_error::ResmodelError> {
//! let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.1),
//!     cores: 2,
//!     memory_mb: 1024.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 40.0,
//!     total_disk_gb: 80.0,
//! });
//! let trace: Trace = std::iter::once(h).collect();
//! let columnar = ColumnarTrace::from(&trace);
//!
//! let dir = std::env::temp_dir().join("resmodel-doctest-lib");
//! std::fs::create_dir_all(&dir).map_err(|e| resmodel_error::ResmodelError::io("mkdir", e))?;
//! let path = dir.join("fleet.rmt");
//! persist::write_trace(&path, &columnar, Precision::Lossless)?;
//!
//! let mapped = MappedTrace::open(&path)?;
//! assert_eq!(mapped.host_count(), 1);
//! assert_eq!(mapped.to_trace().hosts(), trace.hosts());
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```
//!
//! ```
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! let mut trace = Trace::new();
//! let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.1),
//!     cores: 2,
//!     memory_mb: 1024.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 40.0,
//!     total_disk_gb: 80.0,
//! });
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2007.5),
//!     cores: 2,
//!     memory_mb: 2048.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 35.0,
//!     total_disk_gb: 80.0,
//! });
//! trace.push(h);
//! assert_eq!(trace.active_count(SimDate::from_year(2007.0)), 1);
//! assert_eq!(trace.active_count(SimDate::from_year(2008.0)), 0);
//! ```

#![warn(clippy::unwrap_used)]

pub mod churn;
pub mod columnar;
pub mod cpu;
pub mod csv;
pub mod gpu;
pub mod host;
pub mod market;
pub mod os;
pub mod persist;
pub mod sanitize;
pub mod source;
pub mod store;
pub mod time;

pub use columnar::ColumnarTrace;
pub use cpu::CpuFamily;
pub use gpu::{GpuClass, GpuInfo};
pub use host::{HostId, HostRecord, HostView, ResourceSnapshot};
pub use os::OsFamily;
pub use persist::{MappedTrace, Precision};
pub use source::{ActiveSet, ColumnSlice, ColumnsRef, TraceSource};
pub use store::Trace;
pub use time::SimDate;
