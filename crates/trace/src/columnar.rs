//! Columnar (structure-of-arrays) trace storage: the zero-copy data
//! layout behind the fitting pipeline's repeated column extractions.
//!
//! The paper's whole method is *repeated column extraction over a large
//! host trace*: for every sample date and every resource law, pull one
//! attribute across all active hosts, then fit or validate against it.
//! The row-oriented [`Trace`] answers each of those queries by
//! re-scanning every [`HostRecord`] and re-walking its snapshot history,
//! allocating a fresh `Vec<f64>` per `(date, resource)` pair.
//!
//! [`ColumnarTrace`] stores the same information as dense columns:
//!
//! * one entry per host for the static attributes (id, creation date,
//!   OS, CPU, GPU presence) and the cached first/last contact dates, and
//! * one entry per *snapshot* for every measured resource, flattened
//!   across hosts and indexed by a per-host offset table.
//!
//! Activity resolution then happens **once per date**:
//! [`ColumnarTrace::active_at`] materialises an [`ActiveSet`] — the row
//! indices of the active hosts plus, for each, the snapshot index in
//! force at that date — and every subsequent per-resource extraction is
//! a cheap gather through a [`ColumnSlice`] view that borrows the
//! column arrays instead of re-filtering rows.
//!
//! All query semantics live on the borrowed [`ColumnsRef`] view in
//! [`crate::source`]; `ColumnarTrace` is the *heap-owned* backend of
//! the [`TraceSource`] trait (the file-mapped backend is
//! [`crate::persist::MappedTrace`]) and its inherent methods delegate
//! to that shared implementation.
//!
//! The conversion is lossless in both directions
//! ([`ColumnarTrace::from`] / [`ColumnarTrace::to_trace`]) and every
//! query iterates hosts in exactly the row store's order, so results
//! are bitwise identical to the row path — the property the golden
//! pipeline report and the round-trip proptests enforce.
//!
//! ```
//! use resmodel_trace::columnar::ColumnarTrace;
//! use resmodel_trace::store::ResourceColumn;
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! let mut trace = Trace::new();
//! let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.1),
//!     cores: 2,
//!     memory_mb: 1024.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 40.0,
//!     total_disk_gb: 80.0,
//! });
//! trace.push(h);
//!
//! let columnar = ColumnarTrace::from(&trace);
//! let active = columnar.active_at(SimDate::from_year(2006.1));
//! assert_eq!(active.len(), 1);
//! let mem = columnar.column(&active, ResourceColumn::Memory);
//! assert_eq!(mem.to_vec(), vec![1024.0]);
//! assert_eq!(columnar.to_trace().hosts(), trace.hosts());
//! ```

use crate::cpu::CpuFamily;
use crate::gpu::GpuInfo;
use crate::host::{HostId, HostRecord, ResourceSnapshot};
use crate::os::OsFamily;
use crate::source::{ColumnsRef, TraceSource};
use crate::store::{ResourceColumn, Trace};
use crate::time::SimDate;
use std::ops::Range;

pub use crate::source::{ActiveSet, ColumnSlice, ColumnSliceIter};

/// Structure-of-arrays trace store: dense per-host columns plus
/// flattened, offset-indexed per-snapshot columns.
///
/// Build one with [`ColumnarTrace::from`] (lossless conversion from a
/// row [`Trace`]) or incrementally with [`ColumnarTrace::push_host`]
/// (how the population engine exports fleets without a row-trace
/// detour).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarTrace {
    // --- per-host columns (length = number of hosts) ---
    ids: Vec<HostId>,
    created: Vec<SimDate>,
    os: Vec<OsFamily>,
    cpu: Vec<CpuFamily>,
    gpu: Vec<Option<GpuInfo>>,
    /// Cached first contact; meaningful only when the host has at least
    /// one snapshot (placeholder [`SimDate::EPOCH`] otherwise).
    first_contact: Vec<SimDate>,
    /// Cached last contact; same presence rule as `first_contact`.
    last_contact: Vec<SimDate>,
    /// Snapshot offsets: host `i`'s snapshots occupy the flattened
    /// range `snap_start[i]..snap_start[i + 1]`.
    snap_start: Vec<usize>,
    // --- per-snapshot columns (length = total snapshots) ---
    snap_t: Vec<SimDate>,
    snap_cores: Vec<u32>,
    snap_memory_mb: Vec<f64>,
    snap_whetstone: Vec<f64>,
    snap_dhrystone: Vec<f64>,
    snap_avail_disk: Vec<f64>,
    snap_total_disk: Vec<f64>,
}

impl Default for ColumnarTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnarTrace {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Create an empty store with room for `hosts` hosts of about
    /// `snapshots_per_host` snapshots each.
    pub fn with_capacity(hosts: usize, snapshots_per_host: usize) -> Self {
        let snaps = hosts.saturating_mul(snapshots_per_host);
        let mut snap_start = Vec::with_capacity(hosts + 1);
        snap_start.push(0);
        Self {
            ids: Vec::with_capacity(hosts),
            created: Vec::with_capacity(hosts),
            os: Vec::with_capacity(hosts),
            cpu: Vec::with_capacity(hosts),
            gpu: Vec::with_capacity(hosts),
            first_contact: Vec::with_capacity(hosts),
            last_contact: Vec::with_capacity(hosts),
            snap_start,
            snap_t: Vec::with_capacity(snaps),
            snap_cores: Vec::with_capacity(snaps),
            snap_memory_mb: Vec::with_capacity(snaps),
            snap_whetstone: Vec::with_capacity(snaps),
            snap_dhrystone: Vec::with_capacity(snaps),
            snap_avail_disk: Vec::with_capacity(snaps),
            snap_total_disk: Vec::with_capacity(snaps),
        }
    }

    /// Borrow every column as one [`ColumnsRef`] view — the layout all
    /// query methods (and the persistence writer) operate on.
    pub fn columns(&self) -> ColumnsRef<'_> {
        ColumnsRef {
            ids: &self.ids,
            created: &self.created,
            os: &self.os,
            cpu: &self.cpu,
            gpu: &self.gpu,
            first_contact: &self.first_contact,
            last_contact: &self.last_contact,
            snap_start: &self.snap_start,
            snap_t: &self.snap_t,
            snap_cores: &self.snap_cores,
            snap_memory_mb: &self.snap_memory_mb,
            snap_whetstone: &self.snap_whetstone,
            snap_dhrystone: &self.snap_dhrystone,
            snap_avail_disk: &self.snap_avail_disk,
            snap_total_disk: &self.snap_total_disk,
        }
    }

    /// Reserve room for `additional` more snapshots across the
    /// flattened columns.
    pub fn reserve_snapshots(&mut self, additional: usize) {
        self.snap_t.reserve(additional);
        self.snap_cores.reserve(additional);
        self.snap_memory_mb.reserve(additional);
        self.snap_whetstone.reserve(additional);
        self.snap_dhrystone.reserve(additional);
        self.snap_avail_disk.reserve(additional);
        self.snap_total_disk.reserve(additional);
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of snapshots across all hosts.
    pub fn snapshot_count(&self) -> usize {
        self.snap_t.len()
    }

    /// Report this store's shape to a metrics collector: extraction
    /// and host/snapshot counters plus a snapshots-per-host histogram.
    /// Everything recorded is a pure function of the columns, so the
    /// metrics stay thread-count invariant; extraction call sites
    /// invoke this once per materialised store.
    pub fn observe_extraction(&self, obs: &resmodel_obs::Collector) {
        self.columns().observe_extraction(obs);
    }

    /// Append one host's static attributes and its time-ordered
    /// snapshots directly to the columns — no intermediate
    /// [`HostRecord`] required.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots are not in time order (same contract
    /// as [`HostRecord::record`]).
    pub fn push_host(
        &mut self,
        id: HostId,
        created: SimDate,
        os: OsFamily,
        cpu: CpuFamily,
        gpu: Option<GpuInfo>,
        snapshots: impl IntoIterator<Item = ResourceSnapshot>,
    ) {
        self.ids.push(id);
        self.created.push(created);
        self.os.push(os);
        self.cpu.push(cpu);
        self.gpu.push(gpu);
        let start = self.snap_t.len();
        for s in snapshots {
            if self.snap_t.len() > start {
                let last = self.snap_t[self.snap_t.len() - 1];
                assert!(s.t >= last, "snapshots must be recorded in time order");
            }
            self.snap_t.push(s.t);
            self.snap_cores.push(s.cores);
            self.snap_memory_mb.push(s.memory_mb);
            self.snap_whetstone.push(s.whetstone_mips);
            self.snap_dhrystone.push(s.dhrystone_mips);
            self.snap_avail_disk.push(s.avail_disk_gb);
            self.snap_total_disk.push(s.total_disk_gb);
        }
        let end = self.snap_t.len();
        self.snap_start.push(end);
        let (first, last) = if end > start {
            (self.snap_t[start], self.snap_t[end - 1])
        } else {
            (SimDate::EPOCH, SimDate::EPOCH)
        };
        self.first_contact.push(first);
        self.last_contact.push(last);
    }

    /// Append a row-store record (used by the [`Trace`] conversion).
    pub fn push_record(&mut self, record: &HostRecord) {
        self.push_host(
            record.id,
            record.created,
            record.os,
            record.cpu,
            record.gpu,
            record.snapshots().iter().copied(),
        );
    }

    /// Rebuild the equivalent row-oriented [`Trace`]. Together with
    /// [`ColumnarTrace::from`], this is a lossless round trip:
    /// `ColumnarTrace::from(&t).to_trace()` reproduces `t` exactly
    /// (same hosts, same order, same snapshots).
    pub fn to_trace(&self) -> Trace {
        self.columns().to_trace()
    }

    /// Reassemble the `k`-th flattened snapshot.
    pub fn snapshot(&self, k: usize) -> ResourceSnapshot {
        self.columns().snapshot(k)
    }

    /// Host ids, in insertion order.
    pub fn ids(&self) -> &[HostId] {
        &self.ids
    }

    /// Host creation dates.
    pub fn created(&self) -> &[SimDate] {
        &self.created
    }

    /// Host OS families.
    pub fn os(&self) -> &[OsFamily] {
        &self.os
    }

    /// Host CPU families.
    pub fn cpu(&self) -> &[CpuFamily] {
        &self.cpu
    }

    /// Host GPU attributes (presence column).
    pub fn gpu(&self) -> &[Option<GpuInfo>] {
        &self.gpu
    }

    /// The flattened snapshot range of host `row`.
    pub fn snapshot_range(&self, row: usize) -> Range<usize> {
        self.snap_start[row]..self.snap_start[row + 1]
    }

    /// First server contact of host `row`, if it has any snapshot.
    pub fn first_contact(&self, row: usize) -> Option<SimDate> {
        self.columns().first_contact(row)
    }

    /// Last server contact of host `row`, if it has any snapshot.
    pub fn last_contact(&self, row: usize) -> Option<SimDate> {
        self.columns().last_contact(row)
    }

    /// Snapshot timestamps (flattened column).
    pub fn snap_times(&self) -> &[SimDate] {
        &self.snap_t
    }

    /// Core counts (flattened column).
    pub fn snap_cores(&self) -> &[u32] {
        &self.snap_cores
    }

    /// Memory in MB (flattened column).
    pub fn snap_memory_mb(&self) -> &[f64] {
        &self.snap_memory_mb
    }

    /// Whetstone MIPS (flattened column).
    pub fn snap_whetstone_mips(&self) -> &[f64] {
        &self.snap_whetstone
    }

    /// Dhrystone MIPS (flattened column).
    pub fn snap_dhrystone_mips(&self) -> &[f64] {
        &self.snap_dhrystone
    }

    /// Available disk in GB (flattened column).
    pub fn snap_avail_disk_gb(&self) -> &[f64] {
        &self.snap_avail_disk
    }

    /// Total disk in GB (flattened column).
    pub fn snap_total_disk_gb(&self) -> &[f64] {
        &self.snap_total_disk
    }

    /// The paper's activity rule for host `row`: first contact ≤ `t` ≤
    /// last contact. Identical to [`HostRecord::is_active_at`].
    pub fn is_active_at(&self, row: usize, t: SimDate) -> bool {
        self.columns().is_active_at(row, t)
    }

    /// Resolve the active population at `t` **once**: the row index of
    /// every active host (in insertion order — the row store's
    /// iteration order) paired with the snapshot index in force at `t`.
    /// Every per-resource extraction at this date then reuses the set
    /// instead of re-filtering rows.
    pub fn active_at(&self, t: SimDate) -> ActiveSet {
        self.columns().active_at(t)
    }

    /// Number of active hosts at `t`, without materialising the set.
    pub fn active_count(&self, t: SimDate) -> usize {
        self.columns().active_count(t)
    }

    /// A zero-copy view of one resource column restricted to an active
    /// set: no values are materialised until iterated or collected.
    pub fn column<'a>(&'a self, set: &'a ActiveSet, column: ResourceColumn) -> ColumnSlice<'a> {
        self.columns().column(set, column)
    }

    /// Gather one resource column into a `Vec` — same values, same
    /// order as [`Trace::column_at`].
    pub fn column_values(&self, set: &ActiveSet, column: ResourceColumn) -> Vec<f64> {
        self.columns().column_values(set, column)
    }

    /// Host lifetimes in days under the paper's censoring rule —
    /// identical semantics and order to [`Trace::lifetimes`].
    pub fn lifetimes(&self, created_cutoff: SimDate) -> Vec<f64> {
        self.columns().lifetimes(created_cutoff)
    }

    /// `(creation year, lifetime days)` pairs — identical to
    /// [`Trace::creation_vs_lifetime`].
    pub fn creation_vs_lifetime(&self, created_cutoff: SimDate) -> Vec<(f64, f64)> {
        self.columns().creation_vs_lifetime(created_cutoff)
    }

    /// Earliest first contact across all hosts.
    pub fn start(&self) -> Option<SimDate> {
        self.columns().start()
    }

    /// Latest last contact across all hosts.
    pub fn end(&self) -> Option<SimDate> {
        self.columns().end()
    }
}

impl TraceSource for ColumnarTrace {
    fn columns(&self) -> ColumnsRef<'_> {
        ColumnarTrace::columns(self)
    }
}

impl From<&Trace> for ColumnarTrace {
    /// Lossless row → column conversion, preserving host order.
    fn from(trace: &Trace) -> Self {
        let hosts = trace.hosts();
        let snaps = hosts.iter().map(|h| h.snapshots().len()).sum::<usize>();
        let mut store = Self::with_capacity(hosts.len(), 0);
        store.reserve_snapshots(snaps);
        for h in hosts {
            store.push_record(h);
        }
        store
    }
}

impl From<ColumnsRef<'_>> for ColumnarTrace {
    /// Copy a borrowed column view into an owned store, verbatim —
    /// every column (including the [`SimDate::EPOCH`] placeholders for
    /// snapshotless hosts) is cloned bit for bit, so the result
    /// compares equal to the store the view was borrowed from. This is
    /// how [`crate::persist::MappedTrace`] materialises a heap copy.
    fn from(cols: ColumnsRef<'_>) -> Self {
        Self {
            ids: cols.ids.to_vec(),
            created: cols.created.to_vec(),
            os: cols.os.to_vec(),
            cpu: cols.cpu.to_vec(),
            gpu: cols.gpu.to_vec(),
            first_contact: cols.first_contact.to_vec(),
            last_contact: cols.last_contact.to_vec(),
            snap_start: cols.snap_start.to_vec(),
            snap_t: cols.snap_t.to_vec(),
            snap_cores: cols.snap_cores.to_vec(),
            snap_memory_mb: cols.snap_memory_mb.to_vec(),
            snap_whetstone: cols.snap_whetstone.to_vec(),
            snap_dhrystone: cols.snap_dhrystone.to_vec(),
            snap_avail_disk: cols.snap_avail_disk.to_vec(),
            snap_total_disk: cols.snap_total_disk.to_vec(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn host_with_span(id: u64, from: f64, to: f64, cores: u32) -> HostRecord {
        let mut h = HostRecord::new(id.into(), SimDate::from_year(from));
        for (i, &year) in [from, to].iter().enumerate() {
            h.record(ResourceSnapshot {
                t: SimDate::from_year(year),
                cores,
                memory_mb: 1024.0 * cores as f64,
                whetstone_mips: 1000.0 + i as f64,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 50.0,
                total_disk_gb: 100.0,
            });
        }
        h
    }

    fn sample_trace() -> Trace {
        vec![
            host_with_span(1, 2006.0, 2008.0, 1),
            host_with_span(2, 2007.0, 2009.0, 2),
            host_with_span(3, 2008.5, 2010.0, 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip_is_identity() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        assert_eq!(columnar.len(), 3);
        assert_eq!(columnar.snapshot_count(), 6);
        assert_eq!(columnar.to_trace().hosts(), trace.hosts());
    }

    #[test]
    fn observe_extraction_reports_shape() {
        let columnar = ColumnarTrace::from(&sample_trace());
        let obs = resmodel_obs::Collector::new();
        columnar.observe_extraction(&obs);
        columnar.observe_extraction(&obs);
        let m = obs.snapshot();
        assert_eq!(m.counter("trace.columnar.extractions"), Some(2));
        assert_eq!(m.counter("trace.columnar.hosts"), Some(6));
        assert_eq!(m.counter("trace.columnar.snapshots"), Some(12));
        let h = m.histogram("trace.columnar.snapshots_per_host").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 2.0);
        // Disabled collectors cost nothing and record nothing.
        columnar.observe_extraction(&resmodel_obs::Collector::disabled());
    }

    #[test]
    fn active_set_matches_row_activity() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        for year in [2005.0, 2006.0, 2006.5, 2007.5, 2008.7, 2010.0, 2011.0] {
            let t = SimDate::from_year(year);
            let set = columnar.active_at(t);
            assert_eq!(set.len(), trace.active_count(t), "year {year}");
            assert_eq!(set.len(), columnar.active_count(t), "year {year}");
            assert_eq!(set.date(), t);
        }
    }

    #[test]
    fn columns_match_row_extraction() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        let t = SimDate::from_year(2007.5);
        let set = columnar.active_at(t);
        for column in ResourceColumn::ALL {
            let row = trace.column_at(t, column);
            let slice = columnar.column(&set, column);
            assert_eq!(slice.len(), row.len());
            assert_eq!(slice.to_vec(), row, "{column}");
            assert_eq!(columnar.column_values(&set, column), row, "{column}");
        }
    }

    #[test]
    fn column_slice_random_access() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        let t = SimDate::from_year(2007.5);
        let set = columnar.active_at(t);
        let slice = columnar.column(&set, ResourceColumn::Cores);
        assert!(!slice.is_empty());
        assert_eq!(slice.column(), ResourceColumn::Cores);
        for (i, v) in slice.iter().enumerate() {
            assert_eq!(slice.get(i), v);
        }
        let it = slice.iter();
        assert_eq!(it.len(), slice.len());
        assert_eq!((&slice).into_iter().count(), slice.len());
    }

    #[test]
    fn snapshot_resolution_uses_latest_before() {
        let trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 2)]
            .into_iter()
            .collect();
        let columnar = ColumnarTrace::from(&trace);
        let early = columnar.active_at(SimDate::from_year(2007.0));
        let whet = columnar.column(&early, ResourceColumn::Whetstone);
        assert_eq!(whet.to_vec(), vec![1000.0]);
        let late = columnar.active_at(SimDate::from_year(2008.0));
        let whet = columnar.column(&late, ResourceColumn::Whetstone);
        assert_eq!(whet.to_vec(), vec![1001.0]);
    }

    #[test]
    fn activity_boundaries_match_row_path() {
        // t exactly at first/last contact, for both paths (the paper's
        // rule is inclusive on both ends).
        let trace: Trace = vec![host_with_span(1, 2006.25, 2008.75, 1)]
            .into_iter()
            .collect();
        let columnar = ColumnarTrace::from(&trace);
        let first = trace.hosts()[0].first_contact().unwrap();
        let last = trace.hosts()[0].last_contact().unwrap();
        for (t, expect) in [(first, 1), (last, 1), (first + -1e-9, 0), (last + 1e-9, 0)] {
            assert_eq!(trace.active_count(t), expect, "row path at {t}");
            assert_eq!(columnar.active_count(t), expect, "columnar path at {t}");
            assert_eq!(columnar.active_at(t).len(), expect, "active set at {t}");
        }
    }

    #[test]
    fn lifetimes_and_span_match_row_path() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        for cutoff in [2006.5, 2008.0, 2011.0] {
            let c = SimDate::from_year(cutoff);
            assert_eq!(columnar.lifetimes(c), trace.lifetimes(c));
            assert_eq!(
                columnar.creation_vs_lifetime(c),
                trace.creation_vs_lifetime(c)
            );
        }
        assert_eq!(columnar.start(), trace.start());
        assert_eq!(columnar.end(), trace.end());
    }

    #[test]
    fn snapshotless_host_is_never_active() {
        let mut trace = Trace::new();
        trace.push(HostRecord::new(9.into(), SimDate::from_year(2006.0)));
        let columnar = ColumnarTrace::from(&trace);
        assert_eq!(columnar.len(), 1);
        assert_eq!(columnar.first_contact(0), None);
        assert_eq!(columnar.last_contact(0), None);
        assert!(columnar.active_at(SimDate::from_year(2006.0)).is_empty());
        assert_eq!(columnar.start(), None);
        assert_eq!(
            columnar.lifetimes(SimDate::from_year(2010.0)),
            Vec::<f64>::new()
        );
        assert_eq!(columnar.to_trace().hosts(), trace.hosts());
    }

    #[test]
    fn push_host_matches_record_conversion() {
        let record = host_with_span(4, 2006.0, 2007.0, 2);
        let mut direct = ColumnarTrace::new();
        direct.push_host(
            record.id,
            record.created,
            record.os,
            record.cpu,
            record.gpu,
            record.snapshots().iter().copied(),
        );
        let trace: Trace = std::iter::once(record).collect();
        assert_eq!(direct, ColumnarTrace::from(&trace));
    }

    #[test]
    fn default_store_accepts_pushes() {
        assert_eq!(ColumnarTrace::default(), ColumnarTrace::new());
        assert_eq!(ColumnarTrace::from(&Trace::new()), ColumnarTrace::default());
        let mut store = ColumnarTrace::default();
        store.push_record(&host_with_span(1, 2006.0, 2007.0, 1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.snapshot_range(0), 0..2);
    }

    #[test]
    fn owned_copy_preserves_placeholders() {
        // Snapshotless hosts carry EPOCH placeholders in the contact
        // columns; the ColumnsRef round trip must keep them bit for bit
        // so the copy compares equal.
        let mut trace = Trace::new();
        trace.push(HostRecord::new(9.into(), SimDate::from_year(2006.0)));
        trace.push(host_with_span(1, 2006.0, 2007.0, 1));
        let columnar = ColumnarTrace::from(&trace);
        assert_eq!(ColumnarTrace::from(columnar.columns()), columnar);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn push_host_rejects_out_of_order_snapshots() {
        let mut store = ColumnarTrace::new();
        let snap = |year: f64| ResourceSnapshot {
            t: SimDate::from_year(year),
            cores: 1,
            memory_mb: 512.0,
            whetstone_mips: 1000.0,
            dhrystone_mips: 2000.0,
            avail_disk_gb: 10.0,
            total_disk_gb: 20.0,
        };
        store.push_host(
            1.into(),
            SimDate::from_year(2006.0),
            OsFamily::default(),
            CpuFamily::default(),
            None,
            [snap(2007.0), snap(2006.0)],
        );
    }
}
