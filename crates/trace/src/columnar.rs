//! Columnar (structure-of-arrays) trace storage: the zero-copy data
//! layout behind the fitting pipeline's repeated column extractions.
//!
//! The paper's whole method is *repeated column extraction over a large
//! host trace*: for every sample date and every resource law, pull one
//! attribute across all active hosts, then fit or validate against it.
//! The row-oriented [`Trace`] answers each of those queries by
//! re-scanning every [`HostRecord`] and re-walking its snapshot history,
//! allocating a fresh `Vec<f64>` per `(date, resource)` pair.
//!
//! [`ColumnarTrace`] stores the same information as dense columns:
//!
//! * one entry per host for the static attributes (id, creation date,
//!   OS, CPU, GPU presence) and the cached first/last contact dates, and
//! * one entry per *snapshot* for every measured resource, flattened
//!   across hosts and indexed by a per-host offset table.
//!
//! Activity resolution then happens **once per date**:
//! [`ColumnarTrace::active_at`] materialises an [`ActiveSet`] — the row
//! indices of the active hosts plus, for each, the snapshot index in
//! force at that date — and every subsequent per-resource extraction is
//! a cheap gather through a [`ColumnSlice`] view that borrows the
//! column arrays instead of re-filtering rows.
//!
//! The conversion is lossless in both directions
//! ([`ColumnarTrace::from`] / [`ColumnarTrace::to_trace`]) and every
//! query iterates hosts in exactly the row store's order, so results
//! are bitwise identical to the row path — the property the golden
//! pipeline report and the round-trip proptests enforce.
//!
//! ```
//! use resmodel_trace::columnar::ColumnarTrace;
//! use resmodel_trace::store::ResourceColumn;
//! use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};
//!
//! let mut trace = Trace::new();
//! let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
//! h.record(ResourceSnapshot {
//!     t: SimDate::from_year(2006.1),
//!     cores: 2,
//!     memory_mb: 1024.0,
//!     whetstone_mips: 1200.0,
//!     dhrystone_mips: 2100.0,
//!     avail_disk_gb: 40.0,
//!     total_disk_gb: 80.0,
//! });
//! trace.push(h);
//!
//! let columnar = ColumnarTrace::from(&trace);
//! let active = columnar.active_at(SimDate::from_year(2006.1));
//! assert_eq!(active.len(), 1);
//! let mem = columnar.column(&active, ResourceColumn::Memory);
//! assert_eq!(mem.to_vec(), vec![1024.0]);
//! assert_eq!(columnar.to_trace().hosts(), trace.hosts());
//! ```

use crate::cpu::CpuFamily;
use crate::gpu::GpuInfo;
use crate::host::{HostId, HostRecord, ResourceSnapshot};
use crate::os::OsFamily;
use crate::store::{ResourceColumn, Trace};
use crate::time::SimDate;
use std::ops::Range;

/// Structure-of-arrays trace store: dense per-host columns plus
/// flattened, offset-indexed per-snapshot columns.
///
/// Build one with [`ColumnarTrace::from`] (lossless conversion from a
/// row [`Trace`]) or incrementally with [`ColumnarTrace::push_host`]
/// (how the population engine exports fleets without a row-trace
/// detour).
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarTrace {
    // --- per-host columns (length = number of hosts) ---
    ids: Vec<HostId>,
    created: Vec<SimDate>,
    os: Vec<OsFamily>,
    cpu: Vec<CpuFamily>,
    gpu: Vec<Option<GpuInfo>>,
    /// Cached first contact; meaningful only when the host has at least
    /// one snapshot (placeholder [`SimDate::EPOCH`] otherwise).
    first_contact: Vec<SimDate>,
    /// Cached last contact; same presence rule as `first_contact`.
    last_contact: Vec<SimDate>,
    /// Snapshot offsets: host `i`'s snapshots occupy the flattened
    /// range `snap_start[i]..snap_start[i + 1]`.
    snap_start: Vec<usize>,
    // --- per-snapshot columns (length = total snapshots) ---
    snap_t: Vec<SimDate>,
    snap_cores: Vec<u32>,
    snap_memory_mb: Vec<f64>,
    snap_whetstone: Vec<f64>,
    snap_dhrystone: Vec<f64>,
    snap_avail_disk: Vec<f64>,
    snap_total_disk: Vec<f64>,
}

impl Default for ColumnarTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnarTrace {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::with_capacity(0, 0)
    }

    /// Create an empty store with room for `hosts` hosts of about
    /// `snapshots_per_host` snapshots each.
    pub fn with_capacity(hosts: usize, snapshots_per_host: usize) -> Self {
        let snaps = hosts.saturating_mul(snapshots_per_host);
        let mut snap_start = Vec::with_capacity(hosts + 1);
        snap_start.push(0);
        Self {
            ids: Vec::with_capacity(hosts),
            created: Vec::with_capacity(hosts),
            os: Vec::with_capacity(hosts),
            cpu: Vec::with_capacity(hosts),
            gpu: Vec::with_capacity(hosts),
            first_contact: Vec::with_capacity(hosts),
            last_contact: Vec::with_capacity(hosts),
            snap_start,
            snap_t: Vec::with_capacity(snaps),
            snap_cores: Vec::with_capacity(snaps),
            snap_memory_mb: Vec::with_capacity(snaps),
            snap_whetstone: Vec::with_capacity(snaps),
            snap_dhrystone: Vec::with_capacity(snaps),
            snap_avail_disk: Vec::with_capacity(snaps),
            snap_total_disk: Vec::with_capacity(snaps),
        }
    }

    /// Reserve room for `additional` more snapshots across the
    /// flattened columns.
    pub fn reserve_snapshots(&mut self, additional: usize) {
        self.snap_t.reserve(additional);
        self.snap_cores.reserve(additional);
        self.snap_memory_mb.reserve(additional);
        self.snap_whetstone.reserve(additional);
        self.snap_dhrystone.reserve(additional);
        self.snap_avail_disk.reserve(additional);
        self.snap_total_disk.reserve(additional);
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the store holds no hosts.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total number of snapshots across all hosts.
    pub fn snapshot_count(&self) -> usize {
        self.snap_t.len()
    }

    /// Report this store's shape to a metrics collector: extraction
    /// and host/snapshot counters plus a snapshots-per-host histogram.
    /// Everything recorded is a pure function of the columns, so the
    /// metrics stay thread-count invariant; extraction call sites
    /// invoke this once per materialised store.
    pub fn observe_extraction(&self, obs: &resmodel_obs::Collector) {
        if !obs.is_enabled() {
            return;
        }
        obs.add("trace.columnar.extractions", 1);
        obs.add("trace.columnar.hosts", self.len() as u64);
        obs.add("trace.columnar.snapshots", self.snapshot_count() as u64);
        let mut per_host = resmodel_obs::Histogram::new();
        for row in 0..self.len() {
            let range = self.snapshot_range(row);
            per_host.record_u64(range.len() as u64);
        }
        obs.merge_histogram("trace.columnar.snapshots_per_host", &per_host);
    }

    /// Append one host's static attributes and its time-ordered
    /// snapshots directly to the columns — no intermediate
    /// [`HostRecord`] required.
    ///
    /// # Panics
    ///
    /// Panics when the snapshots are not in time order (same contract
    /// as [`HostRecord::record`]).
    pub fn push_host(
        &mut self,
        id: HostId,
        created: SimDate,
        os: OsFamily,
        cpu: CpuFamily,
        gpu: Option<GpuInfo>,
        snapshots: impl IntoIterator<Item = ResourceSnapshot>,
    ) {
        self.ids.push(id);
        self.created.push(created);
        self.os.push(os);
        self.cpu.push(cpu);
        self.gpu.push(gpu);
        let start = self.snap_t.len();
        for s in snapshots {
            if self.snap_t.len() > start {
                let last = self.snap_t[self.snap_t.len() - 1];
                assert!(s.t >= last, "snapshots must be recorded in time order");
            }
            self.snap_t.push(s.t);
            self.snap_cores.push(s.cores);
            self.snap_memory_mb.push(s.memory_mb);
            self.snap_whetstone.push(s.whetstone_mips);
            self.snap_dhrystone.push(s.dhrystone_mips);
            self.snap_avail_disk.push(s.avail_disk_gb);
            self.snap_total_disk.push(s.total_disk_gb);
        }
        let end = self.snap_t.len();
        self.snap_start.push(end);
        let (first, last) = if end > start {
            (self.snap_t[start], self.snap_t[end - 1])
        } else {
            (SimDate::EPOCH, SimDate::EPOCH)
        };
        self.first_contact.push(first);
        self.last_contact.push(last);
    }

    /// Append a row-store record (used by the [`Trace`] conversion).
    pub fn push_record(&mut self, record: &HostRecord) {
        self.push_host(
            record.id,
            record.created,
            record.os,
            record.cpu,
            record.gpu,
            record.snapshots().iter().copied(),
        );
    }

    /// Rebuild the equivalent row-oriented [`Trace`]. Together with
    /// [`ColumnarTrace::from`], this is a lossless round trip:
    /// `ColumnarTrace::from(&t).to_trace()` reproduces `t` exactly
    /// (same hosts, same order, same snapshots).
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new();
        for i in 0..self.len() {
            let mut record = HostRecord::new(self.ids[i], self.created[i]);
            record.os = self.os[i];
            record.cpu = self.cpu[i];
            record.gpu = self.gpu[i];
            for k in self.snapshot_range(i) {
                record.record(self.snapshot(k));
            }
            trace.push(record);
        }
        trace
    }

    /// Reassemble the `k`-th flattened snapshot.
    pub fn snapshot(&self, k: usize) -> ResourceSnapshot {
        ResourceSnapshot {
            t: self.snap_t[k],
            cores: self.snap_cores[k],
            memory_mb: self.snap_memory_mb[k],
            whetstone_mips: self.snap_whetstone[k],
            dhrystone_mips: self.snap_dhrystone[k],
            avail_disk_gb: self.snap_avail_disk[k],
            total_disk_gb: self.snap_total_disk[k],
        }
    }

    /// Host ids, in insertion order.
    pub fn ids(&self) -> &[HostId] {
        &self.ids
    }

    /// Host creation dates.
    pub fn created(&self) -> &[SimDate] {
        &self.created
    }

    /// Host OS families.
    pub fn os(&self) -> &[OsFamily] {
        &self.os
    }

    /// Host CPU families.
    pub fn cpu(&self) -> &[CpuFamily] {
        &self.cpu
    }

    /// Host GPU attributes (presence column).
    pub fn gpu(&self) -> &[Option<GpuInfo>] {
        &self.gpu
    }

    /// The flattened snapshot range of host `row`.
    pub fn snapshot_range(&self, row: usize) -> Range<usize> {
        self.snap_start[row]..self.snap_start[row + 1]
    }

    /// First server contact of host `row`, if it has any snapshot.
    pub fn first_contact(&self, row: usize) -> Option<SimDate> {
        (!self.snapshot_range(row).is_empty()).then(|| self.first_contact[row])
    }

    /// Last server contact of host `row`, if it has any snapshot.
    pub fn last_contact(&self, row: usize) -> Option<SimDate> {
        (!self.snapshot_range(row).is_empty()).then(|| self.last_contact[row])
    }

    /// Snapshot timestamps (flattened column).
    pub fn snap_times(&self) -> &[SimDate] {
        &self.snap_t
    }

    /// Core counts (flattened column).
    pub fn snap_cores(&self) -> &[u32] {
        &self.snap_cores
    }

    /// Memory in MB (flattened column).
    pub fn snap_memory_mb(&self) -> &[f64] {
        &self.snap_memory_mb
    }

    /// Whetstone MIPS (flattened column).
    pub fn snap_whetstone_mips(&self) -> &[f64] {
        &self.snap_whetstone
    }

    /// Dhrystone MIPS (flattened column).
    pub fn snap_dhrystone_mips(&self) -> &[f64] {
        &self.snap_dhrystone
    }

    /// Available disk in GB (flattened column).
    pub fn snap_avail_disk_gb(&self) -> &[f64] {
        &self.snap_avail_disk
    }

    /// Total disk in GB (flattened column).
    pub fn snap_total_disk_gb(&self) -> &[f64] {
        &self.snap_total_disk
    }

    /// The paper's activity rule for host `row`: first contact ≤ `t` ≤
    /// last contact. Identical to [`HostRecord::is_active_at`].
    pub fn is_active_at(&self, row: usize, t: SimDate) -> bool {
        !self.snapshot_range(row).is_empty()
            && self.first_contact[row] <= t
            && t <= self.last_contact[row]
    }

    /// Resolve the active population at `t` **once**: the row index of
    /// every active host (in insertion order — the row store's
    /// iteration order) paired with the snapshot index in force at `t`.
    /// Every per-resource extraction at this date then reuses the set
    /// instead of re-filtering rows.
    pub fn active_at(&self, t: SimDate) -> ActiveSet {
        let mut rows = Vec::new();
        let mut snaps = Vec::new();
        for i in 0..self.len() {
            if !self.is_active_at(i, t) {
                continue;
            }
            // Latest snapshot at or before `t` — the same reverse scan
            // as `HostRecord::snapshot_at` (activity guarantees a hit).
            if let Some(k) = self.snapshot_range(i).rev().find(|&k| self.snap_t[k] <= t) {
                rows.push(i);
                snaps.push(k);
            }
        }
        ActiveSet {
            date: t,
            rows,
            snaps,
        }
    }

    /// Number of active hosts at `t`, without materialising the set.
    pub fn active_count(&self, t: SimDate) -> usize {
        (0..self.len()).filter(|&i| self.is_active_at(i, t)).count()
    }

    /// A zero-copy view of one resource column restricted to an active
    /// set: no values are materialised until iterated or collected.
    pub fn column<'a>(&'a self, set: &'a ActiveSet, column: ResourceColumn) -> ColumnSlice<'a> {
        ColumnSlice {
            store: self,
            set,
            column,
        }
    }

    /// Gather one resource column into a `Vec` — same values, same
    /// order as [`Trace::column_at`].
    pub fn column_values(&self, set: &ActiveSet, column: ResourceColumn) -> Vec<f64> {
        self.column(set, column).iter().collect()
    }

    /// Host lifetimes in days under the paper's censoring rule —
    /// identical semantics and order to [`Trace::lifetimes`].
    pub fn lifetimes(&self, created_cutoff: SimDate) -> Vec<f64> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            if self.snapshot_range(i).is_empty() || self.first_contact[i] > created_cutoff {
                continue;
            }
            out.push(self.last_contact[i] - self.first_contact[i]);
        }
        out
    }

    /// `(creation year, lifetime days)` pairs — identical to
    /// [`Trace::creation_vs_lifetime`].
    pub fn creation_vs_lifetime(&self, created_cutoff: SimDate) -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            if self.snapshot_range(i).is_empty() || self.first_contact[i] > created_cutoff {
                continue;
            }
            out.push((
                self.created[i].year(),
                self.last_contact[i] - self.first_contact[i],
            ));
        }
        out
    }

    /// Earliest first contact across all hosts.
    pub fn start(&self) -> Option<SimDate> {
        (0..self.len())
            .filter_map(|i| self.first_contact(i))
            .reduce(SimDate::min)
    }

    /// Latest last contact across all hosts.
    pub fn end(&self) -> Option<SimDate> {
        (0..self.len())
            .filter_map(|i| self.last_contact(i))
            .reduce(SimDate::max)
    }
}

impl From<&Trace> for ColumnarTrace {
    /// Lossless row → column conversion, preserving host order.
    fn from(trace: &Trace) -> Self {
        let hosts = trace.hosts();
        let snaps = hosts.iter().map(|h| h.snapshots().len()).sum::<usize>();
        let mut store = Self::with_capacity(hosts.len(), 0);
        store.reserve_snapshots(snaps);
        for h in hosts {
            store.push_record(h);
        }
        store
    }
}

/// The active population at one date, resolved once: parallel arrays of
/// host row indices and the snapshot index in force for each.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSet {
    date: SimDate,
    rows: Vec<usize>,
    snaps: Vec<usize>,
}

impl ActiveSet {
    /// The date this set was resolved at.
    pub fn date(&self) -> SimDate {
        self.date
    }

    /// Number of active hosts.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no host was active.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row (host) indices, in insertion order.
    pub fn rows(&self) -> &[usize] {
        &self.rows
    }

    /// Flattened snapshot index in force at the date, parallel to
    /// [`ActiveSet::rows`].
    pub fn snaps(&self) -> &[usize] {
        &self.snaps
    }
}

/// A zero-copy view of one resource column over an active set: borrows
/// the store's column arrays and the set's index arrays, materialising
/// nothing.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSlice<'a> {
    store: &'a ColumnarTrace,
    set: &'a ActiveSet,
    column: ResourceColumn,
}

impl<'a> ColumnSlice<'a> {
    /// Number of values in the view.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// Which resource this view extracts.
    pub fn column(&self) -> ResourceColumn {
        self.column
    }

    /// The `i`-th value (position within the active set).
    ///
    /// # Panics
    ///
    /// Panics when `i >= self.len()`.
    pub fn get(&self, i: usize) -> f64 {
        self.value_at(self.set.snaps[i])
    }

    /// Iterate the values — bitwise the same sequence as
    /// [`Trace::column_at`] produces for this date and resource.
    pub fn iter(&self) -> ColumnSliceIter<'a> {
        ColumnSliceIter {
            slice: *self,
            snaps: self.set.snaps.iter(),
        }
    }

    /// Collect into a `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Extract the value at flattened snapshot index `k`, with exactly
    /// the row path's arithmetic ([`ResourceColumn::extract`] over a
    /// [`crate::host::HostView`]).
    fn value_at(&self, k: usize) -> f64 {
        let s = self.store;
        match self.column {
            ResourceColumn::Cores => s.snap_cores[k] as f64,
            ResourceColumn::Memory => s.snap_memory_mb[k],
            ResourceColumn::MemPerCore => s.snap_memory_mb[k] / s.snap_cores[k].max(1) as f64,
            ResourceColumn::Whetstone => s.snap_whetstone[k],
            ResourceColumn::Dhrystone => s.snap_dhrystone[k],
            ResourceColumn::Disk => s.snap_avail_disk[k],
        }
    }
}

impl<'a> IntoIterator for &ColumnSlice<'a> {
    type Item = f64;
    type IntoIter = ColumnSliceIter<'a>;

    fn into_iter(self) -> ColumnSliceIter<'a> {
        self.iter()
    }
}

/// Iterator over a [`ColumnSlice`]'s values.
#[derive(Debug, Clone)]
pub struct ColumnSliceIter<'a> {
    slice: ColumnSlice<'a>,
    snaps: std::slice::Iter<'a, usize>,
}

impl Iterator for ColumnSliceIter<'_> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.snaps.next().map(|&k| self.slice.value_at(k))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.snaps.size_hint()
    }
}

impl ExactSizeIterator for ColumnSliceIter<'_> {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn host_with_span(id: u64, from: f64, to: f64, cores: u32) -> HostRecord {
        let mut h = HostRecord::new(id.into(), SimDate::from_year(from));
        for (i, &year) in [from, to].iter().enumerate() {
            h.record(ResourceSnapshot {
                t: SimDate::from_year(year),
                cores,
                memory_mb: 1024.0 * cores as f64,
                whetstone_mips: 1000.0 + i as f64,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 50.0,
                total_disk_gb: 100.0,
            });
        }
        h
    }

    fn sample_trace() -> Trace {
        vec![
            host_with_span(1, 2006.0, 2008.0, 1),
            host_with_span(2, 2007.0, 2009.0, 2),
            host_with_span(3, 2008.5, 2010.0, 4),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn round_trip_is_identity() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        assert_eq!(columnar.len(), 3);
        assert_eq!(columnar.snapshot_count(), 6);
        assert_eq!(columnar.to_trace().hosts(), trace.hosts());
    }

    #[test]
    fn observe_extraction_reports_shape() {
        let columnar = ColumnarTrace::from(&sample_trace());
        let obs = resmodel_obs::Collector::new();
        columnar.observe_extraction(&obs);
        columnar.observe_extraction(&obs);
        let m = obs.snapshot();
        assert_eq!(m.counter("trace.columnar.extractions"), Some(2));
        assert_eq!(m.counter("trace.columnar.hosts"), Some(6));
        assert_eq!(m.counter("trace.columnar.snapshots"), Some(12));
        let h = m.histogram("trace.columnar.snapshots_per_host").unwrap();
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 2.0);
        // Disabled collectors cost nothing and record nothing.
        columnar.observe_extraction(&resmodel_obs::Collector::disabled());
    }

    #[test]
    fn active_set_matches_row_activity() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        for year in [2005.0, 2006.0, 2006.5, 2007.5, 2008.7, 2010.0, 2011.0] {
            let t = SimDate::from_year(year);
            let set = columnar.active_at(t);
            assert_eq!(set.len(), trace.active_count(t), "year {year}");
            assert_eq!(set.len(), columnar.active_count(t), "year {year}");
            assert_eq!(set.date(), t);
        }
    }

    #[test]
    fn columns_match_row_extraction() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        let t = SimDate::from_year(2007.5);
        let set = columnar.active_at(t);
        for column in ResourceColumn::ALL {
            let row = trace.column_at(t, column);
            let slice = columnar.column(&set, column);
            assert_eq!(slice.len(), row.len());
            assert_eq!(slice.to_vec(), row, "{column}");
            assert_eq!(columnar.column_values(&set, column), row, "{column}");
        }
    }

    #[test]
    fn column_slice_random_access() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        let t = SimDate::from_year(2007.5);
        let set = columnar.active_at(t);
        let slice = columnar.column(&set, ResourceColumn::Cores);
        assert!(!slice.is_empty());
        assert_eq!(slice.column(), ResourceColumn::Cores);
        for (i, v) in slice.iter().enumerate() {
            assert_eq!(slice.get(i), v);
        }
        let it = slice.iter();
        assert_eq!(it.len(), slice.len());
        assert_eq!((&slice).into_iter().count(), slice.len());
    }

    #[test]
    fn snapshot_resolution_uses_latest_before() {
        let trace: Trace = vec![host_with_span(1, 2006.0, 2008.0, 2)]
            .into_iter()
            .collect();
        let columnar = ColumnarTrace::from(&trace);
        let early = columnar.active_at(SimDate::from_year(2007.0));
        let whet = columnar.column(&early, ResourceColumn::Whetstone);
        assert_eq!(whet.to_vec(), vec![1000.0]);
        let late = columnar.active_at(SimDate::from_year(2008.0));
        let whet = columnar.column(&late, ResourceColumn::Whetstone);
        assert_eq!(whet.to_vec(), vec![1001.0]);
    }

    #[test]
    fn activity_boundaries_match_row_path() {
        // t exactly at first/last contact, for both paths (the paper's
        // rule is inclusive on both ends).
        let trace: Trace = vec![host_with_span(1, 2006.25, 2008.75, 1)]
            .into_iter()
            .collect();
        let columnar = ColumnarTrace::from(&trace);
        let first = trace.hosts()[0].first_contact().unwrap();
        let last = trace.hosts()[0].last_contact().unwrap();
        for (t, expect) in [(first, 1), (last, 1), (first + -1e-9, 0), (last + 1e-9, 0)] {
            assert_eq!(trace.active_count(t), expect, "row path at {t}");
            assert_eq!(columnar.active_count(t), expect, "columnar path at {t}");
            assert_eq!(columnar.active_at(t).len(), expect, "active set at {t}");
        }
    }

    #[test]
    fn lifetimes_and_span_match_row_path() {
        let trace = sample_trace();
        let columnar = ColumnarTrace::from(&trace);
        for cutoff in [2006.5, 2008.0, 2011.0] {
            let c = SimDate::from_year(cutoff);
            assert_eq!(columnar.lifetimes(c), trace.lifetimes(c));
            assert_eq!(
                columnar.creation_vs_lifetime(c),
                trace.creation_vs_lifetime(c)
            );
        }
        assert_eq!(columnar.start(), trace.start());
        assert_eq!(columnar.end(), trace.end());
    }

    #[test]
    fn snapshotless_host_is_never_active() {
        let mut trace = Trace::new();
        trace.push(HostRecord::new(9.into(), SimDate::from_year(2006.0)));
        let columnar = ColumnarTrace::from(&trace);
        assert_eq!(columnar.len(), 1);
        assert_eq!(columnar.first_contact(0), None);
        assert_eq!(columnar.last_contact(0), None);
        assert!(columnar.active_at(SimDate::from_year(2006.0)).is_empty());
        assert_eq!(columnar.start(), None);
        assert_eq!(
            columnar.lifetimes(SimDate::from_year(2010.0)),
            Vec::<f64>::new()
        );
        assert_eq!(columnar.to_trace().hosts(), trace.hosts());
    }

    #[test]
    fn push_host_matches_record_conversion() {
        let record = host_with_span(4, 2006.0, 2007.0, 2);
        let mut direct = ColumnarTrace::new();
        direct.push_host(
            record.id,
            record.created,
            record.os,
            record.cpu,
            record.gpu,
            record.snapshots().iter().copied(),
        );
        let trace: Trace = std::iter::once(record).collect();
        assert_eq!(direct, ColumnarTrace::from(&trace));
    }

    #[test]
    fn default_store_accepts_pushes() {
        assert_eq!(ColumnarTrace::default(), ColumnarTrace::new());
        assert_eq!(ColumnarTrace::from(&Trace::new()), ColumnarTrace::default());
        let mut store = ColumnarTrace::default();
        store.push_record(&host_with_span(1, 2006.0, 2007.0, 1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.snapshot_range(0), 0..2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn push_host_rejects_out_of_order_snapshots() {
        let mut store = ColumnarTrace::new();
        let snap = |year: f64| ResourceSnapshot {
            t: SimDate::from_year(year),
            cores: 1,
            memory_mb: 512.0,
            whetstone_mips: 1000.0,
            dhrystone_mips: 2000.0,
            avail_disk_gb: 10.0,
            total_disk_gb: 20.0,
        };
        store.push_host(
            1.into(),
            SimDate::from_year(2006.0),
            OsFamily::default(),
            CpuFamily::default(),
            None,
            [snap(2007.0), snap(2006.0)],
        );
    }
}
