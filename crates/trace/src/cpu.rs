//! Processor families and their market-share evolution
//! (paper Table I).

use crate::market::{interp_series, normalize, pick_index};
use serde::{Deserialize, Serialize};

/// Processor family, at the granularity of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum CpuFamily {
    /// PowerPC G3/G4/G5 (pre-Intel Macs).
    PowerPc,
    /// AMD Athlon XP.
    AthlonXp,
    /// AMD Athlon 64.
    Athlon64,
    /// Other AMD processors.
    OtherAmd,
    /// Intel Pentium 4 — dominant in 2006, declining steeply.
    #[default]
    Pentium4,
    /// Intel Pentium M.
    PentiumM,
    /// Intel Pentium D.
    PentiumD,
    /// Other Pentium-branded processors.
    OtherPentium,
    /// Intel Core 2 — rising from ~0 to a third of hosts by 2010.
    IntelCore2,
    /// Intel Celeron.
    IntelCeleron,
    /// Intel Xeon.
    IntelXeon,
    /// Other x86 processors.
    OtherX86,
    /// Anything else.
    Other,
}

/// Sample years of the share table below (January 1 snapshots).
const TABLE_YEARS: [f64; 5] = [2006.0, 2007.0, 2008.0, 2009.0, 2010.0];

/// The paper's Table I, % of active hosts by year.
const CPU_SHARES: [(CpuFamily, [f64; 5]); 13] = [
    (CpuFamily::PowerPc, [5.1, 6.5, 4.7, 3.5, 2.7]),
    (CpuFamily::AthlonXp, [12.3, 9.0, 6.2, 4.0, 2.5]),
    (CpuFamily::Athlon64, [6.5, 9.5, 11.4, 11.6, 10.2]),
    (CpuFamily::OtherAmd, [8.3, 8.2, 7.8, 7.9, 9.5]),
    (CpuFamily::Pentium4, [36.8, 33.0, 27.2, 20.7, 15.5]),
    (CpuFamily::PentiumM, [5.4, 5.5, 4.3, 3.1, 2.1]),
    (CpuFamily::PentiumD, [0.7, 3.0, 4.2, 3.9, 3.1]),
    (CpuFamily::OtherPentium, [4.1, 2.6, 2.1, 3.3, 5.2]),
    (CpuFamily::IntelCore2, [0.9, 3.3, 13.2, 24.8, 32.0]),
    (CpuFamily::IntelCeleron, [5.6, 6.4, 6.3, 5.9, 4.9]),
    (CpuFamily::IntelXeon, [2.1, 2.8, 3.3, 3.9, 4.3]),
    (CpuFamily::OtherX86, [9.9, 7.7, 7.6, 6.1, 5.1]),
    (CpuFamily::Other, [2.3, 2.6, 1.6, 1.3, 2.9]),
];

impl CpuFamily {
    /// All families, in Table I order.
    pub const ALL: [CpuFamily; 13] = [
        CpuFamily::PowerPc,
        CpuFamily::AthlonXp,
        CpuFamily::Athlon64,
        CpuFamily::OtherAmd,
        CpuFamily::Pentium4,
        CpuFamily::PentiumM,
        CpuFamily::PentiumD,
        CpuFamily::OtherPentium,
        CpuFamily::IntelCore2,
        CpuFamily::IntelCeleron,
        CpuFamily::IntelXeon,
        CpuFamily::OtherX86,
        CpuFamily::Other,
    ];

    /// Human-readable name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            CpuFamily::PowerPc => "PowerPC G3/G4/G5",
            CpuFamily::AthlonXp => "Athlon XP",
            CpuFamily::Athlon64 => "Athlon 64",
            CpuFamily::OtherAmd => "Other AMD",
            CpuFamily::Pentium4 => "Pentium 4",
            CpuFamily::PentiumM => "Pentium M",
            CpuFamily::PentiumD => "Pentium D",
            CpuFamily::OtherPentium => "Other Pentium",
            CpuFamily::IntelCore2 => "Intel Core 2",
            CpuFamily::IntelCeleron => "Intel Celeron",
            CpuFamily::IntelXeon => "Intel Xeon",
            CpuFamily::OtherX86 => "Other x86",
            CpuFamily::Other => "Other",
        }
    }

    /// Normalised market shares at a fractional `year`, interpolating
    /// the paper's yearly columns and clamping outside 2006–2010.
    pub fn shares_at(year: f64) -> Vec<(CpuFamily, f64)> {
        let mut weights: Vec<f64> = CPU_SHARES
            .iter()
            .map(|(_, s)| interp_series(&TABLE_YEARS, s, year))
            .collect();
        normalize(&mut weights);
        CPU_SHARES
            .iter()
            .zip(weights)
            .map(|((fam, _), w)| (*fam, w))
            .collect()
    }

    /// Sample a family from the shares at `year` using a uniform draw
    /// `u ∈ [0, 1)`. Allocation-free (the share table is interpolated
    /// into a stack buffer): this runs once per simulated host.
    pub fn sample_at(year: f64, u: f64) -> CpuFamily {
        let mut weights = [0.0; CPU_SHARES.len()];
        for (w, (_, s)) in weights.iter_mut().zip(&CPU_SHARES) {
            *w = interp_series(&TABLE_YEARS, s, year);
        }
        normalize(&mut weights);
        CPU_SHARES[pick_index(&weights, u)].0
    }
}

impl std::fmt::Display for CpuFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn share(year: f64, fam: CpuFamily) -> f64 {
        CpuFamily::shares_at(year)
            .into_iter()
            .find(|(f, _)| *f == fam)
            .unwrap()
            .1
    }

    #[test]
    fn shares_normalised() {
        for &y in &[2004.0, 2006.0, 2007.7, 2010.0, 2013.0] {
            let total: f64 = CpuFamily::shares_at(y).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9, "year {y}: total {total}");
        }
    }

    #[test]
    fn pentium4_falls_core2_rises() {
        assert!(share(2006.0, CpuFamily::Pentium4) > 0.3);
        assert!(share(2010.0, CpuFamily::Pentium4) < 0.17);
        assert!(share(2006.0, CpuFamily::IntelCore2) < 0.02);
        assert!(share(2010.0, CpuFamily::IntelCore2) > 0.3);
    }

    #[test]
    fn interpolation_between_years() {
        let s = share(2008.5, CpuFamily::IntelCore2);
        // Between 13.2% (2008) and 24.8% (2009) — about 19%.
        assert!(s > 0.15 && s < 0.23, "share {s}");
    }

    #[test]
    fn sampling_deterministic_for_small_u() {
        // PowerPC is listed first with 5.1% in 2006.
        assert_eq!(CpuFamily::sample_at(2006.0, 0.01), CpuFamily::PowerPc);
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<_> = CpuFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), CpuFamily::ALL.len());
    }
}
