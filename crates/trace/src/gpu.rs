//! GPU coprocessor attributes (paper Section V-H, Table VII, Fig 10).
//!
//! BOINC only began recording GPU statistics in September 2009; the
//! tables here cover Sep 2009 → Sep 2010 and are clamped outside that
//! window.

use crate::market::{interp_series, normalize, pick_index};
use serde::{Deserialize, Serialize};

/// GPU vendor/class, at the granularity of the paper's Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GpuClass {
    /// NVIDIA GeForce.
    #[default]
    GeForce,
    /// AMD/ATI Radeon.
    Radeon,
    /// NVIDIA Quadro.
    Quadro,
    /// Anything else.
    Other,
}

/// Fractional years at which the GPU tables are sampled
/// (Sep 2009 and Sep 2010).
const GPU_YEARS: [f64; 2] = [2009.67, 2010.67];

/// The paper's Table VII, % among GPU-equipped hosts.
const GPU_SHARES: [(GpuClass, [f64; 2]); 4] = [
    (GpuClass::GeForce, [82.5, 63.6]),
    (GpuClass::Radeon, [12.2, 31.5]),
    (GpuClass::Quadro, [4.7, 4.0]),
    (GpuClass::Other, [0.6, 0.8]),
];

/// Discrete GPU memory sizes (MB) used to model Fig 10's histogram.
pub const GPU_MEMORY_VALUES_MB: [f64; 7] = [128.0, 256.0, 512.0, 768.0, 1024.0, 1536.0, 2048.0];

/// GPU memory weights at Sep 2009 and Sep 2010, calibrated so that the
/// mean (≈593 → ≈640 MB), median (512 MB) and the ≥1 GB fraction
/// (19% → 31%) match Fig 10's reported statistics, while >1 GB stays
/// below 2% as the paper notes.
const GPU_MEMORY_WEIGHTS: [[f64; 2]; 7] = [
    [0.04, 0.04],   // 128 MB
    [0.24, 0.22],   // 256 MB
    [0.33, 0.31],   // 512 MB
    [0.20, 0.12],   // 768 MB
    [0.175, 0.295], // 1024 MB
    [0.01, 0.01],   // 1536 MB
    [0.005, 0.005], // 2048 MB
];

/// Fraction of active hosts reporting a GPU: 12.7% at Sep 2009 rising
/// to 23.8% at Sep 2010 (clamped outside; 0 before recording started).
pub fn gpu_presence_fraction(year: f64) -> f64 {
    if year < GPU_YEARS[0] {
        return 0.0;
    }
    interp_series(&GPU_YEARS, &[12.7, 23.8], year) / 100.0
}

impl GpuClass {
    /// All classes in Table VII order.
    pub const ALL: [GpuClass; 4] = [
        GpuClass::GeForce,
        GpuClass::Radeon,
        GpuClass::Quadro,
        GpuClass::Other,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            GpuClass::GeForce => "GeForce",
            GpuClass::Radeon => "Radeon",
            GpuClass::Quadro => "Quadro",
            GpuClass::Other => "Other",
        }
    }

    /// Normalised class shares among GPU-equipped hosts at `year`.
    pub fn shares_at(year: f64) -> Vec<(GpuClass, f64)> {
        let mut weights: Vec<f64> = GPU_SHARES
            .iter()
            .map(|(_, s)| interp_series(&GPU_YEARS, s, year))
            .collect();
        normalize(&mut weights);
        GPU_SHARES
            .iter()
            .zip(weights)
            .map(|((c, _), w)| (*c, w))
            .collect()
    }

    /// Sample a class at `year` from a uniform draw `u ∈ [0, 1)`.
    pub fn sample_at(year: f64, u: f64) -> GpuClass {
        let shares = Self::shares_at(year);
        let weights: Vec<f64> = shares.iter().map(|(_, w)| *w).collect();
        shares[pick_index(&weights, u)].0
    }
}

impl std::fmt::Display for GpuClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Normalised GPU memory-size weights at `year`.
pub fn gpu_memory_weights(year: f64) -> Vec<(f64, f64)> {
    let mut weights: Vec<f64> = GPU_MEMORY_WEIGHTS
        .iter()
        .map(|w| interp_series(&GPU_YEARS, w, year))
        .collect();
    normalize(&mut weights);
    GPU_MEMORY_VALUES_MB
        .iter()
        .zip(weights)
        .map(|(&v, w)| (v, w))
        .collect()
}

/// Sample a GPU memory size (MB) at `year` from a uniform draw.
pub fn sample_gpu_memory(year: f64, u: f64) -> f64 {
    let table = gpu_memory_weights(year);
    let weights: Vec<f64> = table.iter().map(|(_, w)| *w).collect();
    table[pick_index(&weights, u)].0
}

/// A host's GPU as reported to the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuInfo {
    /// Vendor/class.
    pub class: GpuClass,
    /// On-board memory, MB.
    pub memory_mb: f64,
    /// When the server first recorded the GPU (BOINC started asking in
    /// September 2009); queries before this date do not see the GPU.
    pub since: crate::time::SimDate,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn presence_before_recording_is_zero() {
        assert_eq!(gpu_presence_fraction(2008.0), 0.0);
        assert_eq!(gpu_presence_fraction(2009.5), 0.0);
    }

    #[test]
    fn presence_matches_endpoints() {
        assert!((gpu_presence_fraction(2009.67) - 0.127).abs() < 1e-9);
        assert!((gpu_presence_fraction(2010.67) - 0.238).abs() < 1e-9);
        assert!((gpu_presence_fraction(2012.0) - 0.238).abs() < 1e-9);
    }

    #[test]
    fn class_shares_normalised_and_shift() {
        for &y in &[2009.67, 2010.2, 2010.67] {
            let total: f64 = GpuClass::shares_at(y).iter().map(|(_, w)| w).sum();
            assert!((total - 1.0).abs() < 1e-9);
        }
        let geforce_09 = GpuClass::shares_at(2009.67)[0].1;
        let geforce_10 = GpuClass::shares_at(2010.67)[0].1;
        assert!(geforce_09 > 0.8 && geforce_10 < 0.65);
    }

    #[test]
    fn memory_weights_match_fig10_statistics() {
        for &(y, target_mean, ge1gb) in &[(2009.67, 593.0, 0.19), (2010.67, 640.0, 0.31)] {
            let table = gpu_memory_weights(y);
            let mean: f64 = table.iter().map(|(v, w)| v * w).sum();
            assert!((mean - target_mean).abs() < 15.0, "year {y} mean {mean}");
            let frac: f64 = table
                .iter()
                .filter(|(v, _)| *v >= 1024.0)
                .map(|(_, w)| w)
                .sum();
            assert!((frac - ge1gb).abs() < 0.01, "year {y} ≥1GB {frac}");
            let over_1gb: f64 = table
                .iter()
                .filter(|(v, _)| *v > 1024.0)
                .map(|(_, w)| w)
                .sum();
            assert!(over_1gb < 0.02, "year {y} >1GB {over_1gb}");
        }
    }

    #[test]
    fn memory_median_is_512() {
        for &y in &[2009.67, 2010.67] {
            let table = gpu_memory_weights(y);
            let mut acc = 0.0;
            let mut median = 0.0;
            for (v, w) in table {
                acc += w;
                if acc >= 0.5 {
                    median = v;
                    break;
                }
            }
            assert_eq!(median, 512.0, "year {y}");
        }
    }

    #[test]
    fn sampling_covers_values() {
        let m = sample_gpu_memory(2010.0, 0.0);
        assert_eq!(m, 128.0);
        let hi = sample_gpu_memory(2010.0, 0.9999);
        assert_eq!(hi, 2048.0);
    }

    #[test]
    fn class_sampling() {
        assert_eq!(GpuClass::sample_at(2009.67, 0.5), GpuClass::GeForce);
        assert_eq!(GpuClass::sample_at(2010.67, 0.98), GpuClass::Quadro);
        assert_eq!(GpuClass::sample_at(2010.67, 0.999), GpuClass::Other);
    }
}
