//! Host records and resource snapshots — the unit of data collected by
//! the BOINC-style measurement loop.

use crate::cpu::CpuFamily;
use crate::gpu::GpuInfo;
use crate::os::OsFamily;
use crate::time::SimDate;
use serde::{Deserialize, Serialize};

/// Opaque identifier of a host within a trace.
///
/// `#[repr(transparent)]` over the inner `u64`, so the persistence
/// layer can reinterpret an aligned little-endian `u64` column as a
/// `&[HostId]` without copying.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[repr(transparent)]
pub struct HostId(u64);

impl HostId {
    /// The raw numeric id.
    pub fn value(&self) -> u64 {
        self.0
    }
}

impl From<u64> for HostId {
    fn from(v: u64) -> Self {
        HostId(v)
    }
}

impl std::fmt::Display for HostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// One hardware measurement, taken when a host contacted the server.
///
/// Fields mirror the five resources of the paper's host model
/// (Section V-A) plus total disk, which the measurement function also
/// reports (the paper models *available* disk; total is kept for the
/// uniform-available-fraction analysis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSnapshot {
    /// When the measurement was recorded.
    pub t: SimDate,
    /// Number of primary processing cores (GPU cores excluded).
    pub cores: u32,
    /// Volatile memory in MB.
    pub memory_mb: f64,
    /// Whetstone (floating-point) speed per core, MIPS.
    pub whetstone_mips: f64,
    /// Dhrystone (integer) speed per core, MIPS.
    pub dhrystone_mips: f64,
    /// Available (free) non-volatile storage, GB.
    pub avail_disk_gb: f64,
    /// Total non-volatile storage visible to the client, GB.
    pub total_disk_gb: f64,
}

impl ResourceSnapshot {
    /// Memory per core in MB — the quantity the paper actually models
    /// (Section V-E).
    pub fn memory_per_core_mb(&self) -> f64 {
        self.memory_mb / self.cores.max(1) as f64
    }
}

/// A complete host record: static attributes plus the measurement
/// time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostRecord {
    /// Identifier, unique within a trace.
    pub id: HostId,
    /// When the host was created (installed the client).
    pub created: SimDate,
    /// Operating system family.
    pub os: OsFamily,
    /// Processor family.
    pub cpu: CpuFamily,
    /// GPU, when one was reported (recording started Sep 2009 in the
    /// paper's data).
    pub gpu: Option<GpuInfo>,
    snapshots: Vec<ResourceSnapshot>,
}

impl HostRecord {
    /// Create a record with no measurements yet.
    pub fn new(id: HostId, created: SimDate) -> Self {
        Self {
            id,
            created,
            os: OsFamily::default(),
            cpu: CpuFamily::default(),
            gpu: None,
            snapshots: Vec::new(),
        }
    }

    /// Append a measurement.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot timestamp precedes the previous snapshot —
    /// server logs are append-only and time-ordered.
    pub fn record(&mut self, snapshot: ResourceSnapshot) {
        if let Some(last) = self.snapshots.last() {
            assert!(
                snapshot.t >= last.t,
                "snapshots must be recorded in time order"
            );
        }
        self.snapshots.push(snapshot);
    }

    /// All measurements, time-ordered.
    pub fn snapshots(&self) -> &[ResourceSnapshot] {
        &self.snapshots
    }

    /// First server contact, if any measurement exists.
    pub fn first_contact(&self) -> Option<SimDate> {
        self.snapshots.first().map(|s| s.t)
    }

    /// Most recent server contact, if any measurement exists.
    pub fn last_contact(&self) -> Option<SimDate> {
        self.snapshots.last().map(|s| s.t)
    }

    /// Lifetime in days: time between first and last server contact
    /// (the paper's Fig 1 definition). `None` when fewer than one
    /// measurement exists.
    pub fn lifetime_days(&self) -> Option<f64> {
        match (self.first_contact(), self.last_contact()) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        }
    }

    /// The paper's activity rule: first contact before `t` *and* last
    /// contact after `t`.
    pub fn is_active_at(&self, t: SimDate) -> bool {
        matches!(
            (self.first_contact(), self.last_contact()),
            (Some(first), Some(last)) if first <= t && t <= last
        )
    }

    /// Latest measurement at or before `t`, i.e. what the server
    /// believed about this host at time `t`.
    pub fn snapshot_at(&self, t: SimDate) -> Option<&ResourceSnapshot> {
        self.snapshots.iter().rev().find(|s| s.t <= t)
    }
}

/// A host's resource state at one instant — the row format consumed by
/// the fitting pipeline and the allocation simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostView {
    /// Host identifier.
    pub id: HostId,
    /// Number of cores.
    pub cores: u32,
    /// Total memory, MB.
    pub memory_mb: f64,
    /// Whetstone speed per core, MIPS.
    pub whetstone_mips: f64,
    /// Dhrystone speed per core, MIPS.
    pub dhrystone_mips: f64,
    /// Available disk, GB.
    pub avail_disk_gb: f64,
    /// Total disk, GB.
    pub total_disk_gb: f64,
    /// OS family.
    pub os: OsFamily,
    /// CPU family.
    pub cpu: CpuFamily,
    /// GPU, when present.
    pub gpu: Option<GpuInfo>,
}

impl HostView {
    /// Memory per core in MB.
    pub fn memory_per_core_mb(&self) -> f64 {
        self.memory_mb / self.cores.max(1) as f64
    }

    /// Build a view of `host` as of time `t`; `None` when the host has
    /// no measurement at or before `t`. The GPU is only visible from
    /// its recording date onwards.
    pub fn of(host: &HostRecord, t: SimDate) -> Option<Self> {
        host.snapshot_at(t).map(|s| Self {
            id: host.id,
            cores: s.cores,
            memory_mb: s.memory_mb,
            whetstone_mips: s.whetstone_mips,
            dhrystone_mips: s.dhrystone_mips,
            avail_disk_gb: s.avail_disk_gb,
            total_disk_gb: s.total_disk_gb,
            os: host.os,
            cpu: host.cpu,
            gpu: host.gpu.filter(|g| g.since <= t),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn snap(t: f64, cores: u32, mem: f64) -> ResourceSnapshot {
        ResourceSnapshot {
            t: SimDate::from_year(t),
            cores,
            memory_mb: mem,
            whetstone_mips: 1000.0,
            dhrystone_mips: 2000.0,
            avail_disk_gb: 50.0,
            total_disk_gb: 100.0,
        }
    }

    #[test]
    fn host_id_display_and_value() {
        let id: HostId = 42.into();
        assert_eq!(id.value(), 42);
        assert_eq!(id.to_string(), "host-42");
    }

    #[test]
    fn snapshot_memory_per_core() {
        assert_eq!(snap(2006.0, 4, 4096.0).memory_per_core_mb(), 1024.0);
        // Degenerate zero-core snapshot must not divide by zero.
        let z = ResourceSnapshot {
            cores: 0,
            ..snap(2006.0, 1, 512.0)
        };
        assert_eq!(z.memory_per_core_mb(), 512.0);
    }

    #[test]
    fn record_and_contacts() {
        let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
        assert!(h.first_contact().is_none());
        assert!(h.lifetime_days().is_none());
        h.record(snap(2006.1, 1, 512.0));
        h.record(snap(2007.3, 1, 512.0));
        assert!((h.lifetime_days().unwrap() - 1.2 * 365.25).abs() < 0.5);
        assert_eq!(h.snapshots().len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn record_rejects_out_of_order() {
        let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
        h.record(snap(2007.0, 1, 512.0));
        h.record(snap(2006.0, 1, 512.0));
    }

    #[test]
    fn activity_rule() {
        let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
        h.record(snap(2006.5, 1, 512.0));
        h.record(snap(2008.5, 1, 512.0));
        assert!(h.is_active_at(SimDate::from_year(2007.0)));
        assert!(h.is_active_at(SimDate::from_year(2006.5)));
        assert!(!h.is_active_at(SimDate::from_year(2006.0)));
        assert!(!h.is_active_at(SimDate::from_year(2009.0)));
    }

    #[test]
    fn snapshot_at_returns_latest_before() {
        let mut h = HostRecord::new(1.into(), SimDate::from_year(2006.0));
        h.record(snap(2006.5, 1, 512.0));
        h.record(snap(2007.5, 2, 2048.0));
        let s = h.snapshot_at(SimDate::from_year(2007.0)).unwrap();
        assert_eq!(s.cores, 1);
        let s2 = h.snapshot_at(SimDate::from_year(2008.0)).unwrap();
        assert_eq!(s2.cores, 2);
        assert!(h.snapshot_at(SimDate::from_year(2006.0)).is_none());
    }

    #[test]
    fn view_reflects_snapshot() {
        let mut h = HostRecord::new(9.into(), SimDate::from_year(2006.0));
        h.record(snap(2006.5, 4, 4096.0));
        let v = HostView::of(&h, SimDate::from_year(2007.0)).unwrap();
        assert_eq!(v.cores, 4);
        assert_eq!(v.memory_per_core_mb(), 1024.0);
        assert_eq!(v.id, 9.into());
        assert!(HostView::of(&h, SimDate::from_year(2005.0)).is_none());
    }
}
