//! Property-based tests of the `resmodel.trace/1` persistence layer:
//! `write → map → to_trace` is bitwise identity for arbitrary traces
//! (lossless precision, both the mmap and the heap backend), and the
//! compact precision narrows exactly the five resource columns to
//! `f32` and nothing else.

use proptest::prelude::*;
use resmodel_trace::columnar::ColumnarTrace;
use resmodel_trace::persist::{write_trace, MappedTrace, Precision};
use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace, TraceSource};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch path per proptest case (cases run concurrently).
fn scratch() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "resmodel-proptest-persist-{}-{}.rmt",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Strategy: a host with snapshots at sorted offsets from its creation.
fn host_strategy(id: u64) -> impl Strategy<Value = HostRecord> {
    (
        2005.0..2010.0f64,
        prop::collection::vec(0.0..2000.0f64, 0..6),
        1u32..9,
        128.0..8192.0f64,
    )
        .prop_map(move |(year, mut offsets, cores, mem)| {
            offsets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let created = SimDate::from_year(year);
            let mut h = HostRecord::new(id.into(), created);
            for (i, off) in offsets.iter().enumerate() {
                h.record(ResourceSnapshot {
                    t: created + *off,
                    cores,
                    memory_mb: mem + i as f64,
                    whetstone_mips: 1000.0 + i as f64,
                    dhrystone_mips: 2000.0 + (i % 3) as f64,
                    avail_disk_gb: 40.0 + i as f64,
                    total_disk_gb: 100.0,
                });
            }
            h
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(host_strategy(0), 0..24).prop_map(|hosts| {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, mut h)| {
                h.id = (i as u64).into();
                h
            })
            .collect()
    })
}

/// Bitwise equality of every column between two sources: `PartialEq`
/// on floats would also pass for `-0.0 == 0.0`, so compare bits.
fn assert_bitwise_equal(a: &(impl TraceSource + ?Sized), b: &(impl TraceSource + ?Sized)) {
    let (a, b) = (a.columns(), b.columns());
    assert_eq!(a.ids, b.ids);
    assert_eq!(a.created, b.created);
    assert_eq!(a.os, b.os);
    assert_eq!(a.cpu, b.cpu);
    assert_eq!(a.gpu, b.gpu);
    assert_eq!(a.first_contact, b.first_contact);
    assert_eq!(a.last_contact, b.last_contact);
    assert_eq!(a.snap_start, b.snap_start);
    assert_eq!(a.snap_t, b.snap_t);
    assert_eq!(a.snap_cores, b.snap_cores);
    for (x, y) in [
        (a.snap_memory_mb, b.snap_memory_mb),
        (a.snap_whetstone, b.snap_whetstone),
        (a.snap_dhrystone, b.snap_dhrystone),
        (a.snap_avail_disk, b.snap_avail_disk),
        (a.snap_total_disk, b.snap_total_disk),
    ] {
        assert_eq!(x.len(), y.len());
        for (v, w) in x.iter().zip(y) {
            assert_eq!(v.to_bits(), w.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lossless_round_trip_is_bitwise_identity(trace in trace_strategy()) {
        let columnar = ColumnarTrace::from(&trace);
        let path = scratch();
        write_trace(&path, &columnar, Precision::Lossless).expect("write");

        let mapped = MappedTrace::open(&path).expect("map");
        prop_assert_eq!(mapped.precision(), Precision::Lossless);
        assert_bitwise_equal(&columnar, &mapped);
        // The reconstructed row trace is the original, host for host.
        prop_assert_eq!(mapped.to_trace().hosts(), trace.hosts());

        // The heap backend reads the same bytes to the same columns.
        let heap = MappedTrace::open_in_heap(&path).expect("heap read");
        prop_assert_eq!(heap.backend(), "heap");
        assert_bitwise_equal(&mapped, &heap);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_narrows_exactly_the_resource_columns(trace in trace_strategy()) {
        let columnar = ColumnarTrace::from(&trace);
        let path = scratch();
        write_trace(&path, &columnar, Precision::Compact).expect("write");
        let mapped = MappedTrace::open(&path).expect("map");
        prop_assert_eq!(mapped.precision(), Precision::Compact);

        let (a, b) = (columnar.columns(), mapped.columns());
        // Structure and integer/date columns are untouched...
        prop_assert_eq!(a.ids, b.ids);
        prop_assert_eq!(a.created, b.created);
        prop_assert_eq!(a.snap_start, b.snap_start);
        prop_assert_eq!(a.snap_t, b.snap_t);
        prop_assert_eq!(a.snap_cores, b.snap_cores);
        // ...while each resource value went through exactly one
        // f64 → f32 → f64 narrowing.
        for (x, y) in [
            (a.snap_memory_mb, b.snap_memory_mb),
            (a.snap_whetstone, b.snap_whetstone),
            (a.snap_dhrystone, b.snap_dhrystone),
            (a.snap_avail_disk, b.snap_avail_disk),
            (a.snap_total_disk, b.snap_total_disk),
        ] {
            prop_assert_eq!(x.len(), y.len());
            for (v, w) in x.iter().zip(y) {
                prop_assert_eq!(f64::from(*v as f32).to_bits(), w.to_bits());
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mapped_queries_match_the_heap_store(trace in trace_strategy(), probe_year in 2004.0..2013.0f64) {
        let columnar = ColumnarTrace::from(&trace);
        let path = scratch();
        write_trace(&path, &columnar, Precision::Lossless).expect("write");
        let mapped = MappedTrace::open(&path).expect("map");

        let t = SimDate::from_year(probe_year);
        prop_assert_eq!(mapped.active_at(t).len(), columnar.active_at(t).len());
        prop_assert_eq!(mapped.start(), columnar.start());
        prop_assert_eq!(mapped.end(), columnar.end());
        let cutoff = SimDate::from_year(2011.0);
        prop_assert_eq!(mapped.lifetimes(cutoff), columnar.lifetimes(cutoff));
        let _ = std::fs::remove_file(&path);
    }
}
