//! Property-based tests of trace-store invariants: activity rules,
//! snapshot lookups, lifetimes and sanitization.

use proptest::prelude::*;
use resmodel_trace::sanitize::{sanitize, SanitizeRules};
use resmodel_trace::{HostRecord, HostView, ResourceSnapshot, SimDate, Trace};

/// Strategy: a host with snapshots at sorted offsets from its creation.
fn host_strategy(id: u64) -> impl Strategy<Value = HostRecord> {
    (
        2005.0..2010.0f64,
        prop::collection::vec(0.0..2000.0f64, 1..6),
        1u32..9,
        128.0..8192.0f64,
    )
        .prop_map(move |(year, mut offsets, cores, mem)| {
            offsets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let created = SimDate::from_year(year);
            let mut h = HostRecord::new(id.into(), created);
            for (i, off) in offsets.iter().enumerate() {
                h.record(ResourceSnapshot {
                    t: created + *off,
                    cores,
                    memory_mb: mem + i as f64,
                    whetstone_mips: 1000.0 + i as f64,
                    dhrystone_mips: 2000.0,
                    avail_disk_gb: 40.0,
                    total_disk_gb: 100.0,
                });
            }
            h
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn activity_iff_between_contacts(h in host_strategy(1), probe_year in 2004.0..2012.0f64) {
        let t = SimDate::from_year(probe_year);
        let first = h.first_contact().unwrap();
        let last = h.last_contact().unwrap();
        prop_assert_eq!(h.is_active_at(t), first <= t && t <= last);
    }

    #[test]
    fn snapshot_at_is_latest_not_after(h in host_strategy(2), probe_year in 2004.0..2013.0f64) {
        let t = SimDate::from_year(probe_year);
        match h.snapshot_at(t) {
            Some(s) => {
                prop_assert!(s.t <= t);
                // No later snapshot that is still ≤ t.
                for other in h.snapshots() {
                    if other.t <= t {
                        prop_assert!(other.t <= s.t);
                    }
                }
            }
            None => {
                for other in h.snapshots() {
                    prop_assert!(other.t > t);
                }
            }
        }
    }

    #[test]
    fn lifetime_is_nonnegative_span(h in host_strategy(3)) {
        let l = h.lifetime_days().unwrap();
        prop_assert!(l >= 0.0);
        prop_assert!((l - (h.last_contact().unwrap() - h.first_contact().unwrap())).abs() < 1e-9);
    }

    #[test]
    fn view_consistent_with_snapshot(h in host_strategy(4), probe_year in 2005.0..2012.0f64) {
        let t = SimDate::from_year(probe_year);
        match (HostView::of(&h, t), h.snapshot_at(t)) {
            (Some(v), Some(s)) => {
                prop_assert_eq!(v.cores, s.cores);
                prop_assert_eq!(v.memory_mb, s.memory_mb);
                prop_assert!((v.memory_per_core_mb() - s.memory_per_core_mb()).abs() < 1e-12);
            }
            (None, None) => {}
            _ => prop_assert!(false, "view and snapshot disagree on existence"),
        }
    }

    #[test]
    fn population_only_contains_active_hosts(
        hosts in prop::collection::vec(host_strategy(0), 1..20),
        probe_year in 2005.0..2012.0f64,
    ) {
        let trace: Trace = hosts.into_iter().enumerate().map(|(i, mut h)| {
            h.id = (i as u64).into();
            h
        }).collect();
        let t = SimDate::from_year(probe_year);
        let pop = trace.population_at(t);
        prop_assert_eq!(pop.len(), trace.active_count(t));
        for v in &pop {
            let h = trace.host(v.id).unwrap();
            prop_assert!(h.is_active_at(t));
        }
    }

    #[test]
    fn lifetimes_respect_cutoff_monotonically(
        hosts in prop::collection::vec(host_strategy(0), 1..20),
        c1 in 2005.0..2011.0f64,
        c2 in 2005.0..2011.0f64,
    ) {
        let trace: Trace = hosts.into_iter().enumerate().map(|(i, mut h)| {
            h.id = (i as u64).into();
            h
        }).collect();
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let early = trace.lifetimes(SimDate::from_year(lo));
        let late = trace.lifetimes(SimDate::from_year(hi));
        // A later cutoff admits at least as many hosts.
        prop_assert!(late.len() >= early.len());
    }

    #[test]
    fn sanitize_idempotent(hosts in prop::collection::vec(host_strategy(0), 0..15)) {
        let trace: Trace = hosts.into_iter().enumerate().map(|(i, mut h)| {
            h.id = (i as u64).into();
            h
        }).collect();
        let rules = SanitizeRules::default();
        let once = sanitize(&trace, rules);
        let twice = sanitize(&once.trace, rules);
        prop_assert_eq!(twice.discarded, 0);
        prop_assert_eq!(once.trace.len(), twice.trace.len());
    }

    #[test]
    fn csv_roundtrip_any_host(h in host_strategy(9)) {
        let trace: Trace = std::iter::once(h).collect();
        let mut buf = Vec::new();
        resmodel_trace::csv::write_trace(&trace, &mut buf).unwrap();
        let back = resmodel_trace::csv::read_trace(buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), 1);
        let a = &trace.hosts()[0];
        let b = &back.hosts()[0];
        prop_assert_eq!(a.id, b.id);
        prop_assert_eq!(a.snapshots().len(), b.snapshots().len());
        for (x, y) in a.snapshots().iter().zip(b.snapshots()) {
            prop_assert!((x.t - y.t).abs() < 1e-9);
            prop_assert_eq!(x.cores, y.cores);
        }
    }
}
