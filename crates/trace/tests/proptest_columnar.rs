//! Property-based tests of the columnar store against the row store:
//! lossless round trip, bitwise-equal extraction, and agreement at
//! activity boundaries, for arbitrary generated traces.

use proptest::prelude::*;
use resmodel_trace::columnar::ColumnarTrace;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{HostRecord, ResourceSnapshot, SimDate, Trace};

/// Strategy: a host with snapshots at sorted offsets from its creation.
fn host_strategy(id: u64) -> impl Strategy<Value = HostRecord> {
    (
        2005.0..2010.0f64,
        prop::collection::vec(0.0..2000.0f64, 0..6),
        1u32..9,
        128.0..8192.0f64,
    )
        .prop_map(move |(year, mut offsets, cores, mem)| {
            offsets.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let created = SimDate::from_year(year);
            let mut h = HostRecord::new(id.into(), created);
            for (i, off) in offsets.iter().enumerate() {
                h.record(ResourceSnapshot {
                    t: created + *off,
                    cores,
                    memory_mb: mem + i as f64,
                    whetstone_mips: 1000.0 + i as f64,
                    dhrystone_mips: 2000.0 + (i % 3) as f64,
                    avail_disk_gb: 40.0 + i as f64,
                    total_disk_gb: 100.0,
                });
            }
            h
        })
}

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec(host_strategy(0), 0..24).prop_map(|hosts| {
        hosts
            .into_iter()
            .enumerate()
            .map(|(i, mut h)| {
                h.id = (i as u64).into();
                h
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_is_identity(trace in trace_strategy()) {
        let columnar = ColumnarTrace::from(&trace);
        prop_assert_eq!(columnar.len(), trace.len());
        prop_assert_eq!(columnar.to_trace().hosts(), trace.hosts());
    }

    #[test]
    fn extraction_equals_row_path(trace in trace_strategy(), probe_year in 2004.0..2013.0f64) {
        let columnar = ColumnarTrace::from(&trace);
        let t = SimDate::from_year(probe_year);
        let active = columnar.active_at(t);
        prop_assert_eq!(active.len(), trace.active_count(t));
        for column in ResourceColumn::ALL {
            let row = trace.column_at(t, column);
            let col = columnar.column_values(&active, column);
            // Bitwise equality, not approximate: the columnar path must
            // reproduce the row extraction exactly.
            prop_assert_eq!(col.len(), row.len());
            for (a, b) in col.iter().zip(&row) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn boundary_activity_agrees(trace in trace_strategy()) {
        let columnar = ColumnarTrace::from(&trace);
        // Probe exactly at every host's first and last contact: the
        // activity rule is inclusive on both ends in both layouts.
        for h in trace.hosts() {
            for t in [h.first_contact(), h.last_contact()].into_iter().flatten() {
                prop_assert_eq!(trace.active_count(t), columnar.active_count(t));
                prop_assert_eq!(trace.active_count(t), columnar.active_at(t).len());
            }
        }
    }

    #[test]
    fn whole_trace_queries_agree(trace in trace_strategy(), cutoff_year in 2005.0..2012.0f64) {
        let columnar = ColumnarTrace::from(&trace);
        let cutoff = SimDate::from_year(cutoff_year);
        prop_assert_eq!(columnar.lifetimes(cutoff), trace.lifetimes(cutoff));
        prop_assert_eq!(
            columnar.creation_vs_lifetime(cutoff),
            trace.creation_vs_lifetime(cutoff)
        );
        prop_assert_eq!(columnar.start(), trace.start());
        prop_assert_eq!(columnar.end(), trace.end());
    }
}
