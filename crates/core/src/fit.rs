//! The model-fitting pipeline: re-derive every law of the paper's model
//! from a measurement trace (Sections V-C through V-G).
//!
//! Given a [`Trace`] and a set of sample dates (the paper uses yearly
//! January snapshots 2006–2010), this module computes:
//!
//! * core-count tier fractions and the adjacent-tier ratio laws
//!   (Fig 4/5, Table IV),
//! * per-core-memory tier fractions and ratio laws (Fig 6/7, Table V),
//! * exponential laws for the mean and variance of Whetstone, Dhrystone
//!   and available disk (Fig 8/9, Table VI),
//! * the 6×6 resource correlation matrix (Table III),
//! * the Weibull lifetime fit (Fig 1),
//! * KS-based distribution-family selection for any resource column
//!   (the Section V-F methodology),
//!
//! and assembles them into a ready-to-generate [`HostModel`].
//!
//! ## Data layout
//!
//! Every fit has two implementations with bitwise-identical output:
//!
//! * **Columnar** (`*_columnar`, the production path): the active
//!   population of each sample date is resolved **once** into an
//!   [`ActiveSet`] and every per-resource extraction reuses it as a
//!   zero-copy column view. [`fit_host_model`] converts once and runs
//!   this path.
//! * **Row** (the [`Trace`]-taking functions and
//!   [`fit_host_model_rows`]): genuine row scans over host records,
//!   kept as the reference implementation the columnar path is
//!   verified against (the golden pipeline report, the round-trip
//!   proptests and the `swept --verify-columnar` CI check).

use crate::model::{HostModel, MomentLaw, CORE_TIERS, PCM_TIERS_MB};
use crate::ratio_law::{DiscreteRatioModel, RatioLaw};
use rand::Rng;
use resmodel_stats::correlation::correlation_matrix_iter;
use resmodel_stats::describe::{mean_variance, Summary};
use resmodel_stats::distributions::Weibull;
use resmodel_stats::ks::{select_family, FamilyScore, SubsampleConfig};
use resmodel_stats::regression::{exp_law_fit, ExpLawFit};
use resmodel_stats::{DistributionFamily, Matrix, StatsError};
use resmodel_trace::columnar::{ActiveSet, ColumnarTrace};
use resmodel_trace::source::TraceSource;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{HostView, SimDate, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the fitting pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Dates at which population snapshots are taken (paper: January 1
    /// of 2006–2010).
    pub sample_dates: Vec<SimDate>,
    /// Relative tolerance for snapping per-core memory onto a canonical
    /// tier; hosts outside every tier are ignored (the paper discards
    /// intermediate values such as 1280 MB).
    pub pcm_tolerance: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self::yearly(2006, 2010)
    }
}

impl FitConfig {
    /// Yearly January sample dates `first..=last` with the default
    /// per-core-memory tolerance. The paper's window is 2006–2010
    /// ([`FitConfig::default`]); traces whose population only ramps up
    /// later (e.g. scenario runs starting in 2006) should start at the
    /// first year with an established population.
    pub fn yearly(first: i32, last: i32) -> Self {
        Self {
            sample_dates: (first..=last)
                .map(|y| SimDate::from_year(y as f64))
                .collect(),
            pcm_tolerance: 0.15,
        }
    }
}

/// One fitted law with its printable label — a row of Tables IV, V
/// or VI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LawRow {
    /// Row label, e.g. `"1:2 Core Ratio"`.
    pub label: String,
    /// The fitted `(a, b, r)`.
    pub fit: ExpLawFit,
}

/// Everything the pipeline produced: the model plus the printable
/// diagnostic tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FitReport {
    /// The assembled generative model.
    pub model: HostModel,
    /// Table IV rows (core ratios).
    pub core_laws: Vec<LawRow>,
    /// Table V rows (per-core-memory ratios).
    pub pcm_laws: Vec<LawRow>,
    /// Table VI rows (benchmark and disk moment laws).
    pub moment_laws: Vec<LawRow>,
    /// Table III: the 6×6 resource correlation matrix, averaged over
    /// the sample dates (column order [`ResourceColumn::ALL`]).
    pub correlation: Matrix,
}

/// Snap a core count onto the paper's power-of-two tiers
/// (1, 2–3, 4–7, 8–15); `None` for 0 or ≥16.
pub fn core_tier(cores: u32) -> Option<f64> {
    match cores {
        1 => Some(1.0),
        2..=3 => Some(2.0),
        4..=7 => Some(4.0),
        8..=15 => Some(8.0),
        _ => None,
    }
}

/// Snap a per-core-memory value onto a canonical tier within `tol`
/// relative distance; `None` when no tier is close enough.
pub fn pcm_tier(pcm_mb: f64, tol: f64) -> Option<f64> {
    PCM_TIERS_MB
        .iter()
        .find(|&&t| (pcm_mb - t).abs() / t <= tol)
        .copied()
}

/// Count hosts per core tier in a population snapshot.
pub fn core_tier_counts(population: &[HostView]) -> [usize; 4] {
    core_tier_counts_of(population.iter().map(|v| v.cores))
}

/// Count hosts per core tier over an active set's cores column,
/// without materialising host views.
pub fn core_tier_counts_columnar<S: TraceSource + ?Sized>(
    store: &S,
    active: &ActiveSet,
) -> [usize; 4] {
    let cores = store.columns().snap_cores;
    core_tier_counts_of(active.snaps().iter().map(|&k| cores[k]))
}

fn core_tier_counts_of(cores: impl Iterator<Item = u32>) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for c in cores {
        if let Some(tier) = core_tier(c) {
            let idx = CORE_TIERS
                .iter()
                .position(|&t| t == tier)
                .expect("tier in table");
            counts[idx] += 1;
        }
    }
    counts
}

/// Count hosts per per-core-memory tier in a population snapshot.
pub fn pcm_tier_counts(population: &[HostView], tol: f64) -> [usize; 7] {
    pcm_tier_counts_of(population.iter().map(|v| v.memory_per_core_mb()), tol)
}

/// Count hosts per per-core-memory tier over an active set's columns,
/// without materialising host views.
pub fn pcm_tier_counts_columnar<S: TraceSource + ?Sized>(
    store: &S,
    active: &ActiveSet,
    tol: f64,
) -> [usize; 7] {
    pcm_tier_counts_of(store.column(active, ResourceColumn::MemPerCore).iter(), tol)
}

fn pcm_tier_counts_of(pcm_values: impl Iterator<Item = f64>, tol: f64) -> [usize; 7] {
    let mut counts = [0usize; 7];
    for pcm in pcm_values {
        if let Some(tier) = pcm_tier(pcm, tol) {
            let idx = PCM_TIERS_MB
                .iter()
                .position(|&t| t == tier)
                .expect("tier in table");
            counts[idx] += 1;
        }
    }
    counts
}

/// Fraction of hosts per core tier at `date` (Fig 4 series).
pub fn core_fractions(trace: &Trace, date: SimDate) -> [f64; 4] {
    let counts = core_tier_counts(&trace.population_at(date));
    let total: usize = counts.iter().sum();
    let mut out = [0.0; 4];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(&counts) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

/// Fraction of hosts per per-core-memory tier at `date` (Fig 7 series).
pub fn pcm_fractions(trace: &Trace, date: SimDate, tol: f64) -> [f64; 7] {
    let counts = pcm_tier_counts(&trace.population_at(date), tol);
    let total: usize = counts.iter().sum();
    let mut out = [0.0; 7];
    if total > 0 {
        for (o, &c) in out.iter_mut().zip(&counts) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

/// Fit the ratio series `counts[i]/counts[i+1]` over `dates` to an
/// exponential law, for each adjacent pair of a tier chain.
fn fit_ratio_chain<const N: usize>(
    per_date_counts: &[[usize; N]],
    dates: &[SimDate],
    label_of: impl Fn(usize) -> String,
) -> crate::Result<Vec<LawRow>> {
    let mut rows = Vec::with_capacity(N - 1);
    for i in 0..N - 1 {
        let mut ts = Vec::new();
        let mut ratios = Vec::new();
        for (date, counts) in dates.iter().zip(per_date_counts) {
            if counts[i] > 0 && counts[i + 1] > 0 {
                ts.push(date.years_since_2006());
                ratios.push(counts[i] as f64 / counts[i + 1] as f64);
            }
        }
        if ts.len() < 2 {
            return Err(StatsError::EmptyData {
                what: "ratio-law fit (too few dates with both tiers populated)",
                needed: 2,
                got: ts.len(),
            });
        }
        rows.push(LawRow {
            label: label_of(i),
            fit: exp_law_fit(&ts, &ratios)?,
        });
    }
    Ok(rows)
}

/// Resolve the active population of every sample date once — the
/// shared index sets all per-resource extractions below reuse.
pub fn resolve_active_sets<S: TraceSource + ?Sized>(
    store: &S,
    dates: &[SimDate],
) -> Vec<ActiveSet> {
    dates.iter().map(|&d| store.active_at(d)).collect()
}

/// Fit the paper's Table IV core-ratio laws from pre-resolved active
/// sets over a columnar store.
///
/// # Errors
///
/// Fails when fewer than two sample dates have both tiers of some pair
/// populated.
pub fn fit_core_laws_columnar<S: TraceSource + ?Sized>(
    store: &S,
    actives: &[ActiveSet],
) -> crate::Result<Vec<LawRow>> {
    let dates: Vec<SimDate> = actives.iter().map(|a| a.date()).collect();
    let counts: Vec<[usize; 4]> = actives
        .iter()
        .map(|a| core_tier_counts_columnar(store, a))
        .collect();
    fit_ratio_chain(&counts, &dates, |i| {
        format!("{}:{} Core Ratio", CORE_TIERS[i], CORE_TIERS[i + 1])
    })
}

/// Fit the paper's Table IV core-ratio laws from a row trace — the
/// genuine row-scan implementation, kept as the reference the columnar
/// path is verified against (bitwise-identical results).
///
/// # Errors
///
/// Same conditions as [`fit_core_laws_columnar`].
pub fn fit_core_laws(trace: &Trace, dates: &[SimDate]) -> crate::Result<Vec<LawRow>> {
    let counts: Vec<[usize; 4]> = dates
        .iter()
        .map(|&d| core_tier_counts(&trace.population_at(d)))
        .collect();
    fit_ratio_chain(&counts, dates, |i| {
        format!("{}:{} Core Ratio", CORE_TIERS[i], CORE_TIERS[i + 1])
    })
}

/// Fit the paper's Table V per-core-memory ratio laws from pre-resolved
/// active sets over a columnar store.
///
/// # Errors
///
/// Same conditions as [`fit_core_laws_columnar`].
pub fn fit_pcm_laws_columnar<S: TraceSource + ?Sized>(
    store: &S,
    actives: &[ActiveSet],
    tol: f64,
) -> crate::Result<Vec<LawRow>> {
    let dates: Vec<SimDate> = actives.iter().map(|a| a.date()).collect();
    let counts: Vec<[usize; 7]> = actives
        .iter()
        .map(|a| pcm_tier_counts_columnar(store, a, tol))
        .collect();
    fit_ratio_chain(&counts, &dates, |i| {
        format!(
            "{}MB:{}MB Ratio",
            PCM_TIERS_MB[i] as u32,
            PCM_TIERS_MB[i + 1] as u32
        )
    })
}

/// Fit the paper's Table V per-core-memory ratio laws from a row trace
/// — the genuine row-scan reference implementation.
///
/// # Errors
///
/// Same conditions as [`fit_core_laws`].
pub fn fit_pcm_laws(trace: &Trace, dates: &[SimDate], tol: f64) -> crate::Result<Vec<LawRow>> {
    let counts: Vec<[usize; 7]> = dates
        .iter()
        .map(|&d| pcm_tier_counts(&trace.population_at(d), tol))
        .collect();
    fit_ratio_chain(&counts, dates, |i| {
        format!(
            "{}MB:{}MB Ratio",
            PCM_TIERS_MB[i] as u32,
            PCM_TIERS_MB[i + 1] as u32
        )
    })
}

/// Fit the paper's Table VI moment laws (Whetstone/Dhrystone/disk mean
/// and variance) from pre-resolved active sets over a columnar store.
/// The means and variances are accumulated straight off the column
/// views — no per-(date, resource) `Vec<f64>` is materialised.
///
/// # Errors
///
/// Fails when any sample date has an empty population.
pub fn fit_moment_laws_columnar<S: TraceSource + ?Sized>(
    store: &S,
    actives: &[ActiveSet],
) -> crate::Result<Vec<LawRow>> {
    let columns = [
        (ResourceColumn::Dhrystone, "Dhrystone"),
        (ResourceColumn::Whetstone, "Whetstone"),
        (ResourceColumn::Disk, "Disk Space"),
    ];
    let mut rows = Vec::with_capacity(6);
    for (col, name) in columns {
        let mut ts = Vec::new();
        let mut means = Vec::new();
        let mut vars = Vec::new();
        for active in actives {
            if active.is_empty() {
                return Err(StatsError::EmptyData {
                    what: "moment-law fit (empty population at a sample date)",
                    needed: 1,
                    got: 0,
                });
            }
            let mv = mean_variance(store.column(active, col).iter())?;
            ts.push(active.date().years_since_2006());
            means.push(mv.mean);
            vars.push(mv.variance);
        }
        rows.push(LawRow {
            label: format!("{name} Mean"),
            fit: exp_law_fit(&ts, &means)?,
        });
        rows.push(LawRow {
            label: format!("{name} Variance"),
            fit: exp_law_fit(&ts, &vars)?,
        });
    }
    Ok(rows)
}

/// Fit the paper's Table VI moment laws from a row trace — the genuine
/// row-scan reference implementation.
///
/// # Errors
///
/// Same conditions as [`fit_moment_laws_columnar`].
pub fn fit_moment_laws(trace: &Trace, dates: &[SimDate]) -> crate::Result<Vec<LawRow>> {
    let columns = [
        (ResourceColumn::Dhrystone, "Dhrystone"),
        (ResourceColumn::Whetstone, "Whetstone"),
        (ResourceColumn::Disk, "Disk Space"),
    ];
    let mut rows = Vec::with_capacity(6);
    for (col, name) in columns {
        let mut ts = Vec::new();
        let mut means = Vec::new();
        let mut vars = Vec::new();
        for &d in dates {
            let data = trace.column_at(d, col);
            if data.is_empty() {
                return Err(StatsError::EmptyData {
                    what: "moment-law fit (empty population at a sample date)",
                    needed: 1,
                    got: 0,
                });
            }
            let s = Summary::of(&data)?;
            ts.push(d.years_since_2006());
            means.push(s.mean);
            vars.push(s.variance);
        }
        rows.push(LawRow {
            label: format!("{name} Mean"),
            fit: exp_law_fit(&ts, &means)?,
        });
        rows.push(LawRow {
            label: format!("{name} Variance"),
            fit: exp_law_fit(&ts, &vars)?,
        });
    }
    Ok(rows)
}

/// The 6×6 resource correlation matrix over one active set (Table III,
/// column order [`ResourceColumn::ALL`]): six zero-copy column views
/// feed the pairwise Pearson accumulations directly, with no
/// intermediate `Vec<f64>` per column.
///
/// # Errors
///
/// Fails when the population is too small or a column is constant.
pub fn correlation_at_columnar<S: TraceSource + ?Sized>(
    store: &S,
    active: &ActiveSet,
) -> crate::Result<Matrix> {
    let views: Vec<_> = ResourceColumn::ALL
        .iter()
        .map(|&c| store.column(active, c).iter())
        .collect();
    correlation_matrix_iter(&views)
}

/// The 6×6 resource correlation matrix at one date of a row trace —
/// the genuine row-scan reference implementation.
///
/// # Errors
///
/// Same conditions as [`correlation_at_columnar`].
pub fn correlation_at(trace: &Trace, date: SimDate) -> crate::Result<Matrix> {
    let pop = trace.population_at(date);
    let cols: Vec<Vec<f64>> = ResourceColumn::ALL
        .iter()
        .map(|c| pop.iter().map(|v| c.extract(v)).collect())
        .collect();
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    resmodel_stats::correlation::correlation_matrix(&refs)
}

/// Average of the per-date correlation matrices — the pipeline's
/// Table III estimate (avoids trend-induced inflation that pooling
/// across years would introduce).
///
/// # Errors
///
/// Propagates [`correlation_at_columnar`] failures.
pub fn average_correlation_columnar<S: TraceSource + ?Sized>(
    store: &S,
    actives: &[ActiveSet],
) -> crate::Result<Matrix> {
    if actives.is_empty() {
        return Err(StatsError::EmptyData {
            what: "average_correlation",
            needed: 1,
            got: 0,
        });
    }
    let mut acc = Matrix::new(6, 6);
    for active in actives {
        let m = correlation_at_columnar(store, active)?;
        for i in 0..6 {
            for j in 0..6 {
                acc.set(i, j, acc.get(i, j) + m.get(i, j) / actives.len() as f64);
            }
        }
    }
    Ok(acc)
}

/// Average per-date correlation matrix of a row trace — the genuine
/// row-scan reference implementation.
///
/// # Errors
///
/// Same conditions as [`average_correlation_columnar`].
pub fn average_correlation(trace: &Trace, dates: &[SimDate]) -> crate::Result<Matrix> {
    if dates.is_empty() {
        return Err(StatsError::EmptyData {
            what: "average_correlation",
            needed: 1,
            got: 0,
        });
    }
    let mut acc = Matrix::new(6, 6);
    for &d in dates {
        let m = correlation_at(trace, d)?;
        for i in 0..6 {
            for j in 0..6 {
                acc.set(i, j, acc.get(i, j) + m.get(i, j) / dates.len() as f64);
            }
        }
    }
    Ok(acc)
}

/// Indices of (Mem/Core, Whet, Dhry) within [`ResourceColumn::ALL`].
const MODEL_CORR_IDX: [usize; 3] = [2, 3, 4];

/// Extract the 3×3 (mem/core, whet, dhry) submatrix the generator
/// correlates (Section V-F).
pub fn model_correlation(full: &Matrix) -> Matrix {
    let mut m = Matrix::new(3, 3);
    for (i, &a) in MODEL_CORR_IDX.iter().enumerate() {
        for (j, &b) in MODEL_CORR_IDX.iter().enumerate() {
            m.set(i, j, full.get(a, b));
        }
    }
    m
}

/// Run the complete pipeline against any [`TraceSource`] backend (heap
/// columnar store or file-mapped trace): resolve every sample date's
/// active population **once**, fit every law off the shared column
/// views, and assemble a [`HostModel`].
///
/// # Errors
///
/// Propagates any individual fit failure (empty populations, degenerate
/// ratio series, non-positive-definite correlations).
pub fn fit_host_model_columnar<S: TraceSource + ?Sized>(
    store: &S,
    config: &FitConfig,
) -> crate::Result<FitReport> {
    let actives = resolve_active_sets(store, &config.sample_dates);
    let core_laws = fit_core_laws_columnar(store, &actives)?;
    let pcm_laws = fit_pcm_laws_columnar(store, &actives, config.pcm_tolerance)?;
    let moment_laws = fit_moment_laws_columnar(store, &actives)?;
    let correlation = average_correlation_columnar(store, &actives)?;
    assemble_fit_report(core_laws, pcm_laws, moment_laws, correlation)
}

/// Run the complete pipeline with genuine row scans — the reference
/// implementation [`crate::fit::fit_host_model_columnar`] is verified
/// against (the pipeline's `DataPath::Row` runs this; reports must be
/// byte-identical).
///
/// # Errors
///
/// Same conditions as [`fit_host_model_columnar`].
pub fn fit_host_model_rows(trace: &Trace, config: &FitConfig) -> crate::Result<FitReport> {
    let dates = &config.sample_dates;
    let core_laws = fit_core_laws(trace, dates)?;
    let pcm_laws = fit_pcm_laws(trace, dates, config.pcm_tolerance)?;
    let moment_laws = fit_moment_laws(trace, dates)?;
    let correlation = average_correlation(trace, dates)?;
    assemble_fit_report(core_laws, pcm_laws, moment_laws, correlation)
}

/// Assemble the generative [`HostModel`] from the four fitted pieces —
/// shared by the row and columnar entry points.
fn assemble_fit_report(
    core_laws: Vec<LawRow>,
    pcm_laws: Vec<LawRow>,
    moment_laws: Vec<LawRow>,
    correlation: Matrix,
) -> crate::Result<FitReport> {
    let cores = DiscreteRatioModel::new(
        CORE_TIERS.to_vec(),
        core_laws.iter().map(|r| RatioLaw::from(r.fit)).collect(),
    )?;
    let pcm = DiscreteRatioModel::new(
        PCM_TIERS_MB.to_vec(),
        pcm_laws.iter().map(|r| RatioLaw::from(r.fit)).collect(),
    )?;

    let law = |label: &str| -> MomentLaw {
        let row = moment_laws
            .iter()
            .find(|r| r.label == label)
            .expect("all six moment rows are generated above");
        MomentLaw::new(row.fit.a, row.fit.b)
    };

    let model = HostModel::new(
        cores,
        pcm,
        &model_correlation(&correlation),
        law("Whetstone Mean"),
        law("Whetstone Variance"),
        law("Dhrystone Mean"),
        law("Dhrystone Variance"),
        law("Disk Space Mean"),
        law("Disk Space Variance"),
    )?;

    Ok(FitReport {
        model,
        core_laws,
        pcm_laws,
        moment_laws,
        correlation,
    })
}

/// Run the complete pipeline from a row trace: one columnar conversion
/// followed by [`fit_host_model_columnar`].
///
/// # Errors
///
/// Same conditions as [`fit_host_model_columnar`].
pub fn fit_host_model(trace: &Trace, config: &FitConfig) -> crate::Result<FitReport> {
    fit_host_model_columnar(&ColumnarTrace::from(trace), config)
}

/// Fit the host-lifetime Weibull (Fig 1), applying the paper's
/// censoring rule at `created_cutoff`.
///
/// # Errors
///
/// Fails when the censored lifetime sample is too small or degenerate.
pub fn lifetime_weibull(trace: &Trace, created_cutoff: SimDate) -> crate::Result<Weibull> {
    Weibull::fit_mle(&trace.lifetimes(created_cutoff))
}

/// [`lifetime_weibull`] off a columnar store's cached contact columns.
///
/// # Errors
///
/// Same conditions as [`lifetime_weibull`].
pub fn lifetime_weibull_columnar<S: TraceSource + ?Sized>(
    store: &S,
    created_cutoff: SimDate,
) -> crate::Result<Weibull> {
    Weibull::fit_mle(&store.lifetimes(created_cutoff))
}

/// Rank the seven candidate distribution families for one resource
/// column at one date using the paper's subsampled KS procedure.
///
/// # Errors
///
/// Fails when the population at `date` is empty.
pub fn select_resource_family(
    trace: &Trace,
    date: SimDate,
    column: ResourceColumn,
    config: SubsampleConfig,
    rng: &mut dyn Rng,
) -> crate::Result<Vec<FamilyScore>> {
    let data = trace.column_at(date, column);
    select_family(&data, &DistributionFamily::ALL, config, rng)
}

/// [`select_resource_family`] over a pre-resolved active set. The KS
/// subsampler needs random indexing, so this is the one extraction
/// that still gathers the column into a `Vec`.
///
/// # Errors
///
/// Fails when the active set is empty.
pub fn select_resource_family_columnar<S: TraceSource + ?Sized>(
    store: &S,
    active: &ActiveSet,
    column: ResourceColumn,
    config: SubsampleConfig,
    rng: &mut dyn Rng,
) -> crate::Result<Vec<FamilyScore>> {
    let data = store.column_values(active, column);
    select_family(&data, &DistributionFamily::ALL, config, rng)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generator::HostGenerator;
    use resmodel_trace::{HostRecord, ResourceSnapshot};

    /// Build a synthetic trace by sampling the paper model itself at a
    /// range of dates — the fitting pipeline should then approximately
    /// recover the paper's constants (closed loop).
    fn model_trace(hosts_per_year: usize) -> Trace {
        let model = HostModel::paper();
        let mut trace = Trace::new();
        let mut id = 0u64;
        for year in 2006..=2010 {
            let date = SimDate::from_year(year as f64);
            for h in model.generate_population(date, hosts_per_year, year as u64) {
                let mut rec = HostRecord::new(id.into(), date + -30.0);
                // Active exactly around the sample date.
                for dt in [-10.0, 10.0] {
                    rec.record(ResourceSnapshot {
                        t: date + dt,
                        cores: h.cores,
                        memory_mb: h.memory_mb,
                        whetstone_mips: h.whetstone_mips,
                        dhrystone_mips: h.dhrystone_mips,
                        avail_disk_gb: h.avail_disk_gb,
                        total_disk_gb: h.avail_disk_gb * 2.0,
                    });
                }
                trace.push(rec);
                id += 1;
            }
        }
        trace
    }

    #[test]
    fn tier_snapping() {
        assert_eq!(core_tier(1), Some(1.0));
        assert_eq!(core_tier(3), Some(2.0));
        assert_eq!(core_tier(6), Some(4.0));
        assert_eq!(core_tier(12), Some(8.0));
        assert_eq!(core_tier(16), None);
        assert_eq!(core_tier(0), None);

        assert_eq!(pcm_tier(512.0, 0.15), Some(512.0));
        assert_eq!(pcm_tier(540.0, 0.15), Some(512.0));
        assert_eq!(pcm_tier(1280.0, 0.15), None);
        assert_eq!(pcm_tier(4000.0, 0.15), Some(4096.0));
    }

    #[test]
    fn fractions_sum_to_one_on_model_trace() {
        let trace = model_trace(400);
        let f = core_fractions(&trace, SimDate::from_year(2008.0));
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let pf = pcm_fractions(&trace, SimDate::from_year(2008.0), 0.15);
        assert!((pf.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_recovers_paper_core_laws() {
        let trace = model_trace(3000);
        let rows = fit_core_laws(&trace, &FitConfig::default().sample_dates).unwrap();
        assert_eq!(rows.len(), 3);
        // 1:2 core ratio: a = 3.369, b = −0.5004.
        let r12 = &rows[0];
        assert!((r12.fit.a - 3.369).abs() / 3.369 < 0.15, "a {}", r12.fit.a);
        assert!((r12.fit.b + 0.5004).abs() < 0.12, "b {}", r12.fit.b);
        assert!(r12.fit.r < -0.9, "r {}", r12.fit.r);
    }

    #[test]
    fn pipeline_recovers_moment_laws() {
        let trace = model_trace(2000);
        let rows = fit_moment_laws(&trace, &FitConfig::default().sample_dates).unwrap();
        assert_eq!(rows.len(), 6);
        let dmean = rows.iter().find(|r| r.label == "Dhrystone Mean").unwrap();
        assert!(
            (dmean.fit.a - 2064.0).abs() / 2064.0 < 0.05,
            "a {}",
            dmean.fit.a
        );
        assert!((dmean.fit.b - 0.1709).abs() < 0.03, "b {}", dmean.fit.b);
        let kmean = rows.iter().find(|r| r.label == "Disk Space Mean").unwrap();
        assert!(
            (kmean.fit.a - 31.59).abs() / 31.59 < 0.1,
            "a {}",
            kmean.fit.a
        );
        assert!((kmean.fit.b - 0.2691).abs() < 0.05, "b {}", kmean.fit.b);
    }

    #[test]
    fn full_pipeline_produces_generating_model() {
        let trace = model_trace(1500);
        let report = fit_host_model(&trace, &FitConfig::default()).unwrap();
        assert_eq!(report.core_laws.len(), 3);
        assert_eq!(report.pcm_laws.len(), 6);
        assert_eq!(report.moment_laws.len(), 6);
        // The refitted model must generate valid hosts.
        let mut rng = resmodel_stats::rng::seeded(4);
        let h = report
            .model
            .generate_host(SimDate::from_year(2010.0), &mut rng);
        assert!(h.cores >= 1 && h.memory_mb > 0.0);
        // Correlations should echo the paper's structure.
        let c = &report.correlation;
        assert!(c.get(0, 1) > 0.4, "cores-mem r {}", c.get(0, 1));
        assert!(c.get(3, 4) > 0.4, "whet-dhry r {}", c.get(3, 4));
        assert!(c.get(5, 0).abs() < 0.1, "disk-cores r {}", c.get(5, 0));
    }

    #[test]
    fn correlation_matrix_structure() {
        let trace = model_trace(800);
        let m = correlation_at(&trace, SimDate::from_year(2009.0)).unwrap();
        assert_eq!(m.rows(), 6);
        for i in 0..6 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-9);
        }
        let sub = model_correlation(&m);
        assert_eq!(sub.rows(), 3);
        assert!((sub.get(1, 2) - m.get(3, 4)).abs() < 1e-12);
    }

    #[test]
    fn errors_on_empty_trace() {
        let empty = Trace::new();
        assert!(fit_core_laws(&empty, &FitConfig::default().sample_dates).is_err());
        assert!(fit_host_model(&empty, &FitConfig::default()).is_err());
        assert!(fit_host_model_rows(&empty, &FitConfig::default()).is_err());
    }

    #[test]
    fn row_and_columnar_fits_are_identical() {
        let trace = model_trace(800);
        let config = FitConfig::default();
        let rows = fit_host_model_rows(&trace, &config).unwrap();
        let columnar = fit_host_model(&trace, &config).unwrap();
        // Full-report equality through the serialized form (HostModel
        // has no PartialEq): the reference row scans and the columnar
        // gathers must agree bitwise.
        assert_eq!(
            serde_json::to_string_pretty(&rows).unwrap(),
            serde_json::to_string_pretty(&columnar).unwrap()
        );
    }

    #[test]
    fn lifetime_fit_on_weibull_data() {
        use resmodel_stats::Distribution;
        let w = Weibull::new(0.58, 135.0).unwrap();
        let mut rng = resmodel_stats::rng::seeded(8);
        let mut trace = Trace::new();
        for i in 0..4000u64 {
            let start = SimDate::from_year(2006.0) + (i as f64 % 1000.0);
            let life = w.sample(&mut rng);
            let mut rec = HostRecord::new(i.into(), start);
            rec.record(ResourceSnapshot {
                t: start,
                cores: 1,
                memory_mb: 512.0,
                whetstone_mips: 1000.0,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 30.0,
                total_disk_gb: 60.0,
            });
            rec.record(ResourceSnapshot {
                t: start + life,
                cores: 1,
                memory_mb: 512.0,
                whetstone_mips: 1000.0,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 30.0,
                total_disk_gb: 60.0,
            });
            trace.push(rec);
        }
        let fit = lifetime_weibull(&trace, SimDate::from_year(2012.0)).unwrap();
        assert!((fit.shape() - 0.58).abs() < 0.05, "k {}", fit.shape());
        assert!(
            (fit.scale() - 135.0).abs() / 135.0 < 0.1,
            "λ {}",
            fit.scale()
        );
    }

    #[test]
    fn family_selection_on_model_trace() {
        let trace = model_trace(1200);
        let mut rng = resmodel_stats::rng::seeded(9);
        let ranked = select_resource_family(
            &trace,
            SimDate::from_year(2008.0),
            ResourceColumn::Disk,
            SubsampleConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(ranked[0].family, DistributionFamily::LogNormal);
    }
}
