//! The [`HostGenerator`] trait shared by the correlated model and the
//! baseline models, plus the [`GeneratedHost`] output record.

use rand::Rng;
use resmodel_stats::rng::seeded_substream;
use resmodel_trace::{HostView, SimDate};
use serde::{Deserialize, Serialize};

/// A synthetic host produced by a generative model — the five resources
/// of the paper's host model (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratedHost {
    /// Number of primary processing cores.
    pub cores: u32,
    /// Total memory, MB.
    pub memory_mb: f64,
    /// Whetstone (floating-point) speed per core, MIPS.
    pub whetstone_mips: f64,
    /// Dhrystone (integer) speed per core, MIPS.
    pub dhrystone_mips: f64,
    /// Available disk, GB.
    pub avail_disk_gb: f64,
}

impl GeneratedHost {
    /// Memory per core, MB.
    pub fn memory_per_core_mb(&self) -> f64 {
        self.memory_mb / self.cores.max(1) as f64
    }
}

impl From<&HostView> for GeneratedHost {
    /// Project a trace host view onto the five modelled resources.
    fn from(v: &HostView) -> Self {
        Self {
            cores: v.cores,
            memory_mb: v.memory_mb,
            whetstone_mips: v.whetstone_mips,
            dhrystone_mips: v.dhrystone_mips,
            avail_disk_gb: v.avail_disk_gb,
        }
    }
}

/// A generative model of host resources at a chosen date.
///
/// Implemented by the paper's correlated [`HostModel`](crate::HostModel)
/// and by the baseline models in `resmodel-baselines`; the utility
/// simulation treats all three uniformly through this trait.
pub trait HostGenerator {
    /// Short label for reports (e.g. `"correlated"`).
    fn label(&self) -> &'static str;

    /// Generate one host as of `date`.
    fn generate_host(&self, date: SimDate, rng: &mut dyn Rng) -> GeneratedHost;

    /// Generate a population of `n` hosts as of `date`, deterministically
    /// derived from `seed`.
    fn generate_population(&self, date: SimDate, n: usize, seed: u64) -> Vec<GeneratedHost> {
        let mut rng = seeded_substream(seed, date.days().to_bits());
        (0..n).map(|_| self.generate_host(date, &mut rng)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    struct ConstGen;

    impl HostGenerator for ConstGen {
        fn label(&self) -> &'static str {
            "const"
        }

        fn generate_host(&self, _date: SimDate, _rng: &mut dyn Rng) -> GeneratedHost {
            GeneratedHost {
                cores: 2,
                memory_mb: 2048.0,
                whetstone_mips: 1000.0,
                dhrystone_mips: 2000.0,
                avail_disk_gb: 50.0,
            }
        }
    }

    #[test]
    fn memory_per_core() {
        let h = GeneratedHost {
            cores: 4,
            memory_mb: 4096.0,
            whetstone_mips: 1.0,
            dhrystone_mips: 1.0,
            avail_disk_gb: 1.0,
        };
        assert_eq!(h.memory_per_core_mb(), 1024.0);
    }

    #[test]
    fn population_has_requested_size() {
        let pop = ConstGen.generate_population(SimDate::from_year(2010.0), 17, 1);
        assert_eq!(pop.len(), 17);
        assert_eq!(pop[0].cores, 2);
    }

    #[test]
    fn from_host_view_projects_resources() {
        let v = HostView {
            id: 1.into(),
            cores: 8,
            memory_mb: 8192.0,
            whetstone_mips: 1500.0,
            dhrystone_mips: 3000.0,
            avail_disk_gb: 120.0,
            total_disk_gb: 500.0,
            os: resmodel_trace::OsFamily::Linux,
            cpu: resmodel_trace::CpuFamily::IntelXeon,
            gpu: None,
        };
        let g = GeneratedHost::from(&v);
        assert_eq!(g.cores, 8);
        assert_eq!(g.avail_disk_gb, 120.0);
    }
}
