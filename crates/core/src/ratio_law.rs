//! Exponential ratio laws and the discrete tier distributions they
//! induce (paper Sections V-D and V-E).
//!
//! The paper models discrete resources (core count, per-core memory) by
//! tracking the *ratio* of adjacent tiers over time: e.g. the number of
//! 1-core hosts per 2-core host follows `3.369·e^{−0.5004·(year−2006)}`.
//! Chaining the ratios from the largest tier down yields a full discrete
//! probability distribution at any date.

use resmodel_stats::regression::ExpLawFit;
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// One exponential ratio law `ratio(t) = a·e^{b·t}`, `t` in years since
/// 2006, describing the relative abundance of a *smaller* tier versus
/// the *next larger* tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioLaw {
    /// Ratio at the start of 2006.
    pub a: f64,
    /// Exponential rate per year (negative: the smaller tier loses
    /// share over time).
    pub b: f64,
}

impl RatioLaw {
    /// Create a law with the given constants.
    pub fn new(a: f64, b: f64) -> Self {
        Self { a, b }
    }

    /// Evaluate the ratio at `date`.
    pub fn ratio_at(&self, date: SimDate) -> f64 {
        self.a * (self.b * date.years_since_2006()).exp()
    }
}

impl From<ExpLawFit> for RatioLaw {
    fn from(fit: ExpLawFit) -> Self {
        Self { a: fit.a, b: fit.b }
    }
}

/// Largest tier count sampled without heap allocation (the paper's
/// models use 4 core tiers and 7 memory tiers).
pub const MAX_STACK_TIERS: usize = 16;

/// A discrete distribution over ordered tiers (core counts or per-core
/// memory sizes) whose shape at any date is determined by a chain of
/// [`RatioLaw`]s between adjacent tiers.
///
/// `laws[i]` is the ratio `count(values[i]) : count(values[i+1])`.
///
/// # Examples
///
/// ```
/// use resmodel_core::{DiscreteRatioModel, RatioLaw};
/// use resmodel_trace::SimDate;
///
/// // The paper's Table IV core model.
/// let cores = DiscreteRatioModel::new(
///     vec![1.0, 2.0, 4.0, 8.0],
///     vec![
///         RatioLaw::new(3.369, -0.5004),
///         RatioLaw::new(17.49, -0.3217),
///         RatioLaw::new(12.8, -0.2377),
///     ],
/// ).unwrap();
/// let p2006 = cores.probabilities(SimDate::from_year(2006.0));
/// assert!(p2006[0] > 0.7); // single-core dominates in 2006
/// let p2010 = cores.probabilities(SimDate::from_year(2010.0));
/// assert!(p2010[1] > p2010[0]); // 2-core overtakes by 2010
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteRatioModel {
    values: Vec<f64>,
    laws: Vec<RatioLaw>,
}

impl DiscreteRatioModel {
    /// Build a model from tier values (strictly increasing) and the
    /// `values.len() − 1` adjacent ratio laws.
    ///
    /// # Errors
    ///
    /// Returns [`resmodel_stats::StatsError::DimensionMismatch`] when
    /// the law count is not `values.len() − 1`, and
    /// [`resmodel_stats::StatsError::InvalidData`] when values are not
    /// strictly increasing or fewer than two tiers are given.
    pub fn new(values: Vec<f64>, laws: Vec<RatioLaw>) -> crate::Result<Self> {
        if values.len() < 2 {
            return Err(resmodel_stats::StatsError::InvalidData {
                constraint: "discrete ratio model needs at least two tiers",
            });
        }
        if laws.len() != values.len() - 1 {
            return Err(resmodel_stats::StatsError::DimensionMismatch {
                expected: format!("{} ratio laws for {} tiers", values.len() - 1, values.len()),
            });
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(resmodel_stats::StatsError::InvalidData {
                constraint: "tier values must be strictly increasing",
            });
        }
        Ok(Self { values, laws })
    }

    /// The tier values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The adjacent-tier ratio laws.
    pub fn laws(&self) -> &[RatioLaw] {
        &self.laws
    }

    /// Append a larger tier with the ratio law `previous_largest : new`.
    ///
    /// Used by the paper's prediction section, which extends the core
    /// model with an 8:16 law (`a = 12`, `b = −0.2`) before forecasting.
    ///
    /// # Errors
    ///
    /// Returns [`resmodel_stats::StatsError::InvalidData`] when `value`
    /// does not exceed the current largest tier.
    pub fn extended(&self, value: f64, law: RatioLaw) -> crate::Result<Self> {
        let mut values = self.values.clone();
        let mut laws = self.laws.clone();
        values.push(value);
        laws.push(law);
        Self::new(values, laws)
    }

    /// Tier probabilities at `date`.
    ///
    /// Computed by anchoring the largest tier at weight 1, walking the
    /// ratio chain downward, and normalising.
    pub fn probabilities(&self, date: SimDate) -> Vec<f64> {
        let mut weights = vec![0.0; self.values.len()];
        self.probabilities_into(date, &mut weights);
        weights
    }

    /// Write the tier probabilities at `date` into `out` (length must
    /// equal the tier count). The allocation-free core of
    /// [`DiscreteRatioModel::probabilities`] — hot loops (host
    /// generation, engine redraws) call this with a reused buffer.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.values().len()`.
    pub fn probabilities_into(&self, date: SimDate, out: &mut [f64]) {
        let n = self.values.len();
        assert_eq!(out.len(), n, "probability buffer has the tier count");
        out[n - 1] = 1.0;
        for i in (0..n - 1).rev() {
            out[i] = out[i + 1] * self.laws[i].ratio_at(date).max(0.0);
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for w in out.iter_mut() {
                *w /= total;
            }
        }
    }

    /// Expected tier value at `date`.
    pub fn mean_value(&self, date: SimDate) -> f64 {
        self.probabilities(date)
            .iter()
            .zip(&self.values)
            .map(|(p, v)| p * v)
            .sum()
    }

    /// Sample a tier value at `date` from a uniform draw `u ∈ [0, 1)`.
    ///
    /// Allocation-free for up to [`MAX_STACK_TIERS`] tiers (every model
    /// in the paper has ≤ 7): the probability chain is computed in a
    /// stack buffer with the exact operation order of
    /// [`DiscreteRatioModel::probabilities`], so the draw is bitwise
    /// identical to the allocating path.
    pub fn sample_with_uniform(&self, date: SimDate, u: f64) -> f64 {
        let n = self.values.len();
        if n <= MAX_STACK_TIERS {
            let mut buf = [0.0; MAX_STACK_TIERS];
            self.probabilities_into(date, &mut buf[..n]);
            return self.pick(&buf[..n], u);
        }
        self.pick(&self.probabilities(date), u)
    }

    pub(crate) fn pick(&self, probs: &[f64], u: f64) -> f64 {
        let mut acc = 0.0;
        for (p, &v) in probs.iter().zip(&self.values) {
            acc += p;
            if u < acc {
                return v;
            }
        }
        *self.values.last().expect("at least two tiers")
    }

    /// Fraction of probability mass at tiers `>= threshold` at `date`.
    pub fn fraction_at_least(&self, date: SimDate, threshold: f64) -> f64 {
        self.probabilities(date)
            .iter()
            .zip(&self.values)
            .filter(|(_, &v)| v >= threshold)
            .map(|(p, _)| p)
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn paper_cores() -> DiscreteRatioModel {
        DiscreteRatioModel::new(
            vec![1.0, 2.0, 4.0, 8.0],
            vec![
                RatioLaw::new(3.369, -0.5004),
                RatioLaw::new(17.49, -0.3217),
                RatioLaw::new(12.8, -0.2377),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ratio_law_evaluation() {
        let law = RatioLaw::new(3.369, -0.5004);
        assert!((law.ratio_at(SimDate::from_year(2006.0)) - 3.369).abs() < 1e-12);
        // By 2010 the 1:2 ratio should be inverted (paper: 1 to 2.5).
        let r2010 = law.ratio_at(SimDate::from_year(2010.0));
        assert!((r2010 - 3.369 * (-0.5004f64 * 4.0).exp()).abs() < 1e-12);
        assert!(r2010 < 0.5);
    }

    #[test]
    fn construction_validation() {
        assert!(DiscreteRatioModel::new(vec![1.0], vec![]).is_err());
        assert!(DiscreteRatioModel::new(vec![1.0, 2.0], vec![]).is_err());
        assert!(DiscreteRatioModel::new(vec![2.0, 1.0], vec![RatioLaw::new(1.0, 0.0)]).is_err());
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = paper_cores();
        for &y in &[2006.0, 2008.0, 2010.67, 2014.0] {
            let p = m.probabilities(SimDate::from_year(y));
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12, "year {y}");
            assert!(p.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn paper_2006_composition() {
        // Fig 4: in 2006 ~72-76% single core, ~22% dual core.
        let p = paper_cores().probabilities(SimDate::from_year(2006.0));
        assert!(p[0] > 0.70 && p[0] < 0.80, "P(1 core) = {}", p[0]);
        assert!(p[1] > 0.18 && p[1] < 0.27, "P(2 core) = {}", p[1]);
    }

    #[test]
    fn paper_2010_inversion() {
        // Paper: by 2010 the 1:2 ratio inverted to 1 to 2.5.
        let p = paper_cores().probabilities(SimDate::from_year(2010.0));
        let ratio = p[0] / p[1];
        assert!((ratio - 1.0 / 2.5).abs() < 0.1, "1:2 ratio {ratio}");
    }

    #[test]
    fn mean_cores_2014_matches_paper_prediction() {
        // Paper Section VI-C: average 4.6 cores per host in 2014 with
        // the 8:16 extension (a = 12, b = −0.2).
        let m = paper_cores()
            .extended(16.0, RatioLaw::new(12.0, -0.2))
            .unwrap();
        let mean = m.mean_value(SimDate::from_year(2014.0));
        assert!((mean - 4.6).abs() < 0.2, "mean cores {mean}");
    }

    #[test]
    fn extension_validates_ordering() {
        assert!(paper_cores()
            .extended(4.0, RatioLaw::new(1.0, 0.0))
            .is_err());
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let m = paper_cores();
        let d = SimDate::from_year(2006.0);
        let p = m.probabilities(d);
        assert_eq!(m.sample_with_uniform(d, 0.0), 1.0);
        assert_eq!(m.sample_with_uniform(d, p[0] + 0.01), 2.0);
        assert_eq!(m.sample_with_uniform(d, 0.9999999), 8.0);
    }

    #[test]
    fn fraction_at_least() {
        let m = paper_cores();
        let d = SimDate::from_year(2010.0);
        let p = m.probabilities(d);
        let f4 = m.fraction_at_least(d, 4.0);
        assert!((f4 - (p[2] + p[3])).abs() < 1e-12);
        assert!((m.fraction_at_least(d, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.fraction_at_least(d, 100.0), 0.0);
    }

    #[test]
    fn single_core_vanishes_by_2014() {
        // Paper Fig 13: single-core fraction becomes negligible.
        let m = paper_cores();
        let p = m.probabilities(SimDate::from_year(2014.0));
        assert!(p[0] < 0.05, "P(1 core in 2014) = {}", p[0]);
    }
}
