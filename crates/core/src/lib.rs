//! # resmodel-core
//!
//! The generative, correlated, time-evolving model of Internet end-host
//! resources from *"Correlated Resource Models of Internet End Hosts"*
//! (Heien, Kondo & Anderson, ICDCS 2011) — this crate is the paper's
//! primary contribution.
//!
//! ## The model in one paragraph
//!
//! A host has five resources: core count, memory, integer speed
//! (Dhrystone), floating-point speed (Whetstone) and available disk.
//! Core counts and per-core memory are discrete, governed by chains of
//! exponential *ratio laws* `a·e^{b(year−2006)}` between adjacent tiers
//! ([`ratio_law`]). Benchmark speeds are correlated normals — correlated
//! with each other and with per-core memory through a Cholesky factor of
//! the empirical correlation matrix — whose mean and variance follow
//! exponential growth laws. Available disk is an independent log-normal,
//! also with exponentially growing moments. [`HostModel`] packages all
//! of this; [`HostModel::paper`] ships the published Table X constants
//! and [`fit::fit_host_model`] re-derives them from any measurement
//! trace.
//!
//! ## Example
//!
//! ```
//! use resmodel_core::{HostGenerator, HostModel};
//! use resmodel_trace::SimDate;
//!
//! let model = HostModel::paper();
//! let mut rng = resmodel_stats::rng::seeded(7);
//! let host = model.generate_host(SimDate::from_year(2010.67), &mut rng);
//! assert!(host.cores.is_power_of_two());
//! assert!(host.memory_mb > 0.0 && host.avail_disk_gb > 0.0);
//! ```

#![warn(clippy::unwrap_used)]

pub mod fit;
pub mod generator;
pub mod gpu_model;
pub mod model;
pub mod persist;
pub mod predict;
pub mod ratio_law;
pub mod validate;

pub use generator::{GeneratedHost, HostGenerator};
pub use model::{HostModel, ModelSummaryRow};
pub use ratio_law::{DiscreteRatioModel, RatioLaw};

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, resmodel_stats::StatsError>;
