//! A generative GPU model — the paper's third future-work item ("the
//! use of GPUs for high performance computing is becoming common, so
//! with more data a GPU model could be developed as well").
//!
//! The paper had only one year of GPU records (Sep 2009 – Sep 2010,
//! Section V-H) and therefore excluded GPUs from its model. This module
//! builds the model the paper sketches: an exponential presence-growth
//! law, time-interpolated class shares, and a discrete GPU-memory tier
//! distribution governed by the same ratio-law machinery as host memory
//! — fittable from any trace with GPU records, and honest about the
//! short observation window (the `r` values of the fitted laws are
//! reported so users can judge the extrapolation risk).

use crate::ratio_law::RatioLaw;
use rand::{Rng, RngExt};
use resmodel_stats::regression::exp_law_fit;
use resmodel_stats::StatsError;
use resmodel_trace::{GpuClass, SimDate, Trace};
use serde::{Deserialize, Serialize};

/// GPU memory tiers (MB) observed in the paper's Fig 10.
pub const GPU_MEMORY_TIERS_MB: [f64; 7] = [128.0, 256.0, 512.0, 768.0, 1024.0, 1536.0, 2048.0];

/// A generated GPU: class and on-board memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratedGpu {
    /// Vendor/class.
    pub class: GpuClass,
    /// Memory, MB.
    pub memory_mb: f64,
}

/// The generative GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Presence law `p(t) = min(1, a·e^{b(year−2006)})` — fraction of
    /// hosts reporting a GPU.
    pub presence: RatioLaw,
    /// Per-class share laws (same exponential form, renormalised at
    /// evaluation).
    pub class_shares: Vec<(GpuClass, RatioLaw)>,
    /// Adjacent-tier memory ratio laws (tier i : tier i+1).
    pub memory_ratios: Vec<RatioLaw>,
    /// Goodness-of-fit `r` of the presence law (users should treat
    /// |r| far below 1 as a warning that the window was too short).
    pub presence_r: f64,
}

impl GpuModel {
    /// Fit from the GPU-bearing population snapshots of `trace` at
    /// `dates` (which must fall after GPU recording began, Sep 2009).
    ///
    /// # Errors
    ///
    /// Fails when fewer than two dates have any GPU-bearing hosts, or a
    /// law fit degenerates.
    pub fn fit(trace: &Trace, dates: &[SimDate]) -> Result<Self, StatsError> {
        let mut ts = Vec::new();
        let mut presence = Vec::new();
        let mut class_counts: Vec<[f64; 4]> = Vec::new();
        let mut tier_counts: Vec<[f64; 7]> = Vec::new();

        for &d in dates {
            let pop = trace.population_at(d);
            if pop.is_empty() {
                continue;
            }
            let gpus: Vec<_> = pop.iter().filter_map(|v| v.gpu).collect();
            if gpus.is_empty() {
                continue;
            }
            ts.push(d.years_since_2006());
            presence.push(gpus.len() as f64 / pop.len() as f64);
            let mut cc = [0.0; 4];
            for g in &gpus {
                let idx = GpuClass::ALL
                    .iter()
                    .position(|&c| c == g.class)
                    .expect("known class");
                cc[idx] += 1.0;
            }
            class_counts.push(cc);
            let mut tc = [0.0; 7];
            for g in &gpus {
                if let Some(idx) = GPU_MEMORY_TIERS_MB
                    .iter()
                    .position(|&t| (g.memory_mb - t).abs() / t < 0.15)
                {
                    tc[idx] += 1.0;
                }
            }
            tier_counts.push(tc);
        }

        if ts.len() < 2 {
            return Err(StatsError::EmptyData {
                what: "GpuModel::fit (needs ≥2 dates with GPU records)",
                needed: 2,
                got: ts.len(),
            });
        }

        let presence_fit = exp_law_fit(&ts, &presence)?;

        // Class-share laws: fit each class's share series; classes that
        // vanish at some date get a tiny floor so the log fit stays
        // defined.
        let mut class_shares = Vec::new();
        for (i, &class) in GpuClass::ALL.iter().enumerate() {
            let series: Vec<f64> = class_counts
                .iter()
                .map(|cc| {
                    let total: f64 = cc.iter().sum();
                    (cc[i] / total.max(1.0)).max(1e-4)
                })
                .collect();
            class_shares.push((class, RatioLaw::from(exp_law_fit(&ts, &series)?)));
        }

        // Memory ratio chain: pool sparse tiers with a floor of one
        // host so ratios stay finite at small scales.
        let mut memory_ratios = Vec::new();
        for i in 0..GPU_MEMORY_TIERS_MB.len() - 1 {
            let ratios: Vec<f64> = tier_counts
                .iter()
                .map(|tc| tc[i].max(0.5) / tc[i + 1].max(0.5))
                .collect();
            memory_ratios.push(RatioLaw::from(exp_law_fit(&ts, &ratios)?));
        }

        Ok(Self {
            presence: RatioLaw::new(presence_fit.a, presence_fit.b),
            class_shares,
            memory_ratios,
            presence_r: presence_fit.r,
        })
    }

    /// Fraction of hosts with a GPU at `date` (clamped to `[0, 1]`).
    pub fn presence_at(&self, date: SimDate) -> f64 {
        self.presence.ratio_at(date).clamp(0.0, 1.0)
    }

    /// Normalised class shares at `date`.
    pub fn class_shares_at(&self, date: SimDate) -> Vec<(GpuClass, f64)> {
        let mut weights = vec![0.0; self.class_shares.len()];
        self.class_weights_into(date, &mut weights);
        self.class_shares
            .iter()
            .zip(weights)
            .map(|((c, _), w)| (*c, w))
            .collect()
    }

    /// Normalised class weights in `class_shares` order, written into
    /// `out` — the allocation-free core of
    /// [`GpuModel::class_shares_at`], shared with the sampling hot
    /// path.
    fn class_weights_into(&self, date: SimDate, out: &mut [f64]) {
        for (w, (_, law)) in out.iter_mut().zip(&self.class_shares) {
            *w = law.ratio_at(date).max(0.0);
        }
        let total: f64 = out.iter().sum();
        for w in out.iter_mut() {
            *w = if total > 0.0 { *w / total } else { 0.0 };
        }
    }

    /// GPU-memory tier probabilities at `date`.
    pub fn memory_probabilities(&self, date: SimDate) -> Vec<f64> {
        let mut w = vec![0.0; GPU_MEMORY_TIERS_MB.len()];
        self.memory_probabilities_into(date, &mut w);
        w
    }

    /// Tier probabilities written into `out` (length
    /// `GPU_MEMORY_TIERS_MB.len()`) — the allocation-free core of
    /// [`GpuModel::memory_probabilities`], shared with the sampling
    /// hot path.
    fn memory_probabilities_into(&self, date: SimDate, out: &mut [f64]) {
        let n = out.len();
        out[n - 1] = 1.0;
        for i in (0..n - 1).rev() {
            out[i] = out[i + 1] * self.memory_ratios[i].ratio_at(date).max(0.0);
        }
        let total: f64 = out.iter().sum();
        if total > 0.0 {
            for x in out.iter_mut() {
                *x /= total;
            }
        }
    }

    /// Expected GPU memory at `date`, MB.
    pub fn mean_memory_mb(&self, date: SimDate) -> f64 {
        self.memory_probabilities(date)
            .iter()
            .zip(&GPU_MEMORY_TIERS_MB)
            .map(|(p, v)| p * v)
            .sum()
    }

    /// Sample a host's GPU at `date`: `None` when the host has no GPU.
    pub fn sample(&self, date: SimDate, rng: &mut dyn Rng) -> Option<GeneratedGpu> {
        if rng.random::<f64>() >= self.presence_at(date) {
            return None;
        }
        // Class and memory-tier weights are computed in stack buffers
        // by the same `_into` helpers that back the public accessors —
        // this path runs for every GPU-equipped host the engine
        // materialises. A model with more classes than the stack
        // buffer (never the paper's) falls back to a scratch `Vec`.
        let nc = self.class_shares.len();
        let mut class_stack = [0.0; 16];
        let mut class_heap;
        let shares: &mut [f64] = if nc <= class_stack.len() {
            &mut class_stack[..nc]
        } else {
            class_heap = vec![0.0; nc];
            &mut class_heap
        };
        self.class_weights_into(date, shares);
        let mut u = rng.random::<f64>();
        let mut class = self
            .class_shares
            .last()
            .map(|(c, _)| *c)
            .unwrap_or(GpuClass::GeForce);
        for (&share, (c, _)) in shares.iter().zip(&self.class_shares) {
            if u < share {
                class = *c;
                break;
            }
            u -= share;
        }
        // Memory tier.
        let mut probs = [0.0; GPU_MEMORY_TIERS_MB.len()];
        self.memory_probabilities_into(date, &mut probs);
        let mut v = rng.random::<f64>();
        let mut memory_mb = *GPU_MEMORY_TIERS_MB.last().expect("non-empty tier table");
        for (p, &tier) in probs.iter().zip(&GPU_MEMORY_TIERS_MB) {
            if v < *p {
                memory_mb = tier;
                break;
            }
            v -= p;
        }
        Some(GeneratedGpu { class, memory_mb })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::rng::seeded;
    use resmodel_trace::{GpuInfo, HostRecord, ResourceSnapshot};

    /// Build a toy trace with GPU penetration growing 10% → 30% over
    /// 2009.75–2010.6, GeForce share shrinking, memory growing.
    fn gpu_trace() -> Trace {
        let mut trace = Trace::new();
        let mut rng = seeded(100);
        let mut id = 0u64;
        for q in 0..4 {
            let year = 2009.75 + q as f64 * 0.3;
            let date = SimDate::from_year(year);
            let presence = 0.10 + 0.07 * q as f64;
            for i in 0..800u64 {
                let mut h = HostRecord::new(id.into(), date + -20.0);
                id += 1;
                for dt in [-10.0, 10.0] {
                    h.record(ResourceSnapshot {
                        t: date + dt,
                        cores: 2,
                        memory_mb: 2048.0,
                        whetstone_mips: 1500.0,
                        dhrystone_mips: 3000.0,
                        avail_disk_gb: 60.0,
                        total_disk_gb: 120.0,
                    });
                }
                use rand::RngExt;
                if (i as f64 / 800.0) < presence {
                    let class = if rng.random::<f64>() < 0.8 - 0.05 * q as f64 {
                        GpuClass::GeForce
                    } else {
                        GpuClass::Radeon
                    };
                    let memory_mb = if rng.random::<f64>() < 0.2 + 0.1 * q as f64 {
                        1024.0
                    } else {
                        512.0
                    };
                    h.gpu = Some(GpuInfo {
                        class,
                        memory_mb,
                        since: date + -10.0,
                    });
                }
                trace.push(h);
            }
        }
        trace
    }

    fn quarterly_dates() -> Vec<SimDate> {
        (0..4)
            .map(|q| SimDate::from_year(2009.75 + q as f64 * 0.3))
            .collect()
    }

    #[test]
    fn fit_recovers_presence_growth() {
        let model = GpuModel::fit(&gpu_trace(), &quarterly_dates()).unwrap();
        let p_start = model.presence_at(SimDate::from_year(2009.75));
        let p_end = model.presence_at(SimDate::from_year(2010.65));
        assert!((p_start - 0.10).abs() < 0.03, "start {p_start}");
        assert!((p_end - 0.31).abs() < 0.06, "end {p_end}");
        assert!(
            model.presence_r > 0.9,
            "presence fit r {}",
            model.presence_r
        );
    }

    #[test]
    fn class_shares_shift() {
        let model = GpuModel::fit(&gpu_trace(), &quarterly_dates()).unwrap();
        let share = |y: f64, c: GpuClass| {
            model
                .class_shares_at(SimDate::from_year(y))
                .into_iter()
                .find(|(k, _)| *k == c)
                .unwrap()
                .1
        };
        assert!(share(2009.75, GpuClass::GeForce) > share(2010.65, GpuClass::GeForce));
        assert!(share(2010.65, GpuClass::Radeon) > share(2009.75, GpuClass::Radeon));
        let total: f64 = model
            .class_shares_at(SimDate::from_year(2010.2))
            .iter()
            .map(|(_, w)| w)
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_distribution_grows() {
        let model = GpuModel::fit(&gpu_trace(), &quarterly_dates()).unwrap();
        let m_start = model.mean_memory_mb(SimDate::from_year(2009.75));
        let m_end = model.mean_memory_mb(SimDate::from_year(2010.65));
        assert!(m_end > m_start, "memory should grow: {m_start} → {m_end}");
        let probs = model.memory_probabilities(SimDate::from_year(2010.0));
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_respects_presence() {
        let model = GpuModel::fit(&gpu_trace(), &quarterly_dates()).unwrap();
        let mut rng = seeded(7);
        let date = SimDate::from_year(2010.5);
        let n = 20_000;
        let with_gpu = (0..n)
            .filter(|_| model.sample(date, &mut rng).is_some())
            .count();
        let frac = with_gpu as f64 / n as f64;
        let expect = model.presence_at(date);
        assert!(
            (frac - expect).abs() < 0.02,
            "sampled {frac} vs law {expect}"
        );
    }

    #[test]
    fn sampled_gpus_use_known_tiers() {
        let model = GpuModel::fit(&gpu_trace(), &quarterly_dates()).unwrap();
        let mut rng = seeded(8);
        let date = SimDate::from_year(2010.3);
        for _ in 0..2000 {
            if let Some(g) = model.sample(date, &mut rng) {
                assert!(GPU_MEMORY_TIERS_MB.contains(&g.memory_mb));
                assert!(GpuClass::ALL.contains(&g.class));
            }
        }
    }

    #[test]
    fn fit_rejects_gpu_free_trace() {
        let mut trace = Trace::new();
        let mut h = HostRecord::new(1.into(), SimDate::from_year(2008.0));
        h.record(ResourceSnapshot {
            t: SimDate::from_year(2008.1),
            cores: 1,
            memory_mb: 512.0,
            whetstone_mips: 1000.0,
            dhrystone_mips: 2000.0,
            avail_disk_gb: 30.0,
            total_disk_gb: 60.0,
        });
        trace.push(h);
        assert!(GpuModel::fit(&trace, &[SimDate::from_year(2008.1)]).is_err());
    }
}
