//! Model-based prediction of future host composition (paper Section
//! VI-C, Figs 13 and 14).

use crate::model::HostModel;
use crate::ratio_law::RatioLaw;
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// The paper's extension of the core chain for forecasting: the 8:16
/// ratio estimated as `a = 12`, `b = −0.2`.
pub fn paper_16_core_extension() -> (f64, RatioLaw) {
    (16.0, RatioLaw::new(12.0, -0.2))
}

/// Predicted multicore mix at one date (Fig 13's series: exact 1-core
/// fraction plus cumulative ≥2/≥4/≥8/≥16 fractions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MulticorePrediction {
    /// Prediction date.
    pub date: SimDate,
    /// Fraction of single-core hosts.
    pub one_core: f64,
    /// Fraction with at least 2 cores.
    pub at_least_2: f64,
    /// Fraction with at least 4 cores.
    pub at_least_4: f64,
    /// Fraction with at least 8 cores.
    pub at_least_8: f64,
    /// Fraction with at least 16 cores.
    pub at_least_16: f64,
    /// Expected cores per host.
    pub mean_cores: f64,
}

/// Predict the multicore mix over `dates` using `model` extended with
/// the paper's 16-core tier.
///
/// # Errors
///
/// Propagates tier-extension validation (fails if the model already has
/// a ≥16-core tier).
pub fn multicore_prediction(
    model: &HostModel,
    dates: &[SimDate],
) -> crate::Result<Vec<MulticorePrediction>> {
    let (tier, law) = paper_16_core_extension();
    let extended = model.with_extended_cores(tier, law)?;
    let cores = extended.cores();
    Ok(dates
        .iter()
        .map(|&date| {
            let p = cores.probabilities(date);
            MulticorePrediction {
                date,
                one_core: p[0],
                at_least_2: cores.fraction_at_least(date, 2.0),
                at_least_4: cores.fraction_at_least(date, 4.0),
                at_least_8: cores.fraction_at_least(date, 8.0),
                at_least_16: cores.fraction_at_least(date, 16.0),
                mean_cores: cores.mean_value(date),
            }
        })
        .collect())
}

/// Predicted total-memory mix at one date (Fig 14's bands).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryPrediction {
    /// Prediction date.
    pub date: SimDate,
    /// Fraction of hosts with ≤ 1 GB total memory.
    pub le_1gb: f64,
    /// Fraction with ≤ 2 GB.
    pub le_2gb: f64,
    /// Fraction with ≤ 4 GB.
    pub le_4gb: f64,
    /// Fraction with ≤ 8 GB.
    pub le_8gb: f64,
    /// Fraction with more than 8 GB.
    pub gt_8gb: f64,
    /// Expected total memory, MB.
    pub mean_memory_mb: f64,
}

/// Predict the total-memory mix over `dates`.
///
/// Total memory is cores × per-core memory; because the model draws the
/// two independently (Section V-E), the joint distribution is the
/// product of the two tier distributions and the band fractions follow
/// analytically — no sampling needed.
///
/// # Errors
///
/// Propagates the 16-core extension validation (the paper's Fig 14
/// forecast includes it).
pub fn memory_prediction(
    model: &HostModel,
    dates: &[SimDate],
) -> crate::Result<Vec<MemoryPrediction>> {
    let (tier, law) = paper_16_core_extension();
    let extended = model.with_extended_cores(tier, law)?;
    let cores = extended.cores();
    let pcm = extended.per_core_memory();
    Ok(dates
        .iter()
        .map(|&date| {
            let pc = cores.probabilities(date);
            let pm = pcm.probabilities(date);
            let mut le = [0.0f64; 4]; // ≤1, ≤2, ≤4, ≤8 GB
            let bands_mb = [1024.0, 2048.0, 4096.0, 8192.0];
            let mut mean = 0.0;
            for (i, &c) in cores.values().iter().enumerate() {
                for (j, &m) in pcm.values().iter().enumerate() {
                    let total = c * m;
                    let p = pc[i] * pm[j];
                    mean += p * total;
                    for (k, &band) in bands_mb.iter().enumerate() {
                        if total <= band {
                            le[k] += p;
                        }
                    }
                }
            }
            MemoryPrediction {
                date,
                le_1gb: le[0],
                le_2gb: le[1],
                le_4gb: le[2],
                le_8gb: le[3],
                gt_8gb: 1.0 - le[3],
                mean_memory_mb: mean,
            }
        })
        .collect())
}

/// Predicted `(mean, std-dev)` pairs for the continuous resources at a
/// future date — the paper's 2014 numbers: Dhrystone (8100, 4419),
/// Whetstone (2975, 868), disk (272.0, 434.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentPrediction {
    /// Prediction date.
    pub date: SimDate,
    /// Dhrystone (mean, std-dev), MIPS.
    pub dhrystone: (f64, f64),
    /// Whetstone (mean, std-dev), MIPS.
    pub whetstone: (f64, f64),
    /// Available disk (mean, std-dev), GB.
    pub disk_gb: (f64, f64),
}

/// Evaluate the moment laws at `date`.
pub fn moment_prediction(model: &HostModel, date: SimDate) -> MomentPrediction {
    let (dm, dv) = model.dhrystone_moments(date);
    let (wm, wv) = model.whetstone_moments(date);
    let (km, kv) = model.disk_moments(date);
    MomentPrediction {
        date,
        dhrystone: (dm, dv.sqrt()),
        whetstone: (wm, wv.sqrt()),
        disk_gb: (km, kv.sqrt()),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn multicore_2014_matches_paper() {
        let preds =
            multicore_prediction(&HostModel::paper(), &[SimDate::from_year(2014.0)]).unwrap();
        let p = preds[0];
        // Paper: single-core negligible, 2-core ≈ 40%, mean 4.6.
        assert!(p.one_core < 0.05, "one core {}", p.one_core);
        let two_core_exact = p.at_least_2 - p.at_least_4;
        assert!(
            (two_core_exact - 0.4).abs() < 0.08,
            "2-core {two_core_exact}"
        );
        assert!((p.mean_cores - 4.6).abs() < 0.2, "mean {}", p.mean_cores);
        // Cumulative fractions must be nested.
        assert!(p.at_least_2 >= p.at_least_4);
        assert!(p.at_least_4 >= p.at_least_8);
        assert!(p.at_least_8 >= p.at_least_16);
        assert!(p.at_least_16 > 0.0);
    }

    #[test]
    fn multicore_series_monotone_trends() {
        let dates: Vec<SimDate> = (2009..=2014)
            .map(|y| SimDate::from_year(y as f64))
            .collect();
        let preds = multicore_prediction(&HostModel::paper(), &dates).unwrap();
        for w in preds.windows(2) {
            assert!(w[1].one_core <= w[0].one_core + 1e-9, "1-core must decline");
            assert!(w[1].at_least_4 >= w[0].at_least_4 - 1e-9, "≥4 must grow");
        }
    }

    #[test]
    fn memory_2014_mean_within_paper_range() {
        let preds = memory_prediction(&HostModel::paper(), &[SimDate::from_year(2014.0)]).unwrap();
        let p = preds[0];
        // Paper predicts 6.8 GB average (its extrapolation gave 6.6 GB).
        // Our full tier chain including the 4 GB per-core tier lands in
        // the same band: 6–9 GB.
        let gb = p.mean_memory_mb / 1024.0;
        assert!(gb > 6.0 && gb < 9.0, "mean memory {gb} GB");
        // Bands nested and complementary.
        assert!(p.le_1gb <= p.le_2gb && p.le_2gb <= p.le_4gb && p.le_4gb <= p.le_8gb);
        assert!((p.le_8gb + p.gt_8gb - 1.0).abs() < 1e-12);
        // By 2014 small-memory hosts are rare.
        assert!(p.le_1gb < 0.05, "≤1GB {}", p.le_1gb);
    }

    #[test]
    fn moments_2014_match_paper() {
        let p = moment_prediction(&HostModel::paper(), SimDate::from_year(2014.0));
        assert!(
            (p.dhrystone.0 - 8100.0).abs() / 8100.0 < 0.01,
            "dhry mean {}",
            p.dhrystone.0
        );
        assert!(
            (p.dhrystone.1 - 4419.0).abs() / 4419.0 < 0.01,
            "dhry std {}",
            p.dhrystone.1
        );
        assert!(
            (p.whetstone.0 - 2975.0).abs() / 2975.0 < 0.01,
            "whet mean {}",
            p.whetstone.0
        );
        assert!(
            (p.whetstone.1 - 868.0).abs() / 868.0 < 0.01,
            "whet std {}",
            p.whetstone.1
        );
        assert!(
            (p.disk_gb.0 - 272.0).abs() / 272.0 < 0.01,
            "disk mean {}",
            p.disk_gb.0
        );
        assert!(
            (p.disk_gb.1 - 434.5).abs() / 434.5 < 0.01,
            "disk std {}",
            p.disk_gb.1
        );
    }

    #[test]
    fn extension_constants() {
        let (tier, law) = paper_16_core_extension();
        assert_eq!(tier, 16.0);
        assert_eq!(law.a, 12.0);
        assert_eq!(law.b, -0.2);
    }
}
