//! JSON persistence of fitted models — the "tool for automated model
//! generation" the paper publishes needs its models to be shareable
//! artifacts.

use crate::model::HostModel;
use std::fmt;
use std::io::{Read, Write};

/// Errors from model persistence.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// JSON (de)serialisation failure.
    Json(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Json(e) => write!(f, "json error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Json(e)
    }
}

/// Serialise a model as pretty JSON.
///
/// # Errors
///
/// Propagates writer and serialisation failures.
pub fn save_model<W: Write>(model: &HostModel, mut w: W) -> Result<(), PersistError> {
    let json = serde_json::to_string_pretty(model)?;
    w.write_all(json.as_bytes())?;
    Ok(())
}

/// Deserialise a model from JSON.
///
/// # Errors
///
/// Propagates reader and parse failures.
pub fn load_model<R: Read>(mut r: R) -> Result<HostModel, PersistError> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)?;
    Ok(serde_json::from_str(&buf)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generator::HostGenerator;
    use resmodel_trace::SimDate;

    #[test]
    fn roundtrip_preserves_generation() {
        let model = HostModel::paper();
        let mut buf = Vec::new();
        save_model(&model, &mut buf).unwrap();
        let back = load_model(buf.as_slice()).unwrap();
        // Identical models generate identical populations.
        let d = SimDate::from_year(2010.0);
        assert_eq!(
            model.generate_population(d, 200, 9),
            back.generate_population(d, 200, 9)
        );
        // And identical summaries.
        let a = model.summary();
        let b = back.summary();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
        }
    }

    #[test]
    fn json_is_humanly_inspectable() {
        let mut buf = Vec::new();
        save_model(&HostModel::paper(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("3.369")); // Table X's 1:2 core ratio
        assert!(text.contains("2064")); // dhrystone mean
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(matches!(
            load_model("not json".as_bytes()),
            Err(PersistError::Json(_))
        ));
    }

    #[test]
    fn error_display() {
        let e = PersistError::Io(std::io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
    }
}
