//! Validation of generated host populations against actual data
//! (paper Section VI-B: Fig 12 and Table VIII).

use crate::generator::GeneratedHost;
use resmodel_stats::describe::{ecdf, Summary};
use resmodel_stats::{Matrix, StatsError};
use resmodel_trace::columnar::ActiveSet;
use resmodel_trace::source::{ColumnsRef, TraceSource};
use serde::{Deserialize, Serialize};

/// The five resources compared in Fig 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareResource {
    /// Number of cores.
    Cores,
    /// Total memory (MB).
    Memory,
    /// Whetstone MIPS.
    Whetstone,
    /// Dhrystone MIPS.
    Dhrystone,
    /// log₁₀(available disk GB) — the paper plots disk on a log axis.
    Log10Disk,
}

impl CompareResource {
    /// All five, in Fig 12 panel order.
    pub const ALL: [CompareResource; 5] = [
        CompareResource::Cores,
        CompareResource::Memory,
        CompareResource::Whetstone,
        CompareResource::Dhrystone,
        CompareResource::Log10Disk,
    ];

    /// Panel label.
    pub fn name(&self) -> &'static str {
        match self {
            CompareResource::Cores => "Number Cores",
            CompareResource::Memory => "Memory (MB)",
            CompareResource::Whetstone => "Whetstone MIPS",
            CompareResource::Dhrystone => "Dhrystone MIPS",
            CompareResource::Log10Disk => "Log10(Avail Disk) (GB)",
        }
    }

    /// Extract this resource from a host.
    pub fn extract(&self, h: &GeneratedHost) -> f64 {
        match self {
            CompareResource::Cores => h.cores as f64,
            CompareResource::Memory => h.memory_mb,
            CompareResource::Whetstone => h.whetstone_mips,
            CompareResource::Dhrystone => h.dhrystone_mips,
            CompareResource::Log10Disk => h.avail_disk_gb.max(1e-6).log10(),
        }
    }

    /// Extract this resource from flattened snapshot `k` of a columnar
    /// store — the same arithmetic as [`CompareResource::extract`] over
    /// a host built from that snapshot.
    pub fn extract_columnar<S: TraceSource + ?Sized>(&self, store: &S, k: usize) -> f64 {
        self.extract_from(&store.columns(), k)
    }

    /// [`CompareResource::extract_columnar`] over an already-borrowed
    /// column view (avoids re-borrowing per snapshot in hot loops).
    pub fn extract_from(&self, cols: &ColumnsRef<'_>, k: usize) -> f64 {
        match self {
            CompareResource::Cores => cols.snap_cores[k] as f64,
            CompareResource::Memory => cols.snap_memory_mb[k],
            CompareResource::Whetstone => cols.snap_whetstone[k],
            CompareResource::Dhrystone => cols.snap_dhrystone[k],
            CompareResource::Log10Disk => cols.snap_avail_disk[k].max(1e-6).log10(),
        }
    }
}

/// One panel of the Fig 12 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceComparison {
    /// Which resource.
    pub resource: CompareResource,
    /// Mean of the generated population.
    pub mean_generated: f64,
    /// Mean of the actual population.
    pub mean_actual: f64,
    /// Std-dev of the generated population.
    pub std_generated: f64,
    /// Std-dev of the actual population.
    pub std_actual: f64,
    /// `|μ_gen − μ_act| / |μ_act|`.
    pub mean_diff_fraction: f64,
    /// `|σ_gen − σ_act| / σ_act`.
    pub std_diff_fraction: f64,
    /// Kolmogorov–Smirnov distance between the two empirical CDFs.
    pub ks_distance: f64,
}

/// Compare a generated population against actual hosts, resource by
/// resource (the quantitative content of Fig 12).
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when either population is empty.
pub fn compare_populations(
    generated: &[GeneratedHost],
    actual: &[GeneratedHost],
) -> Result<Vec<ResourceComparison>, StatsError> {
    if generated.is_empty() || actual.is_empty() {
        return Err(StatsError::EmptyData {
            what: "compare_populations",
            needed: 1,
            got: generated.len().min(actual.len()),
        });
    }
    CompareResource::ALL
        .iter()
        .map(|&resource| {
            let g: Vec<f64> = generated.iter().map(|h| resource.extract(h)).collect();
            let a: Vec<f64> = actual.iter().map(|h| resource.extract(h)).collect();
            comparison_of(resource, &g, &a)
        })
        .collect()
}

/// Compare a generated population against the *actual* population of a
/// columnar active set — [`compare_populations`] without materialising
/// the actual hosts as records: each actual column is gathered straight
/// off the snapshot columns. Bitwise identical to the row path for the
/// same population.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when either population is empty.
pub fn compare_populations_columnar<S: TraceSource + ?Sized>(
    generated: &[GeneratedHost],
    store: &S,
    actual: &ActiveSet,
) -> Result<Vec<ResourceComparison>, StatsError> {
    if generated.is_empty() || actual.is_empty() {
        return Err(StatsError::EmptyData {
            what: "compare_populations",
            needed: 1,
            got: generated.len().min(actual.len()),
        });
    }
    let cols = store.columns();
    CompareResource::ALL
        .iter()
        .map(|&resource| {
            let g: Vec<f64> = generated.iter().map(|h| resource.extract(h)).collect();
            let a: Vec<f64> = actual
                .snaps()
                .iter()
                .map(|&k| resource.extract_from(&cols, k))
                .collect();
            comparison_of(resource, &g, &a)
        })
        .collect()
}

/// The shared per-resource comparison math of the two entry points
/// above (`g` generated, `a` actual).
fn comparison_of(
    resource: CompareResource,
    g: &[f64],
    a: &[f64],
) -> Result<ResourceComparison, StatsError> {
    let sg = Summary::of(g)?;
    let sa = Summary::of(a)?;
    Ok(ResourceComparison {
        resource,
        mean_generated: sg.mean,
        mean_actual: sa.mean,
        std_generated: sg.std_dev,
        std_actual: sa.std_dev,
        mean_diff_fraction: (sg.mean - sa.mean).abs() / sa.mean.abs().max(f64::MIN_POSITIVE),
        std_diff_fraction: (sg.std_dev - sa.std_dev).abs() / sa.std_dev.max(f64::MIN_POSITIVE),
        ks_distance: two_sample_ks(g, a),
    })
}

/// Two-sample Kolmogorov–Smirnov distance between empirical CDFs.
fn two_sample_ks(a: &[f64], b: &[f64]) -> f64 {
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    sb.sort_by(|x, y| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal));
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Empirical CDF of one resource over a population — the plottable
/// series of a Fig 12 panel.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for an empty population.
pub fn resource_cdf(
    hosts: &[GeneratedHost],
    resource: CompareResource,
) -> Result<Vec<(f64, f64)>, StatsError> {
    let data: Vec<f64> = hosts.iter().map(|h| resource.extract(h)).collect();
    ecdf(&data)
}

/// The 6×6 correlation matrix of a generated population, computed
/// exactly like the paper's Table VIII (column order: cores, memory,
/// mem/core, whet, dhry, disk).
///
/// # Errors
///
/// Fails on degenerate populations (constant columns or fewer than 2
/// hosts).
pub fn generated_correlation_matrix(hosts: &[GeneratedHost]) -> Result<Matrix, StatsError> {
    let cols: Vec<Vec<f64>> = [
        hosts.iter().map(|h| h.cores as f64).collect::<Vec<f64>>(),
        hosts.iter().map(|h| h.memory_mb).collect(),
        hosts.iter().map(|h| h.memory_per_core_mb()).collect(),
        hosts.iter().map(|h| h.whetstone_mips).collect(),
        hosts.iter().map(|h| h.dhrystone_mips).collect(),
        hosts.iter().map(|h| h.avail_disk_gb).collect(),
    ]
    .into_iter()
    .collect();
    let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    resmodel_stats::correlation::correlation_matrix(&refs)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::generator::HostGenerator;
    use crate::model::HostModel;
    use resmodel_trace::{ColumnarTrace, SimDate};

    fn pop(seed: u64, n: usize) -> Vec<GeneratedHost> {
        HostModel::paper().generate_population(SimDate::from_year(2010.67), n, seed)
    }

    #[test]
    fn identical_populations_compare_perfectly() {
        let p = pop(1, 2000);
        let cmp = compare_populations(&p, &p).unwrap();
        assert_eq!(cmp.len(), 5);
        for c in cmp {
            assert!(c.mean_diff_fraction < 1e-12);
            assert!(c.std_diff_fraction < 1e-12);
            assert!(c.ks_distance < 1e-12);
        }
    }

    #[test]
    fn same_model_different_seeds_compare_closely() {
        let a = pop(1, 8000);
        let b = pop(2, 8000);
        let cmp = compare_populations(&a, &b).unwrap();
        for c in &cmp {
            assert!(
                c.mean_diff_fraction < 0.1,
                "{:?}: {}",
                c.resource,
                c.mean_diff_fraction
            );
            assert!(c.ks_distance < 0.05, "{:?}: {}", c.resource, c.ks_distance);
        }
    }

    #[test]
    fn different_dates_differ_visibly() {
        let early = HostModel::paper().generate_population(SimDate::from_year(2006.0), 4000, 3);
        let late = pop(3, 4000);
        let cmp = compare_populations(&late, &early).unwrap();
        let dhry = cmp
            .iter()
            .find(|c| c.resource == CompareResource::Dhrystone)
            .unwrap();
        assert!(
            dhry.mean_diff_fraction > 0.5,
            "dhry diff {}",
            dhry.mean_diff_fraction
        );
    }

    #[test]
    fn empty_population_errors() {
        let p = pop(1, 10);
        assert!(compare_populations(&p, &[]).is_err());
        assert!(compare_populations(&[], &p).is_err());
    }

    #[test]
    fn columnar_comparison_is_bitwise_identical_to_rows() {
        use resmodel_trace::{HostRecord, ResourceSnapshot, Trace};

        // Build a trace whose population at `t` is a generated sample.
        let sample = pop(11, 400);
        let t = SimDate::from_year(2010.0);
        let trace: Trace = sample
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let mut rec = HostRecord::new((i as u64).into(), t + -40.0);
                for dt in [-20.0, 15.0] {
                    rec.record(ResourceSnapshot {
                        t: t + dt,
                        cores: h.cores,
                        memory_mb: h.memory_mb,
                        whetstone_mips: h.whetstone_mips,
                        dhrystone_mips: h.dhrystone_mips,
                        avail_disk_gb: h.avail_disk_gb,
                        total_disk_gb: h.avail_disk_gb * 2.0,
                    });
                }
                rec
            })
            .collect();
        let generated = pop(12, 400);

        let actual_rows: Vec<GeneratedHost> = trace
            .population_at(t)
            .iter()
            .map(GeneratedHost::from)
            .collect();
        let row = compare_populations(&generated, &actual_rows).unwrap();

        let store = ColumnarTrace::from(&trace);
        let active = store.active_at(t);
        let col = compare_populations_columnar(&generated, &store, &active).unwrap();

        assert_eq!(row.len(), col.len());
        for (r, c) in row.iter().zip(&col) {
            assert_eq!(r.resource, c.resource);
            assert_eq!(r.mean_actual.to_bits(), c.mean_actual.to_bits());
            assert_eq!(r.std_actual.to_bits(), c.std_actual.to_bits());
            assert_eq!(r.ks_distance.to_bits(), c.ks_distance.to_bits());
            assert_eq!(
                r.mean_diff_fraction.to_bits(),
                c.mean_diff_fraction.to_bits()
            );
        }
        // Empty-side errors behave like the row entry point.
        assert!(compare_populations_columnar(&[], &store, &active).is_err());
        let nobody = store.active_at(SimDate::from_year(1999.0));
        assert!(compare_populations_columnar(&generated, &store, &nobody).is_err());
    }

    #[test]
    fn two_sample_ks_properties() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(two_sample_ks(&a, &a), 0.0);
        let b = [100.0, 101.0, 102.0];
        assert!((two_sample_ks(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let p = pop(5, 500);
        let cdf = resource_cdf(&p, CompareResource::Memory).unwrap();
        for w in cdf.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_viii_structure() {
        let p = pop(6, 20_000);
        let m = generated_correlation_matrix(&p).unwrap();
        assert_eq!(m.rows(), 6);
        // cores-memory strongly correlated, disk uncorrelated with all.
        assert!(m.get(0, 1) > 0.5, "cores-mem {}", m.get(0, 1));
        for j in 0..5 {
            assert!(m.get(5, j).abs() < 0.05, "disk col {j}: {}", m.get(5, j));
        }
        // whet-dhry around 0.5 as in Table VIII.
        assert!(m.get(3, 4) > 0.4 && m.get(3, 4) < 0.7);
    }

    #[test]
    fn resource_names() {
        assert_eq!(CompareResource::Log10Disk.name(), "Log10(Avail Disk) (GB)");
        assert_eq!(CompareResource::ALL.len(), 5);
    }
}
