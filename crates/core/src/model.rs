//! The [`HostModel`]: the paper's complete generative model (Fig 11)
//! with the published Table X parameterisation.

use crate::generator::{GeneratedHost, HostGenerator};
use crate::ratio_law::{DiscreteRatioModel, RatioLaw};
use rand::Rng;
use resmodel_stats::distributions::LogNormal;
use resmodel_stats::regression::ExpLawFit;
use resmodel_stats::sampling::CorrelatedNormals;
use resmodel_stats::special::norm_cdf;
use resmodel_stats::{Distribution, Matrix};
use resmodel_trace::SimDate;
use serde::{Deserialize, Serialize};

/// An exponential evolution law for a distribution moment
/// (`value(t) = a·e^{b·t}`, `t` years since 2006).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MomentLaw {
    /// Value at the start of 2006.
    pub a: f64,
    /// Exponential rate per year.
    pub b: f64,
}

impl MomentLaw {
    /// Create a law with the given constants.
    pub fn new(a: f64, b: f64) -> Self {
        Self { a, b }
    }

    /// Evaluate at `date`.
    pub fn at(&self, date: SimDate) -> f64 {
        self.a * (self.b * date.years_since_2006()).exp()
    }
}

impl From<ExpLawFit> for MomentLaw {
    fn from(f: ExpLawFit) -> Self {
        Self { a: f.a, b: f.b }
    }
}

/// The paper's full generative host model.
///
/// Construction paths:
///
/// * [`HostModel::paper`] — the published constants (Table X).
/// * [`crate::fit::fit_host_model`] — refit from a measurement trace.
/// * [`HostModel::new`] — assemble from parts.
///
/// Generation (Fig 11): select a date → sample a core count from the
/// ratio-law distribution → draw three correlated standard normals →
/// map the first through `Φ` to a uniform that selects the per-core
/// memory tier → renormalise the other two to the predicted
/// Whetstone/Dhrystone mean and variance → total memory = cores ×
/// per-core memory → sample disk from the predicted log-normal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostModel {
    cores: DiscreteRatioModel,
    per_core_memory: DiscreteRatioModel,
    correlated: CorrelatedNormals,
    whetstone_mean: MomentLaw,
    whetstone_variance: MomentLaw,
    dhrystone_mean: MomentLaw,
    dhrystone_variance: MomentLaw,
    disk_mean: MomentLaw,
    disk_variance: MomentLaw,
}

/// Canonical per-core-memory tiers in MB (paper Section V-E; the 4096
/// tier closes the Table V `2GB:4GB` ratio chain).
pub const PCM_TIERS_MB: [f64; 7] = [256.0, 512.0, 768.0, 1024.0, 1536.0, 2048.0, 4096.0];

/// Canonical core-count tiers (powers of two up to 8, per Section V-D).
pub const CORE_TIERS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

impl HostModel {
    /// Assemble a model from its parts.
    ///
    /// # Errors
    ///
    /// Returns an error when the correlation matrix is not 3×3 positive
    /// definite (order: per-core memory, Whetstone, Dhrystone).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cores: DiscreteRatioModel,
        per_core_memory: DiscreteRatioModel,
        correlation: &Matrix,
        whetstone_mean: MomentLaw,
        whetstone_variance: MomentLaw,
        dhrystone_mean: MomentLaw,
        dhrystone_variance: MomentLaw,
        disk_mean: MomentLaw,
        disk_variance: MomentLaw,
    ) -> crate::Result<Self> {
        if correlation.rows() != 3 || correlation.cols() != 3 {
            return Err(resmodel_stats::StatsError::DimensionMismatch {
                expected: "3x3 correlation matrix (mem/core, whet, dhry)".into(),
            });
        }
        Ok(Self {
            cores,
            per_core_memory,
            correlated: CorrelatedNormals::new(correlation)?,
            whetstone_mean,
            whetstone_variance,
            dhrystone_mean,
            dhrystone_variance,
            disk_mean,
            disk_variance,
        })
    }

    /// The model with the paper's published constants (Table X and the
    /// Section V-F correlation matrix).
    pub fn paper() -> Self {
        let cores = DiscreteRatioModel::new(
            CORE_TIERS.to_vec(),
            vec![
                RatioLaw::new(3.369, -0.5004),
                RatioLaw::new(17.49, -0.3217),
                RatioLaw::new(12.8, -0.2377),
            ],
        )
        .expect("paper core tiers are valid");
        let pcm = DiscreteRatioModel::new(
            PCM_TIERS_MB.to_vec(),
            vec![
                RatioLaw::new(0.5829, -0.2517),
                RatioLaw::new(4.89, -0.1292),
                RatioLaw::new(0.3821, -0.1709),
                RatioLaw::new(3.98, -0.1367),
                RatioLaw::new(1.51, -0.0925),
                RatioLaw::new(4.951, -0.1008),
            ],
        )
        .expect("paper memory tiers are valid");
        let r = Matrix::from_rows(&[
            &[1.0, 0.250, 0.306],
            &[0.250, 1.0, 0.639],
            &[0.306, 0.639, 1.0],
        ])
        .expect("paper correlation matrix is well-formed");
        Self::new(
            cores,
            pcm,
            &r,
            MomentLaw::new(1179.0, 0.1157),
            MomentLaw::new(3.237e5, 0.1057),
            MomentLaw::new(2064.0, 0.1709),
            MomentLaw::new(1.379e6, 0.3313),
            MomentLaw::new(31.59, 0.2691),
            MomentLaw::new(2890.0, 0.5224),
        )
        .expect("paper constants are valid")
    }

    /// The core-count tier model.
    pub fn cores(&self) -> &DiscreteRatioModel {
        &self.cores
    }

    /// The per-core-memory tier model.
    pub fn per_core_memory(&self) -> &DiscreteRatioModel {
        &self.per_core_memory
    }

    /// The Cholesky-based correlated-normal sampler (order: per-core
    /// memory, Whetstone, Dhrystone).
    pub fn correlated_normals(&self) -> &CorrelatedNormals {
        &self.correlated
    }

    /// Predicted Whetstone (mean, variance) at `date`.
    pub fn whetstone_moments(&self, date: SimDate) -> (f64, f64) {
        (
            self.whetstone_mean.at(date),
            self.whetstone_variance.at(date),
        )
    }

    /// Predicted Dhrystone (mean, variance) at `date`.
    pub fn dhrystone_moments(&self, date: SimDate) -> (f64, f64) {
        (
            self.dhrystone_mean.at(date),
            self.dhrystone_variance.at(date),
        )
    }

    /// Predicted available-disk (mean, variance) at `date`.
    pub fn disk_moments(&self, date: SimDate) -> (f64, f64) {
        (self.disk_mean.at(date), self.disk_variance.at(date))
    }

    /// The log-normal disk distribution at `date`.
    ///
    /// # Errors
    ///
    /// Fails only if the moment laws produce non-positive values (never
    /// with the paper's constants).
    pub fn disk_distribution(&self, date: SimDate) -> crate::Result<LogNormal> {
        let (m, v) = self.disk_moments(date);
        LogNormal::from_mean_variance(m, v)
    }

    /// Replace the core model with one extended by a larger tier — the
    /// paper's 8:16 prediction extension.
    ///
    /// # Errors
    ///
    /// Propagates tier-ordering validation.
    pub fn with_extended_cores(&self, value: f64, law: RatioLaw) -> crate::Result<Self> {
        let mut m = self.clone();
        m.cores = self.cores.extended(value, law)?;
        Ok(m)
    }

    /// Condensed parameter table — the rows of the paper's Table X.
    pub fn summary(&self) -> Vec<ModelSummaryRow> {
        let mut rows = Vec::new();
        let core_vals = self.cores.values();
        for (i, law) in self.cores.laws().iter().enumerate() {
            rows.push(ModelSummaryRow {
                resource: "Cores",
                value: format!("{}:{} Core", core_vals[i], core_vals[i + 1]),
                method: "Relative Ratio",
                a: law.a,
                b: law.b,
            });
        }
        let pcm_vals = self.per_core_memory.values();
        for (i, law) in self.per_core_memory.laws().iter().enumerate() {
            rows.push(ModelSummaryRow {
                resource: "Mem/Core",
                value: format!("{}MB:{}MB", pcm_vals[i], pcm_vals[i + 1]),
                method: "Relative Ratio",
                a: law.a,
                b: law.b,
            });
        }
        rows.push(ModelSummaryRow {
            resource: "Dhrystone",
            value: "Mean (MIPS)".into(),
            method: "Normal Dist.",
            a: self.dhrystone_mean.a,
            b: self.dhrystone_mean.b,
        });
        rows.push(ModelSummaryRow {
            resource: "Dhrystone",
            value: "Variance".into(),
            method: "Normal Dist.",
            a: self.dhrystone_variance.a,
            b: self.dhrystone_variance.b,
        });
        rows.push(ModelSummaryRow {
            resource: "Whetstone",
            value: "Mean (MIPS)".into(),
            method: "Normal Dist.",
            a: self.whetstone_mean.a,
            b: self.whetstone_mean.b,
        });
        rows.push(ModelSummaryRow {
            resource: "Whetstone",
            value: "Variance".into(),
            method: "Normal Dist.",
            a: self.whetstone_variance.a,
            b: self.whetstone_variance.b,
        });
        rows.push(ModelSummaryRow {
            resource: "Disk Space",
            value: "Mean (GB)".into(),
            method: "Lognorm Dist.",
            a: self.disk_mean.a,
            b: self.disk_mean.b,
        });
        rows.push(ModelSummaryRow {
            resource: "Disk Space",
            value: "Variance".into(),
            method: "Lognorm Dist.",
            a: self.disk_variance.a,
            b: self.disk_variance.b,
        });
        rows
    }
}

impl HostGenerator for HostModel {
    fn label(&self) -> &'static str {
        "correlated"
    }

    /// The Fig 11 generation flowchart.
    fn generate_host(&self, date: SimDate, rng: &mut dyn Rng) -> GeneratedHost {
        // 1. Core count from the ratio-law discrete distribution.
        let cores = self
            .cores
            .sample_with_uniform(date, resmodel_stats::sampling::standard_uniform(rng))
            as u32;

        // 2. Correlated standard normals (mem/core, whet, dhry), drawn
        //    into a stack buffer — this runs once per simulated host.
        let mut v = [0.0; 3];
        self.correlated.sample_into(rng, &mut v);

        // 3. First component → uniform → per-core-memory tier.
        let pcm_uniform = norm_cdf(v[0]).clamp(0.0, 1.0 - 1e-12);
        let pcm = self.per_core_memory.sample_with_uniform(date, pcm_uniform);

        // 4. Renormalise the benchmark components to the predicted
        //    moments; floor at 1% of the mean (the correlated normal
        //    tail can otherwise dip below zero).
        let (wm, wv) = self.whetstone_moments(date);
        let (dm, dv) = self.dhrystone_moments(date);
        let whetstone = (wm + v[1] * wv.sqrt()).max(0.01 * wm);
        let dhrystone = (dm + v[2] * dv.sqrt()).max(0.01 * dm);

        // 5. Independent log-normal disk.
        let disk = self
            .disk_distribution(date)
            .expect("moment laws stay positive")
            .sample(rng);

        GeneratedHost {
            cores,
            memory_mb: pcm * cores as f64,
            whetstone_mips: whetstone,
            dhrystone_mips: dhrystone,
            avail_disk_gb: disk,
        }
    }

    /// Fixed-date batch generation with the date-dependent parameters
    /// hoisted out of the per-host loop: the tier probability chains,
    /// benchmark moments and disk log-normal are evaluated once instead
    /// of `n` times. The per-host draw order and arithmetic are exactly
    /// those of [`HostModel::generate_host`], so the population is
    /// bitwise identical to the trait's default loop.
    fn generate_population(&self, date: SimDate, n: usize, seed: u64) -> Vec<GeneratedHost> {
        let mut rng = resmodel_stats::rng::seeded_substream(seed, date.days().to_bits());
        let core_probs = self.cores.probabilities(date);
        let pcm_probs = self.per_core_memory.probabilities(date);
        let (wm, wv) = self.whetstone_moments(date);
        let (dm, dv) = self.dhrystone_moments(date);
        let (wsd, dsd) = (wv.sqrt(), dv.sqrt());
        let disk = self
            .disk_distribution(date)
            .expect("moment laws stay positive");

        let mut out = Vec::with_capacity(n);
        let mut v = [0.0; 3];
        for _ in 0..n {
            let u = resmodel_stats::sampling::standard_uniform(&mut rng);
            let cores = self.cores.pick(&core_probs, u) as u32;
            self.correlated.sample_into(&mut rng, &mut v);
            let pcm_uniform = norm_cdf(v[0]).clamp(0.0, 1.0 - 1e-12);
            let pcm = self.per_core_memory.pick(&pcm_probs, pcm_uniform);
            let whetstone = (wm + v[1] * wsd).max(0.01 * wm);
            let dhrystone = (dm + v[2] * dsd).max(0.01 * dm);
            out.push(GeneratedHost {
                cores,
                memory_mb: pcm * cores as f64,
                whetstone_mips: whetstone,
                dhrystone_mips: dhrystone,
                avail_disk_gb: disk.sample(&mut rng),
            });
        }
        out
    }
}

/// One row of the condensed parameter table (the paper's Table X).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSummaryRow {
    /// Resource group, e.g. `"Cores"`.
    pub resource: &'static str,
    /// Which value/ratio the law governs.
    pub value: String,
    /// The paper's "Method" column.
    pub method: &'static str,
    /// Law multiplier.
    pub a: f64,
    /// Law exponential rate.
    pub b: f64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use resmodel_stats::correlation::pearson;
    use resmodel_stats::rng::seeded;

    #[test]
    fn paper_model_constructs() {
        let m = HostModel::paper();
        assert_eq!(m.cores().values(), &[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(m.per_core_memory().values().len(), 7);
    }

    #[test]
    fn moment_laws_match_paper_2006() {
        let m = HostModel::paper();
        let d = SimDate::from_year(2006.0);
        let (wm, _) = m.whetstone_moments(d);
        let (dm, _) = m.dhrystone_moments(d);
        let (km, _) = m.disk_moments(d);
        assert!((wm - 1179.0).abs() < 1e-9);
        assert!((dm - 2064.0).abs() < 1e-9);
        assert!((km - 31.59).abs() < 1e-9);
    }

    #[test]
    fn sep_2010_predicted_moments_match_paper_generated_stats() {
        // Fig 12 reports μ_gen for September 2010: whet 2033, dhry 4644,
        // disk 111 GB. Evaluate the laws at 2010.67.
        let m = HostModel::paper();
        let d = SimDate::from_year(2010.0 + 8.0 / 12.0);
        assert!((m.whetstone_moments(d).0 - 2033.0).abs() / 2033.0 < 0.02);
        assert!((m.dhrystone_moments(d).0 - 4644.0).abs() / 4644.0 < 0.03);
        assert!((m.disk_moments(d).0 - 111.0).abs() / 111.0 < 0.02);
    }

    #[test]
    fn generated_hosts_are_valid() {
        let m = HostModel::paper();
        let mut rng = seeded(3);
        for &year in &[2006.0, 2008.5, 2010.67] {
            for _ in 0..200 {
                let h = m.generate_host(SimDate::from_year(year), &mut rng);
                assert!(h.cores.is_power_of_two() && h.cores <= 8);
                assert!(PCM_TIERS_MB.contains(&h.memory_per_core_mb()));
                assert!(h.whetstone_mips > 0.0);
                assert!(h.dhrystone_mips > 0.0);
                assert!(h.avail_disk_gb > 0.0);
            }
        }
    }

    #[test]
    fn generated_population_reproducible() {
        let m = HostModel::paper();
        let d = SimDate::from_year(2010.67);
        let a = m.generate_population(d, 50, 99);
        let b = m.generate_population(d, 50, 99);
        assert_eq!(a, b);
        let c = m.generate_population(d, 50, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_correlations_match_table_viii_shape() {
        // Table VIII: generated cores↔memory r ≈ 0.7, whet↔dhry ≈ 0.5,
        // mem/core↔whet ≈ 0.31, disk uncorrelated.
        let m = HostModel::paper();
        let pop = m.generate_population(SimDate::from_year(2010.67), 20_000, 7);
        let cores: Vec<f64> = pop.iter().map(|h| h.cores as f64).collect();
        let mem: Vec<f64> = pop.iter().map(|h| h.memory_mb).collect();
        let pcm: Vec<f64> = pop.iter().map(|h| h.memory_per_core_mb()).collect();
        let whet: Vec<f64> = pop.iter().map(|h| h.whetstone_mips).collect();
        let dhry: Vec<f64> = pop.iter().map(|h| h.dhrystone_mips).collect();
        let disk: Vec<f64> = pop.iter().map(|h| h.avail_disk_gb).collect();

        let r_cm = pearson(&cores, &mem).unwrap();
        assert!(r_cm > 0.55 && r_cm < 0.85, "cores-mem r {r_cm}");
        let r_wd = pearson(&whet, &dhry).unwrap();
        assert!(r_wd > 0.4 && r_wd < 0.7, "whet-dhry r {r_wd}");
        let r_pw = pearson(&pcm, &whet).unwrap();
        assert!(r_pw > 0.15 && r_pw < 0.45, "pcm-whet r {r_pw}");
        assert!(pearson(&disk, &cores).unwrap().abs() < 0.05);
        assert!(pearson(&disk, &whet).unwrap().abs() < 0.05);
    }

    #[test]
    fn mean_memory_grows_over_time() {
        let m = HostModel::paper();
        let mean_at = |y: f64| {
            let pop = m.generate_population(SimDate::from_year(y), 5_000, 11);
            pop.iter().map(|h| h.memory_mb).sum::<f64>() / pop.len() as f64
        };
        let m2006 = mean_at(2006.0);
        let m2010 = mean_at(2010.0);
        // Paper Fig 2: 846 MB → 2376 MB (181% increase). The ratio-law
        // model (with its 4 GB tier) should show a similar strong rise.
        assert!(m2010 / m2006 > 2.0, "2006 {m2006} → 2010 {m2010}");
    }

    #[test]
    fn extension_for_prediction() {
        let m = HostModel::paper()
            .with_extended_cores(16.0, RatioLaw::new(12.0, -0.2))
            .unwrap();
        let mean = m.cores().mean_value(SimDate::from_year(2014.0));
        assert!((mean - 4.6).abs() < 0.2);
    }

    #[test]
    fn summary_matches_table_x() {
        let rows = HostModel::paper().summary();
        // 3 core + 6 pcm + 6 moment rows.
        assert_eq!(rows.len(), 15);
        let first = &rows[0];
        assert_eq!(first.resource, "Cores");
        assert!((first.a - 3.369).abs() < 1e-12);
        assert!((first.b + 0.5004).abs() < 1e-12);
        let disk_var = rows.last().unwrap();
        assert_eq!(disk_var.resource, "Disk Space");
        assert!((disk_var.a - 2890.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_wrong_correlation_shape() {
        let m = HostModel::paper();
        let bad = Matrix::identity(4);
        let r = HostModel::new(
            m.cores().clone(),
            m.per_core_memory().clone(),
            &bad,
            MomentLaw::new(1.0, 0.0),
            MomentLaw::new(1.0, 0.0),
            MomentLaw::new(1.0, 0.0),
            MomentLaw::new(1.0, 0.0),
            MomentLaw::new(1.0, 0.0),
            MomentLaw::new(1.0, 0.0),
        );
        assert!(r.is_err());
    }
}
