//! Property-based tests of the model layer: ratio-law distributions,
//! generation validity across arbitrary dates and law parameters.

use proptest::prelude::*;
use resmodel_core::model::{MomentLaw, CORE_TIERS, PCM_TIERS_MB};
use resmodel_core::{DiscreteRatioModel, HostGenerator, HostModel, RatioLaw};
use resmodel_stats::rng::seeded;
use resmodel_trace::SimDate;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn ratio_model_probabilities_always_normalised(
        a1 in 0.01..50.0f64, b1 in -1.0..1.0f64,
        a2 in 0.01..50.0f64, b2 in -1.0..1.0f64,
        a3 in 0.01..50.0f64, b3 in -1.0..1.0f64,
        year in 2000.0..2020.0f64,
    ) {
        let m = DiscreteRatioModel::new(
            CORE_TIERS.to_vec(),
            vec![RatioLaw::new(a1, b1), RatioLaw::new(a2, b2), RatioLaw::new(a3, b3)],
        ).unwrap();
        let p = m.probabilities(SimDate::from_year(year));
        prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Mean is within the tier range.
        let mean = m.mean_value(SimDate::from_year(year));
        prop_assert!((1.0..=8.0).contains(&mean));
    }

    #[test]
    fn ratio_model_sampling_matches_support(
        u in 0.0..1.0f64,
        year in 2004.0..2016.0f64,
    ) {
        let m = HostModel::paper();
        let v = m.cores().sample_with_uniform(SimDate::from_year(year), u);
        prop_assert!(CORE_TIERS.contains(&v));
        let pcm = m.per_core_memory().sample_with_uniform(SimDate::from_year(year), u);
        prop_assert!(PCM_TIERS_MB.contains(&pcm));
    }

    #[test]
    fn fraction_at_least_is_monotone_in_threshold(year in 2004.0..2016.0f64) {
        let m = HostModel::paper();
        let d = SimDate::from_year(year);
        let mut prev = 1.0;
        for &t in &[1.0, 2.0, 4.0, 8.0] {
            let f = m.cores().fraction_at_least(d, t);
            prop_assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn generated_hosts_valid_for_any_date_and_seed(
        year in 2005.0..2015.0f64,
        seed in 0u64..10_000,
    ) {
        let model = HostModel::paper();
        let mut rng = seeded(seed);
        let h = model.generate_host(SimDate::from_year(year), &mut rng);
        prop_assert!(h.cores.is_power_of_two() && h.cores <= 8);
        prop_assert!(PCM_TIERS_MB.contains(&h.memory_per_core_mb()));
        prop_assert!(h.whetstone_mips > 0.0);
        prop_assert!(h.dhrystone_mips > 0.0);
        prop_assert!(h.avail_disk_gb > 0.0 && h.avail_disk_gb.is_finite());
    }

    #[test]
    fn moment_laws_positive_for_any_date(year in 1995.0..2030.0f64) {
        let m = HostModel::paper();
        let d = SimDate::from_year(year);
        let (wm, wv) = m.whetstone_moments(d);
        let (dm, dv) = m.dhrystone_moments(d);
        let (km, kv) = m.disk_moments(d);
        for v in [wm, wv, dm, dv, km, kv] {
            prop_assert!(v > 0.0 && v.is_finite());
        }
        // The disk log-normal must always be constructible.
        prop_assert!(m.disk_distribution(d).is_ok());
    }

    #[test]
    fn moment_law_is_exponential(a in 0.1..1e4f64, b in -0.5..0.5f64,
                                 t1 in -5.0..5.0f64, dt in 0.0..5.0f64) {
        let law = MomentLaw::new(a, b);
        let d1 = SimDate::from_year(2006.0 + t1);
        let d2 = SimDate::from_year(2006.0 + t1 + dt);
        // law(t+dt)/law(t) = e^{b·dt}, independent of t.
        let ratio = law.at(d2) / law.at(d1);
        prop_assert!((ratio - (b * dt).exp()).abs() < 1e-6 * ratio.max(1.0));
    }

    #[test]
    fn population_means_track_law_means(seed in 0u64..50) {
        let model = HostModel::paper();
        let d = SimDate::from_year(2009.0);
        let pop = model.generate_population(d, 4000, seed);
        let mean_dhry = pop.iter().map(|h| h.dhrystone_mips).sum::<f64>() / pop.len() as f64;
        let (law_mean, law_var) = model.dhrystone_moments(d);
        // Within 5 standard errors (floored benchmark tail shifts it slightly).
        let se = (law_var / pop.len() as f64).sqrt();
        prop_assert!((mean_dhry - law_mean).abs() < 5.0 * se + 0.01 * law_mean,
            "mean {mean_dhry} vs law {law_mean}");
    }
}
