//! `swept` — the batch benchrunner: execute a scenario-sweep grid on
//! the rayon worker pool, print the cross-scenario comparison table and
//! emit the machine-readable `BENCH_sweep.json` perf artifact
//! (hosts/sec per job, per-stage timings, peak job latency).
//!
//! Sweeps come from a named preset (`--preset smoke`) or a JSON
//! [`SweepSpec`] file (`--spec FILE`); `--report FILE` additionally
//! dumps the full typed [`SweepReport`]; `--verify-columnar` runs the
//! grid on both data paths and asserts the reports are byte-identical.
//!
//! Every run records observability metrics out-of-band (the report
//! bytes are identical with or without them): the emitted `/7`
//! artifact carries the [`resmodel::obs::MetricsReport`] block, the process
//! peak-RSS, the query-service block (the sweep's cheapest job is
//! replayed twice through a [`resmodel_svc::ModelCache`] so cache
//! hit/miss figures and request latency ride along per commit), the
//! trace-store block (the same job is persisted to the
//! `resmodel.trace/1` format and reloaded through the mapped backend,
//! recording write/load timings, file size and the
//! reload-vs-regeneration comparison), and the dispatch-scaling block
//! (the streaming dispatch engine driven at every `--dispatch-scale`
//! job count, recording jobs/sec, peak RSS and work-stealing
//! figures); `--events-out FILE` streams span open/close records as
//! JSONL, and `--require-rss` turns a missing RSS or throughput
//! figure into a hard error (for CI on Linux runners).

#![warn(clippy::unwrap_used)]

use resmodel::obs::Collector;
use resmodel::pipeline::DataPath;
use resmodel::sweep::{SweepReport, SweepSpec};
use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_bench::{row, section};
use resmodel_error::{ArgError, ResmodelError};

const USAGE: Usage = Usage {
    bin: "swept",
    summary: "run a parallel scenario sweep and emit the BENCH_sweep.json perf artifact",
    usage: &[
        "swept --preset NAME [--seed N] [--hosts N] [--threads N] [--out FILE] [--report FILE]",
        "swept --spec FILE [--seed N] [--hosts N] [--threads N] [--out FILE] [--report FILE]",
        "swept [--events-out FILE] [--require-rss] [--quiet | --verbose] ...",
        "swept --check FILE [FILE...]",
        "swept --list",
    ],
    flags: &[
        FlagHelp {
            flag: "--preset NAME",
            help: "built-in sweep: smoke|families|scaling|replicates|dispatch",
        },
        FlagHelp {
            flag: "--spec FILE",
            help: "load a SweepSpec JSON file instead of a preset",
        },
        FlagHelp {
            flag: "--seed N",
            help: "override the sweep master seed",
        },
        FlagHelp {
            flag: "--hosts N",
            help: "override every fleet size with N",
        },
        FlagHelp {
            flag: "--threads N",
            help: "fix the rayon worker count (default: all cores)",
        },
        FlagHelp {
            flag: "--out FILE",
            help: "write the BENCH_sweep.json artifact (default BENCH_sweep.json)",
        },
        FlagHelp {
            flag: "--report FILE",
            help: "also write the full SweepReport JSON",
        },
        FlagHelp {
            flag: "--events-out FILE",
            help: "stream span open/close records to FILE as JSONL",
        },
        FlagHelp {
            flag: "--dispatch-scale N[,N...]",
            help: "job counts for the dispatch-scaling probe (default 50000)",
        },
        FlagHelp {
            flag: "--require-rss",
            help: "fail unless the artifact carries non-zero peak-RSS and hosts/sec (CI, Linux)",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail (per-job metrics totals)",
        },
        FlagHelp {
            flag: "--check FILE...",
            help: "validate emitted BENCH_sweep.json files (schema + serde round-trip) and exit",
        },
        FlagHelp {
            flag: "--verify-columnar",
            help: "run the grid on both the row and columnar data paths and assert the \
                   timing-zeroed reports are byte-identical",
        },
        FlagHelp {
            flag: "--list",
            help: "list the built-in presets and exit",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

fn main() {
    cli::run_main(&USAGE, real_main);
}

fn real_main(mut args: Args) -> Result<(), ResmodelError> {
    let mut preset: Option<String> = None;
    let mut spec_path: Option<String> = None;
    let mut seed: Option<u64> = None;
    let mut hosts: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut out = String::from("BENCH_sweep.json");
    let mut report_path: Option<String> = None;
    let mut verify_columnar = false;
    let mut dispatch_scale: Vec<usize> = vec![50_000];
    let mut events_out: Option<String> = None;
    let mut require_rss = false;
    let mut verbosity = Verbosity::default();
    let mut check = false;
    let mut check_paths: Vec<String> = Vec::new();

    while let Some(token) = args.next_token() {
        if check {
            // After `--check`, every further token (bar repeated
            // `--check` separators) is an artifact path.
            if token != "--check" {
                check_paths.push(token);
            }
            continue;
        }
        match token.as_str() {
            "--preset" => preset = Some(args.value("--preset")?),
            "--spec" => spec_path = Some(args.value("--spec")?),
            "--verify-columnar" => verify_columnar = true,
            "--seed" => seed = Some(args.parse("--seed", "an integer")?),
            "--hosts" => hosts = Some(args.parse("--hosts", "a positive integer")?),
            "--threads" => threads = Some(args.parse("--threads", "a positive integer")?),
            "--out" => out = args.value("--out")?,
            "--report" => report_path = Some(args.value("--report")?),
            "--dispatch-scale" => {
                let value = args.value("--dispatch-scale")?;
                dispatch_scale = value
                    .split(',')
                    .map(|part| {
                        part.trim().parse::<usize>().ok().filter(|&n| n > 0).ok_or(
                            ArgError::InvalidValue {
                                flag: "--dispatch-scale".into(),
                                value: value.clone(),
                                expected: "a comma-separated list of positive job counts",
                            },
                        )
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--events-out" => events_out = Some(args.value("--events-out")?),
            "--require-rss" => require_rss = true,
            "--quiet" => verbosity = Verbosity::Quiet,
            "--verbose" => verbosity = Verbosity::Verbose,
            // `--check` may repeat, so one invocation can validate a
            // fresh artifact alongside the committed legacy fixtures;
            // every file must pass.
            "--check" => check = true,
            "--list" => {
                for name in SweepSpec::PRESETS {
                    let spec = SweepSpec::preset(name).ok_or_else(|| {
                        ResmodelError::config("sweep", "preset table out of sync")
                    })?;
                    println!("{name:<12} {} jobs", spec.job_count());
                }
                return Ok(());
            }
            "--help" | "-h" => cli::help_exit(&USAGE),
            other => return cli::unknown_flag(other),
        }
    }

    if check {
        if check_paths.is_empty() {
            return Err(ArgError::MissingValue {
                flag: "--check".into(),
            }
            .into());
        }
        for path in &check_paths {
            check_artifact(path)?;
        }
        return Ok(());
    }

    let mut spec = match (preset, spec_path) {
        (Some(_), Some(_)) => {
            return cli::usage_error("--preset and --spec are mutually exclusive")
        }
        (Some(name), None) => SweepSpec::preset(&name).ok_or(ArgError::InvalidValue {
            flag: "--preset".into(),
            value: name,
            expected: "smoke, families, scaling, replicates or dispatch",
        })?,
        (None, Some(path)) => {
            let text = std::fs::read_to_string(&path).map_err(|e| ResmodelError::io(&path, e))?;
            SweepSpec::from_json(&text)?
        }
        (None, None) => return cli::usage_error("one of --preset or --spec is required"),
    };
    if let Some(seed) = seed {
        spec.seed = seed;
    }
    if let Some(hosts) = hosts {
        spec.fleet_sizes = vec![hosts];
    }
    let log = Logger::new(verbosity);

    if verify_columnar {
        return match threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| ResmodelError::config("sweep", e.to_string()))?
                .install(|| verify_columnar_identity(&spec, &log)),
            None => verify_columnar_identity(&spec, &log),
        };
    }

    // Observe every run: the report bytes are identical either way,
    // and the /6 artifact carries the metrics block and peak-RSS.
    let obs = Collector::new();
    if let Some(path) = &events_out {
        let file = std::fs::File::create(path).map_err(|e| ResmodelError::io(path, e))?;
        obs.set_events_sink(Box::new(std::io::BufWriter::new(file)));
    }

    log.info(format!(
        "sweep `{}`: {} jobs on {} threads...",
        spec.name,
        spec.job_count(),
        threads.unwrap_or_else(rayon::current_num_threads),
    ));
    let report = match threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .map_err(|e| ResmodelError::config("sweep", e.to_string()))?
            .install(|| spec.run_collected(DataPath::Columnar, &obs))?,
        None => spec.run_collected(DataPath::Columnar, &obs)?,
    };
    probe_svc_cache(&spec, &obs, &log)?;
    let store = probe_trace_store(&spec, &log)?;
    let metrics = obs.snapshot();
    if log.debug_enabled() {
        log.debug(format!(
            "metrics: {} counters, {} histograms, {} spans, peak RSS {}",
            metrics.counters.len(),
            metrics.histograms.len(),
            metrics.spans.len(),
            metrics
                .peak_rss_bytes
                .map_or_else(|| "n/a".to_owned(), |b| format!("{b} bytes")),
        ));
    }

    print_summary(&report);

    let mut artifact = report.bench_artifact_with_metrics(&metrics);
    artifact.store = store;
    artifact.dispatch_scaling = Some(probe_dispatch_scaling(&dispatch_scale, threads, &log)?);
    artifact.svc_load = Some(probe_svc_load(&log)?);
    if require_rss {
        if artifact.peak_rss_bytes.is_none_or(|b| b == 0) {
            return Err(ResmodelError::config(
                "bench artifact",
                "--require-rss: no peak-RSS figure (probe unavailable on this platform?)",
            ));
        }
        if !(artifact.totals.hosts_per_sec > 0.0) {
            return Err(ResmodelError::config(
                "bench artifact",
                "--require-rss: batch hosts/sec figure is missing or zero",
            ));
        }
    }
    std::fs::write(&out, artifact.to_json_pretty()?).map_err(|e| ResmodelError::io(&out, e))?;
    log.info(format!("wrote {out}"));
    if let Some(path) = report_path {
        std::fs::write(&path, report.to_json_pretty()?).map_err(|e| ResmodelError::io(&path, e))?;
        log.info(format!("wrote {path}"));
    }
    if let Some(path) = events_out {
        // Flush explicitly: the sink's Drop would swallow I/O errors,
        // turning a truncated events log into a silent success.
        if let Some(mut sink) = obs.take_events_sink() {
            use std::io::Write;
            sink.flush().map_err(|e| ResmodelError::io(&path, e))?;
        }
        log.info(format!("wrote {path}"));
    }
    Ok(())
}

/// Feed the `/5` query-service block: replay the sweep's cheapest job
/// twice through a fresh [`resmodel_svc::ModelCache`] sharing the
/// run's collector — one cache miss, one byte-exact hit — so the
/// artifact carries real `svc.cache.*` counters and a
/// `svc.run_pipeline.request_ms` latency histogram.
fn probe_svc_cache(spec: &SweepSpec, obs: &Collector, log: &Logger) -> Result<(), ResmodelError> {
    let jobs = spec.expand();
    let Some(job) = jobs.iter().min_by_key(|j| (j.fleet_size, j.index)) else {
        return Ok(());
    };
    let cache = resmodel_svc::ModelCache::new(4, obs);
    let cold = cache.run_pipeline(&job.spec)?;
    let warm = cache.run_pipeline(&job.spec)?;
    log.debug(format!(
        "svc probe `{}`: {} then {} (spec {})",
        job.label,
        if cold.hit { "hit" } else { "miss" },
        if warm.hit { "hit" } else { "miss" },
        warm.spec_hash,
    ));
    Ok(())
}

/// Feed the `/6` trace-store block: persist the sweep's cheapest job
/// to the `resmodel.trace/1` format, reload it through the mapped
/// backend and rerun the analysis, recording write/load timings, file
/// size and the reload-vs-regeneration comparison
/// ([`resmodel::sweep::StoreSummary::probe`]).
fn probe_trace_store(
    spec: &SweepSpec,
    log: &Logger,
) -> Result<Option<resmodel::sweep::StoreSummary>, ResmodelError> {
    let jobs = spec.expand();
    let Some(job) = jobs.iter().min_by_key(|j| (j.fleet_size, j.index)) else {
        return Ok(None);
    };
    let path = std::env::temp_dir().join(format!("swept-store-probe-{}.rmt", std::process::id()));
    let outcome = resmodel::sweep::StoreSummary::probe(&job.spec, &path);
    let _ = std::fs::remove_file(&path);
    let store = outcome?;
    log.debug(format!(
        "store probe `{}`: {} hosts, {} bytes via {}; write {:.1} ms, load {:.1} ms vs \
         regenerate {:.1} ms",
        job.label,
        store.hosts,
        store.file_bytes,
        store.backend,
        store.write_ms,
        store.load_ms,
        store.regenerate_ms,
    ));
    Ok(Some(store))
}

/// Feed the `/7` dispatch-scaling block: drive the streaming dispatch
/// engine at each requested job count
/// ([`resmodel::sweep::DispatchScalingPoint::probe`]), printing the
/// throughput line as each point lands.
fn probe_dispatch_scaling(
    job_counts: &[usize],
    threads: Option<usize>,
    log: &Logger,
) -> Result<Vec<resmodel::sweep::DispatchScalingPoint>, ResmodelError> {
    let mut points = Vec::with_capacity(job_counts.len());
    for &jobs in job_counts {
        let point = match threads {
            Some(n) => rayon::ThreadPoolBuilder::new()
                .num_threads(n)
                .build()
                .map_err(|e| ResmodelError::config("sweep", e.to_string()))?
                .install(|| resmodel::sweep::DispatchScalingPoint::probe(jobs)),
            None => resmodel::sweep::DispatchScalingPoint::probe(jobs),
        }?;
        log.info(format!(
            "dispatch-scaling probe: {} jobs over {} hosts -> {:.0} jobs/sec \
             ({} segments, {} steals, {:.1} ms)",
            point.generated_jobs,
            point.hosts,
            point.jobs_per_sec,
            point.segments,
            point.steals,
            point.wall_ms,
        ));
        points.push(point);
    }
    Ok(points)
}

/// Feed the `/8` service-load block: serve a real `resmodel.svc/1`
/// daemon on an ephemeral loopback socket — with its own collector, so
/// the load's server-side metrics never pollute the sweep's metrics
/// block — and drive a short deterministic fixed-schedule load through
/// [`resmodel_svc::run_load`]. The request multiset is a pure function
/// of the seed, so the daemon's deterministic fingerprint is identical
/// run to run; only the wall-clock figures (latency quantiles,
/// served/sec) vary, and those live behind quarantined `_ms` /
/// `_per_sec` keys.
fn probe_svc_load(log: &Logger) -> Result<resmodel::sweep::SvcLoadSummary, ResmodelError> {
    use resmodel_svc::{serve_tcp, Client, LoadSpec, ServerConfig};

    let obs = Collector::new();
    let server = serve_tcp("127.0.0.1:0", ServerConfig::default(), &obs)?;
    let addr = server
        .tcp_addr()
        .ok_or_else(|| ResmodelError::config("svc load probe", "tcp server lost its address"))?
        .to_string();
    let client = Client::tcp(addr).with_request_prefix("probe");
    let load = LoadSpec::fixed(2, 24, resmodel_svc::default_spec_pool());
    let report = resmodel_svc::run_load(&client, &load)?;
    client.shutdown()?;
    server.join();
    let metrics = obs.snapshot();
    let summary = report.svc_load_summary(Some(&metrics));
    log.info(format!(
        "svc load probe: {} requests over {} connections -> {:.0} served/sec, \
         {} errors, hit rate {:.2}",
        summary.requests,
        summary.connections,
        summary.served_per_sec,
        summary.errors,
        summary.hit_rate,
    ));
    Ok(summary)
}

/// Run the grid on both data paths and assert the timing-zeroed
/// reports are byte-identical — the columnar refactor's correctness
/// contract, exercised by CI on the `families` preset.
fn verify_columnar_identity(spec: &SweepSpec, log: &Logger) -> Result<(), ResmodelError> {
    log.info(format!(
        "verifying row/columnar identity for `{}` ({} jobs, both paths)...",
        spec.name,
        spec.job_count(),
    ));
    let zeroed = |path: DataPath| -> Result<String, ResmodelError> {
        let mut report = spec.run_with_path(path)?;
        report.zero_timings();
        report.to_json_pretty()
    };
    let row = zeroed(DataPath::Row)?;
    let columnar = zeroed(DataPath::Columnar)?;
    if row != columnar {
        let line = row
            .lines()
            .zip(columnar.lines())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(ResmodelError::config(
            "sweep",
            format!(
                "row and columnar reports differ at line {}: row `{}` vs columnar `{}`",
                line + 1,
                row.lines().nth(line).unwrap_or("<end>"),
                columnar.lines().nth(line).unwrap_or("<end>"),
            ),
        ));
    }
    println!(
        "{}: ok — row and columnar reports are byte-identical ({} bytes)",
        spec.name,
        columnar.len(),
    );
    Ok(())
}

/// Validate an emitted artifact file: it must parse as a
/// [`resmodel::sweep::BenchArtifact`], carry a known schema id,
/// survive a serde round-trip byte-for-byte, and report at least one
/// job with hosts and a throughput figure.
fn check_artifact(path: &str) -> Result<(), ResmodelError> {
    use resmodel::sweep::{
        BenchArtifact, BENCH_SCHEMA, BENCH_SCHEMA_V1, BENCH_SCHEMA_V2, BENCH_SCHEMA_V3,
        BENCH_SCHEMA_V4, BENCH_SCHEMA_V5, BENCH_SCHEMA_V6, BENCH_SCHEMA_V7,
    };

    let text = std::fs::read_to_string(path).map_err(|e| ResmodelError::io(path, e))?;
    let artifact = BenchArtifact::from_json(&text)?;
    let invalid = |message: String| ResmodelError::config("bench artifact", message);
    if ![
        BENCH_SCHEMA,
        BENCH_SCHEMA_V7,
        BENCH_SCHEMA_V6,
        BENCH_SCHEMA_V5,
        BENCH_SCHEMA_V4,
        BENCH_SCHEMA_V3,
        BENCH_SCHEMA_V2,
        BENCH_SCHEMA_V1,
    ]
    .contains(&artifact.schema.as_str())
    {
        return Err(invalid(format!(
            "schema is `{}`, expected `{BENCH_SCHEMA}` (or legacy `{BENCH_SCHEMA_V7}` / \
             `{BENCH_SCHEMA_V6}` / `{BENCH_SCHEMA_V5}` / `{BENCH_SCHEMA_V4}` / \
             `{BENCH_SCHEMA_V3}` / `{BENCH_SCHEMA_V2}` / `{BENCH_SCHEMA_V1}`)",
            artifact.schema
        )));
    }
    // An /8 artifact may be a *pure load artifact*: empty `jobs` is
    // legal exactly when the svc_load block is present (the loadgen
    // binary measures a live daemon, it runs no sweep). The sweep-side
    // blocks (store, dispatch_scaling) describe sweep probes, so a
    // pure load artifact must not carry them.
    let pure_load = artifact.schema == BENCH_SCHEMA && artifact.jobs.is_empty();
    // The observability block arrived with /4; older artifacts must
    // not carry one (a /3 file with metrics means the emitter lied
    // about its schema).
    let carries_obs = [
        BENCH_SCHEMA,
        BENCH_SCHEMA_V7,
        BENCH_SCHEMA_V6,
        BENCH_SCHEMA_V5,
        BENCH_SCHEMA_V4,
    ]
    .contains(&artifact.schema.as_str());
    if !carries_obs && (artifact.metrics.is_some() || artifact.peak_rss_bytes.is_some()) {
        return Err(invalid(format!(
            "schema `{}` must not carry the /4 observability block",
            artifact.schema
        )));
    }
    // The query-service block arrived with /5: required from there on
    // (the emitter always runs the cache probe; the loadgen fills it
    // from the daemon's own counters) and forbidden earlier.
    if [
        BENCH_SCHEMA,
        BENCH_SCHEMA_V7,
        BENCH_SCHEMA_V6,
        BENCH_SCHEMA_V5,
    ]
    .contains(&artifact.schema.as_str())
    {
        let Some(svc) = &artifact.svc else {
            return Err(invalid(format!(
                "schema `{}` requires the svc query-service block",
                artifact.schema
            )));
        };
        if svc.requests == 0 {
            return Err(invalid("svc block reports zero cache requests".into()));
        }
        if svc.hits + svc.misses != svc.requests {
            return Err(invalid(format!(
                "svc block is inconsistent: {} hits + {} misses != {} requests",
                svc.hits, svc.misses, svc.requests
            )));
        }
        if !(0.0..=1.0).contains(&svc.hit_rate) {
            return Err(invalid(format!(
                "svc block hit_rate {} is outside [0, 1]",
                svc.hit_rate
            )));
        }
    } else if artifact.svc.is_some() {
        return Err(invalid(format!(
            "schema `{}` must not carry the /5 svc block",
            artifact.schema
        )));
    }
    // The trace-store block arrived with /6: required from there on
    // (the emitter always runs the persistence probe) and forbidden
    // earlier — and on a pure load artifact, which runs no sweep.
    if pure_load {
        if artifact.store.is_some() {
            return Err(invalid(
                "a pure load artifact must not carry the /6 store block".into(),
            ));
        }
    } else if artifact.schema == BENCH_SCHEMA
        || artifact.schema == BENCH_SCHEMA_V7
        || artifact.schema == BENCH_SCHEMA_V6
    {
        let Some(store) = &artifact.store else {
            return Err(invalid(format!(
                "schema `{}` requires the store persistence block",
                artifact.schema
            )));
        };
        if store.hosts == 0 || store.snapshots == 0 {
            return Err(invalid("store block reports an empty trace".into()));
        }
        if store.file_bytes == 0 {
            return Err(invalid("store block reports a zero-byte trace file".into()));
        }
        if !matches!(store.backend.as_str(), "mmap" | "heap") {
            return Err(invalid(format!(
                "store block backend `{}` is neither mmap nor heap",
                store.backend
            )));
        }
    } else if artifact.store.is_some() {
        return Err(invalid(format!(
            "schema `{}` must not carry the /6 store block",
            artifact.schema
        )));
    }
    // The dispatch-scaling block arrived with /7: required from there
    // on (the emitter always runs the scaling probe) and forbidden
    // earlier — and on a pure load artifact.
    if pure_load {
        if artifact.dispatch_scaling.is_some() {
            return Err(invalid(
                "a pure load artifact must not carry the /7 dispatch_scaling block".into(),
            ));
        }
    } else if artifact.schema == BENCH_SCHEMA || artifact.schema == BENCH_SCHEMA_V7 {
        let Some(points) = &artifact.dispatch_scaling else {
            return Err(invalid(format!(
                "schema `{}` requires the dispatch_scaling block",
                artifact.schema
            )));
        };
        if points.is_empty() {
            return Err(invalid("dispatch_scaling block has no points".into()));
        }
        for point in points {
            if point.jobs == 0 || point.generated_jobs == 0 {
                return Err(invalid(format!(
                    "dispatch_scaling point at {} jobs reports no generated jobs",
                    point.jobs
                )));
            }
            if point.hosts == 0 {
                return Err(invalid(format!(
                    "dispatch_scaling point at {} jobs reports zero hosts",
                    point.jobs
                )));
            }
            if !(point.jobs_per_sec > 0.0) {
                return Err(invalid(format!(
                    "dispatch_scaling point at {} jobs reports no jobs/sec figure",
                    point.jobs
                )));
            }
            if point.segments == 0 {
                return Err(invalid(format!(
                    "dispatch_scaling point at {} jobs reports zero segments",
                    point.jobs
                )));
            }
        }
    } else if artifact.dispatch_scaling.is_some() {
        return Err(invalid(format!(
            "schema `{}` must not carry the /7 dispatch_scaling block",
            artifact.schema
        )));
    }
    // The service-load block arrived with /8: required there (swept
    // runs an in-process load probe; loadgen measures a live daemon)
    // and forbidden earlier.
    if artifact.schema == BENCH_SCHEMA {
        let Some(load) = &artifact.svc_load else {
            return Err(invalid(format!(
                "schema `{BENCH_SCHEMA}` requires the svc_load block"
            )));
        };
        if !matches!(load.mode.as_str(), "fixed" | "duration" | "rps") {
            return Err(invalid(format!(
                "svc_load mode `{}` is not fixed/duration/rps",
                load.mode
            )));
        }
        if load.connections == 0 {
            return Err(invalid("svc_load block reports zero connections".into()));
        }
        if load.requests == 0 {
            return Err(invalid("svc_load block reports zero requests".into()));
        }
        if load.errors > load.requests {
            return Err(invalid(format!(
                "svc_load block is inconsistent: {} errors > {} requests",
                load.errors, load.requests
            )));
        }
        if !(load.served_per_sec > 0.0) {
            return Err(invalid(
                "svc_load block reports no served-queries/sec figure".into(),
            ));
        }
        if !(0.0..=1.0).contains(&load.hit_rate) {
            return Err(invalid(format!(
                "svc_load hit_rate {} is outside [0, 1]",
                load.hit_rate
            )));
        }
        if load.slo.is_none() {
            return Err(invalid("svc_load block carries no SLO verdict".into()));
        }
        if load.endpoints.is_empty() {
            return Err(invalid("svc_load block has no endpoint rows".into()));
        }
        let (req_sum, err_sum) = load.endpoints.iter().fold((0u64, 0u64), |(r, e), row| {
            (r + row.requests, e + row.errors)
        });
        if req_sum != load.requests || err_sum != load.errors {
            return Err(invalid(format!(
                "svc_load endpoint rows sum to {req_sum} requests / {err_sum} errors, \
                 totals say {} / {}",
                load.requests, load.errors
            )));
        }
        for row in &load.endpoints {
            if !(row.p50_ms <= row.p90_ms && row.p90_ms <= row.p99_ms && row.p99_ms <= row.p999_ms)
            {
                return Err(invalid(format!(
                    "svc_load endpoint `{}` quantiles are not monotone",
                    row.endpoint
                )));
            }
        }
    } else if artifact.svc_load.is_some() {
        return Err(invalid(format!(
            "schema `{}` must not carry the /8 svc_load block",
            artifact.schema
        )));
    }
    if artifact.schema != BENCH_SCHEMA_V1 && artifact.jobs.iter().any(|j| j.extract_ms.is_none()) {
        return Err(invalid(format!(
            "schema `{}` requires extract_ms on every job row",
            artifact.schema
        )));
    }
    // Dispatch rows (schema /3) must carry both dispatch fields or
    // neither — a half-populated row means the emitter drifted.
    if artifact
        .jobs
        .iter()
        .any(|j| j.dispatch_ms.is_some() != j.jobs_per_sec.is_some())
    {
        return Err(invalid(
            "job rows must carry dispatch_ms and jobs_per_sec together".into(),
        ));
    }
    if artifact.jobs.is_empty() && !pure_load {
        return Err(invalid("artifact has no job rows".into()));
    }
    for job in &artifact.jobs {
        if job.hosts == 0 {
            return Err(invalid(format!("job `{}` reports zero hosts", job.label)));
        }
        if !(job.hosts_per_sec > 0.0) {
            return Err(invalid(format!(
                "job `{}` reports no hosts/sec figure",
                job.label
            )));
        }
    }
    let reserialized = artifact.to_json_pretty()?;
    if BenchArtifact::from_json(&reserialized)? != artifact {
        return Err(invalid("artifact does not round-trip through serde".into()));
    }
    println!(
        "{path}: ok ({} `{}` jobs, {:.0} hosts/sec total)",
        artifact.jobs.len(),
        artifact.sweep,
        artifact.totals.hosts_per_sec
    );
    Ok(())
}

fn print_summary(report: &SweepReport) {
    section("per-job throughput");
    let widths = [28, 8, 10, 12, 11, 8];
    println!(
        "{}",
        row(
            &[
                "job".into(),
                "hosts".into(),
                "wall ms".into(),
                "hosts/sec".into(),
                "extract ms".into(),
                "ks".into(),
            ],
            &widths,
        )
    );
    for j in &report.jobs {
        println!(
            "{}",
            row(
                &[
                    j.label.clone(),
                    j.world.raw_hosts.to_string(),
                    format!("{:.1}", j.wall_ms),
                    format!("{:.0}", j.hosts_per_sec),
                    format!("{:.2}", j.extract_ms),
                    j.mean_ks.map_or_else(|| "-".into(), |k| format!("{k:.3}")),
                ],
                &widths,
            )
        );
    }

    let dispatched: Vec<_> = report
        .jobs
        .iter()
        .filter_map(|j| j.dispatch.as_ref().map(|d| (j, d)))
        .collect();
    if !dispatched.is_empty() {
        section("dispatch comparison");
        let widths = [12, 16, 8, 10, 8, 8, 8, 11];
        println!(
            "{}",
            row(
                &[
                    "workload".into(),
                    "policy".into(),
                    "jobs".into(),
                    "completed".into(),
                    "miss".into(),
                    "util".into(),
                    "u-ratio".into(),
                    "jobs/sec".into(),
                ],
                &widths,
            )
        );
        for (_, d) in &dispatched {
            println!(
                "{}",
                row(
                    &[
                        d.workload.clone(),
                        d.policy.clone(),
                        d.jobs.to_string(),
                        d.completed.to_string(),
                        format!("{:.3}", d.deadline_miss_rate),
                        format!("{:.3}", d.host_utilization),
                        format!("{:.3}", d.utility_ratio),
                        format!("{:.0}", d.jobs_per_sec),
                    ],
                    &widths,
                )
            );
        }
    }

    section("scenario comparison");
    let widths = [14, 6, 10, 12, 12, 10];
    println!(
        "{}",
        row(
            &[
                "scenario".into(),
                "jobs".into(),
                "hosts".into(),
                "hosts/sec".into(),
                "peak ms".into(),
                "mean ks".into(),
            ],
            &widths,
        )
    );
    for c in &report.comparisons {
        println!(
            "{}",
            row(
                &[
                    c.scenario.clone(),
                    c.jobs.to_string(),
                    c.total_hosts.to_string(),
                    format!("{:.0}", c.mean_hosts_per_sec),
                    format!("{:.1}", c.peak_wall_ms),
                    c.mean_ks.map_or_else(|| "-".into(), |k| format!("{k:.3}")),
                ],
                &widths,
            )
        );
    }

    let t = &report.totals;
    section("totals");
    println!(
        "{} jobs, {} hosts in {:.1} ms on {} threads -> {:.0} hosts/sec (peak job {:.1} ms)",
        t.jobs, t.total_hosts, t.wall_ms, t.threads, t.hosts_per_sec, t.peak_job_wall_ms,
    );
    println!(
        "stage totals: build {:.1} ms, sanitize {:.1} ms, fit {:.1} ms, validate {:.1} ms, \
         predict {:.1} ms, dispatch {:.1} ms",
        t.stage_ms.build_ms,
        t.stage_ms.sanitize_ms,
        t.stage_ms.fit_ms,
        t.stage_ms.validate_ms,
        t.stage_ms.predict_ms,
        t.stage_ms.dispatch_ms,
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::check_artifact;

    /// A synthesized artifact in the exact shape the given schema
    /// version emitted: `/1` rows lack `extract_ms`, pre-`/3` timing
    /// blocks lack `dispatch_ms`, `/3`+ rows carry the dispatch pair,
    /// `/4` adds the top-level observability block, `/5` adds the
    /// query-service block, `/6` adds the trace-store block, `/7`
    /// adds the dispatch-scaling block, and `/8` adds the service-load
    /// block.
    fn artifact_json(schema: &str) -> String {
        let timing = if schema.ends_with("/1") || schema.ends_with("/2") {
            r#"{"build_ms": 19.5, "sanitize_ms": 1.4, "fit_ms": 3.6,
                "validate_ms": 0.3, "predict_ms": 0.0}"#
        } else {
            r#"{"build_ms": 19.5, "sanitize_ms": 1.4, "fit_ms": 3.6,
                "validate_ms": 0.3, "predict_ms": 0.0, "dispatch_ms": 2.0}"#
        };
        let extra = match schema {
            s if s.ends_with("/1") => String::new(),
            s if s.ends_with("/2") => r#""extract_ms": 0.9,"#.to_owned(),
            _ => r#""extract_ms": 0.9, "dispatch_ms": 2.0, "jobs_per_sec": 100000.0,"#.to_owned(),
        };
        let load_block = if schema.ends_with("/8") {
            r#""svc_load": {
                 "mode": "fixed", "connections": 2, "requests": 24, "errors": 0,
                 "wall_ms": 118.0, "served_per_sec": 203.4,
                 "hits": 13, "misses": 3, "hit_rate": 0.8125,
                 "slo": {
                   "met": true,
                   "results": [{
                     "metric": "svc.run_pipeline.request_ms", "quantile": 0.99,
                     "max_ms": 30000.0, "observed_ms": 11.9, "count": 8, "met": true
                   }]
                 },
                 "endpoints": [
                   {"endpoint": "run_pipeline", "requests": 9, "errors": 0,
                    "p50_ms": 1.1, "p90_ms": 9.8, "p99_ms": 11.9, "p999_ms": 11.9,
                    "latency": null},
                   {"endpoint": "predict", "requests": 7, "errors": 0,
                    "p50_ms": 0.9, "p90_ms": 2.2, "p99_ms": 3.0, "p999_ms": 3.0,
                    "latency": null},
                   {"endpoint": "stats", "requests": 8, "errors": 0,
                    "p50_ms": 0.2, "p90_ms": 0.4, "p99_ms": 0.6, "p999_ms": 0.6,
                    "latency": null}
                 ]
               },"#
        } else {
            ""
        };
        let scaling_block = if ["/7", "/8"].iter().any(|v| schema.ends_with(v)) {
            r#""dispatch_scaling": [{
                 "jobs": 1000000, "generated_jobs": 1000000, "hosts": 100000,
                 "threads": 4, "wall_ms": 333.0, "generate_ms": 128.0,
                 "dispatch_ms": 310.0, "jobs_per_sec": 3000000.0,
                 "peak_rss_bytes": 53477376, "steals": 0, "segments": 8
               }],"#
        } else {
            ""
        };
        let store_block = if ["/6", "/7", "/8"].iter().any(|v| schema.ends_with(v)) {
            r#""store": {
                 "hosts": 7435, "snapshots": 24112, "file_bytes": 1835072,
                 "write_ms": 2.1, "regenerate_ms": 25.4, "load_ms": 6.3,
                 "backend": "mmap"
               },"#
        } else {
            ""
        };
        let svc_block = if ["/5", "/6", "/7", "/8"].iter().any(|v| schema.ends_with(v)) {
            r#""svc": {
                 "requests": 2, "hits": 1, "misses": 1, "hit_rate": 0.5,
                 "latency": [{
                   "name": "svc.run_pipeline.request_ms", "count": 2,
                   "min": 0.4, "max": 11.9, "p50": 0.4, "p90": 11.9, "p99": 11.9,
                   "buckets": [[96, 1], [112, 1]]
                 }]
               },"#
        } else {
            ""
        };
        let obs_block = if ["/4", "/5", "/6", "/7", "/8"]
            .iter()
            .any(|v| schema.ends_with(v))
        {
            r#""peak_rss_bytes": 104857600,
               "metrics": {
                 "counters": [["popsim.events", 123], ["sweep.runs", 1]],
                 "gauges": [["sweep.hosts_per_sec", 288613.0]],
                 "histograms": [{
                   "name": "popsim.queue_depth_peak", "count": 8,
                   "min": 3.0, "max": 9.0, "p50": 4.0, "p90": 8.0, "p99": 8.0,
                   "buckets": [[134, 5], [138, 3]]
                 }],
                 "spans": [{"path": "sweep", "calls": 1, "total_ms": 27.7, "max_ms": 27.7}],
                 "peak_rss_bytes": 104857600
               },"#
        } else {
            ""
        };
        format!(
            r#"{{
              "schema": "{schema}",
              "sweep": "smoke",
              "seed": 20110620,
              "threads": 4,
              "totals": {{
                "jobs": 1, "total_hosts": 8000, "wall_ms": 27.7,
                "hosts_per_sec": 288613.0, "peak_job_wall_ms": 27.7,
                "threads": 4, "stage_ms": {timing}
              }},
              {obs_block}
              {svc_block}
              {store_block}
              {scaling_block}
              {load_block}
              "jobs": [{{
                "label": "steady-state/8000/r1",
                "scenario": "steady-state",
                "fleet_size": 8000,
                "seed": 17384152857138616771,
                "hosts": 8000,
                "wall_ms": 27.7,
                "hosts_per_sec": 288613.0,
                {extra}
                "timing": {timing}
              }}]
            }}"#
        )
    }

    fn check_str(name: &str, json: &str) -> Result<(), resmodel_error::ResmodelError> {
        let path = std::env::temp_dir().join(format!("swept_check_{name}.json"));
        std::fs::write(&path, json).unwrap();
        let outcome = check_artifact(path.to_str().unwrap());
        let _ = std::fs::remove_file(&path);
        outcome
    }

    #[test]
    fn stored_legacy_artifacts_keep_validating() {
        // The compatibility contract: artifacts emitted by older
        // binaries (no extract_ms on /1; no dispatch fields and no
        // timing.dispatch_ms before /3) still pass --check.
        for schema in [
            "resmodel.bench_sweep/1",
            "resmodel.bench_sweep/2",
            "resmodel.bench_sweep/3",
            "resmodel.bench_sweep/4",
            "resmodel.bench_sweep/5",
            "resmodel.bench_sweep/6",
            "resmodel.bench_sweep/7",
        ] {
            let json = artifact_json(schema);
            check_str("ok", &json).unwrap_or_else(|e| panic!("{schema}: {e}"));
        }
    }

    #[test]
    fn committed_legacy_fixtures_keep_validating() {
        // The repo-level fixtures CI feeds to `swept --check`: if a
        // schema rule change would orphan artifacts written by older
        // binaries, this fails before the workflow does.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/legacy");
        let mut checked = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "json") {
                check_artifact(path.to_str().unwrap())
                    .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
                checked += 1;
            }
        }
        assert!(checked >= 7, "expected the /1–/7 fixtures, saw {checked}");
    }

    #[test]
    fn v4_artifact_with_observability_block_validates() {
        let json = artifact_json("resmodel.bench_sweep/4");
        check_str("v4", &json).unwrap_or_else(|e| panic!("/4: {e}"));
    }

    #[test]
    fn v5_artifact_with_svc_block_validates() {
        let json = artifact_json("resmodel.bench_sweep/5");
        check_str("v5", &json).unwrap_or_else(|e| panic!("/5: {e}"));
    }

    #[test]
    fn v6_artifact_with_store_block_validates() {
        let json = artifact_json("resmodel.bench_sweep/6");
        check_str("v6", &json).unwrap_or_else(|e| panic!("/6: {e}"));
    }

    #[test]
    fn v7_artifact_with_dispatch_scaling_block_validates() {
        let json = artifact_json("resmodel.bench_sweep/7");
        check_str("v7", &json).unwrap_or_else(|e| panic!("/7: {e}"));
    }

    #[test]
    fn v8_artifact_with_svc_load_block_validates() {
        let json = artifact_json("resmodel.bench_sweep/8");
        check_str("v8", &json).unwrap_or_else(|e| panic!("/8: {e}"));
    }

    #[test]
    fn svc_load_block_rules_are_enforced() {
        // An /8 artifact must carry the service-load block (a /7 body
        // relabeled as /8 lacks it)...
        let missing = artifact_json("resmodel.bench_sweep/7")
            .replace("resmodel.bench_sweep/7", "resmodel.bench_sweep/8");
        assert!(check_str("load_missing", &missing).is_err());
        // ...reporting real traffic...
        let json = artifact_json("resmodel.bench_sweep/8")
            .replace(r#""requests": 24,"#, r#""requests": 0,"#);
        assert!(check_str("load_zero", &json).is_err());
        // ...with endpoint rows that sum to the totals...
        let json = artifact_json("resmodel.bench_sweep/8").replace(
            r#"{"endpoint": "stats", "requests": 8,"#,
            r#"{"endpoint": "stats", "requests": 9,"#,
        );
        assert!(check_str("load_sum", &json).is_err());
        // ...monotone per-endpoint quantiles...
        let json = artifact_json("resmodel.bench_sweep/8")
            .replace(r#""p99_ms": 11.9,"#, r#""p99_ms": 0.01,"#);
        assert!(check_str("load_quantiles", &json).is_err());
        // ...an SLO verdict...
        let json = artifact_json("resmodel.bench_sweep/8").replace(
            r#""slo": {
                   "met": true,
                   "results": [{
                     "metric": "svc.run_pipeline.request_ms", "quantile": 0.99,
                     "max_ms": 30000.0, "observed_ms": 11.9, "count": 8, "met": true
                   }]
                 },"#,
            "",
        );
        assert!(
            json.contains(r#""svc_load""#),
            "replace must keep the block"
        );
        assert!(check_str("load_no_slo", &json).is_err());
        // ...and a /7 artifact must not smuggle one in.
        let smuggled = artifact_json("resmodel.bench_sweep/8")
            .replace("resmodel.bench_sweep/8", "resmodel.bench_sweep/7");
        assert!(
            smuggled.contains(r#""svc_load""#),
            "relabel must have matched"
        );
        assert!(check_str("load_smuggled", &smuggled).is_err());
    }

    #[test]
    fn pure_load_artifacts_need_svc_load_and_no_sweep_blocks() {
        // An /8 artifact with no job rows is legal exactly when it
        // carries the svc_load block and none of the sweep-side probe
        // blocks — the shape the loadgen binary emits.
        let strip_jobs = |json: &str| {
            let json = json.replace(r#""jobs": 1, "total_hosts": 8000"#, "JOBS_TOTALS_KEEP");
            let start = json.find(r#""jobs": [{"#).expect("jobs array present");
            let end = json.rfind("}]").expect("jobs array closes") + 2;
            let mut out = String::new();
            out.push_str(&json[..start]);
            out.push_str(r#""jobs": []"#);
            out.push_str(&json[end..]);
            out.replace("JOBS_TOTALS_KEEP", r#""jobs": 0, "total_hosts": 0"#)
        };
        let full = artifact_json("resmodel.bench_sweep/8");
        let pure = strip_jobs(&full)
            .replace(
                r#""store": {
                 "hosts": 7435, "snapshots": 24112, "file_bytes": 1835072,
                 "write_ms": 2.1, "regenerate_ms": 25.4, "load_ms": 6.3,
                 "backend": "mmap"
               },"#,
                "",
            )
            .replace(
                r#""dispatch_scaling": [{
                 "jobs": 1000000, "generated_jobs": 1000000, "hosts": 100000,
                 "threads": 4, "wall_ms": 333.0, "generate_ms": 128.0,
                 "dispatch_ms": 310.0, "jobs_per_sec": 3000000.0,
                 "peak_rss_bytes": 53477376, "steals": 0, "segments": 8
               }],"#,
                "",
            );
        assert!(!pure.contains(r#""store""#), "store block stripped");
        assert!(
            !pure.contains(r#""dispatch_scaling""#),
            "scaling block stripped"
        );
        check_str("pure_load_ok", &pure).unwrap_or_else(|e| panic!("pure load: {e}"));
        // Empty jobs on /8 without svc_load is still an error...
        let v7_shape = artifact_json("resmodel.bench_sweep/7")
            .replace("resmodel.bench_sweep/7", "resmodel.bench_sweep/8");
        assert!(check_str("pure_load_no_block", &strip_jobs(&v7_shape)).is_err());
        // ...as are sweep-side probe blocks on a pure load artifact...
        assert!(check_str("pure_load_store", &strip_jobs(&full)).is_err());
        // ...and empty jobs on any pre-/8 schema.
        let v7_empty = strip_jobs(&artifact_json("resmodel.bench_sweep/7"));
        assert!(check_str("pure_load_v7", &v7_empty).is_err());
    }

    #[test]
    fn dispatch_scaling_block_rules_are_enforced() {
        // A /7 artifact must carry the dispatch-scaling block (a /6
        // body relabeled as /7 lacks it)...
        let missing = artifact_json("resmodel.bench_sweep/6")
            .replace("resmodel.bench_sweep/6", "resmodel.bench_sweep/7");
        assert!(check_str("scaling_missing", &missing).is_err());
        // ...whose points generated real jobs...
        let zero = artifact_json("resmodel.bench_sweep/7")
            .replace(r#""jobs": 1000000, "#, r#""jobs": 0, "#);
        assert!(check_str("scaling_zero_jobs", &zero).is_err());
        // ...that reports real throughput over real segments...
        let json = artifact_json("resmodel.bench_sweep/7")
            .replace(r#""jobs_per_sec": 3000000.0"#, r#""jobs_per_sec": 0.0"#);
        assert!(check_str("scaling_rate", &json).is_err());
        let json =
            artifact_json("resmodel.bench_sweep/7").replace(r#""segments": 8"#, r#""segments": 0"#);
        assert!(check_str("scaling_segments", &json).is_err());
        // ...and a /6 artifact must not smuggle one in.
        let smuggled = artifact_json("resmodel.bench_sweep/7")
            .replace("resmodel.bench_sweep/7", "resmodel.bench_sweep/6");
        assert!(
            smuggled.contains(r#""dispatch_scaling""#),
            "relabel must have matched"
        );
        assert!(check_str("scaling_smuggled", &smuggled).is_err());
    }

    #[test]
    fn svc_block_rules_are_enforced() {
        // A /5 artifact must carry the query-service block (a /4 body
        // relabeled as /5 lacks it)...
        let missing = artifact_json("resmodel.bench_sweep/4")
            .replace("resmodel.bench_sweep/4", "resmodel.bench_sweep/5");
        assert!(check_str("svc_missing", &missing).is_err());
        // ...with consistent counters...
        let json = artifact_json("resmodel.bench_sweep/5").replace(r#""hits": 1"#, r#""hits": 9"#);
        assert!(check_str("svc_sum", &json).is_err());
        // ...and a /4 artifact must not smuggle one in.
        let smuggled = artifact_json("resmodel.bench_sweep/5")
            .replace("resmodel.bench_sweep/5", "resmodel.bench_sweep/4");
        assert!(smuggled.contains(r#""svc""#), "relabel must have matched");
        assert!(check_str("svc_smuggled", &smuggled).is_err());
    }

    #[test]
    fn store_block_rules_are_enforced() {
        // A /6 artifact must carry the trace-store block (a /5 body
        // relabeled as /6 lacks it)...
        let missing = artifact_json("resmodel.bench_sweep/5")
            .replace("resmodel.bench_sweep/5", "resmodel.bench_sweep/6");
        assert!(check_str("store_missing", &missing).is_err());
        // ...with a non-empty trace behind a known backend...
        let json = artifact_json("resmodel.bench_sweep/6")
            .replace(r#""file_bytes": 1835072"#, r#""file_bytes": 0"#);
        assert!(check_str("store_bytes", &json).is_err());
        let json = artifact_json("resmodel.bench_sweep/6")
            .replace(r#""backend": "mmap""#, r#""backend": "tape""#);
        assert!(check_str("store_backend", &json).is_err());
        // ...and a /5 artifact must not smuggle one in.
        let smuggled = artifact_json("resmodel.bench_sweep/6")
            .replace("resmodel.bench_sweep/6", "resmodel.bench_sweep/5");
        assert!(smuggled.contains(r#""store""#), "relabel must have matched");
        assert!(check_str("store_smuggled", &smuggled).is_err());
    }

    #[test]
    fn check_accepts_multiple_files_and_fails_on_any_bad_one() {
        use resmodel_bench::cli::Args;

        let dir = std::env::temp_dir();
        let good = dir.join("swept_multi_good.json");
        let bad = dir.join("swept_multi_bad.json");
        std::fs::write(&good, artifact_json("resmodel.bench_sweep/3")).unwrap();
        std::fs::write(&bad, artifact_json("resmodel.bench_sweep/99")).unwrap();
        let good = good.to_str().unwrap().to_owned();
        let bad = bad.to_str().unwrap().to_owned();

        let run = |tokens: Vec<String>| super::real_main(Args::new(tokens));
        assert!(run(vec!["--check".into(), good.clone(), good.clone()]).is_ok());
        assert!(run(vec!["--check".into(), good.clone(), bad.clone()]).is_err());
        // Bare `--check` with no file is a usage error, not a no-op.
        assert!(run(vec!["--check".into()]).is_err());

        let _ = std::fs::remove_file(&good);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        // Unknown schema.
        let json = artifact_json("resmodel.bench_sweep/99");
        assert!(check_str("schema", &json).is_err());
        // A /2 artifact missing extract_ms.
        let json = artifact_json("resmodel.bench_sweep/2").replace(r#""extract_ms": 0.9,"#, "");
        assert!(check_str("extract", &json).is_err());
        // A /3 row carrying dispatch_ms without jobs_per_sec.
        let json =
            artifact_json("resmodel.bench_sweep/3").replace(r#""jobs_per_sec": 100000.0,"#, "");
        assert!(check_str("pair", &json).is_err());
        // A /3 artifact smuggling the /4 observability block.
        let json = artifact_json("resmodel.bench_sweep/3").replace(
            r#""threads": 4,
              "totals""#,
            r#""threads": 4, "peak_rss_bytes": 1,
              "totals""#,
        );
        assert!(
            json.contains("peak_rss_bytes"),
            "replacement must have matched"
        );
        assert!(check_str("smuggled", &json).is_err());
    }
}
