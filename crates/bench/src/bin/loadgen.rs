//! `loadgen` — measure `resmodeld` under fire: drive a live daemon
//! with a weighted endpoint mix over N concurrent connections and emit
//! the `resmodel.bench_sweep/8` *pure load artifact* (`BENCH_svc.json`
//! by default): served-queries/sec, per-endpoint latency quantiles
//! (p50/p90/p99/p999), error counts, the daemon's cache hit rate and
//! its SLO verdict.
//!
//! ```text
//! resmodeld --uds /tmp/resmodel.sock --max-conns 64 &
//! loadgen --uds /tmp/resmodel.sock --connections 8 --duration 2s
//! loadgen --uds /tmp/resmodel.sock --connections 4 --requests 64 --seed 7
//! ```
//!
//! `--requests N` runs the deterministic fixed schedule (the request
//! multiset the daemon sees is a pure function of the seed —
//! independent of `--connections` — so the daemon's deterministic
//! fingerprint is load-invariant); `--duration` / `--rps` run the
//! wall-clock-shaped smoke mode CI uses. `--inject-error` first sends
//! one deliberately malformed frame so the daemon's flight recorder
//! dumps that request's trace — the post-mortem path, exercised on
//! purpose.

#![warn(clippy::unwrap_used)]

use resmodel::obs::MetricsReport;
use resmodel::pipeline::StageTimings;
use resmodel::sweep::{BenchArtifact, SvcSummary, SweepTotals, BENCH_SCHEMA};
use resmodel::ResmodelError;
use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_error::ArgError;
use resmodel_svc::{loadgen, proto, Client, LoadSpec};
use std::time::Duration;

const USAGE: Usage = Usage {
    bin: "loadgen",
    summary: "hammer a resmodeld daemon and emit the /8 svc_load bench artifact",
    usage: &[
        "loadgen (--tcp ADDR | --uds PATH) --duration 2s [--connections N] [--rps N] ...",
        "loadgen (--tcp ADDR | --uds PATH) --requests N [--connections N] [--seed N] ...",
        "loadgen ... [--mix LIST] [--out FILE] [--inject-error] [--quiet | --verbose]",
    ],
    flags: &[
        FlagHelp {
            flag: "--tcp ADDR",
            help: "connect to a TCP daemon, e.g. 127.0.0.1:7171",
        },
        FlagHelp {
            flag: "--uds PATH",
            help: "connect to a Unix-domain-socket daemon",
        },
        FlagHelp {
            flag: "--connections N",
            help: "concurrent worker connections (default 4)",
        },
        FlagHelp {
            flag: "--requests N",
            help: "fixed mode: send exactly N requests from a deterministic schedule",
        },
        FlagHelp {
            flag: "--duration D",
            help: "duration mode: run for D (2s, 1500ms, or bare seconds)",
        },
        FlagHelp {
            flag: "--rps N",
            help: "duration mode: pace at N requests/sec aggregate (default: closed loop)",
        },
        FlagHelp {
            flag: "--mix LIST",
            help: "weighted endpoint mix, e.g. run_pipeline=3:predict:stats (default \
                   run_pipeline:predict:stats)",
        },
        FlagHelp {
            flag: "--seed N",
            help: "schedule seed for fixed mode / worker substreams (default 42)",
        },
        FlagHelp {
            flag: "--out FILE",
            help: "write the /8 artifact to FILE (default BENCH_svc.json)",
        },
        FlagHelp {
            flag: "--inject-error",
            help: "send one malformed frame first, forcing a server-side flight-recorder dump",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

fn main() {
    cli::run_main(&USAGE, real_main);
}

struct Options {
    tcp: Option<String>,
    uds: Option<String>,
    connections: usize,
    requests: Option<u64>,
    duration: Option<Duration>,
    rps: Option<f64>,
    mix: String,
    seed: u64,
    out: String,
    inject_error: bool,
    verbosity: Verbosity,
}

fn parse_args(mut args: Args) -> Result<Options, ResmodelError> {
    let mut opt = Options {
        tcp: None,
        uds: None,
        connections: 4,
        requests: None,
        duration: None,
        rps: None,
        mix: "run_pipeline:predict:stats".to_owned(),
        seed: 42,
        out: "BENCH_svc.json".to_owned(),
        inject_error: false,
        verbosity: Verbosity::default(),
    };
    while let Some(token) = args.next_token() {
        match token.as_str() {
            "--tcp" => opt.tcp = Some(args.value("--tcp")?),
            "--uds" => opt.uds = Some(args.value("--uds")?),
            "--connections" => {
                opt.connections = args.parse("--connections", "a positive integer")?;
            }
            "--requests" => opt.requests = Some(args.parse("--requests", "a positive integer")?),
            "--duration" => {
                let raw = args.value("--duration")?;
                opt.duration = Some(parse_duration(&raw)?);
            }
            "--rps" => opt.rps = Some(args.parse("--rps", "a positive number")?),
            "--mix" => opt.mix = args.value("--mix")?,
            "--seed" => opt.seed = args.parse("--seed", "an integer")?,
            "--out" => opt.out = args.value("--out")?,
            "--inject-error" => opt.inject_error = true,
            "--quiet" => opt.verbosity = Verbosity::Quiet,
            "--verbose" => opt.verbosity = Verbosity::Verbose,
            "--help" | "-h" => cli::help_exit(&USAGE),
            other => return cli::unknown_flag(other),
        }
    }
    Ok(opt)
}

/// `2s`, `1500ms`, or bare seconds (`2`, `0.5`).
fn parse_duration(raw: &str) -> Result<Duration, ResmodelError> {
    let invalid = || ArgError::InvalidValue {
        flag: "--duration".into(),
        value: raw.into(),
        expected: "a duration like 2s, 1500ms, or bare seconds",
    };
    let (digits, scale) = if let Some(ms) = raw.strip_suffix("ms") {
        (ms, 0.001)
    } else if let Some(s) = raw.strip_suffix('s') {
        (s, 1.0)
    } else {
        (raw, 1.0)
    };
    let value: f64 = digits.trim().parse().map_err(|_| invalid())?;
    if !(value > 0.0) || !value.is_finite() {
        return Err(invalid().into());
    }
    Ok(Duration::from_secs_f64(value * scale))
}

fn real_main(args: Args) -> Result<(), ResmodelError> {
    let opt = parse_args(args)?;
    if opt.tcp.is_some() && opt.uds.is_some() {
        return cli::usage_error("--tcp and --uds are mutually exclusive");
    }
    if opt.tcp.is_none() && opt.uds.is_none() {
        return cli::usage_error("one of --tcp or --uds is required");
    }
    if opt.requests.is_some() && opt.duration.is_some() {
        return cli::usage_error("--requests and --duration are mutually exclusive");
    }
    if opt.requests.is_none() && opt.duration.is_none() {
        return cli::usage_error("one of --requests or --duration is required");
    }
    let log = Logger::new(opt.verbosity);
    let client = match (&opt.tcp, &opt.uds) {
        (Some(addr), None) => Client::tcp(addr.clone()),
        #[cfg(unix)]
        (None, Some(path)) => Client::uds(path.clone()),
        #[cfg(not(unix))]
        (None, Some(_)) => {
            return Err(ResmodelError::config(
                "loadgen",
                "--uds requires a Unix platform",
            ))
        }
        _ => unreachable!("transport exclusivity is checked above"),
    }
    .with_request_prefix("load");

    if opt.inject_error {
        inject_malformed_frame(&opt, &log)?;
    }

    let load = LoadSpec {
        connections: opt.connections,
        total_requests: opt.requests,
        duration: opt.duration,
        rps: opt.rps,
        mix: loadgen::parse_mix(&opt.mix)?,
        seed: opt.seed,
        specs: loadgen::default_spec_pool(),
        predict_dates: vec![2011.0, 2012.5],
    };
    log.info(format!(
        "loadgen: {} mode, {} connections, mix {}",
        if load.total_requests.is_some() {
            "fixed"
        } else if load.rps.is_some() {
            "rps"
        } else {
            "duration"
        },
        load.connections,
        opt.mix,
    ));
    let report = loadgen::run_load(&client, &load)?;

    // The daemon's own view: cache hit figures and the server-side
    // latency histograms the SLO verdict is evaluated against.
    let server_metrics = fetch_server_metrics(&client, &log);
    let summary = report.svc_load_summary(server_metrics.as_ref());
    log.info(format!(
        "{} requests ({} errors) in {:.0} ms -> {:.0} served/sec; cache hit rate {:.2}; SLO {}",
        summary.requests,
        summary.errors,
        summary.wall_ms,
        summary.served_per_sec,
        summary.hit_rate,
        match &summary.slo {
            Some(slo) if slo.met => "met",
            Some(_) => "MISSED",
            None => "unknown (stats fetch failed)",
        },
    ));
    for row in &summary.endpoints {
        log.info(format!(
            "  {:<14} {:>7} requests {:>5} errors  p50 {:>8.2} ms  p90 {:>8.2} ms  \
             p99 {:>8.2} ms  p999 {:>8.2} ms",
            row.endpoint, row.requests, row.errors, row.p50_ms, row.p90_ms, row.p99_ms, row.p999_ms,
        ));
    }

    let artifact = pure_load_artifact(&opt, &report, server_metrics.as_ref(), &summary)?;
    std::fs::write(&opt.out, artifact.to_json_pretty()?)
        .map_err(|e| ResmodelError::io(&opt.out, e))?;
    log.info(format!("wrote {}", opt.out));
    Ok(())
}

/// One deliberately malformed frame on a raw connection: the daemon
/// answers with a typed error frame and dumps the flight recorder for
/// that request — the failure path CI greps for.
fn inject_malformed_frame(opt: &Options, log: &Logger) -> Result<(), ResmodelError> {
    let wrap = |e: proto::FrameError| {
        ResmodelError::config(
            "loadgen inject",
            format!("malformed-frame probe failed: {e}"),
        )
    };
    let payload = b"this is not a resmodel.svc/1 request";
    let response = match (&opt.tcp, &opt.uds) {
        (Some(addr), None) => {
            let mut stream =
                std::net::TcpStream::connect(addr).map_err(|e| ResmodelError::io(addr, e))?;
            proto::write_frame(&mut stream, payload).map_err(wrap)?;
            proto::read_frame(&mut stream).map_err(wrap)?
        }
        #[cfg(unix)]
        (None, Some(path)) => {
            let mut stream = std::os::unix::net::UnixStream::connect(path)
                .map_err(|e| ResmodelError::io(path, e))?;
            proto::write_frame(&mut stream, payload).map_err(wrap)?;
            proto::read_frame(&mut stream).map_err(wrap)?
        }
        _ => return Ok(()),
    };
    match response {
        Some(frame) => log.info(format!(
            "injected malformed frame; daemon answered {} bytes (flight dump forced server-side)",
            frame.len(),
        )),
        None => log.warn("injected malformed frame; daemon closed without responding"),
    }
    Ok(())
}

/// Final `stats` round-trip, parsed back into the daemon's
/// [`MetricsReport`]. Failure is logged, not fatal — the artifact then
/// carries client-side figures only (and no SLO verdict).
fn fetch_server_metrics(client: &Client, log: &Logger) -> Option<MetricsReport> {
    match client.stats() {
        Ok(reply) => {
            let metrics = reply.body.get("metrics")?;
            match serde_json::from_value::<MetricsReport>(metrics) {
                Ok(metrics) => Some(metrics),
                Err(e) => {
                    log.warn(format!("stats metrics block did not parse: {e}"));
                    None
                }
            }
        }
        Err(e) => {
            log.warn(format!("final stats fetch failed: {e}"));
            None
        }
    }
}

/// Assemble the `/8` pure load artifact: empty `jobs`, zeroed sweep
/// totals, the daemon's metrics + condensed svc block when the stats
/// fetch succeeded, and the `svc_load` block carrying the measured
/// figures.
fn pure_load_artifact(
    opt: &Options,
    report: &loadgen::LoadReport,
    server_metrics: Option<&MetricsReport>,
    summary: &resmodel::sweep::SvcLoadSummary,
) -> Result<BenchArtifact, ResmodelError> {
    Ok(BenchArtifact {
        schema: BENCH_SCHEMA.to_owned(),
        sweep: "svc_load".to_owned(),
        seed: opt.seed,
        threads: report.connections,
        totals: SweepTotals {
            jobs: 0,
            total_hosts: 0,
            wall_ms: report.wall_ms,
            hosts_per_sec: 0.0,
            peak_job_wall_ms: 0.0,
            threads: report.connections,
            stage_ms: StageTimings::default(),
        },
        peak_rss_bytes: server_metrics.and_then(|m| m.peak_rss_bytes),
        metrics: server_metrics.cloned(),
        svc: server_metrics.and_then(SvcSummary::from_metrics),
        store: None,
        dispatch_scaling: None,
        svc_load: Some(summary.clone()),
        jobs: Vec::new(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::{parse_args, parse_duration};
    use resmodel_bench::cli::Args;
    use std::time::Duration;

    #[test]
    fn durations_parse_in_all_spellings() {
        assert_eq!(parse_duration("2s").unwrap(), Duration::from_secs(2));
        assert_eq!(
            parse_duration("1500ms").unwrap(),
            Duration::from_millis(1500)
        );
        assert_eq!(parse_duration("2").unwrap(), Duration::from_secs(2));
        assert_eq!(parse_duration("0.5s").unwrap(), Duration::from_millis(500));
        assert!(parse_duration("soon").is_err());
        assert!(parse_duration("-1s").is_err());
        assert!(parse_duration("0").is_err());
    }

    #[test]
    fn flags_parse() {
        let opt = parse_args(Args::new(vec![
            "--uds".into(),
            "/tmp/r.sock".into(),
            "--connections".into(),
            "8".into(),
            "--duration".into(),
            "2s".into(),
            "--mix".into(),
            "stats".into(),
            "--inject-error".into(),
        ]))
        .unwrap();
        assert_eq!(opt.uds.as_deref(), Some("/tmp/r.sock"));
        assert_eq!(opt.connections, 8);
        assert_eq!(opt.duration, Some(Duration::from_secs(2)));
        assert_eq!(opt.mix, "stats");
        assert!(opt.inject_error);
        assert_eq!(opt.out, "BENCH_svc.json");
    }
}
