//! `resmodeld` — the model query daemon: serve `resmodel.svc/1` over
//! TCP or a Unix-domain socket, answering pipeline/sweep/dispatch/
//! predict queries from a content-addressed model cache (N concurrent
//! identical requests trigger exactly one fit; repeat queries replay
//! the cached report byte-exactly).
//!
//! The same binary doubles as the one-shot client:
//!
//! ```text
//! resmodeld --uds /tmp/resmodel.sock --cache 32 &
//! resmodeld --query run_pipeline --uds /tmp/resmodel.sock --spec spec.json
//! resmodeld --query stats --uds /tmp/resmodel.sock
//! resmodeld --query shutdown --uds /tmp/resmodel.sock
//! ```
//!
//! In query mode the response body is printed to stdout (or `--out`)
//! while cache metadata (hit/miss, spec hash) goes to stderr, so the
//! output pipes and diffs cleanly — CI compares two identical queries
//! byte-for-byte and greps `stats` for the cache hit.

#![warn(clippy::unwrap_used)]

use resmodel::obs::Collector;
use resmodel::ResmodelError;
use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_error::ArgError;
use resmodel_svc::{serve_tcp, Client, Endpoint, Reply, ServerConfig};
use std::io::Write as _;

const USAGE: Usage = Usage {
    bin: "resmodeld",
    summary: "serve (or query) the resmodel.svc/1 content-addressed model cache",
    usage: &[
        "resmodeld (--tcp ADDR | --uds PATH) [--cache N] [--threads N] [--quiet | --verbose]",
        "resmodeld --query ENDPOINT (--tcp ADDR | --uds PATH) [--spec FILE] [--dates Y1,Y2,...]",
        "resmodeld --query ENDPOINT ... [--out FILE] [--quiet | --verbose]",
    ],
    flags: &[
        FlagHelp {
            flag: "--tcp ADDR",
            help: "serve on (or connect to) a TCP address, e.g. 127.0.0.1:7171",
        },
        FlagHelp {
            flag: "--uds PATH",
            help: "serve on (or connect to) a Unix-domain socket path",
        },
        FlagHelp {
            flag: "--cache N",
            help: "serve: model cache capacity in entries (default 64)",
        },
        FlagHelp {
            flag: "--threads N",
            help: "serve: data-parallel threads per request (default: all cores)",
        },
        FlagHelp {
            flag: "--cache-dir DIR",
            help: "serve: spill source traces to DIR as resmodel.trace/1 files",
        },
        FlagHelp {
            flag: "--max-conns N",
            help: "serve: refuse connections beyond N concurrent with a typed `busy` frame",
        },
        FlagHelp {
            flag: "--events-out FILE",
            help: "serve: append span/mark trace events to FILE as JSONL (flushed on shutdown)",
        },
        FlagHelp {
            flag: "--flight-out FILE",
            help:
                "serve: append flight-recorder dumps for failing requests to FILE (default stderr)",
        },
        FlagHelp {
            flag: "--flight-events N",
            help: "serve: flight-recorder ring capacity in events (default 4096, 0 disables)",
        },
        FlagHelp {
            flag: "--slo FILE",
            help: "serve: latency SLO targets as SloSpec JSON (default: built-in service SLOs)",
        },
        FlagHelp {
            flag: "--query ENDPOINT",
            help: "one-shot client: run_pipeline|run_sweep|dispatch|predict|stats|shutdown",
        },
        FlagHelp {
            flag: "--spec FILE",
            help: "query: the PipelineSpec/SweepSpec JSON document to send",
        },
        FlagHelp {
            flag: "--dates LIST",
            help: "query predict: comma-separated fractional years, e.g. 2012.0,2014.0",
        },
        FlagHelp {
            flag: "--out FILE",
            help: "query: write the response body to FILE instead of stdout",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

fn main() {
    cli::run_main(&USAGE, real_main);
}

struct Options {
    tcp: Option<String>,
    uds: Option<String>,
    cache: usize,
    cache_dir: Option<String>,
    threads: Option<usize>,
    max_conns: Option<usize>,
    events_out: Option<String>,
    flight_out: Option<String>,
    flight_events: usize,
    slo: Option<String>,
    query: Option<String>,
    spec: Option<String>,
    dates: Option<String>,
    out: Option<String>,
    verbosity: Verbosity,
}

fn parse_args(mut args: Args) -> Result<Options, ResmodelError> {
    let mut opt = Options {
        tcp: None,
        uds: None,
        cache: 64,
        cache_dir: None,
        threads: None,
        max_conns: None,
        events_out: None,
        flight_out: None,
        flight_events: resmodel_svc::server::DEFAULT_FLIGHT_EVENTS,
        slo: None,
        query: None,
        spec: None,
        dates: None,
        out: None,
        verbosity: Verbosity::default(),
    };
    while let Some(token) = args.next_token() {
        match token.as_str() {
            "--tcp" => opt.tcp = Some(args.value("--tcp")?),
            "--uds" => opt.uds = Some(args.value("--uds")?),
            "--cache" => opt.cache = args.parse("--cache", "a positive integer")?,
            "--cache-dir" => opt.cache_dir = Some(args.value("--cache-dir")?),
            "--threads" => opt.threads = Some(args.parse("--threads", "a positive integer")?),
            "--max-conns" => {
                opt.max_conns = Some(args.parse("--max-conns", "a positive integer")?);
            }
            "--events-out" => opt.events_out = Some(args.value("--events-out")?),
            "--flight-out" => opt.flight_out = Some(args.value("--flight-out")?),
            "--flight-events" => {
                opt.flight_events = args.parse("--flight-events", "an integer (0 disables)")?;
            }
            "--slo" => opt.slo = Some(args.value("--slo")?),
            "--query" => opt.query = Some(args.value("--query")?),
            "--spec" => opt.spec = Some(args.value("--spec")?),
            "--dates" => opt.dates = Some(args.value("--dates")?),
            "--out" => opt.out = Some(args.value("--out")?),
            "--quiet" => opt.verbosity = Verbosity::Quiet,
            "--verbose" => opt.verbosity = Verbosity::Verbose,
            "--help" | "-h" => cli::help_exit(&USAGE),
            other => return cli::unknown_flag(other),
        }
    }
    Ok(opt)
}

fn real_main(args: Args) -> Result<(), ResmodelError> {
    let opt = parse_args(args)?;
    if opt.tcp.is_some() && opt.uds.is_some() {
        return cli::usage_error("--tcp and --uds are mutually exclusive");
    }
    if opt.tcp.is_none() && opt.uds.is_none() {
        return cli::usage_error("one of --tcp or --uds is required");
    }
    let log = Logger::new(opt.verbosity);
    match &opt.query {
        Some(endpoint) => run_query(&opt, endpoint, &log),
        None => run_server(&opt, &log),
    }
}

fn run_server(opt: &Options, log: &Logger) -> Result<(), ResmodelError> {
    if opt.cache == 0 {
        return cli::usage_error("--cache must be at least 1");
    }
    if opt.max_conns == Some(0) {
        return cli::usage_error("--max-conns must be at least 1");
    }
    let slo = match &opt.slo {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| ResmodelError::io(path, e))?;
            serde_json::from_str(&text).map_err(|e| ResmodelError::json("--slo file", e))?
        }
        None => resmodel::obs::SloSpec::svc_default(),
    };
    let config = ServerConfig {
        capacity: opt.cache,
        threads: opt.threads,
        trace_dir: opt.cache_dir.clone().map(std::path::PathBuf::from),
        max_conns: opt.max_conns,
        flight_events: opt.flight_events,
        flight_out: opt.flight_out.clone().map(std::path::PathBuf::from),
        slo,
    };
    let obs = Collector::new();
    if let Some(path) = &opt.events_out {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ResmodelError::io(path, e))?;
        obs.set_events_sink(Box::new(std::io::BufWriter::new(file)));
        log.debug(format!("trace events stream to {path}"));
    }
    let handle = match (&opt.tcp, &opt.uds) {
        (Some(addr), None) => serve_tcp(addr, config, &obs)?,
        #[cfg(unix)]
        (None, Some(path)) => resmodel_svc::serve_uds(path, config, &obs)?,
        #[cfg(not(unix))]
        (None, Some(_)) => {
            return Err(ResmodelError::config(
                "resmodeld",
                "--uds requires a Unix platform",
            ))
        }
        _ => unreachable!("transport exclusivity is checked in real_main"),
    };
    log.info(format!(
        "resmodeld listening on {} (cache {} entries, {} request threads{})",
        handle.addr(),
        opt.cache,
        opt.threads
            .map_or_else(|| "all".to_owned(), |n| n.to_string()),
        opt.max_conns
            .map_or_else(String::new, |n| format!(", max {n} connections")),
    ));
    log.debug("send a `shutdown` query to stop");
    handle.wait();
    // Graceful shutdown must not lose buffered trace events: detach
    // the sink (so no connection thread can race a late write into a
    // dropped buffer) and flush what it holds.
    if let Some(mut sink) = obs.take_events_sink() {
        if let Err(e) = sink.flush() {
            log.warn(format!("events sink flush failed: {e}"));
        }
    }
    log.info("resmodeld stopped");
    Ok(())
}

fn run_query(opt: &Options, endpoint: &str, log: &Logger) -> Result<(), ResmodelError> {
    let endpoint = Endpoint::parse(endpoint).ok_or(ArgError::InvalidValue {
        flag: "--query".into(),
        value: endpoint.into(),
        expected: "run_pipeline, run_sweep, dispatch, predict, stats or shutdown",
    })?;
    let client = match (&opt.tcp, &opt.uds) {
        (Some(addr), None) => Client::tcp(addr.clone()),
        #[cfg(unix)]
        (None, Some(path)) => Client::uds(path.clone()),
        #[cfg(not(unix))]
        (None, Some(_)) => {
            return Err(ResmodelError::config(
                "resmodeld",
                "--uds requires a Unix platform",
            ))
        }
        _ => unreachable!("transport exclusivity is checked in real_main"),
    };

    let spec_text = opt
        .spec
        .as_ref()
        .map(|path| std::fs::read_to_string(path).map_err(|e| ResmodelError::io(path, e)))
        .transpose()?;
    let needs_spec = matches!(
        endpoint,
        Endpoint::RunPipeline | Endpoint::RunSweep | Endpoint::Dispatch | Endpoint::Predict
    );
    if needs_spec && spec_text.is_none() {
        return cli::usage_error("this endpoint requires --spec FILE");
    }

    let reply = match endpoint {
        Endpoint::RunPipeline | Endpoint::Dispatch => {
            let spec = pipeline_spec(spec_text.as_deref())?;
            match endpoint {
                Endpoint::RunPipeline => client.run_pipeline(&spec)?,
                _ => client.dispatch(&spec)?,
            }
        }
        Endpoint::Predict => {
            let spec = pipeline_spec(spec_text.as_deref())?;
            let dates = parse_dates(opt.dates.as_deref())?;
            client.predict(&spec, &dates)?
        }
        Endpoint::RunSweep => {
            let text = spec_text.as_deref().unwrap_or_default();
            let spec = resmodel::sweep::SweepSpec::from_json(text)?;
            client.run_sweep(&spec)?
        }
        Endpoint::Stats => client.stats()?,
        Endpoint::Shutdown => client.shutdown()?,
    };
    describe(&reply, log);
    let body = reply.body_pretty();
    match &opt.out {
        Some(path) => {
            std::fs::write(path, body.as_bytes()).map_err(|e| ResmodelError::io(path, e))?;
            log.info(format!("wrote {path}"));
        }
        None => println!("{body}"),
    }
    Ok(())
}

fn pipeline_spec(text: Option<&str>) -> Result<resmodel::pipeline::PipelineSpec, ResmodelError> {
    resmodel::pipeline::PipelineSpec::from_json(text.unwrap_or_default())
}

/// `--dates 2012.0,2014.0` → fractional years for the predict
/// endpoint.
fn parse_dates(raw: Option<&str>) -> Result<Vec<f64>, ResmodelError> {
    let raw = raw.ok_or_else(|| ArgError::MissingValue {
        flag: "--dates".into(),
    })?;
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>().map_err(|_| {
                ArgError::InvalidValue {
                    flag: "--dates".into(),
                    value: s.into(),
                    expected: "comma-separated fractional years",
                }
                .into()
            })
        })
        .collect()
}

/// Cache metadata on stderr — only for endpoints that cache (`stats`
/// and `shutdown` have no spec hash).
fn describe(reply: &Reply, log: &Logger) {
    if let Some(hash) = &reply.spec_hash {
        log.info(format!(
            "{} (spec {hash})",
            if reply.cached {
                "cache hit"
            } else {
                "cache miss"
            },
        ));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::{parse_args, parse_dates};
    use resmodel_bench::cli::Args;

    #[test]
    fn dates_parse_and_reject_garbage() {
        assert_eq!(
            parse_dates(Some("2012.0, 2014.5")).unwrap(),
            vec![2012.0, 2014.5]
        );
        assert!(parse_dates(Some("2012.0,soon")).is_err());
        assert!(parse_dates(None).is_err());
    }

    #[test]
    fn serve_and_query_flags_parse() {
        let opt = parse_args(Args::new(vec![
            "--uds".into(),
            "/tmp/r.sock".into(),
            "--cache".into(),
            "8".into(),
            "--quiet".into(),
        ]))
        .unwrap();
        assert_eq!(opt.uds.as_deref(), Some("/tmp/r.sock"));
        assert_eq!(opt.cache, 8);
        assert!(opt.query.is_none());

        let opt = parse_args(Args::new(vec![
            "--query".into(),
            "predict".into(),
            "--tcp".into(),
            "127.0.0.1:7171".into(),
            "--dates".into(),
            "2012.0".into(),
        ]))
        .unwrap();
        assert_eq!(opt.query.as_deref(), Some("predict"));
        assert_eq!(opt.dates.as_deref(), Some("2012.0"));
    }
}
