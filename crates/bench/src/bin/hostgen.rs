//! `hostgen` — the paper's public tool: automatically generate
//! realistic Internet end hosts for a chosen date.
//!
//! ```text
//! hostgen [--date YEAR] [--n COUNT] [--seed N] [--model paper|normal|grid]
//!         [--format csv|json] [--gpus]
//! ```
//!
//! Examples:
//!
//! ```text
//! hostgen --date 2010.67 --n 1000 --format csv > hosts.csv
//! hostgen --date 2014 --n 100 --format json --gpus
//! ```

use resmodel_baselines::{GridModel, NormalModel};
use resmodel_core::gpu_model::GpuModel;
use resmodel_core::{GeneratedHost, HostGenerator, HostModel};
use resmodel_stats::rng::seeded_substream;
use resmodel_trace::SimDate;

struct Options {
    date: f64,
    n: usize,
    seed: u64,
    model: String,
    format: String,
    gpus: bool,
}

fn parse_args() -> Options {
    let mut opt = Options {
        date: 2010.67,
        n: 100,
        seed: 42,
        model: "paper".into(),
        format: "csv".into(),
        gpus: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let bail = |msg: &str| -> ! {
        eprintln!("hostgen: {msg}");
        eprintln!(
            "usage: hostgen [--date YEAR] [--n COUNT] [--seed N] \
             [--model paper|normal|grid] [--format csv|json] [--gpus]"
        );
        std::process::exit(2);
    };
    while i < args.len() {
        let need = |i: usize| -> &str {
            args.get(i)
                .map(|s| s.as_str())
                .unwrap_or_else(|| bail("missing argument value"))
        };
        match args[i].as_str() {
            "--date" => {
                i += 1;
                opt.date = need(i).parse().unwrap_or_else(|_| bail("bad --date"));
            }
            "--n" => {
                i += 1;
                opt.n = need(i).parse().unwrap_or_else(|_| bail("bad --n"));
            }
            "--seed" => {
                i += 1;
                opt.seed = need(i).parse().unwrap_or_else(|_| bail("bad --seed"));
            }
            "--model" => {
                i += 1;
                opt.model = need(i).to_string();
            }
            "--format" => {
                i += 1;
                opt.format = need(i).to_string();
            }
            "--gpus" => opt.gpus = true,
            "--help" | "-h" => bail("help"),
            other => bail(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    opt
}

fn main() {
    let opt = parse_args();
    let date = SimDate::from_year(opt.date);

    let hosts: Vec<GeneratedHost> = match opt.model.as_str() {
        "paper" => HostModel::paper().generate_population(date, opt.n, opt.seed),
        "normal" => NormalModel::paper_like().generate_population(date, opt.n, opt.seed),
        "grid" => GridModel::paper_like().generate_population(date, opt.n, opt.seed),
        other => {
            eprintln!("hostgen: unknown model `{other}` (paper|normal|grid)");
            std::process::exit(2);
        }
    };

    // Optional GPUs: a presence/class/memory model with the paper's
    // published Section V-H statistics (clamped outside 2009-2010).
    let gpus: Vec<Option<(String, f64)>> = if opt.gpus {
        let gpu_model = paperlike_gpu_model();
        let mut rng = seeded_substream(opt.seed ^ 0x69b5, date.days().to_bits());
        hosts
            .iter()
            .map(|_| {
                gpu_model
                    .sample(date, &mut rng)
                    .map(|g| (g.class.name().to_string(), g.memory_mb))
            })
            .collect()
    } else {
        vec![None; hosts.len()]
    };

    match opt.format.as_str() {
        "csv" => {
            if opt.gpus {
                println!("cores,memory_mb,whetstone_mips,dhrystone_mips,avail_disk_gb,gpu_class,gpu_memory_mb");
            } else {
                println!("cores,memory_mb,whetstone_mips,dhrystone_mips,avail_disk_gb");
            }
            for (h, g) in hosts.iter().zip(&gpus) {
                print!(
                    "{},{:.1},{:.1},{:.1},{:.3}",
                    h.cores, h.memory_mb, h.whetstone_mips, h.dhrystone_mips, h.avail_disk_gb
                );
                if opt.gpus {
                    match g {
                        Some((class, mem)) => print!(",{class},{mem}"),
                        None => print!(",-,0"),
                    }
                }
                println!();
            }
        }
        "json" => {
            let rows: Vec<serde_json::Value> = hosts
                .iter()
                .zip(&gpus)
                .map(|(h, g)| {
                    let mut v = serde_json::json!({
                        "cores": h.cores,
                        "memory_mb": h.memory_mb,
                        "whetstone_mips": h.whetstone_mips,
                        "dhrystone_mips": h.dhrystone_mips,
                        "avail_disk_gb": h.avail_disk_gb,
                    });
                    if let Some((class, mem)) = g {
                        v["gpu"] = serde_json::json!({"class": class, "memory_mb": mem});
                    }
                    v
                })
                .collect();
            println!(
                "{}",
                serde_json::to_string_pretty(&rows).expect("serializable")
            );
        }
        other => {
            eprintln!("hostgen: unknown format `{other}` (csv|json)");
            std::process::exit(2);
        }
    }
}

/// A GPU model parameterised directly from the paper's Section V-H
/// numbers (presence 12.7% → 23.8% over Sep 2009 → Sep 2010).
fn paperlike_gpu_model() -> GpuModel {
    use resmodel_core::RatioLaw;
    use resmodel_trace::GpuClass;
    // presence = a·e^{b(year−2006)}: solve through the two endpoints.
    let b = (0.238f64 / 0.127).ln(); // per year
    let a = 0.127 / (b * 3.67f64).exp();
    GpuModel {
        presence: RatioLaw::new(a, b),
        class_shares: vec![
            (
                GpuClass::GeForce,
                RatioLaw::new(0.825 / (-0.26f64 * 3.67).exp(), -0.26),
            ),
            (
                GpuClass::Radeon,
                RatioLaw::new(0.122 / (0.95f64 * 3.67).exp(), 0.95),
            ),
            (
                GpuClass::Quadro,
                RatioLaw::new(0.047 / (-0.16f64 * 3.67).exp(), -0.16),
            ),
            (
                GpuClass::Other,
                RatioLaw::new(0.006 / (0.29f64 * 3.67).exp(), 0.29),
            ),
        ],
        // Fig 10 tier weights at Sep 2009 with mild drift toward bigger
        // memories (ratios decay slowly).
        memory_ratios: vec![
            RatioLaw::new(0.17, -0.05), // 128:256
            RatioLaw::new(0.73, -0.05), // 256:512
            RatioLaw::new(1.65, -0.10), // 512:768
            RatioLaw::new(1.14, -0.30), // 768:1024
            RatioLaw::new(17.5, -0.05), // 1024:1536
            RatioLaw::new(2.0, -0.05),  // 1536:2048
        ],
        presence_r: 1.0,
    }
}
