//! `hostgen` — the paper's public tool: automatically generate
//! realistic Internet end hosts for a chosen date.
//!
//! Examples:
//!
//! ```text
//! hostgen --date 2010.67 --n 1000 --format csv > hosts.csv
//! hostgen --date 2014 --n 100 --format json --gpus
//! ```

#![warn(clippy::unwrap_used)]

use resmodel_baselines::{GridModel, NormalModel};
use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_core::gpu_model::GpuModel;
use resmodel_core::{GeneratedHost, HostGenerator, HostModel};
use resmodel_error::{ArgError, ResmodelError};
use resmodel_stats::rng::seeded_substream;
use resmodel_trace::SimDate;

const USAGE: Usage = Usage {
    bin: "hostgen",
    summary: "generate realistic Internet end hosts for a chosen date",
    usage: &[
        "hostgen [--date YEAR] [--n COUNT] [--seed N] [--model paper|normal|grid]",
        "        [--format csv|json] [--gpus] [--quiet | --verbose]",
    ],
    flags: &[
        FlagHelp {
            flag: "--date YEAR",
            help: "generation date as a fractional year (default 2010.67)",
        },
        FlagHelp {
            flag: "--n COUNT",
            help: "number of hosts (default 100)",
        },
        FlagHelp {
            flag: "--seed N",
            help: "generation seed (default 42)",
        },
        FlagHelp {
            flag: "--model M",
            help: "generative model: paper|normal|grid (default paper)",
        },
        FlagHelp {
            flag: "--format F",
            help: "output format: csv|json (default csv)",
        },
        FlagHelp {
            flag: "--gpus",
            help: "also sample GPUs from the paper's Section V-H model",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail (per-model parameters, GPU tally)",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

struct Options {
    date: f64,
    n: usize,
    seed: u64,
    model: String,
    format: String,
    gpus: bool,
    verbosity: Verbosity,
}

fn main() {
    cli::run_main(&USAGE, real_main);
}

fn parse_args(mut args: Args) -> Result<Options, ResmodelError> {
    let mut opt = Options {
        date: 2010.67,
        n: 100,
        seed: 42,
        model: "paper".into(),
        format: "csv".into(),
        gpus: false,
        verbosity: Verbosity::default(),
    };
    while let Some(token) = args.next_token() {
        match token.as_str() {
            "--date" => opt.date = args.parse("--date", "a fractional year")?,
            "--n" => opt.n = args.parse("--n", "an integer")?,
            "--seed" => opt.seed = args.parse("--seed", "an integer")?,
            "--model" => opt.model = args.value("--model")?,
            "--format" => opt.format = args.value("--format")?,
            "--gpus" => opt.gpus = true,
            "--quiet" => opt.verbosity = Verbosity::Quiet,
            "--verbose" => opt.verbosity = Verbosity::Verbose,
            "--help" | "-h" => cli::help_exit(&USAGE),
            other => return cli::unknown_flag(other),
        }
    }
    Ok(opt)
}

fn real_main(args: Args) -> Result<(), ResmodelError> {
    let opt = parse_args(args)?;
    let date = SimDate::from_year(opt.date);
    let log = Logger::new(opt.verbosity);
    log.info(format!(
        "generating {} hosts at {:.2} (model {}, seed {})...",
        opt.n, opt.date, opt.model, opt.seed,
    ));

    let hosts: Vec<GeneratedHost> = match opt.model.as_str() {
        "paper" => HostModel::paper().generate_population(date, opt.n, opt.seed),
        "normal" => NormalModel::paper_like().generate_population(date, opt.n, opt.seed),
        "grid" => GridModel::paper_like().generate_population(date, opt.n, opt.seed),
        other => {
            return Err(ArgError::InvalidValue {
                flag: "--model".into(),
                value: other.into(),
                expected: "paper, normal or grid",
            }
            .into());
        }
    };

    // Optional GPUs: a presence/class/memory model with the paper's
    // published Section V-H statistics (clamped outside 2009-2010).
    let gpus: Vec<Option<(String, f64)>> = if opt.gpus {
        let gpu_model = paperlike_gpu_model();
        let mut rng = seeded_substream(opt.seed ^ 0x69b5, date.days().to_bits());
        hosts
            .iter()
            .map(|_| {
                gpu_model
                    .sample(date, &mut rng)
                    .map(|g| (g.class.name().to_string(), g.memory_mb))
            })
            .collect()
    } else {
        vec![None; hosts.len()]
    };
    if opt.gpus && log.debug_enabled() {
        let with_gpu = gpus.iter().filter(|g| g.is_some()).count();
        log.debug(format!(
            "GPU model sampled {with_gpu}/{} hosts with a GPU",
            hosts.len(),
        ));
    }

    match opt.format.as_str() {
        "csv" => {
            if opt.gpus {
                println!("cores,memory_mb,whetstone_mips,dhrystone_mips,avail_disk_gb,gpu_class,gpu_memory_mb");
            } else {
                println!("cores,memory_mb,whetstone_mips,dhrystone_mips,avail_disk_gb");
            }
            for (h, g) in hosts.iter().zip(&gpus) {
                print!(
                    "{},{:.1},{:.1},{:.1},{:.3}",
                    h.cores, h.memory_mb, h.whetstone_mips, h.dhrystone_mips, h.avail_disk_gb
                );
                if opt.gpus {
                    match g {
                        Some((class, mem)) => print!(",{class},{mem}"),
                        None => print!(",-,0"),
                    }
                }
                println!();
            }
        }
        "json" => {
            let rows: Vec<serde_json::Value> = hosts
                .iter()
                .zip(&gpus)
                .map(|(h, g)| {
                    let mut v = serde_json::json!({
                        "cores": h.cores,
                        "memory_mb": h.memory_mb,
                        "whetstone_mips": h.whetstone_mips,
                        "dhrystone_mips": h.dhrystone_mips,
                        "avail_disk_gb": h.avail_disk_gb,
                    });
                    if let Some((class, mem)) = g {
                        v["gpu"] = serde_json::json!({"class": class, "memory_mb": mem});
                    }
                    v
                })
                .collect();
            let json = serde_json::to_string_pretty(&rows)
                .map_err(|e| ResmodelError::json("host list", e))?;
            println!("{json}");
        }
        other => {
            return Err(ArgError::InvalidValue {
                flag: "--format".into(),
                value: other.into(),
                expected: "csv or json",
            }
            .into());
        }
    }
    Ok(())
}

/// A GPU model parameterised directly from the paper's Section V-H
/// numbers (presence 12.7% → 23.8% over Sep 2009 → Sep 2010).
fn paperlike_gpu_model() -> GpuModel {
    use resmodel_core::RatioLaw;
    use resmodel_trace::GpuClass;
    // presence = a·e^{b(year−2006)}: solve through the two endpoints.
    let b = (0.238f64 / 0.127).ln(); // per year
    let a = 0.127 / (b * 3.67f64).exp();
    GpuModel {
        presence: RatioLaw::new(a, b),
        class_shares: vec![
            (
                GpuClass::GeForce,
                RatioLaw::new(0.825 / (-0.26f64 * 3.67).exp(), -0.26),
            ),
            (
                GpuClass::Radeon,
                RatioLaw::new(0.122 / (0.95f64 * 3.67).exp(), 0.95),
            ),
            (
                GpuClass::Quadro,
                RatioLaw::new(0.047 / (-0.16f64 * 3.67).exp(), -0.16),
            ),
            (
                GpuClass::Other,
                RatioLaw::new(0.006 / (0.29f64 * 3.67).exp(), 0.29),
            ),
        ],
        // Fig 10 tier weights at Sep 2009 with mild drift toward bigger
        // memories (ratios decay slowly).
        memory_ratios: vec![
            RatioLaw::new(0.17, -0.05), // 128:256
            RatioLaw::new(0.73, -0.05), // 256:512
            RatioLaw::new(1.65, -0.10), // 512:768
            RatioLaw::new(1.14, -0.30), // 768:1024
            RatioLaw::new(17.5, -0.05), // 1024:1536
            RatioLaw::new(2.0, -0.05),  // 1536:2048
        ],
        presence_r: 1.0,
    }
}
