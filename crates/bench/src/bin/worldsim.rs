//! `worldsim` — run the synthetic volunteer-computing world and write
//! the recorded measurement trace as CSV (the format of
//! `resmodel_trace::csv`).
//!
//! ```text
//! worldsim [--scale S] [--seed N] [--raw] [--out FILE]
//! ```
//!
//! Without `--out` the trace is written to stdout. `--raw` skips
//! sanitization (keeps corrupt hosts).

use resmodel_bench::{build_raw_world, build_world};
use std::io::Write;

fn main() {
    let mut scale = resmodel_bench::DEFAULT_SCALE;
    let mut seed = resmodel_bench::DEFAULT_SEED;
    let mut raw = false;
    let mut out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--seed needs an integer"));
            }
            "--raw" => raw = true,
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| bail("--out needs a path")));
            }
            other => bail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    eprintln!("simulating world (scale {scale}, seed {seed})...");
    let trace = if raw {
        build_raw_world(scale, seed)
    } else {
        build_world(scale, seed)
    };
    eprintln!("writing {} hosts...", trace.len());

    let result = match out {
        Some(path) => {
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| bail(&format!("cannot create {path}: {e}")));
            resmodel_trace::csv::write_trace(&trace, std::io::BufWriter::new(file))
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let r = resmodel_trace::csv::write_trace(&trace, &mut lock);
            let _ = lock.flush();
            r
        }
    };
    if let Err(e) = result {
        bail(&format!("write failed: {e}"));
    }
    eprintln!("done.");
}

fn bail(msg: &str) -> ! {
    eprintln!("worldsim: {msg}");
    eprintln!("usage: worldsim [--scale S] [--seed N] [--raw] [--out FILE]");
    std::process::exit(2);
}
