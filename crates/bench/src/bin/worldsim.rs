//! `worldsim` — run a synthetic host population and write the recorded
//! measurement trace as CSV (the format of `resmodel_trace::csv`).
//!
//! The default mode runs the BOINC measurement loop. `--engine` runs
//! the population-dynamics engine instead with one of the built-in
//! scenarios and exports the fleet. Without `--out` the trace is
//! written to stdout. `--raw` skips sanitization (BOINC mode only).

#![warn(clippy::unwrap_used)]

use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_bench::{build_popsim_world, build_raw_world, build_world};
use resmodel_error::{ArgError, ResmodelError};
use resmodel_popsim::Scenario;
use std::io::Write;

const USAGE: Usage = Usage {
    bin: "worldsim",
    summary: "simulate a host population and write its measurement trace as CSV",
    usage: &[
        "worldsim [--scale S] [--seed N] [--raw] [--out FILE]",
        "worldsim --engine SCENARIO [--hosts N] [--seed N] [--out FILE]",
    ],
    flags: &[
        FlagHelp {
            flag: "--scale S",
            help: "BOINC-mode world scale (default 0.004)",
        },
        FlagHelp {
            flag: "--seed N",
            help: "world seed (default 20110620)",
        },
        FlagHelp {
            flag: "--raw",
            help: "skip sanitization (BOINC mode only)",
        },
        FlagHelp {
            flag: "--engine SCENARIO",
            help: "run a popsim scenario: steady-state|flash-crowd|gpu-wave|market-shift",
        },
        FlagHelp {
            flag: "--hosts N",
            help: "cap the scenario's arrivals (engine mode only; 0 = scenario default)",
        },
        FlagHelp {
            flag: "--out FILE",
            help: "output path (default stdout)",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

fn main() {
    cli::run_main(&USAGE, real_main);
}

fn real_main(mut args: Args) -> Result<(), ResmodelError> {
    let mut scale = resmodel_bench::DEFAULT_SCALE;
    let mut scale_given = false;
    let mut seed = resmodel_bench::DEFAULT_SEED;
    let mut raw = false;
    let mut out: Option<String> = None;
    let mut engine: Option<String> = None;
    let mut hosts: Option<usize> = None;
    let mut verbosity = Verbosity::default();

    while let Some(token) = args.next_token() {
        match token.as_str() {
            "--scale" => {
                scale_given = true;
                scale = args.parse("--scale", "a number")?;
            }
            "--seed" => seed = args.parse("--seed", "an integer")?,
            "--raw" => raw = true,
            "--engine" => engine = Some(args.value("--engine")?),
            "--hosts" => hosts = Some(args.parse("--hosts", "an integer")?),
            "--out" => out = Some(args.value("--out")?),
            "--quiet" => verbosity = Verbosity::Quiet,
            "--verbose" => verbosity = Verbosity::Verbose,
            "--help" | "-h" => cli::help_exit(&USAGE),
            other => return cli::unknown_flag(other),
        }
    }

    // Reject flags that belong to the other mode instead of silently
    // ignoring them.
    if engine.is_some() {
        if scale_given {
            return cli::usage_error("--scale applies to the BOINC mode, not --engine");
        }
        if raw {
            return cli::usage_error(
                "--raw applies to the BOINC mode, not --engine (engine traces are not sanitized)",
            );
        }
    } else if hosts.is_some() {
        return cli::usage_error("--hosts requires --engine (use --scale for the BOINC mode)");
    }

    let log = Logger::new(verbosity);
    let trace = match engine {
        Some(name) => {
            let scenario = Scenario::builtin(&name, seed).ok_or(ArgError::InvalidValue {
                flag: "--engine".into(),
                value: name.clone(),
                expected: "steady-state, flash-crowd, gpu-wave or market-shift",
            })?;
            let hosts = hosts.unwrap_or(0);
            log.info(format!(
                "running population engine ({name}, seed {seed}, hosts {hosts})..."
            ));
            build_popsim_world(scenario, hosts)?
        }
        None => {
            log.info(format!("simulating world (scale {scale}, seed {seed})..."));
            if raw {
                build_raw_world(scale, seed)
            } else {
                build_world(scale, seed)
            }
        }
    };
    log.info(format!("writing {} hosts...", trace.len()));

    match out {
        Some(path) => {
            let file = std::fs::File::create(&path).map_err(|e| ResmodelError::io(&path, e))?;
            let mut writer = std::io::BufWriter::new(file);
            resmodel_trace::csv::write_trace(&trace, &mut writer)?;
            // Flush explicitly: BufWriter's Drop swallows I/O errors,
            // which would turn a truncated file into a silent success.
            writer.flush().map_err(|e| ResmodelError::io(&path, e))?;
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            resmodel_trace::csv::write_trace(&trace, &mut lock)?;
            lock.flush().map_err(|e| ResmodelError::io("stdout", e))?;
        }
    }
    log.info("done.");
    Ok(())
}
