//! `worldsim` — run a synthetic host population and write the recorded
//! measurement trace as CSV (the format of `resmodel_trace::csv`).
//!
//! ```text
//! worldsim [--scale S] [--seed N] [--raw] [--out FILE]
//! worldsim --engine SCENARIO [--hosts N] [--seed N] [--out FILE]
//! ```
//!
//! The default mode runs the BOINC measurement loop. `--engine` runs
//! the population-dynamics engine instead with one of the built-in
//! scenarios (`steady-state`, `flash-crowd`, `gpu-wave`,
//! `market-shift`) and exports the fleet. Without `--out` the trace is
//! written to stdout. `--raw` skips sanitization (BOINC mode only).

use resmodel_bench::{build_popsim_world, build_raw_world, build_world};
use resmodel_popsim::Scenario;
use std::io::Write;

fn main() {
    let mut scale = resmodel_bench::DEFAULT_SCALE;
    let mut scale_given = false;
    let mut seed = resmodel_bench::DEFAULT_SEED;
    let mut raw = false;
    let mut out: Option<String> = None;
    let mut engine: Option<String> = None;
    let mut hosts: Option<usize> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale_given = true;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--scale needs a number"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--seed needs an integer"));
            }
            "--raw" => raw = true,
            "--engine" => {
                i += 1;
                engine = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| bail("--engine needs a scenario")),
                );
            }
            "--hosts" => {
                i += 1;
                hosts = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--hosts needs an integer")),
                );
            }
            "--out" => {
                i += 1;
                out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| bail("--out needs a path")),
                );
            }
            other => bail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    // Reject flags that belong to the other mode instead of silently
    // ignoring them.
    if engine.is_some() {
        if scale_given {
            bail("--scale applies to the BOINC mode, not --engine");
        }
        if raw {
            bail("--raw applies to the BOINC mode, not --engine (engine traces are not sanitized)");
        }
    } else if hosts.is_some() {
        bail("--hosts requires --engine (use --scale for the BOINC mode)");
    }

    let trace = match engine {
        Some(name) => {
            let scenario = Scenario::builtin(&name, seed).unwrap_or_else(|| {
                bail(&format!(
                    "unknown scenario `{name}` (try steady-state, flash-crowd, gpu-wave, market-shift)"
                ))
            });
            let hosts = hosts.unwrap_or(0);
            eprintln!("running population engine ({name}, seed {seed}, hosts {hosts})...");
            build_popsim_world(scenario, hosts)
                .unwrap_or_else(|e| bail(&format!("invalid scenario: {e}")))
        }
        None => {
            eprintln!("simulating world (scale {scale}, seed {seed})...");
            if raw {
                build_raw_world(scale, seed)
            } else {
                build_world(scale, seed)
            }
        }
    };
    eprintln!("writing {} hosts...", trace.len());

    let result = match out {
        Some(path) => {
            let file = std::fs::File::create(&path)
                .unwrap_or_else(|e| bail(&format!("cannot create {path}: {e}")));
            resmodel_trace::csv::write_trace(&trace, std::io::BufWriter::new(file))
        }
        None => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let r = resmodel_trace::csv::write_trace(&trace, &mut lock);
            let _ = lock.flush();
            r
        }
    };
    if let Err(e) = result {
        bail(&format!("write failed: {e}"));
    }
    eprintln!("done.");
}

fn bail(msg: &str) -> ! {
    eprintln!("worldsim: {msg}");
    eprintln!("usage: worldsim [--scale S] [--seed N] [--raw] [--out FILE]");
    eprintln!("       worldsim --engine SCENARIO [--hosts N] [--seed N] [--out FILE]");
    std::process::exit(2);
}
