//! `repro` — regenerate every table and figure of the paper from the
//! synthetic measurement substrate.
//!
//! Usage:
//!
//! ```text
//! repro [--scale S] [--seed N] <experiment>...
//! repro all
//! ```
//!
//! Experiments: `fig1 fig2 fig3 table1 table2 table3 fig4 table4 fig6
//! table5 fig8 table6 fig9 table7 fig12 table8 fig13 fig14 fig15
//! table10 sanity ablation churn gpumodel`.

use resmodel_allocsim::{run_utility_experiment, AppProfile, UtilityExperimentConfig};
use resmodel_baselines::{GridModel, NormalModel};
use resmodel_bench::{build_raw_world, build_world, fig15_dates, fit_dates, section};
use resmodel_core::fit::{
    core_fractions, fit_host_model, lifetime_weibull, pcm_fractions, select_resource_family,
    FitConfig, FitReport,
};
use resmodel_core::predict::{memory_prediction, moment_prediction, multicore_prediction};
use resmodel_core::validate::{compare_populations, generated_correlation_matrix};
use resmodel_core::{GeneratedHost, HostGenerator, HostModel};
use resmodel_stats::describe::{Histogram, Summary};
use resmodel_stats::ks::SubsampleConfig;
use resmodel_stats::rng::seeded;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{CpuFamily, OsFamily, SimDate, Trace};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = resmodel_bench::DEFAULT_SCALE;
    let mut seed = resmodel_bench::DEFAULT_SEED;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--scale needs a number");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs an integer");
                    std::process::exit(2);
                });
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }

    eprintln!("building world (scale {scale}, seed {seed})...");
    let raw = build_raw_world(scale, seed);
    let trace = build_world(scale, seed);
    eprintln!(
        "world ready: {} hosts ({} pre-sanitization)",
        trace.len(),
        raw.len()
    );
    eprintln!("fitting model...");
    let report = fit_host_model(&trace, &FitConfig::default()).expect("model fit");

    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    if want("sanity") {
        sanity(&raw, &trace);
    }
    if want("fig1") {
        fig1(&trace);
    }
    if want("fig2") {
        fig2(&trace);
    }
    if want("fig3") {
        fig3(&trace);
    }
    if want("table1") {
        table1(&trace);
    }
    if want("table2") {
        table2(&trace);
    }
    if want("table3") {
        table3(&report);
    }
    if want("fig4") {
        fig4(&trace);
    }
    if want("table4") {
        table4(&report);
    }
    if want("fig6") {
        fig6(&trace);
    }
    if want("table5") {
        table5(&report);
    }
    if want("fig8") {
        fig8(&trace, seed);
    }
    if want("table6") {
        table6(&report);
    }
    if want("fig9") {
        fig9(&trace, seed);
    }
    if want("table7") {
        table7(&trace);
    }
    if want("fig12") {
        fig12(&trace, &report.model, seed);
    }
    if want("table8") {
        table8(&report.model, seed);
    }
    if want("fig13") {
        fig13(&report.model);
    }
    if want("fig14") {
        fig14(&report.model);
    }
    if want("fig15") {
        fig15(&trace, &report, seed);
    }
    if want("table10") {
        table10(&report.model);
    }
    if want("ablation") {
        ablation(&trace, &report, seed);
    }
    if want("churn") {
        churn(&trace);
    }
    if want("gpumodel") {
        gpumodel(&trace);
    }
}

/// Section V-B numbers: sanitization and population overview.
fn sanity(raw: &Trace, trace: &Trace) {
    section("Sanity: sanitization (paper Section V-B)");
    let discarded = raw.len() - trace.len();
    println!(
        "discarded {} of {} hosts ({:.3}%; paper: 3361 hosts, 0.12%)",
        discarded,
        raw.len(),
        discarded as f64 / raw.len() as f64 * 100.0
    );
}

/// Fig 1: host lifetime PDF/CDF and Weibull fit.
fn fig1(trace: &Trace) {
    section("Fig 1: host lifetimes");
    let cutoff = SimDate::from_year(2010.5);
    let lifetimes = trace.lifetimes(cutoff);
    let s = Summary::of(&lifetimes).expect("non-empty lifetimes");
    println!(
        "n = {}, mean = {:.1} days (paper 192.4), median = {:.2} days (paper 71.14)",
        s.n, s.mean, s.median
    );
    let w = lifetime_weibull(trace, cutoff).expect("weibull fit");
    println!(
        "Weibull fit: k = {:.3} (paper 0.58), lambda = {:.1} (paper 135)",
        w.shape(),
        w.scale()
    );
    let hist = Histogram::with_range(&lifetimes, 0.0, 1400.0, 14).expect("hist");
    println!("{:>12} {:>10} {:>8}", "days", "pdf", "cdf");
    let pdf = hist.pdf_series();
    let cdf = hist.cdf_series();
    for (p, c) in pdf.iter().zip(&cdf) {
        println!("{:>12.0} {:>10.5} {:>8.3}", p.0, p.1, c.1);
    }
}

/// Fig 2: active hosts and resource means/std-devs over time.
fn fig2(trace: &Trace) {
    section("Fig 2: host resource overview (yearly)");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>15} {:>15} {:>13}",
        "year", "active", "cores", "memory MB", "whet MIPS", "dhry MIPS", "disk GB"
    );
    for year in 2006..=2010 {
        let d = SimDate::from_year(year as f64);
        let stat = |col: ResourceColumn| {
            let data = trace.column_at(d, col);
            Summary::of(&data).expect("population non-empty")
        };
        let c = stat(ResourceColumn::Cores);
        let m = stat(ResourceColumn::Memory);
        let w = stat(ResourceColumn::Whetstone);
        let dh = stat(ResourceColumn::Dhrystone);
        let k = stat(ResourceColumn::Disk);
        println!(
            "{year:>6} {:>8} {:>6.2}±{:<5.2} {:>8.0}±{:<5.0} {:>9.0}±{:<5.0} {:>9.0}±{:<5.0} {:>7.1}±{:<5.1}",
            trace.active_count(d),
            c.mean, c.std_dev, m.mean, m.std_dev, w.mean, w.std_dev, dh.mean, dh.std_dev, k.mean, k.std_dev
        );
    }
    println!("paper 2006→2010: cores 1.28→2.17, memory 846→2376 MB, whet 1200→1861, dhry 2168→4120, disk 32.9→98.0 GB");
}

/// Fig 3: creation date vs average lifetime.
fn fig3(trace: &Trace) {
    section("Fig 3: host creation date vs average lifetime");
    let pairs = trace.creation_vs_lifetime(SimDate::from_year(2010.4));
    println!("{:>6} {:>10} {:>14}", "year", "hosts", "mean life (d)");
    for year in 2005..=2009 {
        let bucket: Vec<f64> = pairs
            .iter()
            .filter(|(y, _)| *y >= year as f64 && *y < (year + 1) as f64)
            .map(|(_, l)| *l)
            .collect();
        if !bucket.is_empty() {
            let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
            println!("{year:>6} {:>10} {:>14.1}", bucket.len(), mean);
        }
    }
    println!("(paper: declines from ~330 days for 2005 hosts to ~130 days for 2009 hosts)");
}

/// Table I: CPU family composition by year.
fn table1(trace: &Trace) {
    section("Table I: host processors over time (% of active)");
    print!("{:<18}", "family");
    for y in 2006..=2010 {
        print!(" {y:>6}");
    }
    println!();
    for fam in CpuFamily::ALL {
        print!("{:<18}", fam.name());
        for y in 2006..=2010 {
            let pop = trace.population_at(SimDate::from_year(y as f64));
            let share = pop.iter().filter(|v| v.cpu == fam).count() as f64 / pop.len() as f64;
            print!(" {:>5.1}%", share * 100.0);
        }
        println!();
    }
}

/// Table II: OS composition by year.
fn table2(trace: &Trace) {
    section("Table II: host OS over time (% of active)");
    print!("{:<16}", "family");
    for y in 2006..=2010 {
        print!(" {y:>6}");
    }
    println!();
    for fam in OsFamily::ALL {
        print!("{:<16}", fam.name());
        for y in 2006..=2010 {
            let pop = trace.population_at(SimDate::from_year(y as f64));
            let share = pop.iter().filter(|v| v.os == fam).count() as f64 / pop.len() as f64;
            print!(" {:>5.1}%", share * 100.0);
        }
        println!();
    }
}

/// Table III: resource correlation matrix.
fn table3(report: &FitReport) {
    section("Table III: correlation coefficients between host measurements");
    let names = ["Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"];
    print!("{:<10}", "");
    for n in names {
        print!("{n:>9}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:<10}");
        for j in 0..6 {
            print!("{:>9.3}", report.correlation.get(i, j));
        }
        println!();
    }
    println!("paper: cores-mem 0.606, mem/core-whet 0.250, mem/core-dhry 0.306, whet-dhry 0.639, disk ~0");
}

/// Fig 4: multicore fractions over time.
fn fig4(trace: &Trace) {
    section("Fig 4: host multicore distribution");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}",
        "year", "1 core", "2-3", "4-7", "8-15"
    );
    for y in 2006..=2010 {
        let f = core_fractions(trace, SimDate::from_year(y as f64));
        println!(
            "{y:>6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
    }
    println!("(paper 2006: 1-core ~72%; 2010: 2-core dominant, ~18% with ≥4 cores)");
}

/// Table IV (and the data behind Fig 5): core ratio laws.
fn table4(report: &FitReport) {
    section("Table IV: core ratio model values (fit from trace)");
    println!("{:<20} {:>9} {:>9} {:>9}", "ratio", "a", "b", "r");
    for rowv in &report.core_laws {
        println!(
            "{:<20} {:>9.3} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!("paper: 1:2 (3.369, -0.5004, -0.9984); 2:4 (17.49, -0.3217, -0.9730); 4:8 (12.8, -0.2377, -0.9557)");
}

/// Fig 6: per-core-memory histograms in 2006/2008/2010.
fn fig6(trace: &Trace) {
    section("Fig 6: distribution of per-core memory (% of total)");
    println!(
        "{:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "year", "256", "512", "768", "1024", "1536", "2048", "4096"
    );
    for &y in &[2006.0, 2008.0, 2010.0] {
        let f = pcm_fractions(trace, SimDate::from_year(y), 0.15);
        print!("{y:>6.0}");
        for v in f {
            print!(" {:>6.1}%", v * 100.0);
        }
        println!();
    }
    println!("(paper: ≤256MB/core falls 19%→4%; 1024MB rises 21%→32%; 2048MB 2%→10%)");
}

/// Table V: per-core-memory ratio laws.
fn table5(report: &FitReport) {
    section("Table V: per-core-memory ratio model values (fit from trace)");
    println!("{:<22} {:>9} {:>9} {:>9}", "ratio", "a", "b", "r");
    for rowv in &report.pcm_laws {
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!("paper: e.g. 256MB:512MB (0.5829, -0.2517); 2GB:4GB (4.951, -0.1008)");
}

/// Fig 8: benchmark histograms + KS family selection.
fn fig8(trace: &Trace, seed: u64) {
    section("Fig 8: Dhrystone/Whetstone histograms and KS family selection");
    let mut rng = seeded(seed ^ 0x5eed);
    for &y in &[2006.0, 2008.0, 2010.0] {
        let d = SimDate::from_year(y);
        for (col, label) in [
            (ResourceColumn::Dhrystone, "dhrystone"),
            (ResourceColumn::Whetstone, "whetstone"),
        ] {
            let data = trace.column_at(d, col);
            let s = Summary::of(&data).expect("non-empty");
            let ranked =
                select_resource_family(trace, d, col, SubsampleConfig::default(), &mut rng)
                    .expect("selection");
            println!(
                "{y:.0} {label:<10} mean {:>6.0} median {:>6.0} sd {:>6.0}  best fit: {:<11} (avg p = {:.3})",
                s.mean,
                s.median,
                s.std_dev,
                ranked[0].family.name(),
                ranked[0].p_value
            );
        }
    }
    println!("(paper: normal wins for both benchmarks, avg p 0.19–0.43)");
}

/// Table VI: moment laws.
fn table6(report: &FitReport) {
    section("Table VI: benchmark and disk space prediction law values");
    println!("{:<24} {:>12} {:>9} {:>9}", "law", "a", "b", "r");
    for rowv in &report.moment_laws {
        println!(
            "{:<24} {:>12.4} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!(
        "paper: dhry mean (2064, 0.1709); whet mean (1179, 0.1157); disk mean (31.59, 0.2691)"
    );
}

/// Fig 9: disk distributions + KS selection.
fn fig9(trace: &Trace, seed: u64) {
    section("Fig 9: available disk space distributions");
    let mut rng = seeded(seed ^ 0xd15c);
    for &y in &[2006.0, 2008.0, 2010.0] {
        let d = SimDate::from_year(y);
        let data = trace.column_at(d, ResourceColumn::Disk);
        let s = Summary::of(&data).expect("non-empty");
        let ranked = select_resource_family(
            trace,
            d,
            ResourceColumn::Disk,
            SubsampleConfig::default(),
            &mut rng,
        )
        .expect("selection");
        println!(
            "{y:.0}: mean {:>6.1} GB median {:>6.1} GB sd {:>6.1}  best fit: {:<11} (avg p = {:.3})",
            s.mean,
            s.median,
            s.std_dev,
            ranked[0].family.name(),
            ranked[0].p_value
        );
    }
    println!("(paper: 2006 mean 32.9/median 15.6; 2008 52.0/24.5; 2010 98.1/43.7; log-normal wins, p 0.43–0.51)");
}

/// Table VII + Fig 10: GPU composition and memory.
fn table7(trace: &Trace) {
    section("Table VII + Fig 10: GPUs among GPU-equipped hosts");
    for &y in &[2009.67, 2010.6] {
        let pop = trace.population_at(SimDate::from_year(y));
        let gpus: Vec<_> = pop.iter().filter_map(|v| v.gpu).collect();
        if gpus.is_empty() {
            println!("{y:.2}: no GPUs recorded");
            continue;
        }
        let frac = gpus.len() as f64 / pop.len() as f64;
        print!("{y:.2}: {:.1}% of hosts report GPUs;", frac * 100.0);
        for class in resmodel_trace::GpuClass::ALL {
            let share = gpus.iter().filter(|g| g.class == class).count() as f64 / gpus.len() as f64;
            print!(" {} {:.1}%", class.name(), share * 100.0);
        }
        let mem: Vec<f64> = gpus.iter().map(|g| g.memory_mb).collect();
        let s = Summary::of(&mem).expect("non-empty");
        println!("; mem mean {:.0} MB median {:.0} MB", s.mean, s.median);
    }
    println!("(paper: 12.7%→23.8% presence; GeForce 82.5%→63.6%, Radeon 12.2%→31.5%; mem 592.7→659.4 MB)");
}

/// Fig 12: generated vs actual comparison for September 2010.
fn fig12(trace: &Trace, model: &HostModel, seed: u64) {
    section("Fig 12: generated vs actual resources (September 2010)");
    let date = SimDate::from_year(2010.0 + 8.0 / 12.0);
    let actual: Vec<GeneratedHost> = trace
        .population_at(date)
        .iter()
        .map(GeneratedHost::from)
        .collect();
    let generated = model.generate_population(date, actual.len(), seed ^ 0xf12);
    let cmp = compare_populations(&generated, &actual).expect("non-empty populations");
    println!(
        "{:<24} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "resource", "μ_gen", "μ_actual", "Δμ %", "σ_gen", "σ_actual", "Δσ %"
    );
    for c in &cmp {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>8.1}% {:>10.2} {:>10.2} {:>7.1}%",
            c.resource.name(),
            c.mean_generated,
            c.mean_actual,
            c.mean_diff_fraction * 100.0,
            c.std_generated,
            c.std_actual,
            c.std_diff_fraction * 100.0
        );
    }
    println!("(paper: mean diffs 0.5%–13%, σ diffs 3.5%–32.7%)");
}

/// Table VIII: correlations of the generated population.
fn table8(model: &HostModel, seed: u64) {
    section("Table VIII: correlation coefficients between generated hosts");
    let hosts = model.generate_population(SimDate::from_year(2010.67), 20_000, seed ^ 0x8);
    let m = generated_correlation_matrix(&hosts).expect("correlations defined");
    let names = ["Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"];
    print!("{:<10}", "");
    for n in names {
        print!("{n:>9}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:<10}");
        for j in 0..6 {
            print!("{:>9.3}", m.get(i, j));
        }
        println!();
    }
    println!("paper: cores-mem 0.727, whet-dhry 0.505, mem/core-whet 0.307, disk ~0");
}

/// Fig 13: predicted multicore mix to 2014.
fn fig13(model: &HostModel) {
    section("Fig 13: predicted future multicore distribution");
    let dates: Vec<SimDate> = (2009..=2014)
        .map(|y| SimDate::from_year(y as f64))
        .collect();
    let preds = multicore_prediction(model, &dates).expect("prediction");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>11}",
        "year", "1 core", "≥2", "≥4", "≥8", "≥16", "mean cores"
    );
    for p in preds {
        println!(
            "{:>6.0} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>11.2}",
            p.date.year(),
            p.one_core * 100.0,
            p.at_least_2 * 100.0,
            p.at_least_4 * 100.0,
            p.at_least_8 * 100.0,
            p.at_least_16 * 100.0,
            p.mean_cores
        );
    }
    println!("(paper: 1-core negligible by 2014; 2-core ~40% of total; mean 4.6)");
}

/// Fig 14: predicted memory mix to 2014.
fn fig14(model: &HostModel) {
    section("Fig 14: predicted future host memory distribution");
    let dates: Vec<SimDate> = (2009..=2014)
        .map(|y| SimDate::from_year(y as f64))
        .collect();
    let preds = memory_prediction(model, &dates).expect("prediction");
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "year", "≤1GB", "≤2GB", "≤4GB", "≤8GB", ">8GB", "mean GB"
    );
    for p in preds {
        println!(
            "{:>6.0} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10.2}",
            p.date.year(),
            p.le_1gb * 100.0,
            p.le_2gb * 100.0,
            p.le_4gb * 100.0,
            p.le_8gb * 100.0,
            p.gt_8gb * 100.0,
            p.mean_memory_mb / 1024.0
        );
    }
    let m = moment_prediction(model, SimDate::from_year(2014.0));
    println!(
        "2014 moments: dhry ({:.0}, {:.0}) whet ({:.0}, {:.0}) disk ({:.1}, {:.1})",
        m.dhrystone.0, m.dhrystone.1, m.whetstone.0, m.whetstone.1, m.disk_gb.0, m.disk_gb.1
    );
    println!("(paper 2014: memory mean 6.8 GB; dhry (8100, 4419); whet (2975, 868); disk (272.0, 434.5))");
}

/// Fig 15: utility simulation comparison.
fn fig15(trace: &Trace, report: &FitReport, seed: u64) {
    section("Fig 15: utility simulation difference vs actual data (%)");
    let dates = fit_dates();
    let normal = NormalModel::fit(trace, &dates).expect("normal fit");
    let grid = GridModel::fit(trace, &dates).expect("grid fit");
    let generators: Vec<&dyn HostGenerator> = vec![&report.model, &normal, &grid];
    let config = UtilityExperimentConfig {
        dates: fig15_dates(),
        apps: AppProfile::ALL.to_vec(),
        seed: seed ^ 0xf15,
    };
    let results = run_utility_experiment(trace, &generators, &config).expect("experiment");
    println!(
        "{:<22} {:>24} {:>24} {:>24}",
        "application", "correlated (min–max)", "normal (min–max)", "grid (min–max)"
    );
    for (a, app) in config.apps.iter().enumerate() {
        print!("{:<22}", app.name);
        for series in &results {
            let (lo, hi) = series.range_of(a);
            print!("   {:>7.1}% – {:>6.1}%     ", lo, hi);
        }
        println!();
    }
    println!("\nmean % difference per model:");
    for (a, app) in config.apps.iter().enumerate() {
        print!("{:<22}", app.name);
        for series in &results {
            print!(" {:>12.1}%", series.mean_of(a));
        }
        println!();
    }
    println!("(paper: correlated 0–10%; normal 9–31%; grid 3–15% except P2P 46–57%)");
}

/// Table X: the model summary.
fn table10(model: &HostModel) {
    section("Table X: summary of model parameters (fit from trace)");
    println!(
        "{:<11} {:<18} {:<15} {:>11} {:>9}",
        "resource", "value", "method", "a", "b"
    );
    for row in model.summary() {
        println!(
            "{:<11} {:<18} {:<15} {:>11.4} {:>9.4}",
            row.resource, row.value, row.method, row.a, row.b
        );
    }
}

/// Ablations of the model's two signature design choices:
/// (a) the Cholesky correlation coupling, (b) the 4 GB per-core-memory
/// tier.
fn ablation(trace: &Trace, report: &FitReport, seed: u64) {
    use resmodel_core::fit::model_correlation;
    use resmodel_core::model::PCM_TIERS_MB;
    use resmodel_core::{DiscreteRatioModel, RatioLaw};
    use resmodel_stats::Matrix;

    section("Ablation A: correlation coupling (identity vs fitted Cholesky)");
    let full = &report.model;
    let uncorrelated = HostModel::new(
        full.cores().clone(),
        full.per_core_memory().clone(),
        &Matrix::identity(3),
        resmodel_core::model::MomentLaw::new(
            report
                .moment_laws
                .iter()
                .find(|r| r.label == "Whetstone Mean")
                .expect("row")
                .fit
                .a,
            report
                .moment_laws
                .iter()
                .find(|r| r.label == "Whetstone Mean")
                .expect("row")
                .fit
                .b,
        ),
        law_of(report, "Whetstone Variance"),
        law_of(report, "Dhrystone Mean"),
        law_of(report, "Dhrystone Variance"),
        law_of(report, "Disk Space Mean"),
        law_of(report, "Disk Space Variance"),
    )
    .expect("identity correlation is positive definite");

    let date = SimDate::from_year(2010.5);
    for (label, model) in [("full", full), ("identity-R", &uncorrelated)] {
        let pop = model.generate_population(date, 20_000, seed ^ 0xab1);
        let m = generated_correlation_matrix(&pop).expect("defined");
        println!(
            "{label:<12} mem/core-whet r = {:+.3}   whet-dhry r = {:+.3}   cores-mem r = {:+.3}",
            m.get(2, 3),
            m.get(3, 4),
            m.get(0, 1)
        );
    }
    println!("(the identity-R variant loses the benchmark/memory coupling; cores-mem survives");
    println!(" because it comes from the tier product, not the Cholesky factor)");

    // Utility consequence of dropping the coupling.
    let config = UtilityExperimentConfig {
        dates: vec![SimDate::from_year(2010.25), SimDate::from_year(2010.5)],
        apps: AppProfile::ALL.to_vec(),
        seed: seed ^ 0xab2,
    };
    let gens: Vec<&dyn HostGenerator> = vec![full, &uncorrelated];
    let results = run_utility_experiment(trace, &gens, &config).expect("experiment");
    println!("\nmean % utility difference vs actual (full vs identity-R):");
    for (a, app) in config.apps.iter().enumerate() {
        println!(
            "  {:<22} {:>6.1}%   {:>6.1}%",
            app.name,
            results[0].mean_of(a),
            results[1].mean_of(a)
        );
    }

    section("Ablation B: per-core-memory tier ceiling (with vs without the 4 GB tier)");
    let truncated_pcm = DiscreteRatioModel::new(
        PCM_TIERS_MB[..6].to_vec(),
        report.pcm_laws[..5]
            .iter()
            .map(|r| RatioLaw::from(r.fit))
            .collect(),
    )
    .expect("truncated tiers are valid");
    let truncated = HostModel::new(
        full.cores().clone(),
        truncated_pcm,
        &model_correlation(&report.correlation),
        law_of(report, "Whetstone Mean"),
        law_of(report, "Whetstone Variance"),
        law_of(report, "Dhrystone Mean"),
        law_of(report, "Dhrystone Variance"),
        law_of(report, "Disk Space Mean"),
        law_of(report, "Disk Space Variance"),
    )
    .expect("fitted correlation is positive definite");
    for (label, model) in [("with 4GB tier", full), ("capped at 2GB", &truncated)] {
        let preds = memory_prediction(model, &[SimDate::from_year(2014.0)]).expect("prediction");
        println!(
            "{label:<15} predicted 2014 mean memory: {:>5.2} GB (paper's own figure: 6.8 GB)",
            preds[0].mean_memory_mb / 1024.0
        );
    }
}

/// Look up a fitted moment law by label.
fn law_of(report: &FitReport, label: &str) -> resmodel_core::model::MomentLaw {
    let row = report
        .moment_laws
        .iter()
        .find(|r| r.label == label)
        .expect("all moment rows fitted");
    resmodel_core::model::MomentLaw::new(row.fit.a, row.fit.b)
}

/// Population churn analytics (the dynamics behind Figs 1 and 3).
fn churn(trace: &Trace) {
    use resmodel_trace::churn::{churn_series, cohort_half_life_days, retention_curve};
    section("Extension: population churn (dynamics behind Figs 1/3)");
    let series = churn_series(
        trace,
        SimDate::from_year(2006.0),
        SimDate::from_year(2010.0),
        365.25,
    );
    println!(
        "{:>6} {:>9} {:>11} {:>13} {:>18}",
        "year", "arrivals", "departures", "active@start", "monthly turnover"
    );
    for w in &series {
        println!(
            "{:>6.0} {:>9} {:>11} {:>13} {:>17.1}%",
            w.from.year(),
            w.arrivals,
            w.departures,
            w.active_at_start,
            w.monthly_turnover * 100.0
        );
    }
    for cohort in [2006.0, 2008.0] {
        let hl = cohort_half_life_days(
            trace,
            SimDate::from_year(cohort),
            SimDate::from_year(cohort + 1.0),
            1500.0,
        );
        let curve = retention_curve(
            trace,
            SimDate::from_year(cohort),
            SimDate::from_year(cohort + 1.0),
            &[30.0, 90.0, 365.0],
        );
        let fr = |i: usize| curve[i].1 * 100.0;
        match hl {
            Some(days) => println!(
                "{cohort:.0} cohort: half-life {days:.0} days; retention 30d {:.0}%, 90d {:.0}%, 1y {:.0}%",
                fr(0), fr(1), fr(2)
            ),
            None => println!("{cohort:.0} cohort: half-life beyond probe window"),
        }
    }
    println!("(newer cohorts churn faster — the Fig 3 effect, now as retention numbers)");
}

/// The GPU model extension fitted from the trace's GPU records.
fn gpumodel(trace: &Trace) {
    use resmodel_core::gpu_model::GpuModel;
    section("Extension: fitted GPU model (paper §VIII future work)");
    let dates: Vec<SimDate> = (0..4)
        .map(|q| SimDate::from_year(2009.8 + 0.25 * q as f64))
        .collect();
    match GpuModel::fit(trace, &dates) {
        Ok(model) => {
            println!(
                "presence law fit r = {:.3} (|r| far below 1 warns of the short window)",
                model.presence_r
            );
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>12}",
                "year", "presence", "GeForce", "Radeon", "mean mem MB"
            );
            for &y in &[2010.0, 2010.67, 2011.5, 2012.0] {
                let d = SimDate::from_year(y);
                let shares = model.class_shares_at(d);
                let share = |c: resmodel_trace::GpuClass| {
                    shares
                        .iter()
                        .find(|(k, _)| *k == c)
                        .map(|(_, w)| *w)
                        .unwrap_or(0.0)
                };
                println!(
                    "{y:>8.2} {:>9.1}% {:>9.1}% {:>9.1}% {:>12.0}",
                    model.presence_at(d) * 100.0,
                    share(resmodel_trace::GpuClass::GeForce) * 100.0,
                    share(resmodel_trace::GpuClass::Radeon) * 100.0,
                    model.mean_memory_mb(d)
                );
            }
            println!("(2011+ rows are extrapolation — exactly the risk the paper flags)");
        }
        Err(e) => println!("GPU model fit unavailable at this scale: {e}"),
    }
}
