//! `repro` — regenerate every table and figure of the paper from the
//! synthetic measurement substrate.
//!
//! A thin front-end over [`resmodel::pipeline::Pipeline`]: one pipeline
//! run (measure → sanitize → fit → validate → predict) produces the
//! trace, the fitted model and the typed report; everything below is
//! table rendering. `--report-json` dumps the full serializable
//! [`PipelineReport`].

#![warn(clippy::unwrap_used)]

use resmodel::pipeline::{Pipeline, PipelineOutput, PipelineReport};
use resmodel_allocsim::{run_utility_experiment, AppProfile, UtilityExperimentConfig};
use resmodel_baselines::{GridModel, NormalModel};
use resmodel_bench::cli::{self, Args, FlagHelp, Logger, Usage, Verbosity};
use resmodel_bench::{fig15_dates, fit_dates, section};
use resmodel_core::fit::{
    core_fractions, lifetime_weibull, pcm_fractions, select_resource_family, FitReport,
};
use resmodel_core::validate::generated_correlation_matrix;
use resmodel_core::{HostGenerator, HostModel};
use resmodel_error::ResmodelError;
use resmodel_stats::describe::{Histogram, Summary};
use resmodel_stats::ks::SubsampleConfig;
use resmodel_stats::rng::seeded;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{CpuFamily, OsFamily, SimDate, Trace};

/// Every experiment `repro` knows how to render.
const EXPERIMENTS: &[&str] = &[
    "sanity", "fig1", "fig2", "fig3", "table1", "table2", "table3", "fig4", "table4", "fig6",
    "table5", "fig8", "table6", "fig9", "table7", "fig12", "table8", "fig13", "fig14", "fig15",
    "table10", "ablation", "churn", "gpumodel",
];

const USAGE: Usage = Usage {
    bin: "repro",
    summary: "regenerate the paper's tables and figures from one pipeline run",
    usage: &[
        "repro [--scale S] [--seed N] [--report-json FILE] <experiment>...",
        "repro [--trace-out FILE] [--trace-in FILE] [--zero-timings] <experiment>...",
        "repro all",
    ],
    flags: &[
        FlagHelp {
            flag: "--scale S",
            help: "world scale (default 0.004; paper scale is 1.0)",
        },
        FlagHelp {
            flag: "--seed N",
            help: "world seed (default 20110620)",
        },
        FlagHelp {
            flag: "--report-json FILE",
            help: "write the full pipeline report as JSON (`-` for stdout)",
        },
        FlagHelp {
            flag: "--trace-out FILE",
            help: "persist the sanitized measurement trace as a resmodel.trace/1 file",
        },
        FlagHelp {
            flag: "--trace-in FILE",
            help: "analyze a saved resmodel.trace/1 file (mapped) instead of simulating",
        },
        FlagHelp {
            flag: "--zero-timings",
            help: "zero wall-clock fields in --report-json output (byte-stable reports)",
        },
        FlagHelp {
            flag: "--quiet",
            help: "suppress progress output (warnings still print)",
        },
        FlagHelp {
            flag: "--verbose",
            help: "print extra debug detail",
        },
        FlagHelp {
            flag: "--help",
            help: "show this help",
        },
    ],
};

fn main() {
    cli::run_main(&USAGE, real_main);
}

fn real_main(mut args: Args) -> Result<(), ResmodelError> {
    let mut scale = resmodel_bench::DEFAULT_SCALE;
    let mut seed = resmodel_bench::DEFAULT_SEED;
    let mut report_json: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_in: Option<String> = None;
    let mut zero_timings = false;
    let mut verbosity = Verbosity::default();
    let mut wanted: Vec<String> = Vec::new();
    while let Some(token) = args.next_token() {
        match token.as_str() {
            "--scale" => scale = args.parse("--scale", "a number")?,
            "--seed" => seed = args.parse("--seed", "an integer")?,
            "--report-json" => report_json = Some(args.value("--report-json")?),
            "--trace-out" => trace_out = Some(args.value("--trace-out")?),
            "--trace-in" => trace_in = Some(args.value("--trace-in")?),
            "--zero-timings" => zero_timings = true,
            "--quiet" => verbosity = Verbosity::Quiet,
            "--verbose" => verbosity = Verbosity::Verbose,
            "--help" | "-h" => cli::help_exit(&USAGE),
            other if other.starts_with('-') => return cli::unknown_flag(other),
            other if other == "all" || EXPERIMENTS.contains(&other) => {
                wanted.push(other.to_string());
            }
            other => {
                return cli::usage_error(format!(
                    "unknown experiment `{other}` (try `all` or one of: {})",
                    EXPERIMENTS.join(" ")
                ));
            }
        }
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }
    let log = Logger::new(verbosity);

    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    // One pipeline run supplies everything below: the sanitized trace,
    // the fitted model and laws, and — only when an experiment (or the
    // JSON report) consumes them — the Fig 12 validation tables and
    // the Fig 13/14 forecasts.
    log.info(format!("running pipeline (scale {scale}, seed {seed})..."));
    // Observe the run only when the detail is wanted: the report is
    // byte-identical either way.
    let obs = if log.debug_enabled() {
        resmodel::obs::Collector::new()
    } else {
        resmodel::obs::Collector::disabled()
    };
    // A saved trace is post-sanitization, so the reload path skips the
    // sanitize stage; everything downstream of it is identical.
    let mut pipeline = match &trace_in {
        Some(path) => {
            log.info(format!("mapping saved trace from {path}..."));
            Pipeline::from_trace_file(path)?
        }
        None => Pipeline::from_boinc(scale, seed).sanitize_default(),
    }
    .fit_default()
    .observe(&obs);
    if let Some(path) = &trace_out {
        pipeline = pipeline.save_trace(path);
    }
    if want("fig12") || want("table8") || report_json.is_some() {
        pipeline =
            pipeline.validate_seeded(vec![SimDate::from_year(2010.0 + 8.0 / 12.0)], seed ^ 0xf12);
    }
    if want("fig13") || want("fig14") || report_json.is_some() {
        pipeline = pipeline.predict(
            (2009..=2014)
                .map(|y| SimDate::from_year(y as f64))
                .collect(),
        );
    }
    let out: PipelineOutput = pipeline.run_detailed()?;
    let trace = &out.trace;
    let report = out
        .fit_report()
        .ok_or_else(|| ResmodelError::config("pipeline", "fit stage missing"))?;
    log.info(format!(
        "world ready: {} hosts ({} pre-sanitization); fit in {:.0} ms",
        out.report.world.hosts, out.report.world.raw_hosts, out.report.timing.fit_ms
    ));
    if log.debug_enabled() {
        let m = obs.snapshot();
        for s in &m.spans {
            log.debug(format!(
                "span {}: {} call(s), {:.1} ms",
                s.path, s.calls, s.total_ms
            ));
        }
    }

    if let Some(path) = &trace_out {
        log.info(format!("trace saved to {path}"));
    }

    if let Some(path) = report_json {
        if zero_timings {
            let mut zeroed = out.report.clone();
            zeroed.zero_timings();
            write_report(&zeroed, &path, &log)?;
        } else {
            write_report(&out.report, &path, &log)?;
        }
    }

    if want("sanity") {
        sanity(&out.report);
    }
    if want("fig1") {
        fig1(trace)?;
    }
    if want("fig2") {
        fig2(trace)?;
    }
    if want("fig3") {
        fig3(trace);
    }
    if want("table1") {
        table1(trace);
    }
    if want("table2") {
        table2(trace);
    }
    if want("table3") {
        table3(report);
    }
    if want("fig4") {
        fig4(trace);
    }
    if want("table4") {
        table4(report);
    }
    if want("fig6") {
        fig6(trace);
    }
    if want("table5") {
        table5(report);
    }
    if want("fig8") {
        fig8(trace, seed)?;
    }
    if want("table6") {
        table6(report);
    }
    if want("fig9") {
        fig9(trace, seed)?;
    }
    if want("table7") {
        table7(trace)?;
    }
    if want("fig12") {
        fig12(&out.report);
    }
    if want("table8") {
        table8(&out.report);
    }
    if want("fig13") {
        fig13(&out.report);
    }
    if want("fig14") {
        fig14(&out.report);
    }
    if want("fig15") {
        fig15(trace, report, seed)?;
    }
    if want("table10") {
        table10(&report.model);
    }
    if want("ablation") {
        ablation(trace, report, seed)?;
    }
    if want("churn") {
        churn(trace);
    }
    if want("gpumodel") {
        gpumodel(trace);
    }
    Ok(())
}

/// Write the pipeline report as JSON to `path` (`-` for stdout).
fn write_report(report: &PipelineReport, path: &str, log: &Logger) -> Result<(), ResmodelError> {
    let json = report.to_json_pretty()?;
    if path == "-" {
        println!("{json}");
    } else {
        std::fs::write(path, json).map_err(|e| ResmodelError::io(path, e))?;
        log.info(format!("pipeline report written to {path}"));
    }
    Ok(())
}

/// Section V-B numbers: sanitization and population overview, straight
/// from the pipeline's world summary.
fn sanity(report: &PipelineReport) {
    section("Sanity: sanitization (paper Section V-B)");
    let w = &report.world;
    println!(
        "discarded {} of {} hosts ({:.3}%; paper: 3361 hosts, 0.12%)",
        w.discarded,
        w.raw_hosts,
        w.discarded_fraction * 100.0
    );
}

/// Fig 1: host lifetime PDF/CDF and Weibull fit.
fn fig1(trace: &Trace) -> Result<(), ResmodelError> {
    section("Fig 1: host lifetimes");
    let cutoff = SimDate::from_year(2010.5);
    let lifetimes = trace.lifetimes(cutoff);
    let s = Summary::of(&lifetimes)?;
    println!(
        "n = {}, mean = {:.1} days (paper 192.4), median = {:.2} days (paper 71.14)",
        s.n, s.mean, s.median
    );
    let w = lifetime_weibull(trace, cutoff)?;
    println!(
        "Weibull fit: k = {:.3} (paper 0.58), lambda = {:.1} (paper 135)",
        w.shape(),
        w.scale()
    );
    let hist = Histogram::with_range(&lifetimes, 0.0, 1400.0, 14)?;
    println!("{:>12} {:>10} {:>8}", "days", "pdf", "cdf");
    let pdf = hist.pdf_series();
    let cdf = hist.cdf_series();
    for (p, c) in pdf.iter().zip(&cdf) {
        println!("{:>12.0} {:>10.5} {:>8.3}", p.0, p.1, c.1);
    }
    Ok(())
}

/// Fig 2: active hosts and resource means/std-devs over time.
fn fig2(trace: &Trace) -> Result<(), ResmodelError> {
    section("Fig 2: host resource overview (yearly)");
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>15} {:>15} {:>13}",
        "year", "active", "cores", "memory MB", "whet MIPS", "dhry MIPS", "disk GB"
    );
    for year in 2006..=2010 {
        let d = SimDate::from_year(year as f64);
        let stat = |col: ResourceColumn| Summary::of(&trace.column_at(d, col));
        let c = stat(ResourceColumn::Cores)?;
        let m = stat(ResourceColumn::Memory)?;
        let w = stat(ResourceColumn::Whetstone)?;
        let dh = stat(ResourceColumn::Dhrystone)?;
        let k = stat(ResourceColumn::Disk)?;
        println!(
            "{year:>6} {:>8} {:>6.2}±{:<5.2} {:>8.0}±{:<5.0} {:>9.0}±{:<5.0} {:>9.0}±{:<5.0} {:>7.1}±{:<5.1}",
            trace.active_count(d),
            c.mean, c.std_dev, m.mean, m.std_dev, w.mean, w.std_dev, dh.mean, dh.std_dev, k.mean, k.std_dev
        );
    }
    println!("paper 2006→2010: cores 1.28→2.17, memory 846→2376 MB, whet 1200→1861, dhry 2168→4120, disk 32.9→98.0 GB");
    Ok(())
}

/// Fig 3: creation date vs average lifetime.
fn fig3(trace: &Trace) {
    section("Fig 3: host creation date vs average lifetime");
    let pairs = trace.creation_vs_lifetime(SimDate::from_year(2010.4));
    println!("{:>6} {:>10} {:>14}", "year", "hosts", "mean life (d)");
    for year in 2005..=2009 {
        let bucket: Vec<f64> = pairs
            .iter()
            .filter(|(y, _)| *y >= year as f64 && *y < (year + 1) as f64)
            .map(|(_, l)| *l)
            .collect();
        if !bucket.is_empty() {
            let mean = bucket.iter().sum::<f64>() / bucket.len() as f64;
            println!("{year:>6} {:>10} {:>14.1}", bucket.len(), mean);
        }
    }
    println!("(paper: declines from ~330 days for 2005 hosts to ~130 days for 2009 hosts)");
}

/// Table I: CPU family composition by year.
fn table1(trace: &Trace) {
    section("Table I: host processors over time (% of active)");
    print!("{:<18}", "family");
    for y in 2006..=2010 {
        print!(" {y:>6}");
    }
    println!();
    for fam in CpuFamily::ALL {
        print!("{:<18}", fam.name());
        for y in 2006..=2010 {
            let pop = trace.population_at(SimDate::from_year(y as f64));
            let share = pop.iter().filter(|v| v.cpu == fam).count() as f64 / pop.len() as f64;
            print!(" {:>5.1}%", share * 100.0);
        }
        println!();
    }
}

/// Table II: OS composition by year.
fn table2(trace: &Trace) {
    section("Table II: host OS over time (% of active)");
    print!("{:<16}", "family");
    for y in 2006..=2010 {
        print!(" {y:>6}");
    }
    println!();
    for fam in OsFamily::ALL {
        print!("{:<16}", fam.name());
        for y in 2006..=2010 {
            let pop = trace.population_at(SimDate::from_year(y as f64));
            let share = pop.iter().filter(|v| v.os == fam).count() as f64 / pop.len() as f64;
            print!(" {:>5.1}%", share * 100.0);
        }
        println!();
    }
}

/// Table III: resource correlation matrix.
fn table3(report: &FitReport) {
    section("Table III: correlation coefficients between host measurements");
    let names = ["Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"];
    print!("{:<10}", "");
    for n in names {
        print!("{n:>9}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:<10}");
        for j in 0..6 {
            print!("{:>9.3}", report.correlation.get(i, j));
        }
        println!();
    }
    println!("paper: cores-mem 0.606, mem/core-whet 0.250, mem/core-dhry 0.306, whet-dhry 0.639, disk ~0");
}

/// Fig 4: multicore fractions over time.
fn fig4(trace: &Trace) {
    section("Fig 4: host multicore distribution");
    println!(
        "{:>6} {:>9} {:>9} {:>9} {:>9}",
        "year", "1 core", "2-3", "4-7", "8-15"
    );
    for y in 2006..=2010 {
        let f = core_fractions(trace, SimDate::from_year(y as f64));
        println!(
            "{y:>6} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            f[0] * 100.0,
            f[1] * 100.0,
            f[2] * 100.0,
            f[3] * 100.0
        );
    }
    println!("(paper 2006: 1-core ~72%; 2010: 2-core dominant, ~18% with ≥4 cores)");
}

/// Table IV (and the data behind Fig 5): core ratio laws.
fn table4(report: &FitReport) {
    section("Table IV: core ratio model values (fit from trace)");
    println!("{:<20} {:>9} {:>9} {:>9}", "ratio", "a", "b", "r");
    for rowv in &report.core_laws {
        println!(
            "{:<20} {:>9.3} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!("paper: 1:2 (3.369, -0.5004, -0.9984); 2:4 (17.49, -0.3217, -0.9730); 4:8 (12.8, -0.2377, -0.9557)");
}

/// Fig 6: per-core-memory histograms in 2006/2008/2010.
fn fig6(trace: &Trace) {
    section("Fig 6: distribution of per-core memory (% of total)");
    println!(
        "{:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "year", "256", "512", "768", "1024", "1536", "2048", "4096"
    );
    for &y in &[2006.0, 2008.0, 2010.0] {
        let f = pcm_fractions(trace, SimDate::from_year(y), 0.15);
        print!("{y:>6.0}");
        for v in f {
            print!(" {:>6.1}%", v * 100.0);
        }
        println!();
    }
    println!("(paper: ≤256MB/core falls 19%→4%; 1024MB rises 21%→32%; 2048MB 2%→10%)");
}

/// Table V: per-core-memory ratio laws.
fn table5(report: &FitReport) {
    section("Table V: per-core-memory ratio model values (fit from trace)");
    println!("{:<22} {:>9} {:>9} {:>9}", "ratio", "a", "b", "r");
    for rowv in &report.pcm_laws {
        println!(
            "{:<22} {:>9.4} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!("paper: e.g. 256MB:512MB (0.5829, -0.2517); 2GB:4GB (4.951, -0.1008)");
}

/// Fig 8: benchmark histograms + KS family selection.
fn fig8(trace: &Trace, seed: u64) -> Result<(), ResmodelError> {
    section("Fig 8: Dhrystone/Whetstone histograms and KS family selection");
    let mut rng = seeded(seed ^ 0x5eed);
    for &y in &[2006.0, 2008.0, 2010.0] {
        let d = SimDate::from_year(y);
        for (col, label) in [
            (ResourceColumn::Dhrystone, "dhrystone"),
            (ResourceColumn::Whetstone, "whetstone"),
        ] {
            let data = trace.column_at(d, col);
            let s = Summary::of(&data)?;
            let ranked =
                select_resource_family(trace, d, col, SubsampleConfig::default(), &mut rng)?;
            println!(
                "{y:.0} {label:<10} mean {:>6.0} median {:>6.0} sd {:>6.0}  best fit: {:<11} (avg p = {:.3})",
                s.mean,
                s.median,
                s.std_dev,
                ranked[0].family.name(),
                ranked[0].p_value
            );
        }
    }
    println!("(paper: normal wins for both benchmarks, avg p 0.19–0.43)");
    Ok(())
}

/// Table VI: moment laws.
fn table6(report: &FitReport) {
    section("Table VI: benchmark and disk space prediction law values");
    println!("{:<24} {:>12} {:>9} {:>9}", "law", "a", "b", "r");
    for rowv in &report.moment_laws {
        println!(
            "{:<24} {:>12.4} {:>9.4} {:>9.4}",
            rowv.label, rowv.fit.a, rowv.fit.b, rowv.fit.r
        );
    }
    println!(
        "paper: dhry mean (2064, 0.1709); whet mean (1179, 0.1157); disk mean (31.59, 0.2691)"
    );
}

/// Fig 9: disk distributions + KS selection.
fn fig9(trace: &Trace, seed: u64) -> Result<(), ResmodelError> {
    section("Fig 9: available disk space distributions");
    let mut rng = seeded(seed ^ 0xd15c);
    for &y in &[2006.0, 2008.0, 2010.0] {
        let d = SimDate::from_year(y);
        let data = trace.column_at(d, ResourceColumn::Disk);
        let s = Summary::of(&data)?;
        let ranked = select_resource_family(
            trace,
            d,
            ResourceColumn::Disk,
            SubsampleConfig::default(),
            &mut rng,
        )?;
        println!(
            "{y:.0}: mean {:>6.1} GB median {:>6.1} GB sd {:>6.1}  best fit: {:<11} (avg p = {:.3})",
            s.mean,
            s.median,
            s.std_dev,
            ranked[0].family.name(),
            ranked[0].p_value
        );
    }
    println!("(paper: 2006 mean 32.9/median 15.6; 2008 52.0/24.5; 2010 98.1/43.7; log-normal wins, p 0.43–0.51)");
    Ok(())
}

/// Table VII + Fig 10: GPU composition and memory.
fn table7(trace: &Trace) -> Result<(), ResmodelError> {
    section("Table VII + Fig 10: GPUs among GPU-equipped hosts");
    for &y in &[2009.67, 2010.6] {
        let pop = trace.population_at(SimDate::from_year(y));
        let gpus: Vec<_> = pop.iter().filter_map(|v| v.gpu).collect();
        if gpus.is_empty() {
            println!("{y:.2}: no GPUs recorded");
            continue;
        }
        let frac = gpus.len() as f64 / pop.len() as f64;
        print!("{y:.2}: {:.1}% of hosts report GPUs;", frac * 100.0);
        for class in resmodel_trace::GpuClass::ALL {
            let share = gpus.iter().filter(|g| g.class == class).count() as f64 / gpus.len() as f64;
            print!(" {} {:.1}%", class.name(), share * 100.0);
        }
        let mem: Vec<f64> = gpus.iter().map(|g| g.memory_mb).collect();
        let s = Summary::of(&mem)?;
        println!("; mem mean {:.0} MB median {:.0} MB", s.mean, s.median);
    }
    println!("(paper: 12.7%→23.8% presence; GeForce 82.5%→63.6%, Radeon 12.2%→31.5%; mem 592.7→659.4 MB)");
    Ok(())
}

/// Fig 12: generated vs actual comparison, rendered from the
/// pipeline's validation stage.
fn fig12(pipeline: &PipelineReport) {
    section("Fig 12: generated vs actual resources (September 2010)");
    let Some(validation) = pipeline.validation.as_deref().and_then(|v| v.first()) else {
        println!("(validation stage not run)");
        return;
    };
    println!(
        "{:<24} {:>10} {:>10} {:>9} {:>10} {:>10} {:>8}",
        "resource", "μ_gen", "μ_actual", "Δμ %", "σ_gen", "σ_actual", "Δσ %"
    );
    for c in &validation.comparisons {
        println!(
            "{:<24} {:>10.2} {:>10.2} {:>8.1}% {:>10.2} {:>10.2} {:>7.1}%",
            c.resource.name(),
            c.mean_generated,
            c.mean_actual,
            c.mean_diff_fraction * 100.0,
            c.std_generated,
            c.std_actual,
            c.std_diff_fraction * 100.0
        );
    }
    println!("(paper: mean diffs 0.5%–13%, σ diffs 3.5%–32.7%)");
}

/// Table VIII: correlations of the generated population, from the
/// pipeline's validation stage.
fn table8(pipeline: &PipelineReport) {
    section("Table VIII: correlation coefficients between generated hosts");
    let Some(validation) = pipeline.validation.as_deref().and_then(|v| v.first()) else {
        println!("(validation stage not run)");
        return;
    };
    let m = &validation.generated_correlation;
    let names = ["Cores", "Memory", "Mem/Core", "Whet", "Dhry", "Disk"];
    print!("{:<10}", "");
    for n in names {
        print!("{n:>9}");
    }
    println!();
    for (i, n) in names.iter().enumerate() {
        print!("{n:<10}");
        for j in 0..6 {
            print!("{:>9.3}", m.get(i, j));
        }
        println!();
    }
    println!("paper: cores-mem 0.727, whet-dhry 0.505, mem/core-whet 0.307, disk ~0");
}

/// Fig 13: predicted multicore mix to 2014, from the pipeline's
/// prediction stage.
fn fig13(pipeline: &PipelineReport) {
    section("Fig 13: predicted future multicore distribution");
    let Some(preds) = pipeline.predictions.as_ref() else {
        println!("(prediction stage not run)");
        return;
    };
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>11}",
        "year", "1 core", "≥2", "≥4", "≥8", "≥16", "mean cores"
    );
    for p in &preds.multicore {
        println!(
            "{:>6.0} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>11.2}",
            p.date.year(),
            p.one_core * 100.0,
            p.at_least_2 * 100.0,
            p.at_least_4 * 100.0,
            p.at_least_8 * 100.0,
            p.at_least_16 * 100.0,
            p.mean_cores
        );
    }
    println!("(paper: 1-core negligible by 2014; 2-core ~40% of total; mean 4.6)");
}

/// Fig 14: predicted memory mix to 2014, from the pipeline's
/// prediction stage.
fn fig14(pipeline: &PipelineReport) {
    section("Fig 14: predicted future host memory distribution");
    let Some(preds) = pipeline.predictions.as_ref() else {
        println!("(prediction stage not run)");
        return;
    };
    println!(
        "{:>6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "year", "≤1GB", "≤2GB", "≤4GB", "≤8GB", ">8GB", "mean GB"
    );
    for p in &preds.memory {
        println!(
            "{:>6.0} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>10.2}",
            p.date.year(),
            p.le_1gb * 100.0,
            p.le_2gb * 100.0,
            p.le_4gb * 100.0,
            p.le_8gb * 100.0,
            p.gt_8gb * 100.0,
            p.mean_memory_mb / 1024.0
        );
    }
    if let Some(m) = preds.moments.last() {
        println!(
            "{:.0} moments: dhry ({:.0}, {:.0}) whet ({:.0}, {:.0}) disk ({:.1}, {:.1})",
            m.date.year(),
            m.dhrystone.0,
            m.dhrystone.1,
            m.whetstone.0,
            m.whetstone.1,
            m.disk_gb.0,
            m.disk_gb.1
        );
    }
    println!("(paper 2014: memory mean 6.8 GB; dhry (8100, 4419); whet (2975, 868); disk (272.0, 434.5))");
}

/// Fig 15: utility simulation comparison.
fn fig15(trace: &Trace, report: &FitReport, seed: u64) -> Result<(), ResmodelError> {
    section("Fig 15: utility simulation difference vs actual data (%)");
    let dates = fit_dates();
    let normal = NormalModel::fit(trace, &dates)?;
    let grid = GridModel::fit(trace, &dates)?;
    let generators: Vec<&dyn HostGenerator> = vec![&report.model, &normal, &grid];
    let config = UtilityExperimentConfig {
        dates: fig15_dates(),
        apps: AppProfile::ALL.to_vec(),
        seed: seed ^ 0xf15,
    };
    let results = run_utility_experiment(trace, &generators, &config)?;
    println!(
        "{:<22} {:>24} {:>24} {:>24}",
        "application", "correlated (min–max)", "normal (min–max)", "grid (min–max)"
    );
    for (a, app) in config.apps.iter().enumerate() {
        print!("{:<22}", app.name);
        for series in &results {
            let (lo, hi) = series.range_of(a);
            print!("   {:>7.1}% – {:>6.1}%     ", lo, hi);
        }
        println!();
    }
    println!("\nmean % difference per model:");
    for (a, app) in config.apps.iter().enumerate() {
        print!("{:<22}", app.name);
        for series in &results {
            print!(" {:>12.1}%", series.mean_of(a));
        }
        println!();
    }
    println!("(paper: correlated 0–10%; normal 9–31%; grid 3–15% except P2P 46–57%)");
    Ok(())
}

/// Table X: the model summary.
fn table10(model: &HostModel) {
    section("Table X: summary of model parameters (fit from trace)");
    println!(
        "{:<11} {:<18} {:<15} {:>11} {:>9}",
        "resource", "value", "method", "a", "b"
    );
    for row in model.summary() {
        println!(
            "{:<11} {:<18} {:<15} {:>11.4} {:>9.4}",
            row.resource, row.value, row.method, row.a, row.b
        );
    }
}

/// Ablations of the model's two signature design choices:
/// (a) the Cholesky correlation coupling, (b) the 4 GB per-core-memory
/// tier.
fn ablation(trace: &Trace, report: &FitReport, seed: u64) -> Result<(), ResmodelError> {
    use resmodel_core::fit::model_correlation;
    use resmodel_core::model::PCM_TIERS_MB;
    use resmodel_core::predict::memory_prediction;
    use resmodel_core::{DiscreteRatioModel, RatioLaw};
    use resmodel_stats::Matrix;

    section("Ablation A: correlation coupling (identity vs fitted Cholesky)");
    let full = &report.model;
    let uncorrelated = HostModel::new(
        full.cores().clone(),
        full.per_core_memory().clone(),
        &Matrix::identity(3),
        law_of(report, "Whetstone Mean")?,
        law_of(report, "Whetstone Variance")?,
        law_of(report, "Dhrystone Mean")?,
        law_of(report, "Dhrystone Variance")?,
        law_of(report, "Disk Space Mean")?,
        law_of(report, "Disk Space Variance")?,
    )?;

    let date = SimDate::from_year(2010.5);
    for (label, model) in [("full", full), ("identity-R", &uncorrelated)] {
        let pop = model.generate_population(date, 20_000, seed ^ 0xab1);
        let m = generated_correlation_matrix(&pop)?;
        println!(
            "{label:<12} mem/core-whet r = {:+.3}   whet-dhry r = {:+.3}   cores-mem r = {:+.3}",
            m.get(2, 3),
            m.get(3, 4),
            m.get(0, 1)
        );
    }
    println!("(the identity-R variant loses the benchmark/memory coupling; cores-mem survives");
    println!(" because it comes from the tier product, not the Cholesky factor)");

    // Utility consequence of dropping the coupling.
    let config = UtilityExperimentConfig {
        dates: vec![SimDate::from_year(2010.25), SimDate::from_year(2010.5)],
        apps: AppProfile::ALL.to_vec(),
        seed: seed ^ 0xab2,
    };
    let gens: Vec<&dyn HostGenerator> = vec![full, &uncorrelated];
    let results = run_utility_experiment(trace, &gens, &config)?;
    println!("\nmean % utility difference vs actual (full vs identity-R):");
    for (a, app) in config.apps.iter().enumerate() {
        println!(
            "  {:<22} {:>6.1}%   {:>6.1}%",
            app.name,
            results[0].mean_of(a),
            results[1].mean_of(a)
        );
    }

    section("Ablation B: per-core-memory tier ceiling (with vs without the 4 GB tier)");
    let truncated_pcm = DiscreteRatioModel::new(
        PCM_TIERS_MB[..6].to_vec(),
        report.pcm_laws[..5]
            .iter()
            .map(|r| RatioLaw::from(r.fit))
            .collect(),
    )?;
    let truncated = HostModel::new(
        full.cores().clone(),
        truncated_pcm,
        &model_correlation(&report.correlation),
        law_of(report, "Whetstone Mean")?,
        law_of(report, "Whetstone Variance")?,
        law_of(report, "Dhrystone Mean")?,
        law_of(report, "Dhrystone Variance")?,
        law_of(report, "Disk Space Mean")?,
        law_of(report, "Disk Space Variance")?,
    )?;
    for (label, model) in [("with 4GB tier", full), ("capped at 2GB", &truncated)] {
        let preds = memory_prediction(model, &[SimDate::from_year(2014.0)])?;
        println!(
            "{label:<15} predicted 2014 mean memory: {:>5.2} GB (paper's own figure: 6.8 GB)",
            preds[0].mean_memory_mb / 1024.0
        );
    }
    Ok(())
}

/// Look up a fitted moment law by label.
fn law_of(
    report: &FitReport,
    label: &str,
) -> Result<resmodel_core::model::MomentLaw, ResmodelError> {
    let row = report
        .moment_laws
        .iter()
        .find(|r| r.label == label)
        .ok_or_else(|| {
            ResmodelError::config("fit report", format!("missing moment law `{label}`"))
        })?;
    Ok(resmodel_core::model::MomentLaw::new(row.fit.a, row.fit.b))
}

/// Population churn analytics (the dynamics behind Figs 1 and 3).
fn churn(trace: &Trace) {
    use resmodel_trace::churn::{churn_series, cohort_half_life_days, retention_curve};
    section("Extension: population churn (dynamics behind Figs 1/3)");
    let series = churn_series(
        trace,
        SimDate::from_year(2006.0),
        SimDate::from_year(2010.0),
        365.25,
    );
    println!(
        "{:>6} {:>9} {:>11} {:>13} {:>18}",
        "year", "arrivals", "departures", "active@start", "monthly turnover"
    );
    for w in &series {
        println!(
            "{:>6.0} {:>9} {:>11} {:>13} {:>17.1}%",
            w.from.year(),
            w.arrivals,
            w.departures,
            w.active_at_start,
            w.monthly_turnover * 100.0
        );
    }
    for cohort in [2006.0, 2008.0] {
        let hl = cohort_half_life_days(
            trace,
            SimDate::from_year(cohort),
            SimDate::from_year(cohort + 1.0),
            1500.0,
        );
        let curve = retention_curve(
            trace,
            SimDate::from_year(cohort),
            SimDate::from_year(cohort + 1.0),
            &[30.0, 90.0, 365.0],
        );
        let fr = |i: usize| curve[i].1 * 100.0;
        match hl {
            Some(days) => println!(
                "{cohort:.0} cohort: half-life {days:.0} days; retention 30d {:.0}%, 90d {:.0}%, 1y {:.0}%",
                fr(0), fr(1), fr(2)
            ),
            None => println!("{cohort:.0} cohort: half-life beyond probe window"),
        }
    }
    println!("(newer cohorts churn faster — the Fig 3 effect, now as retention numbers)");
}

/// The GPU model extension fitted from the trace's GPU records.
fn gpumodel(trace: &Trace) {
    use resmodel_core::gpu_model::GpuModel;
    section("Extension: fitted GPU model (paper §VIII future work)");
    let dates: Vec<SimDate> = (0..4)
        .map(|q| SimDate::from_year(2009.8 + 0.25 * q as f64))
        .collect();
    match GpuModel::fit(trace, &dates) {
        Ok(model) => {
            println!(
                "presence law fit r = {:.3} (|r| far below 1 warns of the short window)",
                model.presence_r
            );
            println!(
                "{:>8} {:>10} {:>10} {:>10} {:>12}",
                "year", "presence", "GeForce", "Radeon", "mean mem MB"
            );
            for &y in &[2010.0, 2010.67, 2011.5, 2012.0] {
                let d = SimDate::from_year(y);
                let shares = model.class_shares_at(d);
                let share = |c: resmodel_trace::GpuClass| {
                    shares
                        .iter()
                        .find(|(k, _)| *k == c)
                        .map(|(_, w)| *w)
                        .unwrap_or(0.0)
                };
                println!(
                    "{y:>8.2} {:>9.1}% {:>9.1}% {:>9.1}% {:>12.0}",
                    model.presence_at(d) * 100.0,
                    share(resmodel_trace::GpuClass::GeForce) * 100.0,
                    share(resmodel_trace::GpuClass::Radeon) * 100.0,
                    model.mean_memory_mb(d)
                );
            }
            println!("(2011+ rows are extrapolation — exactly the risk the paper flags)");
        }
        Err(e) => println!("GPU model fit unavailable at this scale: {e}"),
    }
}
