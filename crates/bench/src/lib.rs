//! Shared helpers for the `repro` experiment harness and the Criterion
//! benchmarks: world construction, table formatting and small utilities
//! used when regenerating the paper's tables and figures.

#![warn(clippy::unwrap_used)]

pub mod cli;

use resmodel_boinc::{simulate, WorldParams};
use resmodel_error::ResmodelError;
use resmodel_popsim::{engine, Scenario};
use resmodel_trace::sanitize::{sanitize, SanitizeRules};
use resmodel_trace::{SimDate, Trace};

/// Default world scale used by the experiment harness (≈15k hosts over
/// 2005–2010; the paper's full scale is 1.0 ≈ 3M hosts).
pub const DEFAULT_SCALE: f64 = 0.004;

/// Default world seed.
pub const DEFAULT_SEED: u64 = 20110620; // ICDCS 2011 opening day

/// Build the measured world: simulate and sanitize.
pub fn build_world(scale: f64, seed: u64) -> Trace {
    let params = WorldParams::with_scale(scale, seed);
    let raw = simulate(&params);
    sanitize(&raw, SanitizeRules::default()).trace
}

/// Build the raw (unsanitized) world, for the sanitization report.
pub fn build_raw_world(scale: f64, seed: u64) -> Trace {
    simulate(&WorldParams::with_scale(scale, seed))
}

/// Build a world from a population-engine scenario instead of the
/// BOINC measurement loop: run the scenario (optionally capped at
/// `max_hosts`; 0 keeps the scenario's own cap) and export the fleet
/// as a measurement trace.
///
/// # Errors
///
/// Returns the scenario's validation error, if any.
pub fn build_popsim_world(
    mut scenario: Scenario,
    max_hosts: usize,
) -> Result<Trace, ResmodelError> {
    if max_hosts > 0 {
        scenario.max_hosts = max_hosts;
    }
    let report = engine::run(&scenario)?;
    Ok(resmodel_popsim::fleet_to_trace(
        &report.fleet,
        report.scenario.end,
    ))
}

/// Yearly January sample dates 2006–2010 (the paper's fitting window).
pub fn fit_dates() -> Vec<SimDate> {
    (2006..=2010)
        .map(|y| SimDate::from_year(y as f64))
        .collect()
}

/// Monthly dates January–September 2010 (the Fig 15 window).
pub fn fig15_dates() -> Vec<SimDate> {
    (0..9)
        .map(|m| SimDate::from_year(2010.0 + m as f64 / 12.0))
        .collect()
}

/// Render a row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Print a named section header.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn world_builders_work() {
        let t = build_world(0.0003, 1);
        assert!(t.len() > 50);
        let raw = build_raw_world(0.0003, 1);
        assert!(raw.len() >= t.len());
    }

    #[test]
    fn popsim_world_builder_works() {
        let t = build_popsim_world(Scenario::steady_state(1), 300).expect("valid scenario");
        assert_eq!(t.len(), 300);
        assert!(t.active_count(SimDate::from_year(2008.0)) > 0);
        let mut bad = Scenario::steady_state(1);
        bad.shard_count = 0;
        assert!(build_popsim_world(bad, 10).is_err());
    }

    #[test]
    fn date_helpers() {
        assert_eq!(fit_dates().len(), 5);
        assert_eq!(fig15_dates().len(), 9);
        assert!((fig15_dates()[8].year() - (2010.0 + 8.0 / 12.0)).abs() < 1e-9);
    }

    #[test]
    fn row_formatting() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
