//! Shared command-line plumbing for the workspace binaries (`repro`,
//! `worldsim`, `hostgen`): a typed argument cursor built on
//! [`ArgError`], consistent `--help` rendering, and a common
//! error-reporting exit path with distinct exit codes (2 for usage
//! problems, 1 for runtime failures).

use resmodel_error::{ArgError, ResmodelError};
use std::str::FromStr;

/// One flag's help entry.
#[derive(Debug, Clone, Copy)]
pub struct FlagHelp {
    /// The flag with its value placeholder, e.g. `"--scale S"`.
    pub flag: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// A binary's usage description, rendered identically across all
/// workspace binaries.
#[derive(Debug, Clone, Copy)]
pub struct Usage {
    /// Binary name.
    pub bin: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Usage lines (without the leading `usage:` prefix).
    pub usage: &'static [&'static str],
    /// Flag descriptions.
    pub flags: &'static [FlagHelp],
}

impl Usage {
    /// Render the full help text.
    pub fn render(&self) -> String {
        let mut out = format!("{} — {}\n\n", self.bin, self.summary);
        out.push_str(&self.reminder());
        if !self.flags.is_empty() {
            out.push_str("\nflags:\n");
            let width = self.flags.iter().map(|f| f.flag.len()).max().unwrap_or(0);
            for f in self.flags {
                out.push_str(&format!("  {:<width$}  {}\n", f.flag, f.help));
            }
        }
        out
    }

    /// The one-line usage reminder printed after an argument error.
    pub fn reminder(&self) -> String {
        let mut out = String::new();
        for (i, line) in self.usage.iter().enumerate() {
            let prefix = if i == 0 { "usage: " } else { "       " };
            out.push_str(prefix);
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

/// Stderr verbosity of a workspace binary, set by the shared
/// `--quiet` / `--verbose` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Verbosity {
    /// `--quiet`: warnings only.
    Quiet,
    /// The default: progress lines plus warnings.
    #[default]
    Normal,
    /// `--verbose`: progress plus debug detail.
    Verbose,
}

/// Leveled stderr logger shared by the workspace binaries. Progress
/// chatter goes through [`Logger::info`] (suppressed by `--quiet`),
/// extra detail through [`Logger::debug`] (shown only with
/// `--verbose`), and problems through [`Logger::warn`] (always shown).
/// Results belong on stdout, never here.
#[derive(Debug, Clone, Copy, Default)]
pub struct Logger {
    level: Verbosity,
}

impl Logger {
    /// A logger at `level`.
    pub fn new(level: Verbosity) -> Self {
        Self { level }
    }

    /// The configured level.
    pub fn level(&self) -> Verbosity {
        self.level
    }

    /// Whether [`Logger::info`] lines are emitted.
    pub fn info_enabled(&self) -> bool {
        self.level >= Verbosity::Normal
    }

    /// Whether [`Logger::debug`] lines are emitted.
    pub fn debug_enabled(&self) -> bool {
        self.level >= Verbosity::Verbose
    }

    /// Progress line: stderr at [`Verbosity::Normal`] and above.
    pub fn info(&self, message: impl AsRef<str>) {
        if self.info_enabled() {
            eprintln!("{}", message.as_ref());
        }
    }

    /// Debug detail: stderr at [`Verbosity::Verbose`] only.
    pub fn debug(&self, message: impl AsRef<str>) {
        if self.debug_enabled() {
            eprintln!("{}", message.as_ref());
        }
    }

    /// Warning: stderr at every level, `warning:`-prefixed.
    pub fn warn(&self, message: impl AsRef<str>) {
        eprintln!("warning: {}", message.as_ref());
    }
}

/// A cursor over command-line tokens with typed error reporting.
#[derive(Debug)]
pub struct Args {
    tokens: Vec<String>,
    i: usize,
}

impl Args {
    /// Capture the process arguments (after the binary name).
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// Build from explicit tokens (tests).
    pub fn new(tokens: Vec<String>) -> Self {
        Self { tokens, i: 0 }
    }

    /// The next token, advancing the cursor.
    pub fn next_token(&mut self) -> Option<String> {
        let t = self.tokens.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// The value following `flag`.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] when the token stream ends.
    pub fn value(&mut self, flag: &str) -> Result<String, ArgError> {
        self.next_token().ok_or_else(|| ArgError::MissingValue {
            flag: flag.to_owned(),
        })
    }

    /// The value following `flag`, parsed as `T`.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingValue`] when the stream ends,
    /// [`ArgError::InvalidValue`] when parsing fails.
    pub fn parse<T: FromStr>(&mut self, flag: &str, expected: &'static str) -> Result<T, ArgError> {
        let raw = self.value(flag)?;
        raw.parse().map_err(|_| ArgError::InvalidValue {
            flag: flag.to_owned(),
            value: raw,
            expected,
        })
    }
}

/// Shorthand for an [`ArgError::Usage`] result.
pub fn usage_error<T>(message: impl Into<String>) -> Result<T, ResmodelError> {
    Err(ArgError::Usage {
        message: message.into(),
    }
    .into())
}

/// Shorthand for an [`ArgError::UnknownFlag`] result.
pub fn unknown_flag<T>(flag: impl Into<String>) -> Result<T, ResmodelError> {
    Err(ArgError::UnknownFlag { flag: flag.into() }.into())
}

/// Print the rendered usage and exit 0. Call from a flag-position
/// match arm so a token that is another flag's *value* (e.g. a file
/// named `-h`) is never mistaken for a help request.
pub fn help_exit(usage: &Usage) -> ! {
    print!("{}", usage.render());
    std::process::exit(0)
}

/// Run a binary body with uniform error reporting: an `Err` prints
/// `bin: error` (plus the usage reminder for argument errors) and
/// exits with [`ResmodelError::exit_code`].
pub fn run_main(usage: &Usage, body: impl FnOnce(Args) -> Result<(), ResmodelError>) {
    if let Err(e) = body(Args::from_env()) {
        eprintln!("{}: {e}", usage.bin);
        if matches!(e, ResmodelError::Arg(_)) {
            eprint!("{}", usage.reminder());
        }
        std::process::exit(e.exit_code());
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const USAGE: Usage = Usage {
        bin: "demo",
        summary: "a demo",
        usage: &["demo [--n N]", "demo all"],
        flags: &[
            FlagHelp {
                flag: "--n N",
                help: "how many",
            },
            FlagHelp {
                flag: "--verbose",
                help: "say more",
            },
        ],
    };

    #[test]
    fn cursor_walks_tokens() {
        let mut a = Args::new(vec!["--n".into(), "5".into(), "rest".into()]);
        assert_eq!(a.next_token().as_deref(), Some("--n"));
        let n: usize = a.parse("--n", "an integer").unwrap();
        assert_eq!(n, 5);
        assert_eq!(a.next_token().as_deref(), Some("rest"));
        assert_eq!(a.next_token(), None);
    }

    #[test]
    fn missing_and_invalid_values() {
        let mut a = Args::new(vec![]);
        assert_eq!(
            a.parse::<u64>("--seed", "an integer").unwrap_err(),
            ArgError::MissingValue {
                flag: "--seed".into()
            }
        );
        let mut a = Args::new(vec!["abc".into()]);
        assert!(matches!(
            a.parse::<f64>("--scale", "a number").unwrap_err(),
            ArgError::InvalidValue { .. }
        ));
    }

    #[test]
    fn usage_renders_consistently() {
        let text = USAGE.render();
        assert!(text.starts_with("demo — a demo"));
        assert!(text.contains("usage: demo [--n N]"));
        assert!(text.contains("       demo all"));
        assert!(text.contains("--n N"));
        assert!(text.contains("how many"));
        let reminder = USAGE.reminder();
        assert!(reminder.contains("usage: demo [--n N]"));
        assert!(!reminder.contains("how many"));
    }

    #[test]
    fn logger_levels_gate_output() {
        let quiet = Logger::new(Verbosity::Quiet);
        assert!(!quiet.info_enabled() && !quiet.debug_enabled());
        let normal = Logger::default();
        assert_eq!(normal.level(), Verbosity::Normal);
        assert!(normal.info_enabled() && !normal.debug_enabled());
        let verbose = Logger::new(Verbosity::Verbose);
        assert!(verbose.info_enabled() && verbose.debug_enabled());
        assert!(Verbosity::Quiet < Verbosity::Normal && Verbosity::Normal < Verbosity::Verbose);
    }

    #[test]
    fn typed_error_helpers() {
        let e = usage_error::<()>("bad combo").unwrap_err();
        assert_eq!(e.exit_code(), 2);
        let e = unknown_flag::<()>("--bogus").unwrap_err();
        assert!(e.to_string().contains("--bogus"));
    }
}
