//! Row vs columnar extraction benchmarks at 100k hosts: the data-path
//! comparison behind the `trace::columnar` refactor.
//!
//! `row_*` benchmarks scan the row-oriented [`Trace`] (re-filtering
//! every host record per query); `columnar_*` benchmarks resolve the
//! active set once and gather from dense column arrays. Outputs are
//! bitwise identical (asserted at setup), so the timings compare pure
//! layout cost.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_popsim::{engine, fleet_to_columnar, fleet_to_trace, Scenario};
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::{ColumnarTrace, SimDate, Trace};
use std::hint::black_box;

fn hundred_k() -> (Trace, ColumnarTrace) {
    let mut scenario = Scenario::steady_state(17);
    scenario.max_hosts = 100_000;
    let report = engine::run(&scenario).expect("scenario runs");
    let trace = fleet_to_trace(&report.fleet, report.scenario.end);
    let columnar = fleet_to_columnar(&report.fleet, report.scenario.end);
    (trace, columnar)
}

fn bench_columnar(c: &mut Criterion) {
    let (trace, columnar) = hundred_k();
    let date = SimDate::from_year(2009.0);

    // Sanity: the two layouts agree before we time them.
    let set = columnar.active_at(date);
    assert_eq!(set.len(), trace.active_count(date));
    assert_eq!(
        columnar.column_values(&set, ResourceColumn::Dhrystone),
        trace.column_at(date, ResourceColumn::Dhrystone)
    );

    // Resolve the active population of one date.
    c.bench_function("row_resolve_population_100k", |b| {
        b.iter(|| black_box(trace.population_at(date).len()))
    });
    c.bench_function("columnar_resolve_active_100k", |b| {
        b.iter(|| black_box(columnar.active_at(date).len()))
    });

    // Extract all six Table-III columns at one date — the fit
    // pipeline's per-date workload. The row path re-filters all hosts
    // per column; the columnar path resolves once and gathers.
    c.bench_function("row_extract_6_columns_100k", |b| {
        b.iter(|| {
            for column in ResourceColumn::ALL {
                black_box(trace.column_at(date, column));
            }
        })
    });
    c.bench_function("columnar_extract_6_columns_100k", |b| {
        b.iter(|| {
            let set = columnar.active_at(date);
            for column in ResourceColumn::ALL {
                black_box(columnar.column_values(&set, column));
            }
        })
    });

    // One-off conversion cost the columnar path amortises.
    c.bench_function("columnar_convert_100k", |b| {
        b.iter(|| black_box(ColumnarTrace::from(&trace).len()))
    });
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
