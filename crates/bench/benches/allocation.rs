//! Allocation-simulator benchmarks: utility evaluation and the greedy
//! round-robin allocator at Fig 15 population sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_allocsim::{allocate_round_robin, utility, AppProfile};
use resmodel_core::{HostGenerator, HostModel};
use resmodel_trace::SimDate;
use std::hint::black_box;

fn bench_allocation(c: &mut Criterion) {
    let model = HostModel::paper();
    let hosts = model.generate_population(SimDate::from_year(2010.0), 5_000, 21);

    c.bench_function("utility_eval_5k_hosts", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for h in &hosts {
                acc += utility(&AppProfile::CLIMATE_PREDICTION, h);
            }
            black_box(acc)
        })
    });

    c.bench_function("allocate_round_robin_5k", |b| {
        b.iter(|| black_box(allocate_round_robin(&AppProfile::ALL, &hosts)))
    });

    let small = &hosts[..500];
    c.bench_function("allocate_round_robin_500", |b| {
        b.iter(|| black_box(allocate_round_robin(&AppProfile::ALL, small)))
    });
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
