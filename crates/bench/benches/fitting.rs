//! Fitting-pipeline cost: full model fit, ratio-law fits and the
//! per-date correlation matrix on a fixed synthetic world.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_bench::{build_world, fit_dates};
use resmodel_core::fit::{
    average_correlation, fit_core_laws, fit_host_model, fit_moment_laws, FitConfig,
};
use resmodel_trace::SimDate;
use std::hint::black_box;

fn bench_fitting(c: &mut Criterion) {
    let trace = build_world(0.001, 3);
    let dates = fit_dates();

    c.bench_function("fit_host_model_full", |b| {
        b.iter(|| black_box(fit_host_model(&trace, &FitConfig::default()).expect("fit")))
    });
    c.bench_function("fit_core_laws", |b| {
        b.iter(|| black_box(fit_core_laws(&trace, &dates).expect("fit")))
    });
    c.bench_function("fit_moment_laws", |b| {
        b.iter(|| black_box(fit_moment_laws(&trace, &dates).expect("fit")))
    });
    c.bench_function("average_correlation", |b| {
        b.iter(|| black_box(average_correlation(&trace, &dates).expect("fit")))
    });
    c.bench_function("lifetime_weibull", |b| {
        b.iter(|| {
            black_box(
                resmodel_core::fit::lifetime_weibull(&trace, SimDate::from_year(2010.4))
                    .expect("fit"),
            )
        })
    });
}

criterion_group!(benches, bench_fitting);
criterion_main!(benches);
