//! Trace-store query benchmarks: activity counting, population
//! snapshots and column extraction over a realistic trace.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_bench::build_world;
use resmodel_trace::store::ResourceColumn;
use resmodel_trace::SimDate;
use std::hint::black_box;

fn bench_trace_queries(c: &mut Criterion) {
    let trace = build_world(0.001, 17);
    let date = SimDate::from_year(2009.0);

    c.bench_function("active_count", |b| {
        b.iter(|| black_box(trace.active_count(date)))
    });
    c.bench_function("population_at", |b| {
        b.iter(|| black_box(trace.population_at(date)))
    });
    c.bench_function("column_at_dhrystone", |b| {
        b.iter(|| black_box(trace.column_at(date, ResourceColumn::Dhrystone)))
    });
    c.bench_function("lifetimes_censored", |b| {
        b.iter(|| black_box(trace.lifetimes(SimDate::from_year(2010.4))))
    });
}

criterion_group!(benches, bench_trace_queries);
criterion_main!(benches);
