//! World-simulation benchmarks: how fast the BOINC substrate produces
//! traces at various scales.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_boinc::{simulate, WorldParams};
use std::hint::black_box;

fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_world");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));
    let scale = 0.0002;
    group.bench_function(format!("scale_{scale}"), |b| {
        b.iter(|| black_box(simulate(&WorldParams::with_scale(scale, 5))))
    });
    group.finish();
}

criterion_group!(benches, bench_world);
criterion_main!(benches);
