//! Host-generation throughput: the paper's tool claim is "automatically
//! generating realistic Internet end hosts"; measure how fast each
//! model emits hosts.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use resmodel_baselines::{GridModel, NormalModel};
use resmodel_core::{HostGenerator, HostModel};
use resmodel_stats::rng::seeded;
use resmodel_trace::SimDate;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let date = SimDate::from_year(2010.67);
    let correlated = HostModel::paper();
    let normal = NormalModel::paper_like();
    let grid = GridModel::paper_like();

    let mut group = c.benchmark_group("generate_host");
    group.bench_function("correlated", |b| {
        b.iter_batched_ref(
            || seeded(1),
            |rng| black_box(correlated.generate_host(date, rng)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("normal", |b| {
        b.iter_batched_ref(
            || seeded(1),
            |rng| black_box(normal.generate_host(date, rng)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("grid", |b| {
        b.iter_batched_ref(
            || seeded(1),
            |rng| black_box(grid.generate_host(date, rng)),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    c.bench_function("generate_population_10k", |b| {
        b.iter(|| black_box(correlated.generate_population(date, 10_000, 7)))
    });
}

criterion_group!(benches, bench_generation);
criterion_main!(benches);
