//! Population-dynamics engine benchmarks: evolve ≥100k-host fleets
//! through five simulated years under different scenarios, plus the
//! trace-export bridge.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_popsim::{engine, fleet_to_trace, ArrivalLaw, Scenario};
use std::hint::black_box;

/// A scenario tuned to produce ≥ `hosts` arrivals, capped exactly
/// there so every measurement simulates the same fleet size.
fn sized(mut scenario: Scenario, hosts: usize) -> Scenario {
    scenario.max_hosts = hosts;
    scenario.arrivals = match scenario.arrivals {
        ArrivalLaw::FlashCrowd {
            burst_center,
            burst_width_days,
            burst_amplitude,
            ..
        } => ArrivalLaw::FlashCrowd {
            base_per_day: 120.0,
            growth_per_year: 0.18,
            burst_center,
            burst_width_days,
            burst_amplitude,
        },
        _ => ArrivalLaw::Exponential {
            base_per_day: 120.0,
            growth_per_year: 0.18,
        },
    };
    scenario
}

fn bench_popsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("popsim");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(12));

    {
        let hosts = 100_000usize;
        let steady = sized(Scenario::steady_state(7), hosts);
        group.bench_function(format!("steady_state_{hosts}"), |b| {
            b.iter(|| black_box(engine::run(&steady).expect("valid scenario")))
        });

        let crowd = sized(Scenario::flash_crowd(7), hosts);
        group.bench_function(format!("flash_crowd_{hosts}"), |b| {
            b.iter(|| black_box(engine::run(&crowd).expect("valid scenario")))
        });

        let wave = sized(Scenario::gpu_wave(7), hosts);
        group.bench_function(format!("gpu_wave_{hosts}"), |b| {
            b.iter(|| black_box(engine::run(&wave).expect("valid scenario")))
        });
    }
    group.finish();

    // The export bridge at fleet scale.
    let report = engine::run(&sized(Scenario::steady_state(7), 100_000)).expect("valid");
    c.bench_function("popsim_fleet_to_trace_100k", |b| {
        b.iter(|| black_box(fleet_to_trace(&report.fleet, report.scenario.end)))
    });

    // O(1) host lookup on the sharded fleet.
    c.bench_function("popsim_host_lookup_100k", |b| {
        b.iter(|| {
            let mut found = 0u64;
            for id in (0..100_000u64).step_by(97) {
                if report.fleet.host(black_box(id)).is_some() {
                    found += 1;
                }
            }
            black_box(found)
        })
    });
}

criterion_group!(benches, bench_popsim);
criterion_main!(benches);
