//! Workload-dispatch benchmarks: push a million-job workload through a
//! 100k-host fleet under every placement policy, reporting jobs/sec.
//!
//! The fleet is built once (outside the timed region); each sample
//! measures generation + sharded dispatch end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel::popsim::{engine, ArrivalLaw, EngineReport, Scenario};
use resmodel::sched::{dispatch, DispatchPolicy, WorkloadSpec};
use std::hint::black_box;

fn sized_fleet(hosts: usize) -> EngineReport {
    let mut scenario = Scenario::steady_state(7);
    scenario.max_hosts = hosts;
    scenario.arrivals = ArrivalLaw::Exponential {
        base_per_day: 120.0,
        growth_per_year: 0.18,
    };
    engine::run(&scenario).expect("valid scenario")
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));

    let hosts = 100_000usize;
    let jobs = 1_000_000usize;
    let fleet = sized_fleet(hosts);
    // Open the window where the capped fleet's live population peaks.
    let mut workload = WorkloadSpec::preset("mixed")
        .expect("built-in preset")
        .with_job_budget(jobs);
    workload.start = resmodel::trace::SimDate::from_year(2007.0);

    for policy in DispatchPolicy::ALL {
        group.bench_function(format!("{}_{hosts}x{jobs}", policy.label()), |b| {
            b.iter(|| {
                let report = dispatch(&fleet, &workload, policy).expect("valid workload");
                black_box(report.totals.completed)
            })
        });
    }

    // Report the throughput figure the BENCH artifact tracks.
    let report =
        dispatch(&fleet, &workload, DispatchPolicy::EarliestFinish).expect("valid workload");
    println!(
        "dispatch: earliest-finish {hosts} hosts x {} jobs -> {:.0} jobs/sec \
         ({} completed, {:.1}% utilization, makespan {:.0} h)",
        report.totals.jobs,
        report.jobs_per_sec,
        report.totals.completed,
        100.0 * report.totals.host_utilization,
        report.totals.makespan_hours,
    );
}

/// The scaling companion to the BENCH `/7` `dispatch_scaling` probe:
/// earliest-finish throughput at 100k and 1M jobs over the same
/// 100k-host fleet. With the streaming engine both points should land
/// at the same jobs/sec order of magnitude — generation stays
/// per-segment, so the larger run does not pay a materialize-and-sort
/// tax.
fn bench_dispatch_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));

    let fleet = sized_fleet(100_000);
    for jobs in [100_000usize, 1_000_000] {
        let mut workload = WorkloadSpec::preset("mixed")
            .expect("built-in preset")
            .with_job_budget(jobs);
        workload.start = resmodel::trace::SimDate::from_year(2007.0);
        group.bench_function(format!("earliest_finish_{jobs}_jobs"), |b| {
            b.iter(|| {
                let report = dispatch(&fleet, &workload, DispatchPolicy::EarliestFinish)
                    .expect("valid workload");
                black_box(report.totals.completed)
            })
        });
    }
}

criterion_group!(benches, bench_dispatch, bench_dispatch_scaling);
criterion_main!(benches);
