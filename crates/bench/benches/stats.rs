//! Statistical-substrate microbenchmarks: KS testing (full-sample and
//! the paper's subsampled procedure), family selection, Cholesky and
//! MLE fits.

use criterion::{criterion_group, criterion_main, Criterion};
use resmodel_stats::distributions::{LogNormal, Normal, Weibull};
use resmodel_stats::ks::{ks_test, select_family, subsampled_ks_pvalue, SubsampleConfig};
use resmodel_stats::rng::seeded;
use resmodel_stats::sampling::CorrelatedNormals;
use resmodel_stats::{Distribution, DistributionFamily, Matrix};
use std::hint::black_box;

fn bench_stats(c: &mut Criterion) {
    let mut rng = seeded(9);
    let normal = Normal::new(2056.0, 1046.0).expect("valid");
    let data = normal.sample_n(&mut rng, 10_000);

    c.bench_function("ks_test_n10k", |b| {
        b.iter(|| black_box(ks_test(&data, &normal).expect("test")))
    });
    c.bench_function("subsampled_ks_100x50", |b| {
        b.iter(|| {
            let mut r = seeded(10);
            black_box(
                subsampled_ks_pvalue(&data, &normal, SubsampleConfig::default(), &mut r)
                    .expect("test"),
            )
        })
    });
    c.bench_function("select_family_7_candidates", |b| {
        b.iter(|| {
            let mut r = seeded(11);
            black_box(
                select_family(
                    &data,
                    &DistributionFamily::ALL,
                    SubsampleConfig::default(),
                    &mut r,
                )
                .expect("selection"),
            )
        })
    });

    let r = Matrix::from_rows(&[
        &[1.0, 0.250, 0.306],
        &[0.250, 1.0, 0.639],
        &[0.306, 0.639, 1.0],
    ])
    .expect("well-formed");
    c.bench_function("cholesky_3x3", |b| {
        b.iter(|| black_box(r.cholesky().expect("spd")))
    });
    let sampler = CorrelatedNormals::new(&r).expect("spd");
    c.bench_function("correlated_normal_sample", |b| {
        b.iter_batched_ref(
            || seeded(12),
            |rng| black_box(sampler.sample(rng)),
            criterion::BatchSize::SmallInput,
        )
    });

    let mut rng2 = seeded(13);
    let weib_data = Weibull::new(0.58, 135.0)
        .expect("valid")
        .sample_n(&mut rng2, 10_000);
    c.bench_function("weibull_mle_n10k", |b| {
        b.iter(|| black_box(Weibull::fit_mle(&weib_data).expect("fit")))
    });
    let ln_data = LogNormal::new(3.0, 1.0)
        .expect("valid")
        .sample_n(&mut rng2, 10_000);
    c.bench_function("lognormal_mle_n10k", |b| {
        b.iter(|| black_box(LogNormal::fit_mle(&ln_data).expect("fit")))
    });
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
