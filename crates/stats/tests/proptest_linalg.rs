//! Property-based tests of the linear algebra, correlation and
//! regression layers.

use proptest::prelude::*;
use resmodel_stats::correlation::{correlation_matrix, pearson, ranks, spearman};
use resmodel_stats::regression::{exp_law_fit, linear_fit};
use resmodel_stats::Matrix;

/// Build a random symmetric positive-definite matrix as `B·Bᵀ + εI`.
fn spd_from(values: &[f64], n: usize) -> Matrix {
    let mut b = Matrix::new(n, n);
    for i in 0..n {
        for j in 0..n {
            b.set(i, j, values[i * n + j]);
        }
    }
    let mut a = b.mul(&b.transpose()).expect("square product");
    for i in 0..n {
        a.set(i, i, a.get(i, i) + 0.5);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cholesky_reconstructs_spd(values in prop::collection::vec(-3.0..3.0f64, 9)) {
        let a = spd_from(&values, 3);
        let l = a.cholesky().unwrap();
        let back = l.mul(&l.transpose()).unwrap();
        prop_assert!(a.max_abs_diff(&back).unwrap() < 1e-9);
        // L is lower triangular with positive diagonal.
        for i in 0..3 {
            prop_assert!(l.get(i, i) > 0.0);
            for j in (i + 1)..3 {
                prop_assert_eq!(l.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn transpose_involution(values in prop::collection::vec(-10.0..10.0f64, 12)) {
        let mut m = Matrix::new(3, 4);
        for i in 0..3 {
            for j in 0..4 {
                m.set(i, j, values[i * 4 + j]);
            }
        }
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matrix_vector_linear(values in prop::collection::vec(-5.0..5.0f64, 9),
                            v in prop::collection::vec(-5.0..5.0f64, 3),
                            k in -3.0..3.0f64) {
        let mut m = Matrix::new(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                m.set(i, j, values[i * 3 + j]);
            }
        }
        let mv = m.mul_vec(&v).unwrap();
        let kv: Vec<f64> = v.iter().map(|x| k * x).collect();
        let mkv = m.mul_vec(&kv).unwrap();
        for (a, b) in mv.iter().zip(&mkv) {
            prop_assert!((k * a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn pearson_bounded_and_symmetric(
        x in prop::collection::vec(-100.0..100.0f64, 5..40),
        noise in prop::collection::vec(-1.0..1.0f64, 40),
    ) {
        let y: Vec<f64> = x.iter().zip(&noise).map(|(a, n)| a * 0.5 + n).collect();
        if let (Ok(rxy), Ok(ryx)) = (pearson(&x, &y), pearson(&y, &x)) {
            prop_assert!(rxy.abs() <= 1.0 + 1e-12);
            prop_assert!((rxy - ryx).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_invariant_to_affine(
        x in prop::collection::vec(-10.0..10.0f64, 10..30),
        a in 0.1..5.0f64,
        b in -20.0..20.0f64,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v * v + v).collect();
        let x2: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        if let (Ok(r1), Ok(r2)) = (pearson(&x, &y), pearson(&x2, &y)) {
            prop_assert!((r1 - r2).abs() < 1e-9, "affine invariance: {r1} vs {r2}");
        }
    }

    #[test]
    fn ranks_are_permutation_sums(data in prop::collection::vec(-50.0..50.0f64, 1..30)) {
        let r = ranks(&data);
        let total: f64 = r.iter().sum();
        let n = data.len() as f64;
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_equals_pearson_of_ranks(data in prop::collection::vec(-50.0..50.0f64, 5..25)) {
        let y: Vec<f64> = data.iter().map(|v| v * 2.0 + 1.0).collect();
        if let Ok(s) = spearman(&data, &y) {
            // y is a strictly increasing function of data → Spearman 1.
            prop_assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn correlation_matrix_is_valid(
        a in prop::collection::vec(-10.0..10.0f64, 20),
        b in prop::collection::vec(-10.0..10.0f64, 20),
    ) {
        let c: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        if let Ok(m) = correlation_matrix(&[&a, &b, &c]) {
            for i in 0..3 {
                prop_assert!((m.get(i, i) - 1.0).abs() < 1e-12);
                for j in 0..3 {
                    prop_assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                    prop_assert!(m.get(i, j).abs() <= 1.0 + 1e-9);
                }
            }
        }
    }

    #[test]
    fn linear_fit_exact_on_lines(slope in -10.0..10.0f64, intercept in -10.0..10.0f64,
                                 xs in prop::collection::vec(-100.0..100.0f64, 3..20)) {
        // Need non-constant x.
        let mut xs = xs;
        xs.push(xs[0] + 1.0);
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        prop_assert!((f.slope - slope).abs() < 1e-6);
        prop_assert!((f.intercept - intercept).abs() < 1e-5);
    }

    #[test]
    fn exp_law_fit_exact(a in 0.01..100.0f64, b in -1.0..1.0f64) {
        let ts: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let ys: Vec<f64> = ts.iter().map(|&t| a * (b * t).exp()).collect();
        let f = exp_law_fit(&ts, &ys).unwrap();
        prop_assert!((f.a - a).abs() / a < 1e-9);
        prop_assert!((f.b - b).abs() < 1e-9);
    }
}
