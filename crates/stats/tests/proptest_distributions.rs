//! Property-based tests of the distribution families: support, CDF
//! monotonicity, quantile inversion and MLE recovery under randomly
//! drawn parameters.

use proptest::prelude::*;
use resmodel_stats::distributions::{
    Exponential, Gamma, LogGamma, LogNormal, Normal, Pareto, Weibull,
};
use resmodel_stats::rng::seeded;
use resmodel_stats::Distribution;

/// Check the universal distribution contract on a fixed probe grid.
fn check_contract(d: &dyn Distribution, probes: &[f64], seed: u64) {
    // CDF is monotone in [0, 1].
    let mut prev = 0.0;
    for &x in probes {
        let c = d.cdf(x);
        assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c} out of range");
        assert!(c >= prev - 1e-12, "cdf must be nondecreasing at {x}");
        prev = c;
        assert!(d.pdf(x) >= 0.0, "pdf({x}) negative");
    }
    // Quantile inverts the CDF.
    for &p in &[0.05, 0.25, 0.5, 0.75, 0.95] {
        let q = d.quantile(p);
        assert!(
            (d.cdf(q) - p).abs() < 1e-6,
            "quantile/cdf mismatch at p = {p}: q = {q}, cdf(q) = {}",
            d.cdf(q)
        );
    }
    // Samples stay in the support (cdf of a sample is in (0,1]).
    let mut rng = seeded(seed);
    for _ in 0..50 {
        let x = d.sample(&mut rng);
        assert!(x.is_finite());
        let c = d.cdf(x);
        assert!((0.0..=1.0).contains(&c));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_contract(mean in -1e4..1e4f64, sd in 0.01..1e3f64, seed in 0u64..1000) {
        let d = Normal::new(mean, sd).unwrap();
        let probes: Vec<f64> = (-4..=4).map(|k| mean + k as f64 * sd).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn lognormal_contract(mu in -3.0..6.0f64, sigma in 0.05..2.0f64, seed in 0u64..1000) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let probes: Vec<f64> = (0..8).map(|k| (mu + (k as f64 - 3.0) * sigma).exp()).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn exponential_contract(rate in 1e-3..1e2f64, seed in 0u64..1000) {
        let d = Exponential::new(rate).unwrap();
        let probes: Vec<f64> = (0..8).map(|k| k as f64 / (2.0 * rate)).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn weibull_contract(shape in 0.2..8.0f64, scale in 0.1..1e3f64, seed in 0u64..1000) {
        let d = Weibull::new(shape, scale).unwrap();
        let probes: Vec<f64> = (0..8).map(|k| k as f64 * scale / 2.0).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn pareto_contract(scale in 0.1..1e3f64, shape in 0.3..6.0f64, seed in 0u64..1000) {
        let d = Pareto::new(scale, shape).unwrap();
        let probes: Vec<f64> = (0..8).map(|k| scale * (1.0 + k as f64)).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn gamma_contract(shape in 0.2..20.0f64, scale in 0.05..100.0f64, seed in 0u64..1000) {
        let d = Gamma::new(shape, scale).unwrap();
        let mean = shape * scale;
        let probes: Vec<f64> = (0..8).map(|k| k as f64 * mean / 3.0).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn loggamma_contract(shape in 0.5..6.0f64, scale in 0.05..0.6f64, seed in 0u64..1000) {
        let d = LogGamma::new(shape, scale).unwrap();
        let probes: Vec<f64> = (0..8).map(|k| 1.0 + k as f64).collect();
        check_contract(&d, &probes, seed);
    }

    #[test]
    fn normal_mle_recovers(mean in -100.0..100.0f64, sd in 0.5..50.0f64, seed in 0u64..100) {
        let truth = Normal::new(mean, sd).unwrap();
        let mut rng = seeded(seed);
        let data = truth.sample_n(&mut rng, 4000);
        let fit = Normal::fit_mle(&data).unwrap();
        prop_assert!((fit.mu() - mean).abs() < 5.0 * sd / (4000f64).sqrt() + 1e-9);
        prop_assert!((fit.sigma() - sd).abs() / sd < 0.1);
    }

    #[test]
    fn weibull_mle_recovers(shape in 0.4..4.0f64, scale in 1.0..500.0f64, seed in 0u64..50) {
        let truth = Weibull::new(shape, scale).unwrap();
        let mut rng = seeded(seed);
        let data = truth.sample_n(&mut rng, 4000);
        let fit = Weibull::fit_mle(&data).unwrap();
        prop_assert!((fit.shape() - shape).abs() / shape < 0.12,
            "shape {} vs {}", fit.shape(), shape);
        prop_assert!((fit.scale() - scale).abs() / scale < 0.15,
            "scale {} vs {}", fit.scale(), scale);
    }

    #[test]
    fn exponential_mle_recovers(rate in 0.01..50.0f64, seed in 0u64..100) {
        let truth = Exponential::new(rate).unwrap();
        let mut rng = seeded(seed);
        let data = truth.sample_n(&mut rng, 4000);
        let fit = Exponential::fit_mle(&data).unwrap();
        prop_assert!((fit.rate() - rate).abs() / rate < 0.1);
    }
}
