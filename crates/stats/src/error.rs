//! Error type shared by all statistical routines.

use std::fmt;

/// Errors produced by the statistical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An operation required at least one (or more) data points.
    EmptyData {
        /// Name of the operation that failed.
        what: &'static str,
        /// Minimum number of points required.
        needed: usize,
        /// Number of points provided.
        got: usize,
    },
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable constraint, e.g. `"must be finite and > 0"`.
        constraint: &'static str,
    },
    /// Data violated a support constraint (e.g. log-normal needs x > 0).
    InvalidData {
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// Name of the algorithm.
        what: &'static str,
        /// Number of iterations attempted.
        iterations: usize,
    },
    /// A matrix operation required a square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// Cholesky decomposition failed: the matrix is not positive definite.
    NotPositiveDefinite,
    /// Matrix dimensions were incompatible for the requested operation.
    DimensionMismatch {
        /// Description of the expectation that was violated.
        expected: String,
    },
    /// Input contained NaN or infinite values where finite ones are required.
    NonFiniteData {
        /// Name of the operation that rejected the data.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyData { what, needed, got } => write!(
                f,
                "{what} requires at least {needed} data point(s), got {got}"
            ),
            StatsError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} is invalid: {constraint}"),
            StatsError::InvalidData { constraint } => {
                write!(f, "data violates constraint: {constraint}")
            }
            StatsError::NoConvergence { what, iterations } => {
                write!(f, "{what} failed to converge after {iterations} iterations")
            }
            StatsError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            StatsError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            StatsError::DimensionMismatch { expected } => {
                write!(f, "dimension mismatch: {expected}")
            }
            StatsError::NonFiniteData { what } => {
                write!(f, "{what} requires finite data (no NaN/inf)")
            }
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_data() {
        let e = StatsError::EmptyData {
            what: "mean",
            needed: 1,
            got: 0,
        };
        assert_eq!(
            e.to_string(),
            "mean requires at least 1 data point(s), got 0"
        );
    }

    #[test]
    fn display_invalid_parameter() {
        let e = StatsError::InvalidParameter {
            name: "sigma",
            value: -1.0,
            constraint: "must be finite and > 0",
        };
        assert!(e.to_string().contains("sigma"));
        assert!(e.to_string().contains("must be finite and > 0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }

    #[test]
    fn display_matrix_errors() {
        assert!(StatsError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        let e = StatsError::NotSquare { rows: 2, cols: 3 };
        assert!(e.to_string().contains("2x3"));
    }
}
