//! Least-squares regression and the paper's exponential-law fits.
//!
//! Every time-evolution law in the paper has the form
//! `y(t) = a·e^{b·(year − 2006)}` (Tables IV, V, VI and X). Fitting is
//! done by ordinary least squares on `ln y` against `t`, and the reported
//! `r` is the Pearson correlation between `t` and `ln y` — which is why
//! decaying ratios (Table IV/V) carry negative `r` and growing moments
//! (Table VI) positive `r`.

use crate::correlation::pearson;
use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Pearson correlation coefficient between `x` and `y`.
    pub r: f64,
}

/// Ordinary least-squares fit of `y` on `x`.
///
/// # Errors
///
/// * [`StatsError::DimensionMismatch`] for unequal lengths.
/// * [`StatsError::EmptyData`] for fewer than 2 points.
/// * [`StatsError::InvalidData`] when `x` is constant.
///
/// # Examples
///
/// ```
/// let x = [0.0, 1.0, 2.0, 3.0];
/// let y = [1.0, 3.0, 5.0, 7.0];
/// let fit = resmodel_stats::regression::linear_fit(&x, &y)?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// # Ok::<(), resmodel_stats::StatsError>(())
/// ```
pub fn linear_fit(x: &[f64], y: &[f64]) -> Result<LinearFit, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::DimensionMismatch {
            expected: format!("equal-length samples ({} vs {})", x.len(), y.len()),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyData {
            what: "linear_fit",
            needed: 2,
            got: x.len(),
        });
    }
    if x.iter().chain(y.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteData { what: "linear_fit" });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        sxx += (a - mx) * (a - mx);
        sxy += (a - mx) * (b - my);
    }
    if sxx <= 0.0 {
        return Err(StatsError::InvalidData {
            constraint: "linear regression requires non-constant x",
        });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    // r is undefined when y is constant; report 0 correlation in that
    // degenerate (perfectly flat) case.
    let r = pearson(x, y).unwrap_or(0.0);
    Ok(LinearFit {
        slope,
        intercept,
        r,
    })
}

/// An exponential law `y(t) = a·e^{b·t}`, the paper's universal
/// time-evolution model (`t` in years since 2006).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExpLawFit {
    /// Multiplier `a` (the value at `t = 0`).
    pub a: f64,
    /// Exponential rate `b` per unit of `t`.
    pub b: f64,
    /// Pearson correlation between `t` and `ln y` — the `r` the paper's
    /// tables report.
    pub r: f64,
}

impl ExpLawFit {
    /// Evaluate the law at `t`.
    pub fn eval(&self, t: f64) -> f64 {
        self.a * (self.b * t).exp()
    }
}

/// Fit `y(t) = a·e^{b·t}` by least squares on `ln y`.
///
/// # Errors
///
/// * Propagates [`linear_fit`] errors.
/// * [`StatsError::InvalidData`] when any `y` is non-positive (the law
///   only models positive quantities — ratios, means, variances).
///
/// # Examples
///
/// ```
/// // Table IV, 1:2 core ratio: a = 3.369, b = -0.5004.
/// let t = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let y: Vec<f64> = t.iter().map(|&t| 3.369 * (-0.5004f64 * t).exp()).collect();
/// let fit = resmodel_stats::regression::exp_law_fit(&t, &y)?;
/// assert!((fit.a - 3.369).abs() < 1e-6);
/// assert!((fit.b + 0.5004).abs() < 1e-6);
/// assert!(fit.r < -0.999); // decaying law → negative r
/// # Ok::<(), resmodel_stats::StatsError>(())
/// ```
pub fn exp_law_fit(t: &[f64], y: &[f64]) -> Result<ExpLawFit, StatsError> {
    if y.iter().any(|&v| v <= 0.0) {
        return Err(StatsError::InvalidData {
            constraint: "exponential law requires strictly positive y",
        });
    }
    let ln_y: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    let lf = linear_fit(t, &ln_y)?;
    Ok(ExpLawFit {
        a: lf.intercept.exp(),
        b: lf.slope,
        r: lf.r,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact() {
        let x = [1.0, 2.0, 3.0];
        let y = [2.0, 4.0, 6.0];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!(f.intercept.abs() < 1e-12);
        assert!((f.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy() {
        let x = [0.0, 1.0, 2.0, 3.0, 4.0];
        let y = [0.1, 0.9, 2.1, 2.9, 4.1];
        let f = linear_fit(&x, &y).unwrap();
        assert!((f.slope - 1.0).abs() < 0.05);
        assert!(f.r > 0.99);
    }

    #[test]
    fn linear_fit_rejects_bad_input() {
        assert!(linear_fit(&[1.0], &[1.0]).is_err());
        assert!(linear_fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(linear_fit(&[1.0, 2.0], &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn linear_fit_constant_y() {
        // Slope 0, r reported as 0 for the degenerate case.
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r, 0.0);
    }

    #[test]
    fn exp_law_recovers_paper_constants() {
        // Table VI, Dhrystone mean: a = 2064, b = 0.1709.
        let t: Vec<f64> = (0..=4).map(|i| i as f64).collect();
        let y: Vec<f64> = t.iter().map(|&t| 2064.0 * (0.1709f64 * t).exp()).collect();
        let f = exp_law_fit(&t, &y).unwrap();
        assert!((f.a - 2064.0).abs() < 1e-6);
        assert!((f.b - 0.1709).abs() < 1e-9);
        assert!(f.r > 0.999);
    }

    #[test]
    fn exp_law_eval() {
        let law = ExpLawFit {
            a: 2.0,
            b: 0.5,
            r: 1.0,
        };
        assert!((law.eval(0.0) - 2.0).abs() < 1e-12);
        assert!((law.eval(2.0) - 2.0 * 1f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn exp_law_rejects_nonpositive_y() {
        assert!(exp_law_fit(&[0.0, 1.0], &[1.0, 0.0]).is_err());
        assert!(exp_law_fit(&[0.0, 1.0], &[-1.0, 1.0]).is_err());
    }

    #[test]
    fn exp_law_decay_negative_r() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let y: Vec<f64> = t.iter().map(|&t| 17.49 * (-0.3217f64 * t).exp()).collect();
        let f = exp_law_fit(&t, &y).unwrap();
        assert!(f.b < 0.0);
        assert!(f.r < -0.999);
    }
}
