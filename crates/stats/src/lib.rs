//! # resmodel-stats
//!
//! Statistical substrate for the `resmodel` workspace — a from-scratch
//! implementation of everything the paper *"Correlated Resource Models of
//! Internet End Hosts"* (Heien, Kondo & Anderson, ICDCS 2011) needs from a
//! statistics library:
//!
//! * Seven continuous distribution families (normal, log-normal,
//!   exponential, Weibull, Pareto, gamma, log-gamma) with densities, CDFs,
//!   quantiles, sampling and maximum-likelihood fitting
//!   ([`distributions`]).
//! * The Kolmogorov–Smirnov goodness-of-fit test, including the paper's
//!   subsampled averaged p-value procedure and distribution-family
//!   selection ([`ks`]).
//! * Pearson/Spearman correlation and correlation matrices
//!   ([`correlation`]).
//! * A small dense-matrix type with Cholesky decomposition, plus a
//!   correlated multivariate-normal sampler ([`linalg`], [`sampling`]).
//! * Least-squares linear regression and exponential-law fitting
//!   `a·e^{b·t}` returning `(a, b, r)` as reported in the paper's tables
//!   ([`regression`]).
//! * Descriptive statistics, histograms, ECDFs and QQ data ([`describe`]).
//!
//! The crate is dependency-light (only `rand` and `serde`) and completely
//! deterministic given a seeded RNG.
//!
//! ## Example
//!
//! ```
//! use resmodel_stats::distributions::{Normal, Weibull};
//! use resmodel_stats::Distribution;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), resmodel_stats::StatsError> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let w = Weibull::new(0.58, 135.0)?; // the paper's host-lifetime fit
//! let lifetimes: Vec<f64> = (0..5000).map(|_| w.sample(&mut rng)).collect();
//! let refit = Weibull::fit_mle(&lifetimes)?;
//! assert!((refit.shape() - 0.58).abs() < 0.05);
//! let n = Normal::new(0.0, 1.0)?;
//! assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used)]

pub mod ad;
pub mod correlation;
pub mod describe;
pub mod distribution;
pub mod distributions;
pub mod error;
pub mod ks;
pub mod linalg;
pub mod mixture;
pub mod regression;
pub mod rng;
pub mod sampling;
pub mod special;

pub use distribution::{Distribution, DistributionFamily};
pub use error::StatsError;
pub use linalg::Matrix;

/// Convenience alias for results returned throughout this crate.
pub type Result<T> = std::result::Result<T, StatsError>;
