//! Pearson and Spearman correlation, and correlation matrices over named
//! resource columns — the machinery behind the paper's Table III.

use crate::error::StatsError;
use crate::linalg::Matrix;

/// Pearson (normalised) correlation coefficient between two samples.
///
/// This is the `r` the paper reports throughout (Tables III–VIII).
///
/// # Errors
///
/// * [`StatsError::EmptyData`] when fewer than 2 points.
/// * [`StatsError::DimensionMismatch`] when lengths differ.
/// * [`StatsError::InvalidData`] when either sample is constant.
///
/// # Examples
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// let r = resmodel_stats::correlation::pearson(&x, &y)?;
/// assert!((r - 1.0).abs() < 1e-12);
/// # Ok::<(), resmodel_stats::StatsError>(())
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    pearson_iter(x.iter().copied(), y.iter().copied())
}

/// [`pearson`] over re-iterable value streams — the slice-free entry
/// point for columnar stores whose columns are lazy views rather than
/// materialised `Vec`s.
///
/// The accumulation order is *exactly* that of [`pearson`] (which
/// delegates here), so for the same value sequences the result is
/// bitwise identical; no intermediate buffer is allocated.
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn pearson_iter<X, Y>(x: X, y: Y) -> Result<f64, StatsError>
where
    X: ExactSizeIterator<Item = f64> + Clone,
    Y: ExactSizeIterator<Item = f64> + Clone,
{
    if x.len() != y.len() {
        return Err(StatsError::DimensionMismatch {
            expected: format!("equal-length samples ({} vs {})", x.len(), y.len()),
        });
    }
    if x.len() < 2 {
        return Err(StatsError::EmptyData {
            what: "pearson",
            needed: 2,
            got: x.len(),
        });
    }
    if x.clone().chain(y.clone()).any(|v| !v.is_finite()) {
        return Err(StatsError::NonFiniteData { what: "pearson" });
    }
    let n = x.len() as f64;
    let mx = x.clone().sum::<f64>() / n;
    let my = y.clone().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return Err(StatsError::InvalidData {
            constraint: "correlation requires non-constant samples",
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation: Pearson correlation of the rank-transformed
/// samples (average ranks for ties).
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, StatsError> {
    if x.len() != y.len() {
        return Err(StatsError::DimensionMismatch {
            expected: format!("equal-length samples ({} vs {})", x.len(), y.len()),
        });
    }
    pearson(&ranks(x), &ranks(y))
}

/// Average ranks (1-based) of a sample, assigning tied values the mean of
/// the ranks they span.
pub fn ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| {
        data[a]
            .partial_cmp(&data[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Pairwise Pearson correlation matrix of the given columns.
///
/// Entry `(i, j)` is `pearson(columns[i], columns[j])`; the diagonal is
/// exactly 1. This is how the paper builds Table III (and Table VIII for
/// generated hosts).
///
/// # Errors
///
/// Propagates [`pearson`] errors; also fails when `columns` is empty.
pub fn correlation_matrix(columns: &[&[f64]]) -> Result<Matrix, StatsError> {
    let iters: Vec<_> = columns.iter().map(|c| c.iter().copied()).collect();
    correlation_matrix_iter(&iters)
}

/// [`correlation_matrix`] over re-iterable column views: each pairwise
/// entry is computed with [`pearson_iter`], so a columnar store can
/// build the full matrix without materialising a single intermediate
/// `Vec<f64>`. Bitwise identical to the slice version for the same
/// value sequences.
///
/// # Errors
///
/// Same conditions as [`correlation_matrix`].
pub fn correlation_matrix_iter<I>(columns: &[I]) -> Result<Matrix, StatsError>
where
    I: ExactSizeIterator<Item = f64> + Clone,
{
    if columns.is_empty() {
        return Err(StatsError::EmptyData {
            what: "correlation_matrix",
            needed: 1,
            got: 0,
        });
    }
    let d = columns.len();
    let mut m = Matrix::new(d, d);
    for i in 0..d {
        m.set(i, i, 1.0);
        for j in (i + 1)..d {
            let r = pearson_iter(columns[i].clone(), columns[j].clone())?;
            m.set(i, j, r);
            m.set(j, i, r);
        }
    }
    Ok(m)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_orthogonal() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let y = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn reference_value() {
        // Hand-computed: x = [1,2,3], y = [1,2,4] → r = 0.9819805060619659
        let r = pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0, 4.0]).unwrap();
        assert!((r - 0.9819805060619659).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(pearson(&[1.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_err());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0, f64::NAN], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn ranks_with_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        // Nonlinear but perfectly monotone → Spearman exactly 1.
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.0, 1.0, 4.0, 3.0, 6.0, 5.0];
        let c = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let m = correlation_matrix(&[&a, &b, &c]).unwrap();
        assert_eq!(m.rows(), 3);
        for i in 0..3 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                assert!(m.get(i, j).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn matrix_rejects_empty() {
        assert!(correlation_matrix(&[]).is_err());
        assert!(correlation_matrix_iter::<std::iter::Copied<std::slice::Iter<f64>>>(&[]).is_err());
    }

    #[test]
    fn iter_entry_points_are_bitwise_identical_to_slices() {
        let x = [1.0, 2.5, 3.0, 4.25, 5.0, 6.5];
        let y = [2.0, 1.0, 4.5, 3.0, 6.25, 5.0];
        let z = [6.0, 5.0, 4.0, 3.5, 2.0, 1.0];
        let via_slice = pearson(&x, &y).unwrap();
        let via_iter = pearson_iter(x.iter().copied(), y.iter().copied()).unwrap();
        assert_eq!(via_slice.to_bits(), via_iter.to_bits());

        let m_slice = correlation_matrix(&[&x, &y, &z]).unwrap();
        let m_iter =
            correlation_matrix_iter(&[x.iter().copied(), y.iter().copied(), z.iter().copied()])
                .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m_slice.get(i, j).to_bits(), m_iter.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn iter_entry_point_rejects_bad_input() {
        let short = [1.0f64];
        assert!(pearson_iter(short.iter().copied(), short.iter().copied()).is_err());
        let a = [1.0, 2.0];
        let b = [1.0, f64::NAN];
        assert!(pearson_iter(a.iter().copied(), b.iter().copied()).is_err());
        assert!(pearson_iter(a.iter().copied(), short.iter().copied()).is_err());
    }
}
