//! The seven continuous distribution families tested by the paper.
//!
//! Each family provides construction with validated parameters, density /
//! CDF / quantile evaluation, sampling, moments and maximum-likelihood
//! fitting (`fit_mle`). All types implement the crate-wide
//! [`Distribution`](crate::Distribution) trait.

mod exponential;
mod gamma;
mod loggamma;
mod lognormal;
mod normal;
mod pareto;
mod weibull;

pub use exponential::Exponential;
pub use gamma::Gamma;
pub use loggamma::LogGamma;
pub use lognormal::LogNormal;
pub use normal::Normal;
pub use pareto::Pareto;
pub use weibull::Weibull;

use crate::error::StatsError;

/// Validate that `data` has at least `needed` finite entries.
pub(crate) fn check_data(
    data: &[f64],
    what: &'static str,
    needed: usize,
) -> Result<(), StatsError> {
    if data.len() < needed {
        return Err(StatsError::EmptyData {
            what,
            needed,
            got: data.len(),
        });
    }
    if data.iter().any(|x| !x.is_finite()) {
        return Err(StatsError::NonFiniteData { what });
    }
    Ok(())
}

/// Validate that a scalar parameter is finite and strictly positive.
pub(crate) fn check_positive(value: f64, name: &'static str) -> Result<(), StatsError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(StatsError::InvalidParameter {
            name,
            value,
            constraint: "must be finite and > 0",
        });
    }
    Ok(())
}

/// Validate that a probability lies in `[0, 1]`, panicking otherwise.
///
/// Quantile functions use panics (not `Result`) for out-of-range
/// probabilities, mirroring the standard library's indexing contract.
pub(crate) fn assert_probability(p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "probability must be in [0, 1], got {p}"
    );
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn check_data_rejects_short_input() {
        assert!(check_data(&[1.0], "t", 2).is_err());
        assert!(check_data(&[1.0, 2.0], "t", 2).is_ok());
    }

    #[test]
    fn check_data_rejects_nan_and_inf() {
        assert!(check_data(&[1.0, f64::NAN], "t", 1).is_err());
        assert!(check_data(&[1.0, f64::INFINITY], "t", 1).is_err());
    }

    #[test]
    fn check_positive_rejects_bad_values() {
        assert!(check_positive(0.0, "x").is_err());
        assert!(check_positive(-1.0, "x").is_err());
        assert!(check_positive(f64::NAN, "x").is_err());
        assert!(check_positive(1e-9, "x").is_ok());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn assert_probability_panics_out_of_range() {
        assert_probability(1.5);
    }
}
