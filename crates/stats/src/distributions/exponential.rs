//! The exponential distribution (rate parameterisation).

use super::{assert_probability, check_data, check_positive};
use crate::distribution::Distribution;
use crate::error::StatsError;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Exponential distribution with rate `λ`; density `λ·e^{−λx}` for
/// `x ≥ 0`.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Exponential};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let e = Exponential::new(0.5)?; // mean 2
/// assert!((e.mean() - 2.0).abs() < 1e-12);
/// assert!((e.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an exponential distribution with rate `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `rate` is finite
    /// and strictly positive.
    pub fn new(rate: f64) -> Result<Self, StatsError> {
        check_positive(rate, "rate")?;
        Ok(Self { rate })
    }

    /// Create from the mean (`rate = 1/mean`).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive mean.
    pub fn from_mean(mean: f64) -> Result<Self, StatsError> {
        check_positive(mean, "mean")?;
        Self::new(1.0 / mean)
    }

    /// Maximum-likelihood fit: `λ = 1 / mean(data)`.
    ///
    /// # Errors
    ///
    /// Requires at least one finite, non-negative data point with a
    /// positive mean.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "Exponential::fit_mle", 1)?;
        if data.iter().any(|&x| x < 0.0) {
            return Err(StatsError::InvalidData {
                constraint: "exponential requires non-negative data",
            });
        }
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        if mean <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "exponential MLE requires positive mean",
            });
        }
        Self::new(1.0 / mean)
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            f64::NEG_INFINITY
        } else {
            self.rate.ln() - self.rate * x
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 1.0 {
            return f64::INFINITY;
        }
        -(1.0 - p).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u: f64 = rng.random::<f64>();
        // 1-u ∈ (0, 1]; ln is safe.
        -(1.0 - u).ln() / self.rate
    }

    fn family_name(&self) -> &'static str {
        "exponential"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn reference_values() {
        let e = Exponential::new(2.0).unwrap();
        assert!((e.cdf(1.0) - 0.8646647167633873).abs() < 1e-12);
        assert!((e.pdf(0.0) - 2.0).abs() < 1e-12);
        assert_eq!(e.mean(), 0.5);
        assert_eq!(e.variance(), 0.25);
    }

    #[test]
    fn support_nonnegative() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.pdf(-0.1), 0.0);
        assert_eq!(e.cdf(-0.1), 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let e = Exponential::from_mean(192.4).unwrap(); // paper's mean lifetime
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
        assert_eq!(e.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn median_is_ln2_over_rate() {
        let e = Exponential::new(0.25).unwrap();
        assert!((e.quantile(0.5) - 2f64.ln() / 0.25).abs() < 1e-12);
    }

    #[test]
    fn mle_recovers_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let truth = Exponential::new(0.02).unwrap();
        let data = truth.sample_n(&mut rng, 30_000);
        let fit = Exponential::fit_mle(&data).unwrap();
        assert!((fit.rate() - 0.02).abs() / 0.02 < 0.03);
    }

    #[test]
    fn mle_rejects_negative_data() {
        assert!(Exponential::fit_mle(&[1.0, -0.5]).is_err());
        assert!(Exponential::fit_mle(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn samples_nonnegative() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let e = Exponential::new(3.0).unwrap();
        for _ in 0..500 {
            assert!(e.sample(&mut rng) >= 0.0);
        }
    }
}
