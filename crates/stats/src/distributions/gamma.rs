//! The gamma distribution (shape/scale parameterisation).

use super::{assert_probability, check_data, check_positive};
use crate::distribution::Distribution;
use crate::error::StatsError;
use crate::sampling::standard_gamma;
use crate::special::{digamma, gamma_p, inv_gamma_p, ln_gamma};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Gamma distribution with shape `k` and scale `θ`; support `x > 0`.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Gamma};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let g = Gamma::new(2.0, 2.0)?;
/// assert!((g.mean() - 4.0).abs() < 1e-12);
/// assert!((g.cdf(2.0) - 0.26424111765711533).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Maximum Newton iterations for the shape MLE.
    const MAX_ITER: usize = 200;

    /// Create a gamma distribution with shape `k` and scale `θ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are finite
    /// and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        check_positive(shape, "shape")?;
        check_positive(scale, "scale")?;
        Ok(Self { shape, scale })
    }

    /// Maximum-likelihood fit via Newton iteration on
    /// `ln k − ψ(k) = ln(mean) − mean(ln x)`.
    ///
    /// # Errors
    ///
    /// Requires at least 2 strictly positive points; fails with
    /// [`StatsError::NoConvergence`] if the iteration stalls.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "Gamma::fit_mle", 2)?;
        if data.iter().any(|&x| x <= 0.0) {
            return Err(StatsError::InvalidData {
                constraint: "gamma requires strictly positive data",
            });
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let mean_ln = data.iter().map(|x| x.ln()).sum::<f64>() / n;
        let s = mean.ln() - mean_ln;
        if s <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "gamma MLE requires non-degenerate data",
            });
        }
        // Minka's closed-form starting point.
        let mut k = (3.0 - s + ((s - 3.0).powi(2) + 24.0 * s).sqrt()) / (12.0 * s);
        k = k.clamp(1e-3, 1e6);
        for iter in 0..Self::MAX_ITER {
            let g = k.ln() - digamma(k) - s;
            // ψ'(k) ≈ numeric derivative of digamma (accurate enough here).
            let h = 1e-6 * k.max(1e-6);
            let dpsi = (digamma(k + h) - digamma(k - h)) / (2.0 * h);
            let dg = 1.0 / k - dpsi;
            let next = (k - g / dg).clamp(k / 3.0, k * 3.0);
            if (next - k).abs() < 1e-10 * k {
                k = next;
                break;
            }
            k = next;
            if iter + 1 == Self::MAX_ITER {
                return Err(StatsError::NoConvergence {
                    what: "Gamma::fit_mle",
                    iterations: Self::MAX_ITER,
                });
            }
        }
        Self::new(k, mean / k)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return if x == 0.0 && self.shape < 1.0 {
                f64::INFINITY
            } else {
                0.0
            };
        }
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        (self.shape - 1.0) * x.ln()
            - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.scale * inv_gamma_p(self.shape, p)
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.scale * standard_gamma(rng, self.shape)
    }

    fn family_name(&self) -> &'static str {
        "gamma"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 2.0).unwrap();
        assert!((g.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
        assert!((g.pdf(0.5) - 0.5 * (-0.25f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn reference_cdf() {
        // Gamma(2, 2): cdf(2) = 1 - e^{-1}(1 + 1)
        let g = Gamma::new(2.0, 2.0).unwrap();
        assert!((g.cdf(2.0) - (1.0 - 2.0 * (-1.0f64).exp())).abs() < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gamma::new(3.7, 12.0).unwrap();
        for &p in &[0.01, 0.3, 0.5, 0.8, 0.99] {
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-7, "p={p}");
        }
    }

    #[test]
    fn moments() {
        let g = Gamma::new(5.0, 3.0).unwrap();
        assert_eq!(g.mean(), 15.0);
        assert_eq!(g.variance(), 45.0);
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let truth = Gamma::new(2.5, 4.0).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = Gamma::fit_mle(&data).unwrap();
        assert!((fit.shape() - 2.5).abs() < 0.1, "shape {}", fit.shape());
        assert!((fit.scale() - 4.0).abs() < 0.2, "scale {}", fit.scale());
    }

    #[test]
    fn mle_small_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let truth = Gamma::new(0.5, 10.0).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = Gamma::fit_mle(&data).unwrap();
        assert!((fit.shape() - 0.5).abs() < 0.05);
    }

    #[test]
    fn mle_rejects_bad_data() {
        assert!(Gamma::fit_mle(&[1.0]).is_err());
        assert!(Gamma::fit_mle(&[-1.0, 1.0]).is_err());
        assert!(Gamma::fit_mle(&[3.0, 3.0]).is_err());
    }

    #[test]
    fn support_is_positive() {
        let g = Gamma::new(2.0, 1.0).unwrap();
        assert_eq!(g.pdf(-1.0), 0.0);
        assert_eq!(g.cdf(0.0), 0.0);
        let small = Gamma::new(0.5, 1.0).unwrap();
        assert_eq!(small.pdf(0.0), f64::INFINITY);
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        let g = Gamma::new(4.0, 2.0).unwrap();
        let xs = g.sample_n(&mut rng, 30_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 8.0).abs() < 0.15);
    }
}
