//! The normal (Gaussian) distribution — the paper's model for Dhrystone
//! and Whetstone benchmark speeds (Section V-F).

use super::{assert_probability, check_data, check_positive};
use crate::distribution::Distribution;
use crate::error::StatsError;
use crate::sampling::standard_normal;
use crate::special::{inv_norm_cdf, norm_cdf};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Normal distribution `N(μ, σ²)` parameterised by mean and standard
/// deviation.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Normal};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// // The paper's 2006 Whetstone fit: mean 1136 MIPS, σ 472.
/// let whet = Normal::new(1136.0, 472.0)?;
/// assert!((whet.mean() - 1136.0).abs() < 1e-12);
/// assert!(whet.cdf(1136.0) - 0.5 < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `std_dev` is not
    /// finite and strictly positive, or `mean` is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite",
            });
        }
        check_positive(std_dev, "std_dev")?;
        Ok(Self { mean, std_dev })
    }

    /// Create from mean and variance.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive variance.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self, StatsError> {
        check_positive(variance, "variance")?;
        Self::new(mean, variance.sqrt())
    }

    /// Maximum-likelihood fit: sample mean and (biased, `1/n`) standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Needs at least 2 finite data points with non-zero spread.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "Normal::fit_mle", 2)?;
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        if var <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "normal MLE requires non-degenerate data",
            });
        }
        Self::new(mean, var.sqrt())
    }

    /// The standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.std_dev
    }

    /// The mean `μ`.
    pub fn mu(&self) -> f64 {
        self.mean
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        -0.5 * z * z - self.std_dev.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        norm_cdf((x - self.mean) / self.std_dev)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.mean + self.std_dev * inv_norm_cdf(p)
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.std_dev * self.std_dev
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }

    fn family_name(&self) -> &'static str {
        "normal"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -2.0).is_err());
        assert!(Normal::from_mean_variance(0.0, -1.0).is_err());
    }

    #[test]
    fn standard_normal_reference_values() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!((n.pdf(0.0) - 0.3989422804014327).abs() < 1e-12);
        assert!((n.cdf(1.0) - 0.8413447460685429).abs() < 1e-7);
        assert!((n.cdf(-1.96) - 0.024997895148220435).abs() < 1e-7);
    }

    #[test]
    fn shifted_scaled_cdf() {
        let n = Normal::new(100.0, 15.0).unwrap();
        assert!((n.cdf(100.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(115.0) - 0.8413447460685429).abs() < 1e-7);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(2064.0, 1174.0).unwrap();
        for &p in &[0.01, 0.2, 0.5, 0.9, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn ln_pdf_consistent_with_pdf() {
        let n = Normal::new(-3.0, 2.5).unwrap();
        for &x in &[-10.0, -3.0, 0.0, 4.0] {
            assert!((n.ln_pdf(x) - n.pdf(x).ln()).abs() < 1e-10);
        }
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let truth = Normal::new(1771.0, 669.5).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = Normal::fit_mle(&data).unwrap();
        assert!((fit.mu() - 1771.0).abs() / 1771.0 < 0.02);
        assert!((fit.sigma() - 669.5).abs() / 669.5 < 0.03);
    }

    #[test]
    fn mle_rejects_degenerate_data() {
        assert!(Normal::fit_mle(&[5.0, 5.0, 5.0]).is_err());
        assert!(Normal::fit_mle(&[1.0]).is_err());
    }

    #[test]
    fn moments() {
        let n = Normal::new(3.0, 4.0).unwrap();
        assert_eq!(n.mean(), 3.0);
        assert_eq!(n.variance(), 16.0);
        assert_eq!(n.std_dev(), 4.0);
    }

    #[test]
    fn sample_moments_match() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let n = Normal::new(10.0, 3.0).unwrap();
        let xs = n.sample_n(&mut rng, 40_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn quantile_rejects_bad_probability() {
        Normal::new(0.0, 1.0).unwrap().quantile(2.0);
    }
}
