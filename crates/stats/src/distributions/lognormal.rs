//! The log-normal distribution — the paper's model for available disk
//! space (Section V-G).

use super::{assert_probability, check_data};
use crate::distribution::Distribution;
use crate::error::StatsError;
use crate::sampling::standard_normal;
use crate::special::{inv_norm_cdf, norm_cdf};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-normal distribution: `ln X ~ N(μ, σ²)`, support `x > 0`.
///
/// The underlying-normal parameters are `mu`/`sigma`; helper constructors
/// convert to and from the *arithmetic* mean/variance of `X`, which is
/// how the paper states its disk-space law (Table VI gives the mean and
/// variance in GB of the log-normal itself).
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::LogNormal};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// // The paper's 2006 disk law: mean 31.59 GB (Table VI).
/// let disk = LogNormal::from_mean_variance(31.59, 2890.0)?;
/// assert!((disk.mean() - 31.59).abs() < 1e-9);
/// assert!((disk.variance() - 2890.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Create from the parameters of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] when `sigma` is not
    /// finite and positive or `mu` is not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "must be finite",
            });
        }
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "sigma",
                value: sigma,
                constraint: "must be finite and > 0",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// Create a log-normal whose *arithmetic* mean and variance equal the
    /// given values.
    ///
    /// Inverts `E[X] = exp(μ + σ²/2)` and
    /// `Var[X] = (exp(σ²) − 1)·exp(2μ + σ²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] for non-positive mean or
    /// variance.
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self, StatsError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "mean",
                value: mean,
                constraint: "must be finite and > 0",
            });
        }
        if !variance.is_finite() || variance <= 0.0 {
            return Err(StatsError::InvalidParameter {
                name: "variance",
                value: variance,
                constraint: "must be finite and > 0",
            });
        }
        let sigma2 = (1.0 + variance / (mean * mean)).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        Self::new(mu, sigma2.sqrt())
    }

    /// Maximum-likelihood fit: fit a normal to `ln(data)`.
    ///
    /// # Errors
    ///
    /// Requires at least 2 strictly positive, finite data points.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "LogNormal::fit_mle", 2)?;
        if data.iter().any(|&x| x <= 0.0) {
            return Err(StatsError::InvalidData {
                constraint: "log-normal requires strictly positive data",
            });
        }
        let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
        let n = logs.len() as f64;
        let mu = logs.iter().sum::<f64>() / n;
        let var = logs.iter().map(|x| (x - mu).powi(2)).sum::<f64>() / n;
        if var <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "log-normal MLE requires non-degenerate data",
            });
        }
        Self::new(mu, var.sqrt())
    }

    /// Location parameter `μ` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter `σ` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median of the distribution, `exp(μ)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return f64::NEG_INFINITY;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        -0.5 * z * z - x.ln() - self.sigma.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        norm_cdf((x.ln() - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 0.0 {
            return 0.0;
        }
        (self.mu + self.sigma * inv_norm_cdf(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    fn family_name(&self) -> &'static str {
        "log-normal"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(0.0, 0.0).is_err());
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::from_mean_variance(-1.0, 4.0).is_err());
        assert!(LogNormal::from_mean_variance(2.0, 0.0).is_err());
    }

    #[test]
    fn standard_lognormal_values() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-12);
        assert!((d.mean() - 0.5f64.exp()).abs() < 1e-12);
        assert!((d.median() - 1.0).abs() < 1e-12);
        // pdf(1) = 1/√(2π)
        assert!((d.pdf(1.0) - 0.3989422804014327).abs() < 1e-12);
    }

    #[test]
    fn support_is_positive_reals() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert_eq!(d.ln_pdf(-5.0), f64::NEG_INFINITY);
        assert_eq!(d.quantile(0.0), 0.0);
    }

    #[test]
    fn mean_variance_roundtrip() {
        // The paper's Table VI disk law at year 2010: mean = 31.59·e^{0.2691·4}.
        let mean = 31.59 * (0.2691f64 * 4.0).exp();
        let var = 2890.0 * (0.5224f64 * 4.0).exp();
        let d = LogNormal::from_mean_variance(mean, var).unwrap();
        assert!((d.mean() - mean).abs() / mean < 1e-10);
        assert!((d.variance() - var).abs() / var < 1e-10);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let d = LogNormal::from_mean_variance(98.0, 157.8f64.powi(2)).unwrap();
        for &p in &[0.05, 0.3, 0.5, 0.75, 0.99] {
            let x = d.quantile(p);
            assert!((d.cdf(x) - p).abs() < 1e-9);
        }
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let truth = LogNormal::new(3.0, 0.8).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = LogNormal::fit_mle(&data).unwrap();
        assert!((fit.mu() - 3.0).abs() < 0.03);
        assert!((fit.sigma() - 0.8).abs() < 0.03);
    }

    #[test]
    fn mle_rejects_nonpositive_data() {
        assert!(LogNormal::fit_mle(&[1.0, -2.0, 3.0]).is_err());
        assert!(LogNormal::fit_mle(&[1.0, 0.0]).is_err());
    }

    #[test]
    fn samples_positive() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let d = LogNormal::new(1.0, 2.0).unwrap();
        for _ in 0..500 {
            assert!(d.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn skewed_right_median_below_mean() {
        let d = LogNormal::new(2.0, 1.0).unwrap();
        assert!(d.median() < d.mean());
    }
}
