//! The Weibull distribution — the paper's model for host lifetimes
//! (Figure 1: shape `k = 0.58`, scale `λ = 135` days).

use super::{assert_probability, check_data, check_positive};
use crate::distribution::Distribution;
use crate::error::StatsError;
use crate::special::ln_gamma;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Weibull distribution with shape `k` and scale `λ`; support `x ≥ 0`.
///
/// A shape below one implies a decreasing hazard (dropout) rate — the
/// paper's key observation about volunteer host lifetimes.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Weibull};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let lifetime = Weibull::new(0.58, 135.0)?;
/// // Decreasing dropout rate ⇒ heavy tail: mean well above scale·Γ(1+1/k)… check mean.
/// assert!(lifetime.mean() > 135.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Maximum Newton iterations for the shape MLE.
    const MAX_ITER: usize = 200;

    /// Create a Weibull distribution with shape `k` and scale `λ`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters
    /// are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        check_positive(shape, "shape")?;
        check_positive(scale, "scale")?;
        Ok(Self { shape, scale })
    }

    /// Maximum-likelihood fit via Newton iteration on the profile
    /// likelihood for the shape, then the closed-form scale.
    ///
    /// Zero values are admitted in the data (they arise from truncated
    /// lifetimes) but are excluded from the logarithmic terms by
    /// clamping, which matches standard practice.
    ///
    /// # Errors
    ///
    /// Requires at least 2 finite non-negative points with positive
    /// spread; fails with [`StatsError::NoConvergence`] if Newton does
    /// not settle.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "Weibull::fit_mle", 2)?;
        if data.iter().any(|&x| x < 0.0) {
            return Err(StatsError::InvalidData {
                constraint: "weibull requires non-negative data",
            });
        }
        // Clamp zeros to a tiny positive value so logs stay finite.
        let xs: Vec<f64> = data.iter().map(|&x| x.max(1e-12)).collect();
        let n = xs.len() as f64;
        let ln_xs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let mean_ln = ln_xs.iter().sum::<f64>() / n;

        // Menon's moment-based starting point.
        let var_ln = ln_xs.iter().map(|l| (l - mean_ln).powi(2)).sum::<f64>() / n;
        if var_ln <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "weibull MLE requires non-degenerate data",
            });
        }
        let mut k = (std::f64::consts::PI / 6f64.sqrt()) / var_ln.sqrt();
        k = k.clamp(0.01, 100.0);

        // Newton on g(k) = Σ x^k ln x / Σ x^k − 1/k − mean(ln x) = 0.
        for iter in 0..Self::MAX_ITER {
            let mut s0 = 0.0; // Σ x^k
            let mut s1 = 0.0; // Σ x^k ln x
            let mut s2 = 0.0; // Σ x^k (ln x)²
            for (&x, &lx) in xs.iter().zip(&ln_xs) {
                let xk = x.powf(k);
                s0 += xk;
                s1 += xk * lx;
                s2 += xk * lx * lx;
            }
            let g = s1 / s0 - 1.0 / k - mean_ln;
            let dg = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
            let step = g / dg;
            let next = (k - step).clamp(k / 3.0, k * 3.0);
            if (next - k).abs() < 1e-10 * k {
                k = next;
                break;
            }
            k = next;
            if iter + 1 == Self::MAX_ITER {
                return Err(StatsError::NoConvergence {
                    what: "Weibull::fit_mle",
                    iterations: Self::MAX_ITER,
                });
            }
        }
        let scale = (xs.iter().map(|x| x.powf(k)).sum::<f64>() / n).powf(1.0 / k);
        Self::new(k, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Hazard (failure-rate) function `h(x) = (k/λ)(x/λ)^{k−1}`.
    ///
    /// For volunteer hosts with `k < 1` this is decreasing: the longer a
    /// host has been attached, the less likely it is to leave soon.
    pub fn hazard(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return if self.shape < 1.0 { f64::INFINITY } else { 0.0 };
        }
        (self.shape / self.scale) * (x / self.scale).powf(self.shape - 1.0)
    }
}

impl Distribution for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return match self.shape.partial_cmp(&1.0) {
                Some(std::cmp::Ordering::Less) => f64::INFINITY,
                Some(std::cmp::Ordering::Equal) => 1.0 / self.scale,
                _ => 0.0,
            };
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.scale * (-(1.0 - p).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u: f64 = rng.random::<f64>();
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    fn family_name(&self) -> &'static str {
        "weibull"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, -1.0).is_err());
        assert!(Weibull::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        // CDF of Exp(rate 1/2)
        assert!((w.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!((w.mean() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn reference_cdf() {
        let w = Weibull::new(2.0, 1.0).unwrap();
        assert!((w.cdf(1.0) - 0.6321205588285577).abs() < 1e-12);
    }

    #[test]
    fn paper_lifetime_distribution_stats() {
        // k = 0.58, λ = 135: mean should land near the paper's 192 days
        // (the paper reports the empirical mean 192.4; Weibull mean is
        // λ·Γ(1 + 1/k) ≈ 212 — same order).
        let w = Weibull::new(0.58, 135.0).unwrap();
        let mean = w.mean();
        assert!(mean > 150.0 && mean < 260.0, "mean {mean}");
        // Median should be near the paper's 71 days: λ·(ln 2)^{1/k} ≈ 72.
        let median = w.quantile(0.5);
        assert!((median - 71.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn decreasing_hazard_below_shape_one() {
        let w = Weibull::new(0.58, 135.0).unwrap();
        assert!(w.hazard(10.0) > w.hazard(100.0));
        assert!(w.hazard(100.0) > w.hazard(1000.0));
    }

    #[test]
    fn quantile_inverts_cdf() {
        let w = Weibull::new(0.58, 135.0).unwrap();
        for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            assert!((w.cdf(w.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let truth = Weibull::new(0.58, 135.0).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = Weibull::fit_mle(&data).unwrap();
        assert!((fit.shape() - 0.58).abs() < 0.02, "shape {}", fit.shape());
        assert!(
            (fit.scale() - 135.0).abs() / 135.0 < 0.05,
            "scale {}",
            fit.scale()
        );
    }

    #[test]
    fn mle_recovers_high_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        let truth = Weibull::new(3.5, 10.0).unwrap();
        let data = truth.sample_n(&mut rng, 10_000);
        let fit = Weibull::fit_mle(&data).unwrap();
        assert!((fit.shape() - 3.5).abs() < 0.15);
        assert!((fit.scale() - 10.0).abs() < 0.2);
    }

    #[test]
    fn mle_rejects_bad_data() {
        assert!(Weibull::fit_mle(&[1.0]).is_err());
        assert!(Weibull::fit_mle(&[-1.0, 2.0]).is_err());
        assert!(Weibull::fit_mle(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn pdf_edge_cases() {
        let low = Weibull::new(0.5, 1.0).unwrap();
        assert_eq!(low.pdf(0.0), f64::INFINITY);
        let exp = Weibull::new(1.0, 2.0).unwrap();
        assert!((exp.pdf(0.0) - 0.5).abs() < 1e-12);
        let high = Weibull::new(2.0, 1.0).unwrap();
        assert_eq!(high.pdf(0.0), 0.0);
        assert_eq!(high.pdf(-1.0), 0.0);
    }

    #[test]
    fn sample_mean_matches() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(15);
        let w = Weibull::new(2.0, 5.0).unwrap();
        let xs = w.sample_n(&mut rng, 30_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - w.mean()).abs() < 0.1);
    }
}
