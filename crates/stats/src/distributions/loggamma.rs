//! The log-gamma distribution: `X` such that `ln X ~ Gamma(k, θ)`.
//!
//! Support is `x > 1`. This is the seventh candidate family the paper
//! feeds to its Kolmogorov–Smirnov selection procedure.

use super::{assert_probability, check_data};
use crate::distribution::Distribution;
use crate::distributions::Gamma;
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-gamma distribution: if `G ~ Gamma(shape, scale)` then
/// `X = e^G ~ LogGamma(shape, scale)`, with support `x > 1`.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::LogGamma};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let lg = LogGamma::new(2.0, 0.25)?;
/// assert_eq!(lg.cdf(1.0), 0.0); // support starts above 1
/// assert!(lg.cdf(10.0) > 0.9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogGamma {
    inner: Gamma,
}

impl LogGamma {
    /// Create a log-gamma distribution whose logarithm is
    /// `Gamma(shape, scale)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both parameters
    /// are finite and strictly positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self, StatsError> {
        Ok(Self {
            inner: Gamma::new(shape, scale)?,
        })
    }

    /// Maximum-likelihood fit: fit a gamma to `ln(data)`.
    ///
    /// # Errors
    ///
    /// Requires at least 2 data points strictly greater than 1 (so their
    /// logarithms are positive).
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "LogGamma::fit_mle", 2)?;
        if data.iter().any(|&x| x <= 1.0) {
            return Err(StatsError::InvalidData {
                constraint: "log-gamma requires data strictly greater than 1",
            });
        }
        let logs: Vec<f64> = data.iter().map(|x| x.ln()).collect();
        Ok(Self {
            inner: Gamma::fit_mle(&logs)?,
        })
    }

    /// Shape parameter `k` of the underlying gamma.
    pub fn shape(&self) -> f64 {
        self.inner.shape()
    }

    /// Scale parameter `θ` of the underlying gamma.
    pub fn scale(&self) -> f64 {
        self.inner.scale()
    }
}

impl Distribution for LogGamma {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 1.0 {
            return 0.0;
        }
        self.inner.pdf(x.ln()) / x
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 1.0 {
            return f64::NEG_INFINITY;
        }
        self.inner.ln_pdf(x.ln()) - x.ln()
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 1.0 {
            0.0
        } else {
            self.inner.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        self.inner.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        // E[e^G] = (1 − θ)^{−k} for θ < 1 (gamma MGF at t = 1).
        let (k, th) = (self.inner.shape(), self.inner.scale());
        if th >= 1.0 {
            f64::INFINITY
        } else {
            (1.0 - th).powf(-k)
        }
    }

    fn variance(&self) -> f64 {
        // E[e^{2G}] = (1 − 2θ)^{−k} for θ < 1/2.
        let (k, th) = (self.inner.shape(), self.inner.scale());
        if th >= 0.5 {
            f64::INFINITY
        } else {
            (1.0 - 2.0 * th).powf(-k) - (1.0 - th).powf(-2.0 * k)
        }
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.inner.sample(rng).exp()
    }

    fn family_name(&self) -> &'static str {
        "log-gamma"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogGamma::new(0.0, 1.0).is_err());
        assert!(LogGamma::new(1.0, -1.0).is_err());
    }

    #[test]
    fn support_above_one() {
        let lg = LogGamma::new(2.0, 0.3).unwrap();
        assert_eq!(lg.pdf(0.5), 0.0);
        assert_eq!(lg.pdf(1.0), 0.0);
        assert_eq!(lg.cdf(1.0), 0.0);
        assert!(lg.pdf(1.5) > 0.0);
    }

    #[test]
    fn cdf_consistent_with_gamma_of_log() {
        let lg = LogGamma::new(3.0, 0.2).unwrap();
        let g = Gamma::new(3.0, 0.2).unwrap();
        for &x in &[1.1, 2.0, 5.0, 20.0] {
            assert!((lg.cdf(x) - g.cdf(x.ln())).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let lg = LogGamma::new(2.0, 0.25).unwrap();
        for &p in &[0.05, 0.5, 0.95] {
            assert!((lg.cdf(lg.quantile(p)) - p).abs() < 1e-7);
        }
    }

    #[test]
    fn mean_formula() {
        let lg = LogGamma::new(2.0, 0.25).unwrap();
        // (1 - 0.25)^{-2} = 16/9
        assert!((lg.mean() - 16.0 / 9.0).abs() < 1e-12);
        let heavy = LogGamma::new(1.0, 1.5).unwrap();
        assert_eq!(heavy.mean(), f64::INFINITY);
    }

    #[test]
    fn variance_formula() {
        let lg = LogGamma::new(2.0, 0.25).unwrap();
        let expected = (0.5f64).powf(-2.0) - (0.75f64).powf(-4.0);
        assert!((lg.variance() - expected).abs() < 1e-12);
        let heavy = LogGamma::new(1.0, 0.7).unwrap();
        assert_eq!(heavy.variance(), f64::INFINITY);
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let truth = LogGamma::new(4.0, 0.5).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = LogGamma::fit_mle(&data).unwrap();
        assert!((fit.shape() - 4.0).abs() < 0.2, "shape {}", fit.shape());
        assert!((fit.scale() - 0.5).abs() < 0.03, "scale {}", fit.scale());
    }

    #[test]
    fn mle_rejects_data_at_or_below_one() {
        assert!(LogGamma::fit_mle(&[0.5, 2.0]).is_err());
        assert!(LogGamma::fit_mle(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn samples_above_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let lg = LogGamma::new(2.0, 0.4).unwrap();
        for _ in 0..500 {
            assert!(lg.sample(&mut rng) > 1.0);
        }
    }

    #[test]
    fn monte_carlo_mean_matches_formula() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let lg = LogGamma::new(3.0, 0.2).unwrap();
        let xs = lg.sample_n(&mut rng, 50_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - lg.mean()).abs() / lg.mean() < 0.05);
    }
}
