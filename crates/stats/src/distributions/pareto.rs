//! The Pareto (type I) distribution.

use super::{assert_probability, check_data, check_positive};
use crate::distribution::Distribution;
use crate::error::StatsError;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Pareto distribution with scale `x_m` (minimum) and shape `α`;
/// support `x ≥ x_m`.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Pareto};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let p = Pareto::new(1.0, 2.0)?;
/// assert!((p.cdf(2.0) - 0.75).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Create a Pareto distribution with minimum `scale` and tail index
    /// `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless both are finite
    /// and strictly positive.
    pub fn new(scale: f64, shape: f64) -> Result<Self, StatsError> {
        check_positive(scale, "scale")?;
        check_positive(shape, "shape")?;
        Ok(Self { scale, shape })
    }

    /// Maximum-likelihood fit: `x_m = min(data)`,
    /// `α = n / Σ ln(x_i / x_m)`.
    ///
    /// # Errors
    ///
    /// Requires at least 2 strictly positive points that are not all
    /// identical.
    pub fn fit_mle(data: &[f64]) -> Result<Self, StatsError> {
        check_data(data, "Pareto::fit_mle", 2)?;
        if data.iter().any(|&x| x <= 0.0) {
            return Err(StatsError::InvalidData {
                constraint: "pareto requires strictly positive data",
            });
        }
        let xm = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let s: f64 = data.iter().map(|&x| (x / xm).ln()).sum();
        if s <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "pareto MLE requires non-degenerate data",
            });
        }
        Self::new(xm, data.len() as f64 / s)
    }

    /// Minimum (scale) parameter `x_m`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Tail-index (shape) parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }
}

impl Distribution for Pareto {
    fn pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            0.0
        } else {
            self.shape * self.scale.powf(self.shape) / x.powf(self.shape + 1.0)
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < self.scale {
            f64::NEG_INFINITY
        } else {
            self.shape.ln() + self.shape * self.scale.ln() - (self.shape + 1.0) * x.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            0.0
        } else {
            1.0 - (self.scale / x).powf(self.shape)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert_probability(p);
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.scale / (1.0 - p).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }

    fn variance(&self) -> f64 {
        if self.shape <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.shape;
            self.scale * self.scale * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        let u: f64 = rng.random::<f64>();
        self.scale / (1.0 - u).powf(1.0 / self.shape)
    }

    fn family_name(&self) -> &'static str {
        "pareto"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn reference_values() {
        let p = Pareto::new(1.0, 2.0).unwrap();
        assert!((p.cdf(2.0) - 0.75).abs() < 1e-12);
        assert!((p.pdf(1.0) - 2.0).abs() < 1e-12);
        assert!((p.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn support_above_scale() {
        let p = Pareto::new(5.0, 3.0).unwrap();
        assert_eq!(p.pdf(4.9), 0.0);
        assert_eq!(p.cdf(5.0), 0.0);
        assert_eq!(p.ln_pdf(1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn heavy_tail_infinite_moments() {
        let p1 = Pareto::new(1.0, 0.9).unwrap();
        assert_eq!(p1.mean(), f64::INFINITY);
        let p2 = Pareto::new(1.0, 1.5).unwrap();
        assert!(p2.mean().is_finite());
        assert_eq!(p2.variance(), f64::INFINITY);
        let p3 = Pareto::new(1.0, 3.0).unwrap();
        assert!(p3.variance().is_finite());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = Pareto::new(2.0, 1.16).unwrap();
        for &q in &[0.1, 0.5, 0.9, 0.999] {
            assert!((p.cdf(p.quantile(q)) - q).abs() < 1e-10);
        }
    }

    #[test]
    fn mle_recovers_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let truth = Pareto::new(3.0, 2.5).unwrap();
        let data = truth.sample_n(&mut rng, 20_000);
        let fit = Pareto::fit_mle(&data).unwrap();
        assert!((fit.scale() - 3.0).abs() < 0.01, "scale {}", fit.scale());
        assert!((fit.shape() - 2.5).abs() < 0.1, "shape {}", fit.shape());
    }

    #[test]
    fn mle_rejects_bad_data() {
        assert!(Pareto::fit_mle(&[1.0]).is_err());
        assert!(Pareto::fit_mle(&[0.0, 1.0]).is_err());
        assert!(Pareto::fit_mle(&[2.0, 2.0]).is_err());
    }

    #[test]
    fn samples_at_or_above_scale() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let p = Pareto::new(7.0, 1.1).unwrap();
        for _ in 0..500 {
            assert!(p.sample(&mut rng) >= 7.0);
        }
    }
}
