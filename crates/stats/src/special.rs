//! Special mathematical functions used by the distribution families.
//!
//! All routines are classical, dependency-free implementations:
//! Lanczos log-gamma, Numerical-Recipes-style regularised incomplete
//! gamma, Abramowitz–Stegun / rational-approximation error functions, an
//! Acklam-style inverse normal CDF and an asymptotic digamma.

/// Lanczos coefficients (g = 7, n = 9) for [`ln_gamma`].
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`;
/// absolute accuracy is better than `1e-12` over the useful range.
///
/// # Examples
///
/// ```
/// let v = resmodel_stats::special::ln_gamma(5.0);
/// assert!((v - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut a = LANCZOS_COEF[0];
        let t = x + LANCZOS_G + 0.5;
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

/// The gamma function `Γ(x)`.
///
/// Computed as `exp(ln_gamma(x))` for positive arguments and via the
/// reflection formula otherwise. Overflows to infinity around `x ≳ 171`.
pub fn gamma(x: f64) -> f64 {
    if x > 0.0 {
        ln_gamma(x).exp()
    } else {
        let pi = std::f64::consts::PI;
        pi / ((pi * x).sin() * ln_gamma(1.0 - x).exp())
    }
}

const GAMMA_EPS: f64 = 1e-14;
const GAMMA_MAX_ITER: usize = 500;

/// Regularised lower incomplete gamma function `P(a, x) = γ(a,x)/Γ(a)`.
///
/// `P(a, x)` is the CDF of a Gamma(shape `a`, scale 1) variate at `x`.
/// Returns 0 for `x ≤ 0`. Uses the series expansion for `x < a + 1` and
/// the continued fraction for larger `x` (Numerical Recipes §6.2).
///
/// # Panics
///
/// Panics if `a <= 0` or if either argument is NaN.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && !a.is_nan() && !x.is_nan(),
        "gamma_p: invalid arguments"
    );
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cont_fraction(a, x)
    }
}

/// Regularised upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or if either argument is NaN.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(
        a > 0.0 && !a.is_nan() && !x.is_nan(),
        "gamma_q: invalid arguments"
    );
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cont_fraction(a, x)
    }
}

/// Series representation of `P(a, x)`, valid and fast for `x < a + 1`.
fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x)`, valid for `x ≥ a + 1`.
fn gamma_cont_fraction(a: f64, x: f64) -> f64 {
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Inverse of the regularised lower incomplete gamma: finds `x` such that
/// `P(a, x) = p`.
///
/// Uses a Wilson–Hilferty starting point refined by Newton iterations
/// (with bisection safeguarding). Accuracy ~1e-10.
///
/// # Panics
///
/// Panics if `a <= 0` or `p` is outside `[0, 1]`.
pub fn inv_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_gamma_p: shape must be positive");
    assert!((0.0..=1.0).contains(&p), "inv_gamma_p: p must be in [0,1]");
    if p == 0.0 {
        return 0.0;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Wilson–Hilferty approximation for the starting point.
    let z = inv_norm_cdf(p);
    let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
    let mut x = (a * t * t * t).max(1e-10);

    let mut lo = 0.0_f64;
    let mut hi = f64::INFINITY;
    for _ in 0..100 {
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Derivative of P(a, x) w.r.t. x is the Gamma(a, 1) density.
        let dens = ((a - 1.0) * x.ln() - x - ln_gamma(a)).exp();
        let mut next = if dens > 1e-300 { x - f / dens } else { x };
        if !(next > lo && (hi.is_infinite() || next < hi)) || !next.is_finite() {
            // Newton stepped out of the bracket — bisect instead.
            next = if hi.is_infinite() {
                x * 2.0
            } else {
                0.5 * (lo + hi)
            };
        }
        if (next - x).abs() <= 1e-12 * x.max(1e-12) {
            return next;
        }
        x = next;
    }
    x
}

/// Error function `erf(x)`, accurate to ~1.2e-7 everywhere (sufficient
/// for all uses in this crate, which go through [`norm_cdf`] for
/// high-accuracy paths).
///
/// Implementation: Numerical Recipes' `erfc` Chebyshev fit.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients from Numerical Recipes (3rd ed.), §6.2.2.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal density `φ(x)`.
pub fn norm_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function), `Φ⁻¹(p)`.
///
/// Peter Acklam's rational approximation refined with one Halley step
/// against [`norm_cdf`]; relative error below `1e-13`.
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)` (returns ±∞ for
/// exactly 0 or 1).
pub fn inv_norm_cdf(p: f64) -> f64 {
    if p <= 0.0 {
        assert!(p == 0.0, "inv_norm_cdf: p must be in [0,1]");
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        assert!(p == 1.0, "inv_norm_cdf: p must be in [0,1]");
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = norm_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Inverse error function `erf⁻¹(x)` for `x ∈ (−1, 1)`.
pub fn inv_erf(x: f64) -> f64 {
    inv_norm_cdf((x + 1.0) / 2.0) / std::f64::consts::SQRT_2
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Recurrence to push the argument above 6, then the standard asymptotic
/// expansion; accuracy ~1e-12.
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma: argument must be positive");
    let mut x = x;
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {b}, got {a} (diff {})",
            (a - b).abs()
        );
    }

    #[test]
    fn ln_gamma_integers() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(10.0), 362880f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π
        close(ln_gamma(0.5), 0.5723649429247001, 1e-12);
        // Γ(3/2) = √π/2
        close(ln_gamma(1.5), -0.12078223763524522, 1e-12);
    }

    #[test]
    fn gamma_function_values() {
        close(gamma(4.0), 6.0, 1e-10);
        close(gamma(0.5), std::f64::consts::PI.sqrt(), 1e-10);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF)
        close(gamma_p(1.0, 1.0), 1.0 - (-1.0f64).exp(), 1e-12);
        close(gamma_p(1.0, 2.5), 1.0 - (-2.5f64).exp(), 1e-12);
        // P(2, 2) = 1 - e^{-2}(1 + 2)
        close(gamma_p(2.0, 2.0), 1.0 - (-2.0f64).exp() * 3.0, 1e-12);
    }

    #[test]
    fn gamma_p_q_complement() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.1, 1.0, 5.0, 20.0, 80.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-10);
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let v = gamma_p(3.0, x);
            assert!(v >= prev, "gamma_p must be nondecreasing");
            prev = v;
        }
    }

    #[test]
    fn inv_gamma_p_roundtrip() {
        for &a in &[0.5, 1.0, 2.0, 7.5, 30.0] {
            for &p in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = inv_gamma_p(a, p);
                close(gamma_p(a, x), p, 1e-8);
            }
        }
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-12);
        close(erf(1.0), 0.8427007929497149, 2e-7);
        close(erf(-1.0), -0.8427007929497149, 2e-7);
        close(erf(2.0), 0.9953222650189527, 2e-7);
    }

    #[test]
    fn norm_cdf_reference_values() {
        close(norm_cdf(0.0), 0.5, 1e-12);
        close(norm_cdf(1.0), 0.8413447460685429, 1e-7);
        close(norm_cdf(-1.96), 0.024997895148220435, 1e-7);
        close(norm_cdf(3.0), 0.9986501019683699, 1e-7);
    }

    #[test]
    fn inv_norm_cdf_roundtrip() {
        for &p in &[1e-6, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6] {
            let x = inv_norm_cdf(p);
            close(norm_cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn inv_norm_cdf_symmetry() {
        for &p in &[0.01, 0.1, 0.3] {
            close(inv_norm_cdf(p), -inv_norm_cdf(1.0 - p), 1e-9);
        }
    }

    #[test]
    fn inv_norm_cdf_extremes() {
        assert_eq!(inv_norm_cdf(0.0), f64::NEG_INFINITY);
        assert_eq!(inv_norm_cdf(1.0), f64::INFINITY);
    }

    #[test]
    fn inv_erf_roundtrip() {
        for &x in &[-0.9, -0.5, 0.0, 0.3, 0.77] {
            close(erf(inv_erf(x)), x, 1e-6);
        }
    }

    #[test]
    fn digamma_reference_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        close(digamma(1.0), -0.5772156649015329, 1e-10);
        // ψ(1/2) = -γ - 2 ln 2
        close(digamma(0.5), -1.9635100260214235, 1e-10);
        // ψ(n+1) = ψ(n) + 1/n
        close(digamma(2.0), -0.5772156649015329 + 1.0, 1e-10);
        close(digamma(10.0), 2.2517525890667214, 1e-10);
    }

    #[test]
    #[should_panic]
    fn digamma_rejects_nonpositive() {
        digamma(0.0);
    }

    #[test]
    fn norm_pdf_peak() {
        close(norm_pdf(0.0), 0.3989422804014327, 1e-12);
    }
}
