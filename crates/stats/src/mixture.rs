//! Two-component Gaussian mixture fitting via EM.
//!
//! The paper notes a "spike around the middle" of the benchmark
//! histograms that keeps the plain normal fit from being perfect
//! (Section V-F). A two-component mixture — a broad body plus a narrow
//! commodity-part spike — captures exactly that structure; this module
//! fits it by expectation–maximisation.

use crate::distribution::Distribution;
use crate::distributions::Normal;
use crate::error::StatsError;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// A two-component Gaussian mixture
/// `w·N(μ₁, σ₁²) + (1−w)·N(μ₂, σ₂²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMixture2 {
    weight: f64,
    first: Normal,
    second: Normal,
}

impl GaussianMixture2 {
    /// Maximum EM iterations.
    const MAX_ITER: usize = 500;

    /// Create a mixture with component weight `weight` on `first`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless
    /// `weight ∈ (0, 1)`.
    pub fn new(weight: f64, first: Normal, second: Normal) -> Result<Self, StatsError> {
        if !(weight > 0.0 && weight < 1.0) {
            return Err(StatsError::InvalidParameter {
                name: "weight",
                value: weight,
                constraint: "must be strictly between 0 and 1",
            });
        }
        Ok(Self {
            weight,
            first,
            second,
        })
    }

    /// Component weight of the first component.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// The first component.
    pub fn first(&self) -> &Normal {
        &self.first
    }

    /// The second component.
    pub fn second(&self) -> &Normal {
        &self.second
    }

    /// The component with the smaller standard deviation — the "spike"
    /// in the paper's benchmark histograms.
    pub fn spike(&self) -> (&Normal, f64) {
        if self.first.sigma() <= self.second.sigma() {
            (&self.first, self.weight)
        } else {
            (&self.second, 1.0 - self.weight)
        }
    }

    /// Fit by EM with a quantile-based start (component means seeded at
    /// the 25th/75th percentiles).
    ///
    /// # Errors
    ///
    /// Requires at least 10 finite points with positive spread; fails
    /// with [`StatsError::NoConvergence`] when EM collapses a component
    /// repeatedly.
    pub fn fit_em(data: &[f64]) -> Result<Self, StatsError> {
        if data.len() < 10 {
            return Err(StatsError::EmptyData {
                what: "GaussianMixture2::fit_em",
                needed: 10,
                got: data.len(),
            });
        }
        if data.iter().any(|x| !x.is_finite()) {
            return Err(StatsError::NonFiniteData {
                what: "GaussianMixture2::fit_em",
            });
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        let q = |p: f64| sorted[((n - 1) as f64 * p) as usize];
        let spread = sorted[n - 1] - sorted[0];
        if spread <= 0.0 {
            return Err(StatsError::InvalidData {
                constraint: "mixture EM requires non-degenerate data",
            });
        }

        let mut w = 0.5;
        let mut mu = [q(0.25), q(0.75)];
        let mut sigma = [spread / 4.0, spread / 4.0];
        let floor = 1e-6 * spread;

        let mut prev_ll = f64::NEG_INFINITY;
        for _ in 0..Self::MAX_ITER {
            // E step: responsibilities of component 0.
            let c0 = Normal::new(mu[0], sigma[0].max(floor))?;
            let c1 = Normal::new(mu[1], sigma[1].max(floor))?;
            let mut r0_sum = 0.0;
            let mut m0 = 0.0;
            let mut m1 = 0.0;
            let mut s0 = 0.0;
            let mut s1 = 0.0;
            let mut ll = 0.0;
            let resp: Vec<f64> = data
                .iter()
                .map(|&x| {
                    let p0 = w * c0.pdf(x);
                    let p1 = (1.0 - w) * c1.pdf(x);
                    let total = (p0 + p1).max(1e-300);
                    ll += total.ln();
                    p0 / total
                })
                .collect();
            for (&x, &r) in data.iter().zip(&resp) {
                r0_sum += r;
                m0 += r * x;
                m1 += (1.0 - r) * x;
            }
            let r1_sum = n as f64 - r0_sum;
            if r0_sum < 1e-6 || r1_sum < 1e-6 {
                return Err(StatsError::NoConvergence {
                    what: "GaussianMixture2::fit_em (component collapsed)",
                    iterations: Self::MAX_ITER,
                });
            }
            mu[0] = m0 / r0_sum;
            mu[1] = m1 / r1_sum;
            for (&x, &r) in data.iter().zip(&resp) {
                s0 += r * (x - mu[0]).powi(2);
                s1 += (1.0 - r) * (x - mu[1]).powi(2);
            }
            sigma[0] = (s0 / r0_sum).sqrt().max(floor);
            sigma[1] = (s1 / r1_sum).sqrt().max(floor);
            w = (r0_sum / n as f64).clamp(1e-6, 1.0 - 1e-6);

            if (ll - prev_ll).abs() < 1e-9 * ll.abs().max(1.0) {
                break;
            }
            prev_ll = ll;
        }
        Self::new(
            w,
            Normal::new(mu[0], sigma[0])?,
            Normal::new(mu[1], sigma[1])?,
        )
    }
}

impl Distribution for GaussianMixture2 {
    fn pdf(&self, x: f64) -> f64 {
        self.weight * self.first.pdf(x) + (1.0 - self.weight) * self.second.pdf(x)
    }

    fn cdf(&self, x: f64) -> f64 {
        self.weight * self.first.cdf(x) + (1.0 - self.weight) * self.second.cdf(x)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        // Bisection between the component quantiles (mixture CDF is
        // monotone).
        let mut lo = self.first.quantile(p).min(self.second.quantile(p));
        let mut hi = self.first.quantile(p).max(self.second.quantile(p));
        if (hi - lo).abs() < 1e-15 {
            return lo;
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * (1.0 + hi.abs()) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    fn mean(&self) -> f64 {
        self.weight * self.first.mean() + (1.0 - self.weight) * self.second.mean()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        let e2 = self.weight * (self.first.variance() + self.first.mean().powi(2))
            + (1.0 - self.weight) * (self.second.variance() + self.second.mean().powi(2));
        e2 - m * m
    }

    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if rng.random::<f64>() < self.weight {
            self.first.sample(rng)
        } else {
            self.second.sample(rng)
        }
    }

    fn family_name(&self) -> &'static str {
        "gaussian-mixture-2"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn spiked_benchmark_data(n: usize, seed: u64) -> Vec<f64> {
        // Body N(2000, 900) with a 20% spike at N(1900, 60) — the
        // paper's benchmark histogram shape.
        let body = Normal::new(2000.0, 900.0).unwrap();
        let spike = Normal::new(1900.0, 60.0).unwrap();
        let mix = GaussianMixture2::new(0.8, body, spike).unwrap();
        let mut rng = seeded(seed);
        (0..n).map(|_| mix.sample(&mut rng)).collect()
    }

    #[test]
    fn construction_validates_weight() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!(GaussianMixture2::new(0.0, n, n).is_err());
        assert!(GaussianMixture2::new(1.0, n, n).is_err());
        assert!(GaussianMixture2::new(0.5, n, n).is_ok());
    }

    #[test]
    fn pdf_cdf_are_convex_combinations() {
        let a = Normal::new(-2.0, 1.0).unwrap();
        let b = Normal::new(3.0, 0.5).unwrap();
        let m = GaussianMixture2::new(0.3, a, b).unwrap();
        for &x in &[-4.0, 0.0, 2.5, 3.0, 5.0] {
            assert!((m.pdf(x) - (0.3 * a.pdf(x) + 0.7 * b.pdf(x))).abs() < 1e-12);
            assert!((m.cdf(x) - (0.3 * a.cdf(x) + 0.7 * b.cdf(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let m = GaussianMixture2::new(
            0.6,
            Normal::new(0.0, 1.0).unwrap(),
            Normal::new(5.0, 0.3).unwrap(),
        )
        .unwrap();
        for &p in &[0.01, 0.3, 0.59, 0.61, 0.9, 0.99] {
            let x = m.quantile(p);
            assert!((m.cdf(x) - p).abs() < 1e-8, "p = {p}");
        }
    }

    #[test]
    fn moments() {
        let m = GaussianMixture2::new(
            0.5,
            Normal::new(0.0, 1.0).unwrap(),
            Normal::new(4.0, 1.0).unwrap(),
        )
        .unwrap();
        assert!((m.mean() - 2.0).abs() < 1e-12);
        // Var = E[σ²] + Var of means = 1 + 4.
        assert!((m.variance() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn em_recovers_spiked_benchmarks() {
        let data = spiked_benchmark_data(20_000, 31);
        let fit = GaussianMixture2::fit_em(&data).unwrap();
        let (spike, spike_weight) = fit.spike();
        assert!(
            (spike.mu() - 1900.0).abs() < 40.0,
            "spike mean {}",
            spike.mu()
        );
        assert!(spike.sigma() < 150.0, "spike sigma {}", spike.sigma());
        assert!(
            (spike_weight - 0.2).abs() < 0.06,
            "spike weight {spike_weight}"
        );
    }

    #[test]
    fn em_beats_single_normal_likelihood() {
        let data = spiked_benchmark_data(5_000, 32);
        let single = Normal::fit_mle(&data).unwrap();
        let mix = GaussianMixture2::fit_em(&data).unwrap();
        assert!(
            mix.ln_likelihood(&data) > single.ln_likelihood(&data) + 10.0,
            "mixture must dominate the single normal"
        );
    }

    #[test]
    fn em_rejects_bad_data() {
        assert!(GaussianMixture2::fit_em(&[1.0; 5]).is_err());
        assert!(
            GaussianMixture2::fit_em(&[1.0, f64::NAN, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0])
                .is_err()
        );
        assert!(GaussianMixture2::fit_em(&[2.0; 50]).is_err());
    }

    #[test]
    fn sampling_matches_mixture_mean() {
        let m = GaussianMixture2::new(
            0.7,
            Normal::new(10.0, 2.0).unwrap(),
            Normal::new(20.0, 1.0).unwrap(),
        )
        .unwrap();
        let mut rng = seeded(33);
        let xs = m.sample_n(&mut rng, 30_000);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - m.mean()).abs() < 0.1);
    }
}
