//! Deterministic RNG helpers used across the workspace.
//!
//! Every simulation and experiment takes an explicit `u64` seed; these
//! helpers centralise construction and derivation of substream seeds so
//! same-seed runs are bitwise reproducible.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Construct the workspace-standard deterministic RNG from a seed.
///
/// # Examples
///
/// ```
/// use rand::RngExt;
/// let mut a = resmodel_stats::rng::seeded(42);
/// let mut b = resmodel_stats::rng::seeded(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a substream seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer so nearby labels produce uncorrelated
/// streams. Useful for giving each simulated host its own RNG without
/// storing per-host generators.
pub fn substream(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG for the substream identified by `(seed, stream)`.
pub fn seeded_substream(seed: u64, stream: u64) -> StdRng {
    seeded(substream(seed, stream))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..10 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(7);
        let mut b = seeded(8);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn substreams_are_distinct() {
        let s1 = substream(7, 0);
        let s2 = substream(7, 1);
        let s3 = substream(8, 0);
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn substream_is_deterministic() {
        assert_eq!(substream(123, 456), substream(123, 456));
    }

    #[test]
    fn seeded_substream_reproducible() {
        let mut a = seeded_substream(1, 2);
        let mut b = seeded_substream(1, 2);
        assert_eq!(a.random::<f64>(), b.random::<f64>());
    }
}
