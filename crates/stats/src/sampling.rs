//! Low-level samplers: standard normal, standard gamma and correlated
//! multivariate normals via a Cholesky factor.

use crate::error::StatsError;
use crate::linalg::Matrix;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Draw a standard normal variate `N(0, 1)` using the Marsaglia polar
/// method.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let z = resmodel_stats::sampling::standard_normal(&mut rng);
/// assert!(z.is_finite());
/// ```
pub fn standard_normal(rng: &mut dyn Rng) -> f64 {
    loop {
        let u = 2.0 * rng.random::<f64>() - 1.0;
        let v = 2.0 * rng.random::<f64>() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Draw a standard uniform variate in `[0, 1)`.
pub fn standard_uniform(rng: &mut dyn Rng) -> f64 {
    rng.random::<f64>()
}

/// Fill a slice with i.i.d. standard normal variates — the slice-based
/// entry point batch samplers use instead of collecting per-draw
/// `Vec`s. Draw order is left to right, so filling a buffer consumes
/// exactly the same RNG stream as calling [`standard_normal`] in a
/// loop.
pub fn fill_standard_normal(rng: &mut dyn Rng, out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = standard_normal(rng);
    }
}

/// Fill a slice with i.i.d. standard uniform variates in `[0, 1)`;
/// same draw-order contract as [`fill_standard_normal`].
pub fn fill_standard_uniform(rng: &mut dyn Rng, out: &mut [f64]) {
    for o in out.iter_mut() {
        *o = standard_uniform(rng);
    }
}

/// Draw a `Gamma(shape, 1)` variate using the Marsaglia–Tsang method.
///
/// Valid for any `shape > 0`; shapes below one use the boosting identity
/// `Gamma(k) = Gamma(k+1) · U^{1/k}`.
///
/// # Panics
///
/// Panics if `shape <= 0` or is not finite.
pub fn standard_gamma(rng: &mut dyn Rng, shape: f64) -> f64 {
    assert!(
        shape.is_finite() && shape > 0.0,
        "standard_gamma: shape must be finite and positive"
    );
    if shape < 1.0 {
        let boost = standard_gamma(rng, shape + 1.0);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return boost * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (3.0 * d.sqrt());
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Sampler for a vector of standard normal variates with a prescribed
/// correlation structure.
///
/// This is the paper's Section V-F construction: take the correlation
/// matrix `R` of (per-core-memory, Whetstone, Dhrystone), factor it as
/// `R = L·Lᵀ` (Cholesky), then transform i.i.d. standard normals `V` into
/// `L·V`, whose pairwise correlations equal the entries of `R`.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Matrix, sampling::CorrelatedNormals};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// // The paper's R for (mem/core, whetstone, dhrystone).
/// let r = Matrix::from_rows(&[
///     &[1.0, 0.250, 0.306],
///     &[0.250, 1.0, 0.639],
///     &[0.306, 0.639, 1.0],
/// ])?;
/// let sampler = CorrelatedNormals::new(&r)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(11);
/// let v = sampler.sample(&mut rng);
/// assert_eq!(v.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatedNormals {
    /// Lower-triangular Cholesky factor of the correlation matrix.
    chol: Matrix,
}

impl CorrelatedNormals {
    /// Build a sampler from a correlation (or covariance) matrix.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotSquare`] for non-square input and
    /// [`StatsError::NotPositiveDefinite`] when the Cholesky
    /// factorisation fails.
    pub fn new(correlation: &Matrix) -> Result<Self, StatsError> {
        Ok(Self {
            chol: correlation.cholesky()?,
        })
    }

    /// Dimension of the sampled vectors.
    pub fn dim(&self) -> usize {
        self.chol.rows()
    }

    /// The lower-triangular Cholesky factor `L`.
    pub fn cholesky_factor(&self) -> &Matrix {
        &self.chol
    }

    /// Draw one correlated standard-normal vector.
    pub fn sample(&self, rng: &mut dyn Rng) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draw one correlated vector into `out` without heap allocation
    /// (for dimensions up to 8; larger samplers fall back to a scratch
    /// `Vec`). Identical draw order and arithmetic to
    /// [`CorrelatedNormals::sample`], so results are bitwise equal.
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != self.dim()`.
    pub fn sample_into(&self, rng: &mut dyn Rng, out: &mut [f64]) {
        let d = self.dim();
        assert_eq!(out.len(), d, "output buffer has the sampler dimension");
        let mut stack = [0.0; 8];
        let mut heap;
        let z: &mut [f64] = if d <= stack.len() {
            &mut stack[..d]
        } else {
            heap = vec![0.0; d];
            &mut heap
        };
        fill_standard_normal(rng, z);
        // L·z with mul_vec's exact accumulation order (row-major dot
        // products), just without the output allocation.
        for (i, o) in out.iter_mut().enumerate() {
            *o = (0..d).map(|j| self.chol.get(i, j) * z[j]).sum();
        }
    }

    /// Draw `n` correlated vectors.
    pub fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::correlation::pearson;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 60_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn standard_gamma_moments() {
        let mut r = rng();
        for &shape in &[0.5, 1.0, 2.5, 9.0] {
            let n = 40_000;
            let xs: Vec<f64> = (0..n).map(|_| standard_gamma(&mut r, shape)).collect();
            let mean = xs.iter().sum::<f64>() / n as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.1 * shape.max(1.0),
                "shape {shape} mean {mean}"
            );
            assert!(
                (var - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape} var {var}"
            );
        }
    }

    #[test]
    fn fill_consumes_same_stream_as_loop() {
        let mut a = rng();
        let mut b = rng();
        let mut filled = [0.0f64; 16];
        fill_standard_normal(&mut a, &mut filled);
        for &v in &filled {
            assert_eq!(v.to_bits(), standard_normal(&mut b).to_bits());
        }
        let mut fu = [0.0f64; 8];
        fill_standard_uniform(&mut a, &mut fu);
        for &v in &fu {
            assert_eq!(v.to_bits(), standard_uniform(&mut b).to_bits());
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn standard_gamma_positive() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(standard_gamma(&mut r, 0.3) > 0.0);
        }
    }

    #[test]
    #[should_panic]
    fn standard_gamma_rejects_zero_shape() {
        let mut r = rng();
        standard_gamma(&mut r, 0.0);
    }

    #[test]
    fn correlated_normals_reproduce_paper_matrix() {
        // The paper's R for (mem/core, whetstone, dhrystone), Section V-F.
        let r = Matrix::from_rows(&[
            &[1.0, 0.250, 0.306],
            &[0.250, 1.0, 0.639],
            &[0.306, 0.639, 1.0],
        ])
        .unwrap();
        let sampler = CorrelatedNormals::new(&r).unwrap();
        let mut g = rng();
        let n = 30_000;
        let samples = sampler.sample_n(&mut g, n);
        let col = |j: usize| samples.iter().map(|v| v[j]).collect::<Vec<f64>>();
        let (c0, c1, c2) = (col(0), col(1), col(2));
        assert!((pearson(&c0, &c1).unwrap() - 0.250).abs() < 0.03);
        assert!((pearson(&c0, &c2).unwrap() - 0.306).abs() < 0.03);
        assert!((pearson(&c1, &c2).unwrap() - 0.639).abs() < 0.03);
    }

    #[test]
    fn correlated_normals_cholesky_matches_paper() {
        // Section V-F prints U = Lᵀ; check our L against the transposed values.
        let r = Matrix::from_rows(&[
            &[1.0, 0.250, 0.306],
            &[0.250, 1.0, 0.639],
            &[0.306, 0.639, 1.0],
        ])
        .unwrap();
        let s = CorrelatedNormals::new(&r).unwrap();
        let l = s.cholesky_factor();
        assert!((l.get(0, 0) - 1.0).abs() < 1e-9);
        assert!((l.get(1, 0) - 0.250).abs() < 1e-3);
        assert!((l.get(1, 1) - 0.968).abs() < 1e-3);
        assert!((l.get(2, 0) - 0.306).abs() < 1e-3);
        assert!((l.get(2, 1) - 0.581).abs() < 1e-3);
        assert!((l.get(2, 2) - 0.754).abs() < 1e-3);
    }

    #[test]
    fn correlated_normals_rejects_non_square() {
        let m = Matrix::new(2, 3);
        assert!(CorrelatedNormals::new(&m).is_err());
    }

    #[test]
    fn identity_correlation_gives_independent_samples() {
        let eye = Matrix::identity(4);
        let s = CorrelatedNormals::new(&eye).unwrap();
        let mut g = rng();
        let v = s.sample(&mut g);
        assert_eq!(v.len(), 4);
        assert_eq!(s.dim(), 4);
    }
}
