//! The Anderson–Darling goodness-of-fit test — a tail-sensitive
//! companion to the Kolmogorov–Smirnov test used for the paper's family
//! selection. Useful for double-checking KS verdicts on heavy-tailed
//! resources like disk space.

use crate::distribution::Distribution;
use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Result of an Anderson–Darling test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdTest {
    /// The A² statistic.
    pub statistic: f64,
    /// Approximate p-value (case-0: fully specified distribution).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Compute the A² statistic of `data` against a fully specified `dist`.
///
/// `A² = −n − (1/n) Σ (2i−1)[ln F(x_(i)) + ln(1 − F(x_(n+1−i)))]`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] for empty input. Data on or
/// outside the support boundary (where `F(x)` is exactly 0 or 1) is
/// clamped, yielding a very large statistic — i.e. decisive rejection
/// rather than an error.
pub fn ad_statistic(data: &[f64], dist: &dyn Distribution) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "ad_statistic",
            needed: 1,
            got: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len();
    let nf = n as f64;
    let mut acc = 0.0;
    const EPS: f64 = 1e-15;
    for i in 0..n {
        let fi = dist.cdf(sorted[i]).clamp(EPS, 1.0 - EPS);
        let fj = dist.cdf(sorted[n - 1 - i]).clamp(EPS, 1.0 - EPS);
        acc += (2.0 * i as f64 + 1.0) * (fi.ln() + (1.0 - fj).ln());
    }
    Ok(-nf - acc / nf)
}

/// Anderson–Darling test with the case-0 (fully specified null)
/// asymptotic p-value from Marsaglia & Marsaglia (2004), accurate to a
/// few decimal places for the usual statistic range.
///
/// # Errors
///
/// Propagates [`ad_statistic`] errors.
pub fn ad_test(data: &[f64], dist: &dyn Distribution) -> Result<AdTest, StatsError> {
    let a2 = ad_statistic(data, dist)?;
    Ok(AdTest {
        statistic: a2,
        p_value: (1.0 - adinf(a2)).clamp(0.0, 1.0),
        n: data.len(),
    })
}

/// Asymptotic CDF of the Anderson–Darling statistic
/// (Marsaglia & Marsaglia, *Evaluating the Anderson-Darling
/// Distribution*, J. Stat. Soft. 2004).
fn adinf(z: f64) -> f64 {
    if z <= 0.0 {
        return 0.0;
    }
    if z < 2.0 {
        z.powf(-0.5)
            * (-1.2337141 / z).exp()
            * (2.00012
                + (0.247105 - (0.0649821 - (0.0347962 - (0.011672 - 0.00168691 * z) * z) * z) * z)
                    * z)
    } else {
        (-(1.0776
            - (2.30695 - (0.43424 - (0.082433 - (0.008056 - 0.0003146 * z) * z) * z) * z) * z)
            .exp())
        .exp()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::distributions::{LogNormal, Normal};
    use crate::rng::seeded;

    #[test]
    fn accepts_correct_model() {
        let mut rng = seeded(20);
        let d = Normal::new(0.0, 1.0).unwrap();
        let data = d.sample_n(&mut rng, 500);
        let t = ad_test(&data, &d).unwrap();
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
        assert!(t.statistic < 4.0, "A² = {}", t.statistic);
    }

    #[test]
    fn rejects_wrong_model() {
        let mut rng = seeded(21);
        let truth = LogNormal::new(0.0, 1.0).unwrap();
        let data = truth.sample_n(&mut rng, 500);
        let wrong = Normal::fit_mle(&data).unwrap();
        let t = ad_test(&data, &wrong).unwrap();
        assert!(t.p_value < 0.01, "p = {}", t.p_value);
    }

    #[test]
    fn statistic_reference_magnitude() {
        // For data at exact quantile plotting positions the statistic
        // is near its minimum (~0.2 for n = 100).
        let d = Normal::new(0.0, 1.0).unwrap();
        let data: Vec<f64> = (0..100)
            .map(|i| d.quantile((i as f64 + 0.5) / 100.0))
            .collect();
        let a2 = ad_statistic(&data, &d).unwrap();
        assert!(a2 < 0.4, "A² = {a2}");
    }

    #[test]
    fn agrees_with_ks_on_family_ranking() {
        // AD and KS should both prefer the true family.
        let mut rng = seeded(22);
        let truth = LogNormal::new(3.0, 0.8).unwrap();
        let data = truth.sample_n(&mut rng, 400);
        let right = LogNormal::fit_mle(&data).unwrap();
        let wrong = Normal::fit_mle(&data).unwrap();
        let ad_right = ad_test(&data, &right).unwrap();
        let ad_wrong = ad_test(&data, &wrong).unwrap();
        assert!(ad_right.statistic < ad_wrong.statistic);
        assert!(ad_right.p_value > ad_wrong.p_value);
    }

    #[test]
    fn empty_errors_and_boundary_rejects() {
        let d = Normal::new(0.0, 1.0).unwrap();
        assert!(ad_statistic(&[], &d).is_err());
        let ln = LogNormal::new(0.0, 1.0).unwrap();
        // A zero value sits on the support boundary of the log-normal:
        // the statistic explodes and the test decisively rejects.
        let t = ad_test(&[0.0, 1.0], &ln).unwrap();
        assert!(t.statistic > 10.0);
        assert!(t.p_value < 1e-4);
    }
}
