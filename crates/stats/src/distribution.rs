//! The [`Distribution`] trait and the [`DistributionFamily`] enum used for
//! goodness-of-fit model selection.

use crate::distributions::{Exponential, Gamma, LogGamma, LogNormal, Normal, Pareto, Weibull};
use crate::error::StatsError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A univariate continuous probability distribution.
///
/// The trait is object safe (sampling takes `&mut dyn Rng`) so fitted
/// distributions of different families can be handled uniformly during
/// model selection.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{Distribution, distributions::Normal};
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.cdf(10.0) - 0.5).abs() < 1e-12);
/// assert!((n.quantile(n.cdf(12.3)) - 12.3).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub trait Distribution: fmt::Debug {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Natural log of the density at `x` (`-inf` where the density is 0).
    fn ln_pdf(&self, x: f64) -> f64 {
        self.pdf(x).ln()
    }

    /// Cumulative distribution function `P(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `p` is outside `[0, 1]`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean (may be `inf` for heavy-tailed families).
    fn mean(&self) -> f64;

    /// Distribution variance (may be `inf` for heavy-tailed families).
    fn variance(&self) -> f64;

    /// Standard deviation, `variance().sqrt()`.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Draw one sample.
    fn sample(&self, rng: &mut dyn Rng) -> f64;

    /// Draw `n` samples into a fresh vector.
    fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Log-likelihood of `data` under this distribution.
    fn ln_likelihood(&self, data: &[f64]) -> f64 {
        data.iter().map(|&x| self.ln_pdf(x)).sum()
    }

    /// Short human-readable name of the family, e.g. `"normal"`.
    fn family_name(&self) -> &'static str;
}

/// The seven candidate distribution families the paper tests with the
/// Kolmogorov–Smirnov procedure (Section V-F): normal, log-normal,
/// exponential, Weibull, Pareto, gamma and log-gamma.
///
/// # Examples
///
/// ```
/// use resmodel_stats::DistributionFamily;
///
/// let data: Vec<f64> = (1..200).map(|i| i as f64 * 0.37 + 50.0).collect();
/// let fitted = DistributionFamily::Normal.fit(&data).unwrap();
/// assert_eq!(fitted.family_name(), "normal");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributionFamily {
    /// Gaussian `N(μ, σ²)`.
    Normal,
    /// `ln X ~ N(μ, σ²)`; support `x > 0`.
    LogNormal,
    /// Rate-parameterised exponential; support `x ≥ 0`.
    Exponential,
    /// Shape/scale Weibull; support `x ≥ 0`.
    Weibull,
    /// Scale/shape Pareto (type I); support `x ≥ x_m`.
    Pareto,
    /// Shape/scale gamma; support `x > 0`.
    Gamma,
    /// `ln X ~ Gamma(k, θ)`; support `x > 1`.
    LogGamma,
}

impl DistributionFamily {
    /// All seven families, in the order the paper lists them.
    pub const ALL: [DistributionFamily; 7] = [
        DistributionFamily::Normal,
        DistributionFamily::LogNormal,
        DistributionFamily::Exponential,
        DistributionFamily::Weibull,
        DistributionFamily::Pareto,
        DistributionFamily::Gamma,
        DistributionFamily::LogGamma,
    ];

    /// Short lowercase name, e.g. `"log-normal"`.
    pub fn name(&self) -> &'static str {
        match self {
            DistributionFamily::Normal => "normal",
            DistributionFamily::LogNormal => "log-normal",
            DistributionFamily::Exponential => "exponential",
            DistributionFamily::Weibull => "weibull",
            DistributionFamily::Pareto => "pareto",
            DistributionFamily::Gamma => "gamma",
            DistributionFamily::LogGamma => "log-gamma",
        }
    }

    /// Fit this family to `data` by maximum likelihood.
    ///
    /// # Errors
    ///
    /// Returns an error when the data is empty, violates the family's
    /// support (e.g. non-positive values for log-normal), or the MLE
    /// iteration fails to converge.
    pub fn fit(&self, data: &[f64]) -> Result<Box<dyn Distribution>, StatsError> {
        Ok(match self {
            DistributionFamily::Normal => Box::new(Normal::fit_mle(data)?),
            DistributionFamily::LogNormal => Box::new(LogNormal::fit_mle(data)?),
            DistributionFamily::Exponential => Box::new(Exponential::fit_mle(data)?),
            DistributionFamily::Weibull => Box::new(Weibull::fit_mle(data)?),
            DistributionFamily::Pareto => Box::new(Pareto::fit_mle(data)?),
            DistributionFamily::Gamma => Box::new(Gamma::fit_mle(data)?),
            DistributionFamily::LogGamma => Box::new(LogGamma::fit_mle(data)?),
        })
    }
}

impl fmt::Display for DistributionFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_has_seven_families() {
        assert_eq!(DistributionFamily::ALL.len(), 7);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            DistributionFamily::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn display_matches_name() {
        for f in DistributionFamily::ALL {
            assert_eq!(f.to_string(), f.name());
        }
    }

    #[test]
    fn fit_dispatches_to_right_family() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = Normal::new(5.0, 1.0).unwrap();
        let data = n.sample_n(&mut rng, 500);
        for fam in DistributionFamily::ALL {
            if let Ok(d) = fam.fit(&data) {
                assert_eq!(d.family_name(), fam.name());
            }
        }
    }

    #[test]
    fn fit_rejects_empty() {
        for fam in DistributionFamily::ALL {
            assert!(fam.fit(&[]).is_err(), "{fam} accepted empty data");
        }
    }

    #[test]
    fn boxed_distribution_usable() {
        let d: Box<dyn Distribution> = DistributionFamily::Normal
            .fit(&[1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        assert!((d.mean() - 3.0).abs() < 1e-12);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = d.sample(&mut rng);
        assert!(x.is_finite());
    }

    #[test]
    fn serde_roundtrip() {
        let f = DistributionFamily::LogGamma;
        let s = serde_json_like(&f);
        assert!(s.contains("LogGamma"));
    }

    fn serde_json_like(f: &DistributionFamily) -> String {
        // serde_json is not a dependency of this crate; use Debug as a
        // proxy for serialisability of the derive.
        format!("{f:?}")
    }
}
