//! A small dense-matrix type with the Cholesky decomposition required by
//! the paper's correlated host generation (Section V-F).

use crate::error::StatsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f64` matrix.
///
/// Only the handful of operations the modelling pipeline needs are
/// provided: construction, element access, transpose, matrix and vector
/// products, and Cholesky factorisation.
///
/// # Examples
///
/// ```
/// use resmodel_stats::Matrix;
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let r = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let l = r.cholesky()?;
/// let back = l.mul(&l.transpose())?;
/// assert!((back.get(0, 1) - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero matrix of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be non-zero");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::new(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when the rows have
    /// differing lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, StatsError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(StatsError::DimensionMismatch {
                expected: "at least one non-empty row".into(),
            });
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(StatsError::DimensionMismatch {
                expected: format!("all rows of length {cols}"),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Set the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// The transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::new(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when inner dimensions
    /// disagree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, StatsError> {
        if self.cols != other.rows {
            return Err(StatsError::DimensionMismatch {
                expected: format!(
                    "inner dimensions to match ({}x{} · {}x{})",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::new(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + a * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] when `v.len() != cols`.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>, StatsError> {
        if v.len() != self.cols {
            return Err(StatsError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
            });
        }
        Ok((0..self.rows)
            .map(|i| (0..self.cols).map(|j| self.get(i, j) * v[j]).sum())
            .collect())
    }

    /// Cholesky decomposition: returns the lower-triangular `L` with
    /// `L · Lᵀ = self`.
    ///
    /// The paper (Section V-F) works with the upper factor `U = Lᵀ` and
    /// row vectors (`V_C = V·U`); both conventions produce identically
    /// correlated samples.
    ///
    /// # Errors
    ///
    /// * [`StatsError::NotSquare`] if the matrix is not square.
    /// * [`StatsError::NotPositiveDefinite`] if a pivot is non-positive
    ///   (the input is not symmetric positive definite).
    pub fn cholesky(&self) -> Result<Matrix, StatsError> {
        if !self.is_square() {
            return Err(StatsError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut l = Matrix::new(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(StatsError::NotPositiveDefinite);
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Ok(l)
    }

    /// Maximum absolute element-wise difference from `other`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::DimensionMismatch`] for differing shapes.
    pub fn max_abs_diff(&self, other: &Matrix) -> Result<f64, StatsError> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(StatsError::DimensionMismatch {
                expected: format!("{}x{} matrix", self.rows, self.cols),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max))
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>10.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::new(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert!(!m.is_square());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Matrix::new(2, 2).get(2, 0);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn identity_multiplication() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.mul(&i).unwrap(), m);
        assert_eq!(i.mul(&m).unwrap(), m);
    }

    #[test]
    fn multiplication_reference() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn mul_dimension_mismatch() {
        let a = Matrix::new(2, 3);
        let b = Matrix::new(2, 3);
        assert!(a.mul(&b).is_err());
        assert!(a.mul_vec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn mul_vec_reference() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let l = a.cholesky().unwrap();
        // Classic reference factorisation.
        assert_eq!(l.get(0, 0), 2.0);
        assert_eq!(l.get(1, 0), 6.0);
        assert_eq!(l.get(1, 1), 1.0);
        assert_eq!(l.get(2, 0), -8.0);
        assert_eq!(l.get(2, 1), 5.0);
        assert_eq!(l.get(2, 2), 3.0);
        let back = l.mul(&l.transpose()).unwrap();
        assert!(back.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn cholesky_paper_correlation_matrix() {
        // Section V-F of the paper: R and its printed factor U = Lᵀ.
        let r = Matrix::from_rows(&[
            &[1.0, 0.250, 0.306],
            &[0.250, 1.0, 0.639],
            &[0.306, 0.639, 1.0],
        ])
        .unwrap();
        let l = r.cholesky().unwrap();
        assert!((l.get(1, 1) - 0.9683).abs() < 1e-3);
        assert!((l.get(2, 1) - 0.581).abs() < 1e-2);
        assert!((l.get(2, 2) - 0.754).abs() < 1e-3);
    }

    #[test]
    fn cholesky_rejects_non_square() {
        assert!(Matrix::new(2, 3).cholesky().is_err());
    }

    #[test]
    fn cholesky_rejects_non_positive_definite() {
        let bad = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert_eq!(bad.cholesky().unwrap_err(), StatsError::NotPositiveDefinite);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::identity(2);
        assert!(!format!("{m}").is_empty());
    }
}
