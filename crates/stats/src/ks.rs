//! One-sample Kolmogorov–Smirnov goodness-of-fit testing, including the
//! paper's subsampled averaged p-value procedure (Section V-F) and
//! distribution-family selection across the seven candidates.

use crate::distribution::{Distribution, DistributionFamily};
use crate::error::StatsError;
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Result of a single Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D = sup |F_n(x) − F(x)|`.
    pub statistic: f64,
    /// Asymptotic p-value of observing a statistic at least this large
    /// under the null hypothesis.
    pub p_value: f64,
    /// Sample size the statistic was computed from.
    pub n: usize,
}

/// Compute the one-sample KS statistic of `data` against `dist`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when `data` is empty.
pub fn ks_statistic(data: &[f64], dist: &dyn Distribution) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "ks_statistic",
            needed: 1,
            got: 0,
        });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = dist.cdf(x);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    Ok(d)
}

/// The Kolmogorov distribution survival function
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.
///
/// Values outside `[0, 1]` caused by series truncation are clamped.
pub fn kolmogorov_survival(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample KS test of `data` against a fully specified `dist`.
///
/// Uses the asymptotic p-value with the small-sample correction
/// `λ = (√n + 0.12 + 0.11/√n)·D` (Numerical Recipes §14.3).
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when `data` is empty.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{distributions::Normal, ks::ks_test, Distribution};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let n = Normal::new(0.0, 1.0)?;
/// let data = n.sample_n(&mut rng, 200);
/// let t = ks_test(&data, &n)?;
/// assert!(t.p_value > 0.01); // data drawn from the null
/// # Ok(())
/// # }
/// ```
pub fn ks_test(data: &[f64], dist: &dyn Distribution) -> Result<KsTest, StatsError> {
    let d = ks_statistic(data, dist)?;
    let n = data.len();
    let sqrt_n = (n as f64).sqrt();
    let lambda = (sqrt_n + 0.12 + 0.11 / sqrt_n) * d;
    Ok(KsTest {
        statistic: d,
        p_value: kolmogorov_survival(lambda),
        n,
    })
}

/// Configuration of the paper's subsampled KS procedure.
///
/// The KS test "is sensitive to slight discrepancies in large data sets,
/// so to calculate p-values we took the average p-value of 100 KS tests
/// each using a randomly selected subset of 50 values" (Section V-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubsampleConfig {
    /// Number of independent subsample tests (paper: 100).
    pub repetitions: usize,
    /// Size of each subsample (paper: 50).
    pub subsample_size: usize,
}

impl Default for SubsampleConfig {
    fn default() -> Self {
        Self {
            repetitions: 100,
            subsample_size: 50,
        }
    }
}

/// Average p-value of repeated KS tests on random subsamples, the
/// paper's robust goodness-of-fit score for large data sets.
///
/// The distribution is fitted once (by the caller, on the full data);
/// only the test is subsampled.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when `data` is empty.
pub fn subsampled_ks_pvalue(
    data: &[f64],
    dist: &dyn Distribution,
    config: SubsampleConfig,
    rng: &mut dyn Rng,
) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "subsampled_ks_pvalue",
            needed: 1,
            got: 0,
        });
    }
    let m = config.subsample_size.min(data.len());
    let mut total = 0.0;
    let mut subsample = Vec::with_capacity(m);
    for _ in 0..config.repetitions.max(1) {
        subsample.clear();
        for _ in 0..m {
            let idx = rng.random_range(0..data.len());
            subsample.push(data[idx]);
        }
        total += ks_test(&subsample, dist)?.p_value;
    }
    Ok(total / config.repetitions.max(1) as f64)
}

/// Goodness-of-fit score of one candidate family.
#[derive(Debug)]
pub struct FamilyScore {
    /// The candidate family.
    pub family: DistributionFamily,
    /// The distribution fitted to the full data set (absent when the fit
    /// failed, e.g. support violation).
    pub fitted: Option<Box<dyn Distribution>>,
    /// Averaged subsampled KS p-value (0 when the fit failed).
    pub p_value: f64,
}

/// Fit every family in `candidates` to `data` and rank them by the
/// paper's subsampled average KS p-value, best first.
///
/// Families whose MLE fails (e.g. Pareto on data containing zeros,
/// log-gamma on data ≤ 1) participate with a p-value of 0, mirroring how
/// the paper's procedure simply discards families that cannot describe
/// the data.
///
/// # Errors
///
/// Returns [`StatsError::EmptyData`] when `data` is empty.
///
/// # Examples
///
/// ```
/// use resmodel_stats::{DistributionFamily, distributions::Normal, Distribution};
/// use resmodel_stats::ks::{select_family, SubsampleConfig};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), resmodel_stats::StatsError> {
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let data = Normal::new(2000.0, 500.0)?.sample_n(&mut rng, 2_000);
/// let ranked = select_family(
///     &data,
///     &DistributionFamily::ALL,
///     SubsampleConfig::default(),
///     &mut rng,
/// )?;
/// assert_eq!(ranked[0].family, DistributionFamily::Normal);
/// # Ok(())
/// # }
/// ```
pub fn select_family(
    data: &[f64],
    candidates: &[DistributionFamily],
    config: SubsampleConfig,
    rng: &mut dyn Rng,
) -> Result<Vec<FamilyScore>, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyData {
            what: "select_family",
            needed: 1,
            got: 0,
        });
    }
    let mut scores = Vec::with_capacity(candidates.len());
    for &family in candidates {
        match family.fit(data) {
            Ok(fitted) => {
                let p = subsampled_ks_pvalue(data, fitted.as_ref(), config, rng)?;
                scores.push(FamilyScore {
                    family,
                    fitted: Some(fitted),
                    p_value: p,
                });
            }
            Err(_) => scores.push(FamilyScore {
                family,
                fitted: None,
                p_value: 0.0,
            }),
        }
    }
    scores.sort_by(|a, b| {
        b.p_value
            .partial_cmp(&a.p_value)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(scores)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::distributions::{LogNormal, Normal, Weibull};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(77)
    }

    #[test]
    fn statistic_zero_for_perfect_grid() {
        // Data at exact quantile midpoints minimises D.
        let n = Normal::new(0.0, 1.0).unwrap();
        let data: Vec<f64> = (0..100)
            .map(|i| n.quantile((i as f64 + 0.5) / 100.0))
            .collect();
        let d = ks_statistic(&data, &n).unwrap();
        assert!(d <= 0.5 / 100.0 + 1e-12, "D = {d}");
    }

    #[test]
    fn statistic_large_for_wrong_location() {
        let n0 = Normal::new(0.0, 1.0).unwrap();
        let n5 = Normal::new(5.0, 1.0).unwrap();
        let mut r = rng();
        let data = n0.sample_n(&mut r, 500);
        let d = ks_statistic(&data, &n5).unwrap();
        assert!(d > 0.9);
    }

    #[test]
    fn kolmogorov_survival_limits() {
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(0.1) > 0.999);
        assert!(kolmogorov_survival(3.0) < 1e-6);
        // Reference: Q(1.0) ≈ 0.26999967
        assert!((kolmogorov_survival(1.0) - 0.26999967).abs() < 1e-6);
    }

    #[test]
    fn ks_test_accepts_null() {
        let mut r = rng();
        let n = Normal::new(10.0, 2.0).unwrap();
        let data = n.sample_n(&mut r, 300);
        let t = ks_test(&data, &n).unwrap();
        assert!(t.p_value > 0.01, "p = {}", t.p_value);
        assert_eq!(t.n, 300);
    }

    #[test]
    fn ks_test_rejects_wrong_model() {
        let mut r = rng();
        let w = Weibull::new(0.58, 135.0).unwrap();
        let data = w.sample_n(&mut r, 1000);
        let n = Normal::fit_mle(&data).unwrap();
        let t = ks_test(&data, &n).unwrap();
        assert!(t.p_value < 1e-4, "p = {}", t.p_value);
    }

    #[test]
    fn subsampling_rescues_large_sample_sensitivity() {
        // With n = 50k even tiny model error gives p ≈ 0, but the
        // paper's subsampled procedure stays permissive for a model that
        // is only slightly wrong.
        let mut r = rng();
        let true_dist = Normal::new(0.0, 1.0).unwrap();
        let mut data = true_dist.sample_n(&mut r, 50_000);
        // Perturb 20% of points by two standard deviations: a mixture
        // the refitted normal cannot fully absorb.
        for x in data.iter_mut().step_by(5) {
            *x += 2.0;
        }
        let fitted = Normal::fit_mle(&data).unwrap();
        let full = ks_test(&data, &fitted).unwrap();
        let sub = subsampled_ks_pvalue(&data, &fitted, SubsampleConfig::default(), &mut r).unwrap();
        assert!(full.p_value < 0.05, "full-sample p {}", full.p_value);
        assert!(sub > 0.1, "subsampled p {sub}");
    }

    #[test]
    fn select_family_normal_data() {
        let mut r = rng();
        let data = Normal::new(2056.0, 1046.0).unwrap().sample_n(&mut r, 3_000);
        let ranked = select_family(
            &data,
            &DistributionFamily::ALL,
            SubsampleConfig::default(),
            &mut r,
        )
        .unwrap();
        assert_eq!(ranked[0].family, DistributionFamily::Normal);
        assert!(ranked[0].p_value > 0.2);
    }

    #[test]
    fn select_family_lognormal_data() {
        // Disk-space-like data (paper Fig 9): log-normal should win.
        let mut r = rng();
        let d = LogNormal::from_mean_variance(32.89, 60.25f64.powi(2)).unwrap();
        let data = d.sample_n(&mut r, 3_000);
        let ranked = select_family(
            &data,
            &DistributionFamily::ALL,
            SubsampleConfig::default(),
            &mut r,
        )
        .unwrap();
        assert_eq!(ranked[0].family, DistributionFamily::LogNormal);
    }

    #[test]
    fn select_family_handles_unfittable_families() {
        // Data with negatives: only the normal family can be fitted.
        let data = vec![-3.0, -1.0, 0.5, 1.2, 2.0, -0.7, 0.1, 1.5, -2.2, 0.9];
        let mut r = rng();
        let ranked = select_family(
            &data,
            &DistributionFamily::ALL,
            SubsampleConfig::default(),
            &mut r,
        )
        .unwrap();
        let normal = ranked
            .iter()
            .find(|s| s.family == DistributionFamily::Normal)
            .unwrap();
        assert!(normal.fitted.is_some());
        let pareto = ranked
            .iter()
            .find(|s| s.family == DistributionFamily::Pareto)
            .unwrap();
        assert!(pareto.fitted.is_none());
        assert_eq!(pareto.p_value, 0.0);
    }

    #[test]
    fn empty_data_errors() {
        let n = Normal::new(0.0, 1.0).unwrap();
        assert!(ks_statistic(&[], &n).is_err());
        let mut r = rng();
        assert!(subsampled_ks_pvalue(&[], &n, SubsampleConfig::default(), &mut r).is_err());
        assert!(select_family(
            &[],
            &DistributionFamily::ALL,
            SubsampleConfig::default(),
            &mut r
        )
        .is_err());
    }
}
